//! Umbrella crate for the DARTH-PUM reproduction workspace.
//!
//! This crate exists to host the runnable [examples](https://doc.rust-lang.org/cargo/guide/project-layout.html)
//! and the cross-crate integration tests. The actual library surface lives in
//! the member crates:
//!
//! * [`darth_reram`] — ReRAM device and array substrate
//! * [`darth_digital`] — bit-pipelined digital PUM (RACER/OSCAR)
//! * [`darth_analog`] — analog crossbar PUM (MVM, ADC/DAC, noise)
//! * [`darth_isa`] — the hybrid instruction set
//! * [`darth_pum`] — the DARTH-PUM chip: hybrid compute tiles, runtime
//! * [`darth_kir`] — the kernel-IR compiler (IR → verify → allocate → lower)
//! * [`darth_apps`] — AES, ResNet-20 and LLM-encoder workloads
//! * [`darth_baselines`] — CPU/GPU/accelerator comparison models
//! * [`darth_sim`] — the functional ISA simulator + differential harness
//! * [`darth_eval`] — the workload × architecture evaluation engine

pub use darth_analog as analog;
pub use darth_apps as apps;
pub use darth_baselines as baselines;
pub use darth_digital as digital;
pub use darth_eval as eval;
pub use darth_isa as isa;
pub use darth_kir as kir;
pub use darth_pum as pum;
pub use darth_reram as reram;
pub use darth_sim as sim;
