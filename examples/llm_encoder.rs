//! An integer transformer encoder pass (§5.2): I-BERT kernels with the
//! DCE-attention / ACE-FFN placement, plus the BERT-base workload trace.
//!
//! Run with: `cargo run --release --example llm_encoder`

use darth_apps::llm::encoder::{Encoder, EncoderConfig};
use darth_apps::llm::intops::to_q;
use darth_apps::llm::workload::encoder_trace;
use darth_reram::NoiseRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = EncoderConfig::tiny();
    let encoder = Encoder::new(cfg, 5)?;
    let mut rng = NoiseRng::seed_from(1);
    let input: Vec<Vec<i64>> = (0..cfg.seq_len)
        .map(|_| {
            (0..cfg.d_model)
                .map(|_| to_q(rng.gaussian(0.0, 1.0)))
                .collect()
        })
        .collect();
    let output = encoder.forward(&input)?;
    println!(
        "encoder: {} layers, d_model {}, seq {} -> output {}x{}",
        cfg.layers,
        cfg.d_model,
        cfg.seq_len,
        output.len(),
        output[0].len()
    );

    let trace = encoder_trace(&EncoderConfig::bert_base());
    println!("\nBERT-base trace (per sequence):");
    for kernel in &trace.kernels {
        println!(
            "  {:<12} {:>12} MACs (ACE) {:>14} element-ops (DCE)",
            kernel.name,
            kernel.macs(),
            kernel.element_ops()
        );
    }
    println!(
        "MVM fraction of raw ops: {:.1}% (the paper: 71% of *time* is non-MVM)",
        trace.mvm_fraction() * 100.0
    );
    Ok(())
}
