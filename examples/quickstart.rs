//! Quickstart: store a matrix in DARTH-PUM's analog arrays and run a
//! hybrid MVM through the Table 1 runtime API.
//!
//! Run with: `cargo run --release --example quickstart`

use darth_pum::runtime::{Runtime, RuntimeConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A functional chip with one hybrid compute tile.
    let mut rt = Runtime::new(RuntimeConfig::small_test())?;

    // setMatrix(): 4-bit elements at precision scale 1 (2 bits per cell,
    // so the vACore spans two weight-slice arrays).
    let matrix = vec![vec![5, 9, -3], vec![8, 7, 2], vec![-1, 0, 15]];
    let handle = rt.set_matrix(&matrix, 4, 1)?;

    // execMVM(): the input is bit-sliced, the ACE produces partial
    // products, the shift units land them pre-shifted in the DCE, and the
    // instruction injection unit replays the pipelined ADD reduction.
    let input = vec![2, 7, 1];
    let result = rt.exec_mvm(handle, &input)?;
    println!("matrix^T . {input:?} = {result:?}");
    assert_eq!(
        result,
        vec![2 * 5 + 7 * 8 + -1, 2 * 9 + 7 * 7, -6 + 14 + 15]
    );

    // updateRow() reprograms one wordline's devices.
    rt.update_row(handle, 0, &[1, 1, 1])?;
    let result = rt.exec_mvm(handle, &input)?;
    println!("after updateRow(0, [1,1,1]): {result:?}");

    let stats = rt.stats();
    println!(
        "MVMs: {}, analog+reduce cycles: {}, energy: {}",
        stats.mvm_count, stats.mvm_cycles, stats.mvm_energy
    );
    Ok(())
}
