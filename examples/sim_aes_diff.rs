//! Run one AES-128 block through the functional ISA simulator and check
//! it against the FIPS-197 Appendix B vector — the README's differential
//! quickstart.
//!
//! ```text
//! cargo run --example sim_aes_diff
//! ```

use darth_apps::aes::program::AesExec;
use darth_pum::eval::{Executable, Executor};
use darth_sim::{DiffHarness, SimExecutor};

fn main() -> Result<(), darth_pum::Error> {
    // One block: compile FIPS-197 Appendix B to an encoded ISA stream,
    // execute it, compare against the golden AES implementation.
    let case = AesExec::fips197_appendix_b();
    let job = case.job()?;
    println!(
        "compiled {} to {} instructions ({} bytes)",
        case.exec_name(),
        job.instruction_count(),
        job.program.len()
    );
    let run = SimExecutor::new().execute(&job)?;
    let golden = case.golden()?;
    println!(
        "simulator:  {:02x?}",
        run.outputs[0]
            .cells
            .iter()
            .map(|&c| c as u8)
            .collect::<Vec<_>>()
    );
    println!(
        "FIPS-197:   {:02x?}",
        golden[0].cells.iter().map(|&c| c as u8).collect::<Vec<_>>()
    );
    assert_eq!(run.outputs, golden, "ciphertext mismatch");
    println!(
        "bit-exact ({} instructions executed, {} analog)\n",
        run.instructions, run.analog_instructions
    );

    // The whole standard registry, cell by cell.
    let report = DiffHarness::standard().verify()?;
    print!("{}", report.summary());
    assert!(report.all_exact(), "differential mismatch");
    println!(
        "all {} cells across {} cases match their golden references",
        report.total_cells(),
        report.cases.len()
    );
    Ok(())
}
