//! Driving the chip through the hybrid ISA (§4.4's expert path): assemble
//! a program that allocates a vACore, programs a matrix, and runs a hybrid
//! MVM, then disassemble and execute it.
//!
//! Run with: `cargo run --release --example isa_program`

use darth_isa::asm::{assemble, disassemble_program};
use darth_pum::chip::{DarthPumChip, SideChannel};
use darth_pum::hct::HctConfig;
use darth_pum::params::ChipParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut chip = DarthPumChip::new(ChipParams::default(), HctConfig::small_test())?;
    let mut data = SideChannel::new();
    let matrix_handle = data.stage_matrix(vec![vec![5, 9], vec![8, 7]])?;

    let source = format!(
        "# Figure 9's walkthrough as an ISA program\n\
         valloc ac0 4 4 3 0\n\
         progm ac0 {matrix_handle}\n\
         wimm p0 v0 0 2\n\
         wimm p0 v0 1 7\n\
         mvm ac0 p0 v0 p1 v4 0\n\
         halt\n"
    );
    let program = assemble(&source)?;
    println!("assembled {} instructions:", program.len());
    print!("{}", disassemble_program(&program));

    let stats = chip.execute(&program, &data)?;
    println!(
        "\nexecuted {} instructions ({} analog)",
        stats.instructions, stats.analog_instructions
    );
    let pipe = chip.tile_mut().pipeline_mut(1)?;
    let result = [pipe.read_value(4, 0)?, pipe.read_value(4, 1)?];
    println!("MVM result: {result:?} (Figure 9 expects [66, 67])");
    assert_eq!(result, [66, 67]);
    Ok(())
}
