//! The paper's Figure 9 walkthrough, step by step: a 2x2 matrix [[5,9],[8,7]]
//! times the 3-bit input [2,7], with the per-bit partial products printed as
//! they cross from the ACE to the DCE.
//!
//! Run with: `cargo run --release --example figure9_walkthrough`

use darth_analog::ace::{AceConfig, AnalogComputeElement};
use darth_analog::dac::InputDriver;
use darth_isa::iiu::{InjectionProgram, ReductionRegs};
use darth_pum::hct::{HctConfig, HybridComputeTile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Step 1-2: the ACE alone, to see the raw per-bit partial products.
    let mut ace = AnalogComputeElement::new(AceConfig::ideal(1, 2, 2), 1)?;
    ace.program_matrix(0, &[vec![5, 9], vec![8, 7]])?;
    let driver = InputDriver::new(3, false)?;
    let out = ace.mvm(0, &[2, 7], driver, None)?;
    println!("input [2, 7] bit-sliced LSB-first:");
    for (bit, products) in out.partial_products.iter().enumerate() {
        println!("  bit {bit}: partial products {products:?} (shift by {bit})");
    }

    // --- Step 3-8: the same MVM through a full hybrid compute tile, with
    // the shift units and instruction injection unit doing the reduction.
    let mut tile = HybridComputeTile::new(HctConfig::small_test())?;
    let vacore = tile.alloc_vacore(4, 4, 3, false)?;
    tile.set_matrix(vacore, &[vec![5, 9], vec![8, 7]])?;
    let regs = ReductionRegs::dense(3);
    let program = InjectionProgram::shift_and_add(3, false, 1, 4, &regs, true);
    println!(
        "\nIIU program: {} steps ({} adds, {} shifts — shifts happen in flight)",
        program.len(),
        program.arithmetic_steps(),
        program.shift_steps()
    );
    let report = tile.exec_mvm(vacore, &[2, 7], 0, &regs, None)?;
    println!(
        "result: {:?} (Figure 9 expects [66, 67])",
        &report.result[..2]
    );
    println!(
        "cycles: {} total = {} analog + {} transfer + {} reduce",
        report.cycles, report.analog_cycles, report.transfer_cycles, report.reduce_cycles
    );
    assert_eq!(&report.result[..2], &[66, 67]);
    Ok(())
}
