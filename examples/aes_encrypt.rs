//! AES-128 encryption running bit-exactly on the simulated hybrid compute
//! tile (§5.3's mapping), validated against FIPS-197 and broken down by
//! kernel as in Figure 14.
//!
//! Run with: `cargo run --release --example aes_encrypt`

use darth_apps::aes::golden::Aes;
use darth_apps::aes::mapping::AesDarth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // FIPS-197 Appendix B key and plaintext.
    let key = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    let plaintext = [
        0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07,
        0x34,
    ];

    let mut engine = AesDarth::new_128(&key)?;
    let ciphertext = engine.encrypt_block(&plaintext)?;
    let golden = Aes::new_128(&key).encrypt_block(&plaintext);

    print!("hybrid ciphertext: ");
    for b in ciphertext {
        print!("{b:02x}");
    }
    println!();
    assert_eq!(ciphertext, golden, "hybrid tile must match FIPS-197");
    println!("matches FIPS-197 Appendix B ✓");

    println!("\nper-kernel cycles (Figure 14's categories):");
    let total: u64 = engine.kernel_cycles().values().map(|c| c.get()).sum();
    for (kernel, cycles) in engine.kernel_cycles() {
        println!(
            "  {kernel:<14} {:>8} cycles ({:>5.1}%)",
            cycles.get(),
            100.0 * cycles.get() as f64 / total as f64
        );
    }
    let meter = engine.tile().energy_meter();
    println!("\nanalog-side ADC energy: {}", meter.component("ace.adc"));
    Ok(())
}
