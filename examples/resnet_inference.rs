//! ResNet-20 quantized inference with the §7.5 noise experiment: train the
//! classifier on synthetic data, then compare digital-exact and
//! analog-noisy accuracy.
//!
//! Run with: `cargo run --release --example resnet_inference`

use darth_apps::cnn::data::{evaluate, train_classifier, Dataset};
use darth_apps::cnn::resnet::{AnalogNoise, ResNet};
use darth_apps::cnn::workload::inference_trace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced-size network keeps the example fast; the bench harness
    // runs the full 32x32 configuration.
    let mut net = ResNet::new(16, 8, 3, 10, 42)?;
    let data = Dataset::synthetic(120, 16, 10, 7)?;
    let (train, test) = data.split(0.7);

    let train_acc = train_classifier(&mut net, &train, 40, 11)?;
    let clean = evaluate(&net, &test, &AnalogNoise::none(), 13)?;
    let noisy = evaluate(&net, &test, &AnalogNoise::evaluation(), 13)?;
    println!("train accuracy:              {:.1}%", train_acc * 100.0);
    println!("test accuracy (digital):     {:.1}%", clean * 100.0);
    println!("test accuracy (analog+ADC):  {:.1}%", noisy * 100.0);

    // The Figure 15 workload trace for the full network.
    let full = ResNet::resnet20(1)?;
    let trace = inference_trace(&full)?;
    println!(
        "\nfull ResNet-20 trace: {} layers, {:.1}M MACs, {:.1}% MVM work",
        trace.kernels.len(),
        trace.macs() as f64 / 1e6,
        trace.mvm_fraction() * 100.0
    );
    Ok(())
}
