//! Offline stand-in for serde's derive macros.
//!
//! The DARTH-PUM workspace builds in environments with no access to
//! crates.io, so the real `serde_derive` cannot be fetched. The simulator
//! never serializes anything today — `#[derive(Serialize, Deserialize)]`
//! on config/report structs is forward-looking API surface — so these
//! derives expand to nothing. The matching marker traits in the `serde`
//! stub crate carry blanket impls, which keeps any `T: Serialize` bound
//! satisfiable without generated code.
//!
//! Swap this crate (and `vendor/serde`) for the real ones by editing
//! `[workspace.dependencies]` in the root `Cargo.toml` once the build
//! environment has registry access.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
