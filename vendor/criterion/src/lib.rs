//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The DARTH-PUM workspace builds without registry access, so this crate
//! re-implements the small slice of criterion the `darth_bench` benches
//! use — [`Criterion::bench_function`], [`Bencher::iter`],
//! [`criterion_group!`] (both the positional and the
//! `name/config/targets` forms) and [`criterion_main!`] — on top of
//! `std::time::Instant`.
//!
//! Measurement model: each benchmark runs `sample_size` samples after one
//! warm-up sample; a sample times a batch of iterations sized so one batch
//! takes roughly [`Criterion::target_sample_time`]. The harness reports the
//! median, minimum and maximum per-iteration time. This is deliberately
//! simpler than criterion (no outlier rejection, no regression tracking)
//! but is honest wall-clock data and keeps `cargo bench` functional
//! offline. Swap back to upstream criterion via `[workspace.dependencies]`
//! when the environment allows; the bench sources need no changes.
//!
//! The harness understands the arguments `cargo bench`/`cargo test` pass to
//! `harness = false` targets: `--test` (and `--list`) run each benchmark
//! once without timing, `--bench` is accepted and ignored, and the first
//! free-standing argument filters benchmarks by substring.

use std::time::{Duration, Instant};

/// Benchmark driver: collects samples and prints a summary per benchmark.
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_sample_time: Duration::from_millis(50),
            filter: None,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long one sample batch should roughly take.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.target_sample_time = t;
        self
    }

    /// Target duration of one sample batch.
    pub fn target_sample_time(&self) -> Duration {
        self.target_sample_time
    }

    /// Applies the CLI arguments cargo passes to `harness = false` targets.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" | "--list" => self.test_mode = true,
                "--bench" | "--profile-time" | "--save-baseline" | "--baseline" => {
                    // Flags taking a value we do not use.
                    if arg != "--bench" {
                        let _ = args.next();
                    }
                }
                s if s.starts_with('-') => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Runs (or, under `--test`, smoke-runs) one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                max_iters: Some(1),
                samples: Vec::new(),
            };
            f(&mut b);
            println!("{id}: ok (test mode)");
            return self;
        }

        // Warm-up sample sizes the batch used for the timed samples.
        let mut b = Bencher {
            max_iters: None,
            samples: Vec::new(),
        };
        f(&mut b);
        let warm = b
            .samples
            .last()
            .copied()
            .unwrap_or((1, Duration::from_nanos(1)));
        let per_iter = warm.1.as_secs_f64() / warm.0 as f64;
        let batch = ((self.target_sample_time.as_secs_f64() / per_iter.max(1e-9)) as u64)
            .clamp(1, 1_000_000);

        let mut times: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                max_iters: Some(batch),
                samples: Vec::new(),
            };
            f(&mut b);
            let (iters, elapsed) = b.samples.last().copied().unwrap_or((1, Duration::ZERO));
            times.push(elapsed.as_secs_f64() / iters as f64);
        }
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        let (lo, hi) = (times[0], times[times.len() - 1]);
        println!(
            "{id:<40} median {:>12} / iter   [min {}, max {}]  ({} samples × {batch} iters)",
            fmt_secs(median),
            fmt_secs(lo),
            fmt_secs(hi),
            self.sample_size,
        );
        self
    }

    /// Criterion calls this at the end of `criterion_main!`; a no-op here.
    pub fn final_summary(&self) {}
}

/// Times the routine passed to [`Bencher::iter`].
pub struct Bencher {
    max_iters: Option<u64>,
    samples: Vec<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine`, recording one `(iterations, elapsed)` sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let iters = self.max_iters.unwrap_or(10);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.samples.push((iters, start.elapsed()));
    }
}

/// Re-export so benches may use `criterion::black_box`.
pub use std::hint::black_box;

fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
///
/// Both upstream forms are supported:
///
/// ```ignore
/// criterion_group!(benches, bench_a, bench_b);
/// criterion_group! {
///     name = benches;
///     config = Criterion::default().sample_size(10);
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = "Benchmark group entry point generated by `criterion_group!`."]
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` that runs each group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_filters() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_micros(50));
        let mut runs = 0;
        c.bench_function("touched", |b| {
            b.iter(|| 1 + 1);
            runs += 1;
        });
        assert!(runs >= 3, "warm-up plus two samples");

        c.filter = Some("nomatch".into());
        let mut skipped_runs = 0;
        c.bench_function("other", |b| {
            b.iter(|| ());
            skipped_runs += 1;
        });
        assert_eq!(skipped_runs, 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut iters_seen = 0;
        c.bench_function("smoke", |b| {
            b.iter(|| iters_seen += 1);
        });
        assert_eq!(iters_seen, 1);
    }
}
