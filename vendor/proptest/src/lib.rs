//! Offline stand-in for `proptest`.
//!
//! The workspace builds without registry access, so this crate provides the
//! subset of proptest the DARTH-PUM property tests use:
//!
//! * the [`proptest!`] macro (with the optional
//!   `#![proptest_config(...)]` header) generating one `#[test]` per
//!   property,
//! * integer-range strategies (`0u64..0x10000`-style expressions),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`ProptestConfig::with_cases`].
//!
//! Sampling is a deterministic splitmix64 stream seeded from the property's
//! name, so failures reproduce exactly across runs and machines. There is
//! no shrinking: a failing case reports its case index and sampled-seed so
//! it can be replayed under a debugger. Swap back to upstream proptest via
//! `[workspace.dependencies]` when the environment allows; test sources
//! need no changes.

use std::fmt;
use std::ops::Range;

/// Everything the `proptest!` tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng, TestRunner,
    };
}

/// Runner configuration; only `cases` is meaningful in this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property assertion (carried out of the test body by
/// [`prop_assert!`] and friends).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic splitmix64 generator used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream; equal seeds give equal streams.
    pub fn seed_from(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Samples values for a property argument. Implemented for the integer
/// `Range` types the tests use (`0u64..0x10000`, `0usize..6`, …).
pub trait Strategy {
    /// Sampled value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    // i128 arithmetic covers the full span of every
                    // supported integer type without overflow.
                    let span = (self.end as i128) - (self.start as i128);
                    let offset = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + offset) as $t
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Drives one property: samples `config.cases` cases and panics on the
/// first failure with enough context to replay it.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    /// Builds a runner for the named property.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        TestRunner { config, name }
    }

    /// Runs the property once per case.
    ///
    /// # Panics
    ///
    /// Panics on the first case whose body returns an error, reporting the
    /// property name, case index and case seed.
    pub fn run<F>(&mut self, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        // fnv-1a over the name: deterministic per property, independent of
        // declaration order.
        let mut seed = 0xCBF2_9CE4_8422_2325u64;
        for byte in self.name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        for case in 0..self.config.cases {
            let case_seed = seed.wrapping_add(u64::from(case));
            let mut rng = TestRng::seed_from(case_seed);
            if let Err(e) = body(&mut rng) {
                panic!(
                    "property `{}` failed at case {case}/{} (case seed {case_seed:#x}): {e}",
                    self.name, self.config.cases,
                );
            }
        }
    }
}

/// Property-style assertion; fails the current case instead of panicking
/// directly so the runner can report case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format_args!($($fmt)*),
                file!(),
                line!(),
            )));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right,
        );
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
        );
    }};
}

/// Declares property tests. Mirrors upstream proptest's macro for the
/// `arg in strategy` form, including the optional config header:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     // In a test module, add #[test] above each property.
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the config expression is hoisted
/// to repetition depth zero so it can expand inside each generated test.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut runner = $crate::TestRunner::new(config, stringify!($name));
                runner.run(|rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), rng);)*
                    let _ = &rng;
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds_and_deterministically() {
        let mut a = TestRng::seed_from(7);
        let mut b = TestRng::seed_from(7);
        for _ in 0..1000 {
            let x = Strategy::sample(&(3u8..9), &mut a);
            assert!((3..9).contains(&x));
            assert_eq!(x, Strategy::sample(&(3u8..9), &mut b));
        }
        let mut rng = TestRng::seed_from(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn sampled_args_respect_strategies(x in 0u64..16, y in 0usize..3) {
            prop_assert!(x < 16);
            prop_assert!(y < 3);
            prop_assert_eq!(x + 1, 1 + x);
            prop_assert_ne!(x + 1, x);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed at case 0")]
    fn failures_report_case_context() {
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
