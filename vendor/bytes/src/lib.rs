//! Offline stand-in for the `bytes` crate.
//!
//! Provides exactly the cursor-style [`Buf`] / [`BufMut`] surface the
//! DARTH-PUM ISA codec (`darth_isa::encode`) uses: little-endian integer
//! reads/writes that advance a slice in place. Semantics match the real
//! crate for these methods, including the panic-on-overrun contract, so the
//! codec can move to upstream `bytes` without source changes.

/// Read side of a byte cursor.
///
/// Implemented for `&[u8]`: every read consumes from the front of the
/// slice, shrinking it in place.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out and advances past them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write side of a byte cursor.
///
/// Implemented for `&mut [u8]` (writes consume the slice from the front,
/// panicking on overflow — the fixed-record codec relies on this) and for
/// `Vec<u8>` (writes append).
pub trait BufMut {
    /// Writes all of `src`.
    ///
    /// # Panics
    ///
    /// For `&mut [u8]`, panics if `src` does not fit in the remaining space.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for &mut [u8] {
    fn put_slice(&mut self, src: &[u8]) {
        assert!(src.len() <= self.len(), "write past end of buffer");
        let (head, tail) = std::mem::take(self).split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_slice_cursors() {
        let mut record = [0u8; 16];
        {
            let mut w = &mut record[..];
            w.put_u8(0xAB);
            w.put_u16_le(0x1234);
            w.put_u32_le(0xDEAD_BEEF);
            w.put_u64_le(0x0102_0304_0506_0708);
            assert_eq!(w.len(), 1);
        }
        let mut r = &record[..];
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 1);
        r.advance(1);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn vec_writes_append() {
        let mut v = Vec::new();
        v.put_u16_le(7);
        v.put_u8(9);
        assert_eq!(v, vec![7, 0, 9]);
    }

    #[test]
    #[should_panic(expected = "write past end")]
    fn slice_overflow_panics() {
        let mut buf = [0u8; 1];
        let mut w = &mut buf[..];
        w.put_u16_le(1);
    }
}
