//! Offline stand-in for `serde`.
//!
//! The workspace builds with no registry access, so this crate supplies the
//! two names the DARTH-PUM crates import — [`Serialize`] and
//! [`Deserialize`] — as marker traits with blanket impls, plus the no-op
//! derive macros from `vendor/serde_derive` under the same names (mirroring
//! real serde's `derive` feature). Nothing in the simulator serializes data
//! yet; the derives exist on config and report structs as forward-looking
//! API surface.
//!
//! To upgrade to real serde, point `[workspace.dependencies] serde` in the
//! root `Cargo.toml` back at the registry; no source changes are needed
//! because the import shape (`use serde::{Deserialize, Serialize};`) is
//! identical.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}
