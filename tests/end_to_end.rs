//! Cross-crate integration tests: the full stack from ISA text through the
//! chip, the runtime, and the applications.

use darth_apps::aes::golden::Aes;
use darth_apps::aes::mapping::AesDarth;
use darth_isa::asm::assemble;
use darth_pum::chip::{DarthPumChip, SideChannel};
use darth_pum::hct::HctConfig;
use darth_pum::params::ChipParams;
use darth_pum::runtime::{Runtime, RuntimeConfig};

#[test]
fn isa_program_drives_hybrid_mvm() {
    let mut chip =
        DarthPumChip::new(ChipParams::default(), HctConfig::small_test()).expect("chip builds");
    let mut data = SideChannel::new();
    let handle = data
        .stage_matrix(vec![vec![3, -4], vec![5, 6]])
        .expect("stages");
    let program = assemble(&format!(
        "valloc ac0 4 2 4 1\n\
         progm ac0 {handle}\n\
         wimm p0 v0 0 3\n\
         wimm p0 v0 1 2\n\
         mvm ac0 p0 v0 p1 v2 0\n\
         halt\n"
    ))
    .expect("assembles");
    chip.execute(&program, &data).expect("executes");
    let pipe = chip.tile_mut().pipeline_mut(1).expect("exists");
    assert_eq!(pipe.read_value_signed(2, 0).expect("reads"), 3 * 3 + 2 * 5);
    assert_eq!(pipe.read_value_signed(2, 1).expect("reads"), 3 * -4 + 2 * 6);
}

#[test]
fn runtime_matches_software_mvm_over_many_shapes() {
    let mut rt = Runtime::new(RuntimeConfig::small_test()).expect("runtime builds");
    for (rows, cols, seed) in [(3usize, 5usize, 1u64), (8, 2, 2), (16, 16, 3)] {
        let matrix: Vec<Vec<i64>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| ((r as i64 * 7 + c as i64 * 3 + seed as i64) % 15) - 7)
                    .collect()
            })
            .collect();
        let handle = rt.set_matrix(&matrix, 4, 1).expect("stores");
        let input: Vec<i64> = (0..rows).map(|r| ((r as i64 * 5) % 11) - 5).collect();
        let expected: Vec<i64> = (0..cols)
            .map(|c| (0..rows).map(|r| input[r] * matrix[r][c]).sum())
            .collect();
        assert_eq!(
            rt.exec_mvm(handle, &input).expect("executes"),
            expected,
            "{rows}x{cols} seed {seed}"
        );
    }
}

#[test]
fn hybrid_aes_counter_mode_stream() {
    // Encrypt a short CTR-mode stream on the tile and verify against the
    // golden model — exercises repeated block encryption with state reuse.
    let key = *b"integration-key!";
    let mut engine = AesDarth::new_128(&key).expect("engine builds");
    let golden = Aes::new_128(&key);
    let mut counter = [0u8; 16];
    for i in 0..4u8 {
        counter[15] = i;
        let hybrid = engine.encrypt_block(&counter).expect("encrypts");
        assert_eq!(hybrid, golden.encrypt_block(&counter), "block {i}");
    }
}

#[test]
fn tile_energy_flows_into_chip_meter() {
    let mut chip =
        DarthPumChip::new(ChipParams::default(), HctConfig::small_test()).expect("chip builds");
    let program = assemble(
        "wimm p0 v0 0 3\n\
         wimm p0 v1 0 4\n\
         add p0 v2 v0 v1\n\
         halt\n",
    )
    .expect("assembles");
    chip.execute(&program, &SideChannel::new())
        .expect("executes");
    let meter = chip.energy_meter();
    assert!(meter.component("dce.array").get() > 0.0);
    assert!(meter.component("front_end").get() > 0.0);
}

#[test]
fn aes_survives_device_noise_with_compensation() {
    // §4.3's end-to-end claim: with ±1 remapping, analog non-idealities
    // (programming noise, read noise, IR drop) stay below one ADC LSB and
    // AES remains bit-exact on a *noisy* tile.
    let mut config = AesDarth::default_config();
    config.noisy = true;
    config.seed = 0xC0FFEE;
    let key = *b"noise-proof key!";
    let golden = Aes::new_128(&key);
    let mut engine =
        AesDarth::with_config(Aes::new_128(&key), config).expect("noisy engine builds");
    for i in 0..3u8 {
        let block: [u8; 16] = core::array::from_fn(|j| (j as u8).wrapping_mul(29) ^ i);
        assert_eq!(
            engine.encrypt_block(&block).expect("encrypts"),
            golden.encrypt_block(&block),
            "noisy tile must stay bit-exact (block {i})"
        );
    }
}

#[test]
fn runtime_survives_tiling_boundaries() {
    // exact powers of the array dimension exercise the tiling edge cases
    let mut rt = Runtime::new(RuntimeConfig::small_test()).expect("runtime builds");
    let dim = 64;
    for rows in [dim - 1, dim, dim + 1] {
        let matrix: Vec<Vec<i64>> = (0..rows).map(|r| vec![(r % 7) as i64 - 3]).collect();
        let handle = rt.set_matrix(&matrix, 4, 1).expect("stores");
        let input: Vec<i64> = (0..rows).map(|r| (r % 3) as i64).collect();
        let expected: i64 = (0..rows).map(|r| input[r] * matrix[r][0]).sum();
        assert_eq!(
            rt.exec_mvm(handle, &input).expect("executes"),
            vec![expected],
            "rows = {rows}"
        );
    }
}
