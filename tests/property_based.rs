//! Property-based tests over the core substrates (proptest).

use darth_digital::logic::LogicFamily;
use darth_digital::pipeline::{Pipeline, PipelineConfig};
use darth_digital::BoolOp;
use darth_isa::encode::{decode, encode};
use darth_isa::instruction::{Instruction, IsaBoolOp, PipelineId, Vr};
use proptest::prelude::*;

fn pipeline(family: LogicFamily) -> Pipeline {
    Pipeline::new(PipelineConfig {
        depth: 16,
        elements: 4,
        vr_count: 10,
        scratch_cols: 8,
        family,
    })
    .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pipeline_add_matches_u64(a in 0u64..0x10000, b in 0u64..0x10000) {
        let mut p = pipeline(LogicFamily::Oscar);
        p.write_value(0, 0, a).expect("fits");
        p.write_value(1, 0, b).expect("fits");
        p.add(2, 0, 1).expect("runs");
        prop_assert_eq!(p.read_value(2, 0).expect("reads"), (a + b) & 0xFFFF);
    }

    #[test]
    fn pipeline_sub_matches_wrapping(a in 0u64..0x10000, b in 0u64..0x10000) {
        let mut p = pipeline(LogicFamily::Oscar);
        p.write_value(0, 0, a).expect("fits");
        p.write_value(1, 0, b).expect("fits");
        p.sub(2, 0, 1).expect("runs");
        prop_assert_eq!(p.read_value(2, 0).expect("reads"), a.wrapping_sub(b) & 0xFFFF);
    }

    #[test]
    fn pipeline_bool_ops_match(a in 0u64..0x10000, b in 0u64..0x10000, op_idx in 0usize..6) {
        let op = BoolOp::ALL[op_idx];
        let mut p = pipeline(LogicFamily::Oscar);
        p.write_value(0, 0, a).expect("fits");
        p.write_value(1, 0, b).expect("fits");
        p.bool_op(op, 2, 0, 1).expect("runs");
        let expected = match op {
            BoolOp::Nor => !(a | b),
            BoolOp::Or => a | b,
            BoolOp::And => a & b,
            BoolOp::Nand => !(a & b),
            BoolOp::Xor => a ^ b,
            BoolOp::Xnor => !(a ^ b),
        } & 0xFFFF;
        prop_assert_eq!(p.read_value(2, 0).expect("reads"), expected);
    }

    #[test]
    fn shifts_match_u64(a in 0u64..0x10000, k in 0usize..16) {
        let mut p = pipeline(LogicFamily::Oscar);
        p.write_value(0, 0, a).expect("fits");
        p.shl(1, 0, k).expect("runs");
        p.shr(2, 0, k).expect("runs");
        prop_assert_eq!(p.read_value(1, 0).expect("reads"), (a << k) & 0xFFFF);
        prop_assert_eq!(p.read_value(2, 0).expect("reads"), (a & 0xFFFF) >> k);
    }

    #[test]
    fn ideal_and_oscar_agree(a in 0u64..0x10000, b in 0u64..0x10000) {
        let mut po = pipeline(LogicFamily::Oscar);
        let mut pi = pipeline(LogicFamily::Ideal);
        for p in [&mut po, &mut pi] {
            p.write_value(0, 0, a).expect("fits");
            p.write_value(1, 0, b).expect("fits");
            p.add(2, 0, 1).expect("runs");
            p.bool_op(BoolOp::Xor, 3, 0, 1).expect("runs");
        }
        prop_assert_eq!(po.read_value(2, 0).expect("r"), pi.read_value(2, 0).expect("r"));
        prop_assert_eq!(po.read_value(3, 0).expect("r"), pi.read_value(3, 0).expect("r"));
    }

    #[test]
    fn isa_round_trips(pipe in 0u16..512, dst in 0u8..64, a in 0u8..64, b in 0u8..64, op_idx in 0usize..6) {
        let inst = Instruction::Bool {
            op: IsaBoolOp::ALL[op_idx],
            pipe: PipelineId(pipe),
            dst: Vr(dst),
            a: Vr(a),
            b: Vr(b),
        };
        prop_assert_eq!(decode(&encode(&inst)).expect("decodes"), inst);
        let add = Instruction::Add { pipe: PipelineId(pipe), dst: Vr(dst), a: Vr(a), b: Vr(b) };
        prop_assert_eq!(decode(&encode(&add)).expect("decodes"), add);
    }

    #[test]
    fn crossbar_exact_mvm_is_linear(seed in 0u64..1000) {
        use darth_analog::crossbar::{Crossbar, CrossbarConfig};
        use darth_reram::NoiseRng;
        let mut rng = NoiseRng::seed_from(seed);
        let mut xbar = Crossbar::new(CrossbarConfig::ideal(8, 4)).expect("valid");
        let matrix: Vec<Vec<i64>> = (0..8)
            .map(|_| (0..4).map(|_| (rng.index(15) as i64) - 7).collect())
            .collect();
        xbar.program(&matrix, &mut rng).expect("programs");
        let x: Vec<bool> = (0..8).map(|_| rng.chance(0.5)).collect();
        let y: Vec<bool> = (0..8).map(|_| rng.chance(0.5)).collect();
        // superposition: M(x or y) + M(x and y) == M(x) + M(y)
        let or_vec: Vec<bool> = x.iter().zip(&y).map(|(&p, &q)| p | q).collect();
        let and_vec: Vec<bool> = x.iter().zip(&y).map(|(&p, &q)| p & q).collect();
        let mx = xbar.mvm_exact(&x).expect("runs");
        let my = xbar.mvm_exact(&y).expect("runs");
        let mor = xbar.mvm_exact(&or_vec).expect("runs");
        let mand = xbar.mvm_exact(&and_vec).expect("runs");
        for c in 0..4 {
            prop_assert_eq!(mor[c] + mand[c], mx[c] + my[c]);
        }
    }
}
