//! Property-based tests over the core substrates (proptest): cell-level
//! pipeline semantics, the full-opcode-space ISA round trip, streaming
//! run-length pricing equivalence, and design-space config invariants.

use darth_analog::adc::AdcKind;
use darth_digital::logic::LogicFamily;
use darth_digital::pipeline::{Pipeline, PipelineConfig};
use darth_digital::BoolOp;
use darth_isa::encode::{decode, encode};
use darth_isa::instruction::{Instruction, IsaBoolOp, PipelineId, Vr};
use proptest::prelude::*;

/// Samples one instruction from the *full* opcode space: `sel` picks the
/// variant, the remaining words fill every operand field at full width
/// (the fixed-width encoding stores operands verbatim, so round-tripping
/// must hold for arbitrary field values, not just in-range ones).
fn sample_instruction(sel: u64, a: u64, b: u64, c: u64, d: u64) -> Instruction {
    use darth_isa::instruction::VaCoreId;
    let pipe = PipelineId(a as u16);
    let pipe2 = PipelineId((a >> 16) as u16);
    let (va, vb, vc, vd) = (
        Vr(b as u8),
        Vr((b >> 8) as u8),
        Vr((b >> 16) as u8),
        Vr((b >> 24) as u8),
    );
    let vacore = VaCoreId(c as u8);
    match sel % 28 {
        0 => Instruction::Nop,
        1 => Instruction::Bool {
            op: IsaBoolOp::ALL[(c % 6) as usize],
            pipe,
            dst: va,
            a: vb,
            b: vc,
        },
        2 => Instruction::Not {
            pipe,
            dst: va,
            a: vb,
        },
        3 => Instruction::Add {
            pipe,
            dst: va,
            a: vb,
            b: vc,
        },
        4 => Instruction::Sub {
            pipe,
            dst: va,
            a: vb,
            b: vc,
        },
        5 => Instruction::Mul {
            pipe,
            dst: va,
            a: vb,
            b: vc,
            width: c as u8,
        },
        6 => Instruction::CmpLt {
            pipe,
            dst: va,
            a: vb,
            b: vc,
        },
        7 => Instruction::Select {
            pipe,
            dst: va,
            cond: vd,
            a: vb,
            b: vc,
        },
        8 => Instruction::Relu {
            pipe,
            dst: va,
            a: vb,
        },
        9 => Instruction::ShiftLeft {
            pipe,
            dst: va,
            src: vb,
            amount: c as u8,
        },
        10 => Instruction::ShiftRight {
            pipe,
            dst: va,
            src: vb,
            amount: c as u8,
        },
        11 => Instruction::RotateLeft {
            pipe,
            dst: va,
            src: vb,
            tmp: vc,
            amount: c as u8,
            width: (c >> 8) as u8,
        },
        12 => Instruction::CopyVr {
            pipe,
            dst: va,
            src: vb,
        },
        13 => Instruction::CopyAcross {
            src_pipe: pipe,
            src: va,
            dst_pipe: pipe2,
            dst: vb,
        },
        14 => Instruction::ElementLoad {
            pipe,
            addr: va,
            table_pipe: pipe2,
            dst: vb,
        },
        15 => Instruction::PipeReverse { pipe },
        16 => Instruction::WriteImm {
            pipe,
            vr: va,
            element: c as u8,
            value: d,
        },
        17 => Instruction::Mvm {
            vacore,
            input_pipe: pipe,
            input_vr: va,
            dst_pipe: pipe2,
            dst_vr: vb,
            early_levels: d as u16,
        },
        18 => Instruction::ProgMatrix {
            vacore,
            matrix_handle: d as u16,
        },
        19 => Instruction::UpdateRow {
            vacore,
            row: (c >> 8) as u8,
            data_handle: d as u16,
        },
        20 => Instruction::UpdateCol {
            vacore,
            col: (c >> 8) as u8,
            data_handle: d as u16,
        },
        21 => Instruction::PipeReserve { pipe },
        22 => Instruction::AllocVaCore {
            vacore,
            element_bits: (c >> 8) as u8,
            bits_per_cell: (c >> 16) as u8,
            input_bits: (c >> 24) as u8,
            input_signed: d & 1 == 1,
        },
        23 => Instruction::FreeVaCore { vacore },
        24 => Instruction::FenceAd,
        25 => Instruction::SetAnalogMode {
            enabled: d & 1 == 1,
        },
        26 => Instruction::SetDigitalMode {
            enabled: d & 1 == 1,
        },
        _ => Instruction::Halt,
    }
}

/// Samples one kernel op across every [`darth_pum::trace::KernelOp`]
/// variant, with shapes spanning the realistic evaluation range.
fn sample_kernel_op(sel: u64, a: u64, b: u64) -> darth_pum::trace::KernelOp {
    use darth_pum::trace::{KernelOp, VectorKind};
    const KINDS: [VectorKind; 6] = [
        VectorKind::Bool,
        VectorKind::Add,
        VectorKind::Mul,
        VectorKind::Shift,
        VectorKind::Compare,
        VectorKind::Copy,
    ];
    match sel % 6 {
        0 => KernelOp::Mvm {
            rows: 1 + a % 512,
            cols: 1 + b % 512,
            input_bits: 1 + (a >> 32) as u8 % 16,
            weight_bits: 1 + (b >> 32) as u8 % 16,
            batch: 1 + (a >> 48) % 64,
        },
        1 => KernelOp::Vector {
            kind: KINDS[(a >> 8) as usize % 6],
            elements: 1 + a % 4096,
            bits: 1 + (b >> 16) as u8 % 64,
            count: 1 + b % 64,
        },
        2 => KernelOp::TableLookup {
            elements: 1 + a % 1024,
            table_size: 1 + b % 65536,
            bits: 1 + (a >> 32) as u8 % 32,
        },
        3 => KernelOp::HostMove {
            bytes: a % (1 << 30),
        },
        4 => KernelOp::OnChipMove {
            bytes: b % (1 << 30),
        },
        _ => KernelOp::WeightUpdate {
            rows: 1 + a % 512,
            cols: 1 + b % 512,
            weight_bits: 1 + (a >> 32) as u8 % 16,
        },
    }
}

/// Prices `op_run(op, n)` through a fresh accumulator of `model`.
fn price_run(
    model: &dyn darth_pum::eval::ArchModel,
    op: &darth_pum::trace::KernelOp,
    n: u64,
    batched: bool,
) -> darth_pum::trace::CostReport {
    use darth_pum::trace::TraceMeta;
    let mut acc = model.accumulator();
    acc.begin_trace(&TraceMeta::new("run-length"));
    acc.begin_kernel("k");
    if batched {
        acc.op_run(op, n);
    } else {
        for _ in 0..n {
            acc.op(op);
        }
    }
    acc.finish()
}

fn pipeline(family: LogicFamily) -> Pipeline {
    Pipeline::new(PipelineConfig {
        depth: 16,
        elements: 4,
        vr_count: 10,
        scratch_cols: 8,
        family,
    })
    .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pipeline_add_matches_u64(a in 0u64..0x10000, b in 0u64..0x10000) {
        let mut p = pipeline(LogicFamily::Oscar);
        p.write_value(0, 0, a).expect("fits");
        p.write_value(1, 0, b).expect("fits");
        p.add(2, 0, 1).expect("runs");
        prop_assert_eq!(p.read_value(2, 0).expect("reads"), (a + b) & 0xFFFF);
    }

    #[test]
    fn pipeline_sub_matches_wrapping(a in 0u64..0x10000, b in 0u64..0x10000) {
        let mut p = pipeline(LogicFamily::Oscar);
        p.write_value(0, 0, a).expect("fits");
        p.write_value(1, 0, b).expect("fits");
        p.sub(2, 0, 1).expect("runs");
        prop_assert_eq!(p.read_value(2, 0).expect("reads"), a.wrapping_sub(b) & 0xFFFF);
    }

    #[test]
    fn pipeline_bool_ops_match(a in 0u64..0x10000, b in 0u64..0x10000, op_idx in 0usize..6) {
        let op = BoolOp::ALL[op_idx];
        let mut p = pipeline(LogicFamily::Oscar);
        p.write_value(0, 0, a).expect("fits");
        p.write_value(1, 0, b).expect("fits");
        p.bool_op(op, 2, 0, 1).expect("runs");
        let expected = match op {
            BoolOp::Nor => !(a | b),
            BoolOp::Or => a | b,
            BoolOp::And => a & b,
            BoolOp::Nand => !(a & b),
            BoolOp::Xor => a ^ b,
            BoolOp::Xnor => !(a ^ b),
        } & 0xFFFF;
        prop_assert_eq!(p.read_value(2, 0).expect("reads"), expected);
    }

    #[test]
    fn shifts_match_u64(a in 0u64..0x10000, k in 0usize..16) {
        let mut p = pipeline(LogicFamily::Oscar);
        p.write_value(0, 0, a).expect("fits");
        p.shl(1, 0, k).expect("runs");
        p.shr(2, 0, k).expect("runs");
        prop_assert_eq!(p.read_value(1, 0).expect("reads"), (a << k) & 0xFFFF);
        prop_assert_eq!(p.read_value(2, 0).expect("reads"), (a & 0xFFFF) >> k);
    }

    #[test]
    fn ideal_and_oscar_agree(a in 0u64..0x10000, b in 0u64..0x10000) {
        let mut po = pipeline(LogicFamily::Oscar);
        let mut pi = pipeline(LogicFamily::Ideal);
        for p in [&mut po, &mut pi] {
            p.write_value(0, 0, a).expect("fits");
            p.write_value(1, 0, b).expect("fits");
            p.add(2, 0, 1).expect("runs");
            p.bool_op(BoolOp::Xor, 3, 0, 1).expect("runs");
        }
        prop_assert_eq!(po.read_value(2, 0).expect("r"), pi.read_value(2, 0).expect("r"));
        prop_assert_eq!(po.read_value(3, 0).expect("r"), pi.read_value(3, 0).expect("r"));
    }

    #[test]
    fn isa_round_trips(pipe in 0u16..512, dst in 0u8..64, a in 0u8..64, b in 0u8..64, op_idx in 0usize..6) {
        let inst = Instruction::Bool {
            op: IsaBoolOp::ALL[op_idx],
            pipe: PipelineId(pipe),
            dst: Vr(dst),
            a: Vr(a),
            b: Vr(b),
        };
        prop_assert_eq!(decode(&encode(&inst)).expect("decodes"), inst);
        let add = Instruction::Add { pipe: PipelineId(pipe), dst: Vr(dst), a: Vr(a), b: Vr(b) };
        prop_assert_eq!(decode(&encode(&add)).expect("decodes"), add);
    }

    #[test]
    fn every_instruction_encodes_decodes_reencodes_identically(
        sel in 0u64..28,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        c in 0u64..u64::MAX,
        d in 0u64..u64::MAX,
    ) {
        let inst = sample_instruction(sel, a, b, c, d);
        let bytes = encode(&inst);
        let back = decode(&bytes).expect("valid encodings decode");
        prop_assert_eq!(back, inst);
        // Re-encoding the decoded instruction is byte-identical: the
        // encoding has one canonical form per instruction.
        prop_assert_eq!(encode(&back), bytes);
    }

    #[test]
    fn every_instruction_survives_the_assembler(
        sel in 0u64..28,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        c in 0u64..u64::MAX,
        d in 0u64..u64::MAX,
    ) {
        use darth_isa::asm::{assemble, disassemble};
        let inst = sample_instruction(sel, a, b, c, d);
        let text = disassemble(&inst);
        let program = assemble(&text).expect("disassembly reassembles");
        prop_assert_eq!(program.instructions.len(), 1);
        prop_assert_eq!(program.instructions[0], inst);
    }

    #[test]
    fn unknown_opcodes_and_payload_junk_are_rejected(
        opcode in 0x1Cu64..0x100,
        fill in 0u64..u64::MAX,
    ) {
        use darth_isa::encode::RECORD_SIZE;
        let mut record = [0u8; RECORD_SIZE];
        record[0] = opcode as u8;
        for (i, byte) in record.iter_mut().enumerate().skip(1) {
            *byte = (fill >> (8 * ((i - 1) % 8))) as u8;
        }
        prop_assert!(matches!(
            decode(&record),
            Err(darth_isa::Error::UnknownOpcode(op)) if op == opcode as u8
        ));
    }

    #[test]
    fn invalid_bool_operator_codes_are_rejected(code in 6u64..0x100, fill in 0u64..u64::MAX) {
        let mut record = encode(&Instruction::Bool {
            op: IsaBoolOp::Nor,
            pipe: PipelineId(fill as u16),
            dst: Vr((fill >> 16) as u8),
            a: Vr((fill >> 24) as u8),
            b: Vr((fill >> 32) as u8),
        });
        record[1] = code as u8;
        prop_assert!(matches!(
            decode(&record),
            Err(darth_isa::Error::InvalidField { .. })
        ));
    }

    #[test]
    fn op_run_prices_identically_to_repeated_single_ops(
        sel in 0u64..6,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        n in 0u64..50,
    ) {
        use darth_pum::model::DarthModel;
        let op = sample_kernel_op(sel, a, b);
        for kind in [AdcKind::Sar, AdcKind::Ramp] {
            let model = DarthModel::paper(kind);
            let batched = price_run(&model, &op, n, true);
            let unrolled = price_run(&model, &op, n, false);
            // Bit-level equality: folding a run must reproduce the exact
            // f64 accumulation of op-by-op streaming.
            prop_assert_eq!(batched.latency_s.to_bits(), unrolled.latency_s.to_bits());
            prop_assert_eq!(
                batched.energy_per_item_j.to_bits(),
                unrolled.energy_per_item_j.to_bits()
            );
            prop_assert_eq!(
                batched.throughput_items_per_s.to_bits(),
                unrolled.throughput_items_per_s.to_bits()
            );
            prop_assert_eq!(batched.kernel_latency_s.len(), unrolled.kernel_latency_s.len());
            for (x, y) in batched.kernel_latency_s.iter().zip(&unrolled.kernel_latency_s) {
                prop_assert_eq!(&x.0, &y.0);
                prop_assert_eq!(x.1.to_bits(), y.1.to_bits());
            }
        }
    }

    #[test]
    fn darth_config_validate_and_build_agree(
        adc_sel in 0u64..2,
        adc_bits in 0u64..24,
        rows in 0usize..300,
        cols in 0usize..300,
        bits_per_cell in 0u64..12,
        arrays in 0usize..200,
        clock_tenths in 0u64..80,
    ) {
        use darth_pum::config::DarthConfig;
        let kind = if adc_sel == 0 { AdcKind::Sar } else { AdcKind::Ramp };
        let config = DarthConfig::paper(kind)
            .with_adc_bits(adc_bits as u8)
            .with_crossbar(rows, cols)
            .with_bits_per_cell(bits_per_cell as u8)
            .with_ace_arrays(arrays)
            .with_clock_ghz(clock_tenths as f64 / 10.0);
        // `build` succeeds exactly when `validate` accepts the point —
        // no config can construct a model its validator rejects.
        let validated = config.validate();
        let built = config.build();
        prop_assert_eq!(validated.is_ok(), built.is_ok());
        if let Ok(model) = built {
            // A valid point prices real work to positive, finite costs.
            let trace = darth_apps::gemm::GemmWorkload::square(32).trace();
            let report = darth_pum::eval::ArchModel::price(&model, &trace);
            prop_assert!(report.latency_s.is_finite() && report.latency_s > 0.0);
            prop_assert!(
                report.energy_per_item_j.is_finite() && report.energy_per_item_j > 0.0
            );
            // And the point reports every swept axis in its params.
            let params = config.params();
            for key in ["adc_bits", "bits_per_cell", "clock_ghz"] {
                prop_assert!(params.iter().any(|(k, _)| k == key), "missing {}", key);
            }
        }
    }

    #[test]
    fn crossbar_exact_mvm_is_linear(seed in 0u64..1000) {
        use darth_analog::crossbar::{Crossbar, CrossbarConfig};
        use darth_reram::NoiseRng;
        let mut rng = NoiseRng::seed_from(seed);
        let mut xbar = Crossbar::new(CrossbarConfig::ideal(8, 4)).expect("valid");
        let matrix: Vec<Vec<i64>> = (0..8)
            .map(|_| (0..4).map(|_| (rng.index(15) as i64) - 7).collect())
            .collect();
        xbar.program(&matrix, &mut rng).expect("programs");
        let x: Vec<bool> = (0..8).map(|_| rng.chance(0.5)).collect();
        let y: Vec<bool> = (0..8).map(|_| rng.chance(0.5)).collect();
        // superposition: M(x or y) + M(x and y) == M(x) + M(y)
        let or_vec: Vec<bool> = x.iter().zip(&y).map(|(&p, &q)| p | q).collect();
        let and_vec: Vec<bool> = x.iter().zip(&y).map(|(&p, &q)| p & q).collect();
        let mx = xbar.mvm_exact(&x).expect("runs");
        let my = xbar.mvm_exact(&y).expect("runs");
        let mor = xbar.mvm_exact(&or_vec).expect("runs");
        let mand = xbar.mvm_exact(&and_vec).expect("runs");
        for c in 0..4 {
            prop_assert_eq!(mor[c] + mand[c], mx[c] + my[c]);
        }
    }
}
