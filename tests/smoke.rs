//! Workspace-wiring smoke test.
//!
//! Exercises every member crate *through the umbrella re-exports*
//! (`darth_pum_repro::{reram, digital, analog, isa, pum, apps,
//! baselines}`), so a manifest regression that drops a crate from the
//! workspace — or a re-export that silently disappears from `src/lib.rs` —
//! fails tier-1 loudly with the crate's name in the failing test.

use darth_pum_repro::{analog, apps, baselines, digital, isa, pum, reram, sim};

#[test]
fn reram_substrate_is_reachable() {
    let mut rng = reram::NoiseRng::seed_from(1);
    let mut array = reram::ReramArray::new(8, 8, reram::DeviceParams::slc()).expect("array builds");
    array.program_level(0, 0, 1, &mut rng).expect("programs");
    assert!(array.cell(0, 0).expect("in bounds").as_bool());
}

#[test]
fn digital_pipeline_is_reachable() {
    let mut pipe = digital::Pipeline::new(digital::PipelineConfig {
        depth: 8,
        family: digital::LogicFamily::Oscar,
        ..digital::PipelineConfig::default()
    })
    .expect("pipeline builds");
    pipe.write_value(0, 0, 25).expect("fits");
    pipe.write_value(1, 0, 17).expect("fits");
    pipe.add(2, 0, 1).expect("runs");
    assert_eq!(pipe.read_value(2, 0).expect("reads"), 42);
}

#[test]
fn analog_crossbar_is_reachable() {
    use analog::crossbar::{Crossbar, CrossbarConfig};
    let mut rng = reram::NoiseRng::seed_from(7);
    let mut xbar = Crossbar::new(CrossbarConfig::ideal(2, 2)).expect("crossbar builds");
    xbar.program(&[vec![2, 3], vec![-1, 0]], &mut rng)
        .expect("programs");
    assert_eq!(xbar.mvm_exact(&[true, true]).expect("runs"), vec![1, 3]);
}

#[test]
fn isa_codec_is_reachable() {
    let inst = isa::Instruction::Add {
        pipe: isa::PipelineId(3),
        dst: isa::Vr(2),
        a: isa::Vr(0),
        b: isa::Vr(1),
    };
    let bytes = isa::encode::encode(&inst);
    assert_eq!(isa::encode::decode(&bytes).expect("decodes"), inst);
}

#[test]
fn pum_runtime_is_reachable() {
    let mut rt = pum::runtime::Runtime::new(pum::runtime::RuntimeConfig::small_test())
        .expect("runtime builds");
    let handle = rt
        .set_matrix(&[vec![2, -1], vec![3, 4]], 4, 1)
        .expect("stores");
    let result = rt.exec_mvm(handle, &[1, 2]).expect("runs");
    assert_eq!(result, vec![2 + 3 * 2, -1 + 4 * 2]);
}

#[test]
fn apps_workloads_are_reachable() {
    let key = [0u8; 16];
    let block = *b"smoke-test-block";
    let golden = apps::aes::golden::Aes::new_128(&key).encrypt_block(&block);
    let mut hybrid = apps::aes::mapping::AesDarth::new_128(&key).expect("tile builds");
    assert_eq!(hybrid.encrypt_block(&block).expect("encrypts"), golden);
}

#[test]
fn functional_simulator_is_reachable() {
    use pum::eval::{Executable, Executor};
    let case = apps::gemm::GemmExec::standard();
    let run = sim::SimExecutor::new()
        .execute(&case.job().expect("compiles"))
        .expect("executes");
    assert_eq!(run.outputs, case.golden().expect("golden"));
}

#[test]
fn baseline_models_are_reachable() {
    let trace = apps::aes::workload::block_trace(apps::aes::workload::AesVariant::Aes128);
    let report = baselines::BaselineModel::paper(analog::AdcKind::Sar).price(&trace);
    assert!(report.latency_s > 0.0);
    assert!(report.energy_per_item_j > 0.0);
}
