//! Instruction and operand definitions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A digital pipeline within a hybrid compute tile (0..64 per HCT; the
/// field is wide enough for chip-global pipeline naming too).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PipelineId(pub u16);

/// A vector register within a pipeline.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Vr(pub u8);

/// A virtual analog core (§4.2): a firmware-tracked group of analog arrays
/// presenting one wide-operand matrix unit.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VaCoreId(pub u8);

impl fmt::Display for PipelineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for Vr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VaCoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ac{}", self.0)
    }
}

/// Boolean operators at the ISA level (mapped to the logic family's
/// primitives by the back end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IsaBoolOp {
    /// `!(a | b)`.
    Nor,
    /// `a | b`.
    Or,
    /// `a & b`.
    And,
    /// `!(a & b)`.
    Nand,
    /// `a ^ b`.
    Xor,
    /// `!(a ^ b)`.
    Xnor,
}

impl IsaBoolOp {
    /// All operators, in encoding order.
    pub const ALL: [IsaBoolOp; 6] = [
        IsaBoolOp::Nor,
        IsaBoolOp::Or,
        IsaBoolOp::And,
        IsaBoolOp::Nand,
        IsaBoolOp::Xor,
        IsaBoolOp::Xnor,
    ];

    /// Encoding index.
    pub fn code(self) -> u8 {
        match self {
            IsaBoolOp::Nor => 0,
            IsaBoolOp::Or => 1,
            IsaBoolOp::And => 2,
            IsaBoolOp::Nand => 3,
            IsaBoolOp::Xor => 4,
            IsaBoolOp::Xnor => 5,
        }
    }

    /// Decodes an encoding index.
    pub fn from_code(code: u8) -> Option<Self> {
        IsaBoolOp::ALL.get(code as usize).copied()
    }

    /// Mnemonic suffix.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IsaBoolOp::Nor => "nor",
            IsaBoolOp::Or => "or",
            IsaBoolOp::And => "and",
            IsaBoolOp::Nand => "nand",
            IsaBoolOp::Xor => "xor",
            IsaBoolOp::Xnor => "xnor",
        }
    }
}

/// One DARTH-PUM instruction.
///
/// The set divides into digital compute, analog/hybrid compute, and
/// coordination, mirroring §4.2. Bulk data (matrices for `ProgMatrix`,
/// immediate vectors) travels through a runtime side channel — matrices are
/// far too large for instruction operands — referenced by handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Instruction {
    /// No operation.
    Nop,
    /// Element-wise Boolean operation.
    Bool {
        /// Operator.
        op: IsaBoolOp,
        /// Target pipeline.
        pipe: PipelineId,
        /// Destination register.
        dst: Vr,
        /// First operand.
        a: Vr,
        /// Second operand.
        b: Vr,
    },
    /// Element-wise NOT.
    Not {
        /// Target pipeline.
        pipe: PipelineId,
        /// Destination register.
        dst: Vr,
        /// Operand.
        a: Vr,
    },
    /// Vector addition.
    Add {
        /// Target pipeline.
        pipe: PipelineId,
        /// Destination register.
        dst: Vr,
        /// First operand.
        a: Vr,
        /// Second operand.
        b: Vr,
    },
    /// Vector subtraction.
    Sub {
        /// Target pipeline.
        pipe: PipelineId,
        /// Destination register.
        dst: Vr,
        /// Minuend.
        a: Vr,
        /// Subtrahend.
        b: Vr,
    },
    /// Vector multiplication over `width`-bit operands.
    Mul {
        /// Target pipeline.
        pipe: PipelineId,
        /// Destination register.
        dst: Vr,
        /// First operand.
        a: Vr,
        /// Second operand.
        b: Vr,
        /// Operand width in bits.
        width: u8,
    },
    /// Unsigned less-than producing a 0/all-ones mask.
    CmpLt {
        /// Target pipeline.
        pipe: PipelineId,
        /// Destination register.
        dst: Vr,
        /// Left operand.
        a: Vr,
        /// Right operand.
        b: Vr,
    },
    /// Masked select `dst = cond ? a : b`.
    Select {
        /// Target pipeline.
        pipe: PipelineId,
        /// Destination register.
        dst: Vr,
        /// Mask register.
        cond: Vr,
        /// Taken when mask bits are 1.
        a: Vr,
        /// Taken when mask bits are 0.
        b: Vr,
    },
    /// Rectified linear unit.
    Relu {
        /// Target pipeline.
        pipe: PipelineId,
        /// Destination register.
        dst: Vr,
        /// Operand.
        a: Vr,
    },
    /// Constant left shift.
    ShiftLeft {
        /// Target pipeline.
        pipe: PipelineId,
        /// Destination register.
        dst: Vr,
        /// Source register.
        src: Vr,
        /// Shift amount in bits.
        amount: u8,
    },
    /// Constant logical right shift.
    ShiftRight {
        /// Target pipeline.
        pipe: PipelineId,
        /// Destination register.
        dst: Vr,
        /// Source register.
        src: Vr,
        /// Shift amount in bits.
        amount: u8,
    },
    /// Left rotation within the low `width` bits (ShiftRows building
    /// block).
    RotateLeft {
        /// Target pipeline.
        pipe: PipelineId,
        /// Destination register.
        dst: Vr,
        /// Source register.
        src: Vr,
        /// Scratch register.
        tmp: Vr,
        /// Rotation amount in bits.
        amount: u8,
        /// Rotation width in bits.
        width: u8,
    },
    /// Register copy within a pipeline.
    CopyVr {
        /// Target pipeline.
        pipe: PipelineId,
        /// Destination register.
        dst: Vr,
        /// Source register.
        src: Vr,
    },
    /// Vector copy between pipelines of the same tile.
    CopyAcross {
        /// Source pipeline.
        src_pipe: PipelineId,
        /// Source register.
        src: Vr,
        /// Destination pipeline.
        dst_pipe: PipelineId,
        /// Destination register.
        dst: Vr,
    },
    /// Element-wise indexed load from an adjacent pipeline (§4.2).
    ElementLoad {
        /// Pipeline holding the addresses (and receiving the data).
        pipe: PipelineId,
        /// Address register.
        addr: Vr,
        /// Pipeline holding the table (same tile).
        table_pipe: PipelineId,
        /// Destination register.
        dst: Vr,
    },
    /// Pipeline reversal (drains, then flips bit order).
    PipeReverse {
        /// Target pipeline.
        pipe: PipelineId,
    },
    /// Writes an immediate into one element of a register.
    WriteImm {
        /// Target pipeline.
        pipe: PipelineId,
        /// Destination register.
        vr: Vr,
        /// Element index.
        element: u8,
        /// The value (must fit the pipeline depth).
        value: u64,
    },
    /// Analog MVM through a vACore: input vector read from
    /// `input_pipe.input_vr`, reduced result written to `dst_pipe.dst_vr`.
    Mvm {
        /// The virtual analog core holding the matrix.
        vacore: VaCoreId,
        /// Pipeline holding the input vector.
        input_pipe: PipelineId,
        /// Input register.
        input_vr: Vr,
        /// Pipeline receiving the reduced output.
        dst_pipe: PipelineId,
        /// Output register.
        dst_vr: Vr,
        /// Ramp-ADC early-termination level count (0 = full sweep).
        early_levels: u16,
    },
    /// Programs a matrix (by side-channel handle) into a vACore.
    ProgMatrix {
        /// Target vACore.
        vacore: VaCoreId,
        /// Runtime handle of the matrix data.
        matrix_handle: u16,
    },
    /// Reprograms one matrix row from a side-channel handle.
    UpdateRow {
        /// Target vACore.
        vacore: VaCoreId,
        /// Row index.
        row: u8,
        /// Runtime handle of the row data.
        data_handle: u16,
    },
    /// Reprograms one matrix column from a side-channel handle.
    UpdateCol {
        /// Target vACore.
        vacore: VaCoreId,
        /// Column index.
        col: u8,
        /// Runtime handle of the column data.
        data_handle: u16,
    },
    /// Reserves a pipeline for MVM partial products, marking its contents
    /// dead (§4.2's corruption-avoidance mechanism).
    PipeReserve {
        /// The pipeline to reserve.
        pipe: PipelineId,
    },
    /// Allocates a vACore spanning `arrays` analog arrays with the given
    /// element width and device precision, and installs its shift-and-add
    /// program into the instruction injection unit.
    AllocVaCore {
        /// New vACore id.
        vacore: VaCoreId,
        /// Matrix element width in bits.
        element_bits: u8,
        /// Device bits per cell.
        bits_per_cell: u8,
        /// Input width in bits.
        input_bits: u8,
        /// Whether inputs are two's complement.
        input_signed: bool,
    },
    /// Frees a vACore.
    FreeVaCore {
        /// The vACore to free.
        vacore: VaCoreId,
    },
    /// Orders all younger instructions after all older analog/digital
    /// operations on this tile (the arbiter's serialization point).
    FenceAd,
    /// Enables or disables the tile's analog compute element
    /// (`disableAnalogMode` copies matrices to digital arrays first at the
    /// runtime level).
    SetAnalogMode {
        /// Whether the ACE is active.
        enabled: bool,
    },
    /// Enables or disables DCE post-processing.
    SetDigitalMode {
        /// Whether the DCE is active.
        enabled: bool,
    },
    /// Terminates the program.
    Halt,
}

impl Instruction {
    /// The instruction's mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::Nop => "nop",
            Instruction::Bool { op, .. } => op.mnemonic(),
            Instruction::Not { .. } => "not",
            Instruction::Add { .. } => "add",
            Instruction::Sub { .. } => "sub",
            Instruction::Mul { .. } => "mul",
            Instruction::CmpLt { .. } => "cmplt",
            Instruction::Select { .. } => "select",
            Instruction::Relu { .. } => "relu",
            Instruction::ShiftLeft { .. } => "shl",
            Instruction::ShiftRight { .. } => "shr",
            Instruction::RotateLeft { .. } => "rotl",
            Instruction::CopyVr { .. } => "copy",
            Instruction::CopyAcross { .. } => "copyx",
            Instruction::ElementLoad { .. } => "eload",
            Instruction::PipeReverse { .. } => "prev",
            Instruction::WriteImm { .. } => "wimm",
            Instruction::Mvm { .. } => "mvm",
            Instruction::ProgMatrix { .. } => "progm",
            Instruction::UpdateRow { .. } => "updrow",
            Instruction::UpdateCol { .. } => "updcol",
            Instruction::PipeReserve { .. } => "presv",
            Instruction::AllocVaCore { .. } => "valloc",
            Instruction::FreeVaCore { .. } => "vfree",
            Instruction::FenceAd => "fence",
            Instruction::SetAnalogMode { .. } => "amode",
            Instruction::SetDigitalMode { .. } => "dmode",
            Instruction::Halt => "halt",
        }
    }

    /// Whether this instruction touches the analog domain (and therefore
    /// passes through the A/D arbiter).
    pub fn is_analog(&self) -> bool {
        matches!(
            self,
            Instruction::Mvm { .. }
                | Instruction::ProgMatrix { .. }
                | Instruction::UpdateRow { .. }
                | Instruction::UpdateCol { .. }
        )
    }

    /// Whether this is a coordination (non-compute) instruction.
    pub fn is_coordination(&self) -> bool {
        matches!(
            self,
            Instruction::Nop
                | Instruction::PipeReserve { .. }
                | Instruction::AllocVaCore { .. }
                | Instruction::FreeVaCore { .. }
                | Instruction::FenceAd
                | Instruction::SetAnalogMode { .. }
                | Instruction::SetDigitalMode { .. }
                | Instruction::Halt
        )
    }
}

/// A sequence of instructions.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    /// The instructions in program order.
    pub instructions: Vec<Instruction>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Appends an instruction.
    pub fn push(&mut self, inst: Instruction) -> &mut Self {
        self.instructions.push(inst);
        self
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Iterates the instructions in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Whether the program contains no `halt` — the invariant for
    /// split-program setup and per-request input sections, which must
    /// fall through into the section concatenated after them.
    pub fn is_halt_free(&self) -> bool {
        !self
            .instructions
            .iter()
            .any(|i| matches!(i, Instruction::Halt))
    }

    /// Whether the program's final instruction is `halt` — the
    /// invariant for split-program bodies (and monolithic jobs).
    pub fn ends_with_halt(&self) -> bool {
        matches!(self.instructions.last(), Some(Instruction::Halt))
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        Program {
            instructions: iter.into_iter().collect(),
        }
    }
}

impl Extend<Instruction> for Program {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.instructions.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_op_codes_round_trip() {
        for op in IsaBoolOp::ALL {
            assert_eq!(IsaBoolOp::from_code(op.code()), Some(op));
        }
        assert_eq!(IsaBoolOp::from_code(6), None);
    }

    #[test]
    fn analog_classification() {
        assert!(Instruction::Mvm {
            vacore: VaCoreId(0),
            input_pipe: PipelineId(0),
            input_vr: Vr(0),
            dst_pipe: PipelineId(1),
            dst_vr: Vr(0),
            early_levels: 0,
        }
        .is_analog());
        assert!(!Instruction::Add {
            pipe: PipelineId(0),
            dst: Vr(0),
            a: Vr(1),
            b: Vr(2),
        }
        .is_analog());
    }

    #[test]
    fn coordination_classification() {
        assert!(Instruction::FenceAd.is_coordination());
        assert!(Instruction::Halt.is_coordination());
        assert!(!Instruction::Not {
            pipe: PipelineId(0),
            dst: Vr(0),
            a: Vr(1),
        }
        .is_coordination());
    }

    #[test]
    fn program_collects() {
        let p: Program = [Instruction::Nop, Instruction::Halt].into_iter().collect();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        let mnems: Vec<&str> = p.iter().map(|i| i.mnemonic()).collect();
        assert_eq!(mnems, vec!["nop", "halt"]);
    }

    #[test]
    fn display_newtypes() {
        assert_eq!(format!("{}", PipelineId(3)), "p3");
        assert_eq!(format!("{}", Vr(7)), "v7");
        assert_eq!(format!("{}", VaCoreId(1)), "ac1");
    }
}
