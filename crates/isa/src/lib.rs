//! The DARTH-PUM hybrid instruction set.
//!
//! Section 4.2/4.4 of the paper: DARTH-PUM exposes a full ISA so that entire
//! applications — not just MVM calls — deploy onto the chip. Digital
//! instructions touch only digital arrays; analog instructions coordinate
//! both domains (an MVM produces partial products that the digital side
//! reduces); coordination instructions (pipeline reserve, fences, vACore
//! management) keep the two domains from interfering.
//!
//! This crate is self-contained (no dependency on the simulators) and
//! provides:
//!
//! * [`instruction`] — the [`Instruction`] enum with its operand newtypes.
//! * [`encode`] — a fixed 16-byte binary encoding with encode/decode.
//! * [`asm`] — a line-oriented assembler and disassembler.
//! * [`iiu`] — [`iiu::InjectionProgram`]: the shift-and-add reduction
//!   sequences (Figure 9c) that the hardware instruction injection unit
//!   replays without front-end involvement.
//!
//! # Example
//!
//! ```
//! use darth_isa::instruction::{Instruction, PipelineId, Vr};
//! use darth_isa::encode;
//!
//! # fn main() -> Result<(), darth_isa::Error> {
//! let inst = Instruction::Add {
//!     pipe: PipelineId(3),
//!     dst: Vr(2),
//!     a: Vr(0),
//!     b: Vr(1),
//! };
//! let bytes = encode::encode(&inst);
//! assert_eq!(encode::decode(&bytes)?, inst);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod encode;
pub mod iiu;
pub mod instruction;

pub use instruction::{Instruction, PipelineId, VaCoreId, Vr};

use std::fmt;

/// Errors produced by the ISA layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The byte stream is shorter than one instruction record.
    Truncated {
        /// Bytes available.
        got: usize,
    },
    /// An unknown opcode byte.
    UnknownOpcode(u8),
    /// A field held an invalid value for its instruction.
    InvalidField {
        /// The instruction mnemonic being decoded.
        mnemonic: &'static str,
        /// Description of the problem.
        reason: &'static str,
    },
    /// Assembly text could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated { got } => {
                write!(f, "instruction record truncated ({got} bytes)")
            }
            Error::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            Error::InvalidField { mnemonic, reason } => {
                write!(f, "invalid field in {mnemonic}: {reason}")
            }
            Error::Parse { line, reason } => write!(f, "parse error on line {line}: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, Error>;
