//! Instruction injection unit programs.
//!
//! Section 4.2: recombining a bit-sliced MVM's partial products consumes
//! hundreds of µops — the same `Shift`/`Add` pair repeated with rotating
//! register arguments (Figure 9c). Relying on the front end to issue them
//! would stall it on every MVM, so DARTH-PUM's per-HCT *instruction
//! injection unit* (IIU) holds a small table-plus-counter program and feeds
//! the digital pipelines directly.
//!
//! [`InjectionProgram::shift_and_add`] compiles the reduction for a given
//! input/weight slicing; the HCT model replays it after each MVM, and the
//! front-end model uses [`InjectionProgram::len`] to quantify the issue
//! bandwidth saved (the IIU-ablation bench).

use crate::instruction::Vr;
use serde::{Deserialize, Serialize};

/// One entry of the IIU table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InjectionStep {
    /// `dst := src << amount` (the in-flight variant is performed by the
    /// shift units during transfer; the IIU emits it only in unoptimized
    /// mode).
    Shift {
        /// Destination register.
        dst: Vr,
        /// Source register.
        src: Vr,
        /// Shift amount in bits.
        amount: u8,
    },
    /// `dst := a + b`.
    Add {
        /// Destination register.
        dst: Vr,
        /// First operand.
        a: Vr,
        /// Second operand.
        b: Vr,
    },
    /// `dst := a - b` (used for the negative-weight top bit of signed
    /// inputs).
    Sub {
        /// Destination register.
        dst: Vr,
        /// Minuend.
        a: Vr,
        /// Subtrahend.
        b: Vr,
    },
    /// `dst := src`.
    Copy {
        /// Destination register.
        dst: Vr,
        /// Source register.
        src: Vr,
    },
    /// `dst := -src` (two's complement negation).
    Neg {
        /// Destination register.
        dst: Vr,
        /// Source register.
        src: Vr,
    },
}

/// Register assignment for a reduction: where partial products land and
/// which registers serve as accumulator and shift temporary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionRegs {
    /// One landing register per partial-product term, in arrival order
    /// (weight slice outer, input bit inner).
    pub parts: Vec<Vr>,
    /// Scratch register for shifted terms.
    pub tmp: Vr,
    /// Accumulator and final result register.
    pub acc: Vr,
}

impl ReductionRegs {
    /// A dense default assignment: parts in `v0..v(terms-1)`, `tmp` and
    /// `acc` directly above.
    pub fn dense(terms: usize) -> Self {
        ReductionRegs {
            parts: (0..terms).map(|i| Vr(i as u8)).collect(),
            tmp: Vr(terms as u8),
            acc: Vr(terms as u8 + 1),
        }
    }
}

/// A compiled IIU program.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InjectionProgram {
    steps: Vec<InjectionStep>,
}

impl InjectionProgram {
    /// Compiles the Figure 9c shift-and-add reduction.
    ///
    /// Partial products arrive in `regs.parts` ordered weight-slice-major
    /// (slice `s`, then input bit `b`); term `(s, b)` carries bit shift
    /// `s·bits_per_cell + b`, and — for two's-complement inputs — the top
    /// input bit is subtracted rather than added.
    ///
    /// With `shifts_in_flight` (DARTH-PUM's shift units, §4.1) the shift
    /// steps are omitted: data already lands pre-shifted, and only the adds
    /// remain, which is exactly the Figure 10(b) optimization.
    ///
    /// # Panics
    ///
    /// Panics if `regs.parts` does not provide one register per term.
    pub fn shift_and_add(
        input_bits: u8,
        input_signed: bool,
        weight_slices: u8,
        bits_per_cell: u8,
        regs: &ReductionRegs,
        shifts_in_flight: bool,
    ) -> Self {
        let terms = usize::from(input_bits) * usize::from(weight_slices);
        assert_eq!(
            regs.parts.len(),
            terms,
            "need one landing register per partial-product term"
        );
        let mut steps = Vec::new();
        let mut first = true;
        for s in 0..weight_slices {
            for b in 0..input_bits {
                let idx = usize::from(s) * usize::from(input_bits) + usize::from(b);
                let part = regs.parts[idx];
                let shift = s * bits_per_cell + b;
                let negative = input_signed && b == input_bits - 1;
                // Place the (shifted) term in `tmp` (or straight into acc
                // for the first positive term).
                let shifted_src = if shifts_in_flight || shift == 0 {
                    part
                } else {
                    steps.push(InjectionStep::Shift {
                        dst: regs.tmp,
                        src: part,
                        amount: shift,
                    });
                    regs.tmp
                };
                if first {
                    if negative {
                        steps.push(InjectionStep::Neg {
                            dst: regs.acc,
                            src: shifted_src,
                        });
                    } else if shifted_src != regs.acc {
                        steps.push(InjectionStep::Copy {
                            dst: regs.acc,
                            src: shifted_src,
                        });
                    }
                    first = false;
                } else if negative {
                    steps.push(InjectionStep::Sub {
                        dst: regs.acc,
                        a: regs.acc,
                        b: shifted_src,
                    });
                } else {
                    steps.push(InjectionStep::Add {
                        dst: regs.acc,
                        a: regs.acc,
                        b: shifted_src,
                    });
                }
            }
        }
        InjectionProgram { steps }
    }

    /// The program's steps in execution order.
    pub fn steps(&self) -> &[InjectionStep] {
        &self.steps
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of arithmetic (add/sub/neg) steps — the work that remains
    /// even with in-flight shifting.
    pub fn arithmetic_steps(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    InjectionStep::Add { .. }
                        | InjectionStep::Sub { .. }
                        | InjectionStep::Neg { .. }
                )
            })
            .count()
    }

    /// Number of shift steps (zero when shifts happen in flight).
    pub fn shift_steps(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, InjectionStep::Shift { .. }))
            .count()
    }
}

/// Software oracle: applies the reduction to exact per-term partial
/// products (`parts[term][col]`), returning the recombined vector. Used to
/// verify both the program generator and the hardware model that replays
/// it.
pub fn evaluate_reduction(
    program: &InjectionProgram,
    regs: &ReductionRegs,
    parts: &[Vec<i64>],
    shifts_in_flight: bool,
    plan_shifts: &[u8],
) -> Vec<i64> {
    let cols = parts.first().map_or(0, Vec::len);
    let mut file: std::collections::HashMap<Vr, Vec<i64>> = std::collections::HashMap::new();
    for (i, part) in parts.iter().enumerate() {
        let mut v = part.clone();
        if shifts_in_flight {
            for x in &mut v {
                *x <<= plan_shifts[i];
            }
        }
        file.insert(regs.parts[i], v);
    }
    let zero = vec![0i64; cols];
    for step in program.steps() {
        match *step {
            InjectionStep::Shift { dst, src, amount } => {
                let v: Vec<i64> = file
                    .get(&src)
                    .unwrap_or(&zero)
                    .iter()
                    .map(|&x| x << amount)
                    .collect();
                file.insert(dst, v);
            }
            InjectionStep::Add { dst, a, b } => {
                let va = file.get(&a).unwrap_or(&zero).clone();
                let vb = file.get(&b).unwrap_or(&zero);
                file.insert(dst, va.iter().zip(vb).map(|(x, y)| x + y).collect());
            }
            InjectionStep::Sub { dst, a, b } => {
                let va = file.get(&a).unwrap_or(&zero).clone();
                let vb = file.get(&b).unwrap_or(&zero);
                file.insert(dst, va.iter().zip(vb).map(|(x, y)| x - y).collect());
            }
            InjectionStep::Copy { dst, src } => {
                let v = file.get(&src).unwrap_or(&zero).clone();
                file.insert(dst, v);
            }
            InjectionStep::Neg { dst, src } => {
                let v: Vec<i64> = file
                    .get(&src)
                    .unwrap_or(&zero)
                    .iter()
                    .map(|&x| -x)
                    .collect();
                file.insert(dst, v);
            }
        }
    }
    file.get(&regs.acc).cloned().unwrap_or(zero)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact partial products for input bits against a weight-slice
    /// matrix: `parts[(s,b)][col] = Σ_r input_bit_b[r] · slice_s[r][col]`.
    fn make_parts(
        input: &[i64],
        input_bits: u8,
        matrix: &[Vec<i64>],
        weight_slices: u8,
        bits_per_cell: u8,
    ) -> Vec<Vec<i64>> {
        let cols = matrix[0].len();
        let mut parts = Vec::new();
        for s in 0..weight_slices {
            for b in 0..input_bits {
                let mut v = vec![0i64; cols];
                for (r, &x) in input.iter().enumerate() {
                    let xb = (x as u64 >> b) & 1;
                    if xb == 1 {
                        for c in 0..cols {
                            let w = matrix[r][c];
                            let mag = (w.abs() >> (s * bits_per_cell)) & ((1 << bits_per_cell) - 1);
                            v[c] += if w < 0 { -mag } else { mag };
                        }
                    }
                }
                parts.push(v);
            }
        }
        parts
    }

    fn plan_shifts(input_bits: u8, weight_slices: u8, bits_per_cell: u8) -> Vec<u8> {
        let mut shifts = Vec::new();
        for s in 0..weight_slices {
            for b in 0..input_bits {
                shifts.push(s * bits_per_cell + b);
            }
        }
        shifts
    }

    #[test]
    fn figure9_three_bit_input_single_slice() {
        // Figure 9: 3-bit inputs, 4-bit matrix in one slice, reduction is
        // Shift R3<-R1,1; Add R5<-R0,R3; Shift R4<-R2,2; Add R6<-R5,R4.
        let regs = ReductionRegs::dense(3);
        let prog = InjectionProgram::shift_and_add(3, false, 1, 4, &regs, false);
        assert_eq!(prog.shift_steps(), 2); // bits 1 and 2
        assert_eq!(prog.arithmetic_steps(), 2); // two adds

        // the paper's example: matrix [[5,9],[8,7]], input [2,7]
        let matrix = vec![vec![5, 9], vec![8, 7]];
        let input = vec![2, 7];
        let parts = make_parts(&input, 3, &matrix, 1, 4);
        let result = evaluate_reduction(&prog, &regs, &parts, false, &plan_shifts(3, 1, 4));
        assert_eq!(result, vec![2 * 5 + 7 * 8, 2 * 9 + 7 * 7]); // [66, 67]
    }

    #[test]
    fn in_flight_shifting_removes_shift_steps() {
        let regs = ReductionRegs::dense(8);
        let unopt = InjectionProgram::shift_and_add(8, false, 1, 4, &regs, false);
        let opt = InjectionProgram::shift_and_add(8, false, 1, 4, &regs, true);
        assert_eq!(unopt.shift_steps(), 7);
        assert_eq!(opt.shift_steps(), 0);
        assert_eq!(unopt.arithmetic_steps(), opt.arithmetic_steps());
        assert!(opt.len() < unopt.len());
    }

    #[test]
    fn both_modes_compute_the_same_result() {
        let matrix = vec![vec![3, -5, 7], vec![-2, 4, -6], vec![1, 1, 1]];
        let input = vec![5, 3, 6];
        let shifts = plan_shifts(3, 2, 2);
        for in_flight in [false, true] {
            let regs = ReductionRegs::dense(6);
            let prog = InjectionProgram::shift_and_add(3, false, 2, 2, &regs, in_flight);
            let parts = make_parts(&input, 3, &matrix, 2, 2);
            let result = evaluate_reduction(&prog, &regs, &parts, in_flight, &shifts);
            let expected: Vec<i64> = (0..3)
                .map(|c| (0..3).map(|r| input[r] * matrix[r][c]).sum())
                .collect();
            assert_eq!(result, expected, "in_flight={in_flight}");
        }
    }

    #[test]
    fn signed_inputs_subtract_the_top_bit() {
        // 4-bit two's complement inputs, 1 slice of 3-bit weights
        let matrix = vec![vec![2], vec![5]];
        let shifts = plan_shifts(4, 1, 3);
        for input in [vec![-8i64, 7], vec![-1, -1], vec![3, -4]] {
            let regs = ReductionRegs::dense(4);
            let prog = InjectionProgram::shift_and_add(4, true, 1, 3, &regs, true);
            // compute parts on the two's-complement bit pattern
            let unsigned: Vec<i64> = input.iter().map(|&x| x & 0xF).collect();
            let parts = make_parts(&unsigned, 4, &matrix, 1, 3);
            let result = evaluate_reduction(&prog, &regs, &parts, true, &shifts);
            let expected: i64 = input.iter().zip(&matrix).map(|(&x, row)| x * row[0]).sum();
            assert_eq!(result, vec![expected], "input {input:?}");
        }
    }

    #[test]
    fn single_term_program_is_a_copy() {
        let regs = ReductionRegs::dense(1);
        let prog = InjectionProgram::shift_and_add(1, false, 1, 1, &regs, true);
        assert_eq!(prog.len(), 1);
        assert!(matches!(prog.steps()[0], InjectionStep::Copy { .. }));
    }

    #[test]
    fn program_length_matches_figure9c_budget() {
        // §4.2: an 8-bit MVM with 2 weight slices = 16 terms; unoptimized
        // reduction is ~one shift + one add per term.
        let regs = ReductionRegs::dense(16);
        let prog = InjectionProgram::shift_and_add(8, false, 2, 4, &regs, false);
        assert_eq!(prog.arithmetic_steps(), 15);
        // every term shifts except (slice 0, bit 0); slice 1 bit 0 shifts by 4
        assert_eq!(prog.shift_steps(), 15);
    }
}
