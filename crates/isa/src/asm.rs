//! A line-oriented assembler and disassembler.
//!
//! One instruction per line, positional operands, `#` comments:
//!
//! ```text
//! # reduce two partial products
//! shl   p0 v3 v1 1
//! add   p0 v5 v0 v3
//! mvm   ac0 p1 v2 p3 v4 4
//! halt
//! ```
//!
//! Pipelines are written `pN`, vector registers `vN`, vACores `acN`;
//! numeric operands are plain decimal (or `0x…` hex for immediates).

use crate::instruction::{Instruction, IsaBoolOp, PipelineId, Program, VaCoreId, Vr};
use crate::{Error, Result};
use std::fmt::Write as _;

/// Formats one instruction in assembly syntax.
pub fn disassemble(inst: &Instruction) -> String {
    let mut s = String::new();
    let m = inst.mnemonic();
    match *inst {
        Instruction::Nop | Instruction::FenceAd | Instruction::Halt => s.push_str(m),
        Instruction::Bool {
            pipe, dst, a, b, ..
        }
        | Instruction::Add { pipe, dst, a, b }
        | Instruction::Sub { pipe, dst, a, b }
        | Instruction::CmpLt { pipe, dst, a, b } => {
            let _ = write!(s, "{m} {pipe} {dst} {a} {b}");
        }
        Instruction::Not { pipe, dst, a } | Instruction::Relu { pipe, dst, a } => {
            let _ = write!(s, "{m} {pipe} {dst} {a}");
        }
        Instruction::Mul {
            pipe,
            dst,
            a,
            b,
            width,
        } => {
            let _ = write!(s, "{m} {pipe} {dst} {a} {b} {width}");
        }
        Instruction::Select {
            pipe,
            dst,
            cond,
            a,
            b,
        } => {
            let _ = write!(s, "{m} {pipe} {dst} {cond} {a} {b}");
        }
        Instruction::ShiftLeft {
            pipe,
            dst,
            src,
            amount,
        }
        | Instruction::ShiftRight {
            pipe,
            dst,
            src,
            amount,
        } => {
            let _ = write!(s, "{m} {pipe} {dst} {src} {amount}");
        }
        Instruction::RotateLeft {
            pipe,
            dst,
            src,
            tmp,
            amount,
            width,
        } => {
            let _ = write!(s, "{m} {pipe} {dst} {src} {tmp} {amount} {width}");
        }
        Instruction::CopyVr { pipe, dst, src } => {
            let _ = write!(s, "{m} {pipe} {dst} {src}");
        }
        Instruction::CopyAcross {
            src_pipe,
            src,
            dst_pipe,
            dst,
        } => {
            let _ = write!(s, "{m} {src_pipe} {src} {dst_pipe} {dst}");
        }
        Instruction::ElementLoad {
            pipe,
            addr,
            table_pipe,
            dst,
        } => {
            let _ = write!(s, "{m} {pipe} {addr} {table_pipe} {dst}");
        }
        Instruction::PipeReverse { pipe } | Instruction::PipeReserve { pipe } => {
            let _ = write!(s, "{m} {pipe}");
        }
        Instruction::WriteImm {
            pipe,
            vr,
            element,
            value,
        } => {
            let _ = write!(s, "{m} {pipe} {vr} {element} {value:#x}");
        }
        Instruction::Mvm {
            vacore,
            input_pipe,
            input_vr,
            dst_pipe,
            dst_vr,
            early_levels,
        } => {
            let _ = write!(
                s,
                "{m} {vacore} {input_pipe} {input_vr} {dst_pipe} {dst_vr} {early_levels}"
            );
        }
        Instruction::ProgMatrix {
            vacore,
            matrix_handle,
        } => {
            let _ = write!(s, "{m} {vacore} {matrix_handle}");
        }
        Instruction::UpdateRow {
            vacore,
            row,
            data_handle,
        } => {
            let _ = write!(s, "{m} {vacore} {row} {data_handle}");
        }
        Instruction::UpdateCol {
            vacore,
            col,
            data_handle,
        } => {
            let _ = write!(s, "{m} {vacore} {col} {data_handle}");
        }
        Instruction::AllocVaCore {
            vacore,
            element_bits,
            bits_per_cell,
            input_bits,
            input_signed,
        } => {
            let _ = write!(
                s,
                "{m} {vacore} {element_bits} {bits_per_cell} {input_bits} {}",
                u8::from(input_signed)
            );
        }
        Instruction::FreeVaCore { vacore } => {
            let _ = write!(s, "{m} {vacore}");
        }
        Instruction::SetAnalogMode { enabled } | Instruction::SetDigitalMode { enabled } => {
            let _ = write!(s, "{m} {}", u8::from(enabled));
        }
    }
    s
}

/// Formats a whole program, one instruction per line.
pub fn disassemble_program(program: &Program) -> String {
    let mut out = String::new();
    for inst in program.iter() {
        out.push_str(&disassemble(inst));
        out.push('\n');
    }
    out
}

struct Cursor<'a> {
    tokens: std::str::SplitWhitespace<'a>,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn token(&mut self, what: &str) -> Result<&'a str> {
        self.tokens.next().ok_or_else(|| Error::Parse {
            line: self.line,
            reason: format!("missing {what} operand"),
        })
    }

    fn prefixed(&mut self, prefix: &str, what: &str) -> Result<u64> {
        let tok = self.token(what)?;
        let digits = tok.strip_prefix(prefix).ok_or_else(|| Error::Parse {
            line: self.line,
            reason: format!("expected {what} like `{prefix}0`, found `{tok}`"),
        })?;
        digits.parse().map_err(|_| Error::Parse {
            line: self.line,
            reason: format!("invalid {what} `{tok}`"),
        })
    }

    fn pipe(&mut self) -> Result<PipelineId> {
        Ok(PipelineId(self.prefixed("p", "pipeline")? as u16))
    }

    fn vr(&mut self) -> Result<Vr> {
        Ok(Vr(self.prefixed("v", "register")? as u8))
    }

    fn vacore(&mut self) -> Result<VaCoreId> {
        Ok(VaCoreId(self.prefixed("ac", "vACore")? as u8))
    }

    fn number(&mut self, what: &str) -> Result<u64> {
        let tok = self.token(what)?;
        let parsed = if let Some(hex) = tok.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            tok.parse()
        };
        parsed.map_err(|_| Error::Parse {
            line: self.line,
            reason: format!("invalid {what} `{tok}`"),
        })
    }

    fn finish(mut self, mnemonic: &str) -> Result<()> {
        if let Some(extra) = self.tokens.next() {
            return Err(Error::Parse {
                line: self.line,
                reason: format!("unexpected operand `{extra}` after {mnemonic}"),
            });
        }
        Ok(())
    }
}

/// Parses one line of assembly (comments and blank lines return `None`).
///
/// # Errors
///
/// Returns [`Error::Parse`] with the given line number on malformed input.
pub fn parse_line(text: &str, line: usize) -> Result<Option<Instruction>> {
    let text = text.split('#').next().unwrap_or("").trim();
    if text.is_empty() {
        return Ok(None);
    }
    let mut cur = Cursor {
        tokens: text.split_whitespace(),
        line,
    };
    let mnemonic = cur.token("mnemonic")?;
    let bool_op = IsaBoolOp::ALL
        .iter()
        .find(|op| op.mnemonic() == mnemonic)
        .copied();
    let inst = if let Some(op) = bool_op {
        Instruction::Bool {
            op,
            pipe: cur.pipe()?,
            dst: cur.vr()?,
            a: cur.vr()?,
            b: cur.vr()?,
        }
    } else {
        match mnemonic {
            "nop" => Instruction::Nop,
            "fence" => Instruction::FenceAd,
            "halt" => Instruction::Halt,
            "not" => Instruction::Not {
                pipe: cur.pipe()?,
                dst: cur.vr()?,
                a: cur.vr()?,
            },
            "add" => Instruction::Add {
                pipe: cur.pipe()?,
                dst: cur.vr()?,
                a: cur.vr()?,
                b: cur.vr()?,
            },
            "sub" => Instruction::Sub {
                pipe: cur.pipe()?,
                dst: cur.vr()?,
                a: cur.vr()?,
                b: cur.vr()?,
            },
            "mul" => Instruction::Mul {
                pipe: cur.pipe()?,
                dst: cur.vr()?,
                a: cur.vr()?,
                b: cur.vr()?,
                width: cur.number("width")? as u8,
            },
            "cmplt" => Instruction::CmpLt {
                pipe: cur.pipe()?,
                dst: cur.vr()?,
                a: cur.vr()?,
                b: cur.vr()?,
            },
            "select" => Instruction::Select {
                pipe: cur.pipe()?,
                dst: cur.vr()?,
                cond: cur.vr()?,
                a: cur.vr()?,
                b: cur.vr()?,
            },
            "relu" => Instruction::Relu {
                pipe: cur.pipe()?,
                dst: cur.vr()?,
                a: cur.vr()?,
            },
            "shl" => Instruction::ShiftLeft {
                pipe: cur.pipe()?,
                dst: cur.vr()?,
                src: cur.vr()?,
                amount: cur.number("amount")? as u8,
            },
            "shr" => Instruction::ShiftRight {
                pipe: cur.pipe()?,
                dst: cur.vr()?,
                src: cur.vr()?,
                amount: cur.number("amount")? as u8,
            },
            "rotl" => Instruction::RotateLeft {
                pipe: cur.pipe()?,
                dst: cur.vr()?,
                src: cur.vr()?,
                tmp: cur.vr()?,
                amount: cur.number("amount")? as u8,
                width: cur.number("width")? as u8,
            },
            "copy" => Instruction::CopyVr {
                pipe: cur.pipe()?,
                dst: cur.vr()?,
                src: cur.vr()?,
            },
            "copyx" => Instruction::CopyAcross {
                src_pipe: cur.pipe()?,
                src: cur.vr()?,
                dst_pipe: cur.pipe()?,
                dst: cur.vr()?,
            },
            "eload" => Instruction::ElementLoad {
                pipe: cur.pipe()?,
                addr: cur.vr()?,
                table_pipe: cur.pipe()?,
                dst: cur.vr()?,
            },
            "prev" => Instruction::PipeReverse { pipe: cur.pipe()? },
            "presv" => Instruction::PipeReserve { pipe: cur.pipe()? },
            "wimm" => Instruction::WriteImm {
                pipe: cur.pipe()?,
                vr: cur.vr()?,
                element: cur.number("element")? as u8,
                value: cur.number("value")?,
            },
            "mvm" => Instruction::Mvm {
                vacore: cur.vacore()?,
                input_pipe: cur.pipe()?,
                input_vr: cur.vr()?,
                dst_pipe: cur.pipe()?,
                dst_vr: cur.vr()?,
                early_levels: cur.number("early_levels")? as u16,
            },
            "progm" => Instruction::ProgMatrix {
                vacore: cur.vacore()?,
                matrix_handle: cur.number("matrix handle")? as u16,
            },
            "updrow" => Instruction::UpdateRow {
                vacore: cur.vacore()?,
                row: cur.number("row")? as u8,
                data_handle: cur.number("data handle")? as u16,
            },
            "updcol" => Instruction::UpdateCol {
                vacore: cur.vacore()?,
                col: cur.number("col")? as u8,
                data_handle: cur.number("data handle")? as u16,
            },
            "valloc" => Instruction::AllocVaCore {
                vacore: cur.vacore()?,
                element_bits: cur.number("element bits")? as u8,
                bits_per_cell: cur.number("bits per cell")? as u8,
                input_bits: cur.number("input bits")? as u8,
                input_signed: cur.number("signed flag")? != 0,
            },
            "vfree" => Instruction::FreeVaCore {
                vacore: cur.vacore()?,
            },
            "amode" => Instruction::SetAnalogMode {
                enabled: cur.number("enabled flag")? != 0,
            },
            "dmode" => Instruction::SetDigitalMode {
                enabled: cur.number("enabled flag")? != 0,
            },
            other => {
                return Err(Error::Parse {
                    line,
                    reason: format!("unknown mnemonic `{other}`"),
                })
            }
        }
    };
    cur.finish(mnemonic)?;
    Ok(Some(inst))
}

/// Assembles a multi-line program.
///
/// # Errors
///
/// Returns the first [`Error::Parse`] encountered.
pub fn assemble(source: &str) -> Result<Program> {
    let mut program = Program::new();
    for (i, line) in source.lines().enumerate() {
        if let Some(inst) = parse_line(line, i + 1)? {
            program.push(inst);
        }
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_basic_program() {
        let src = "\
            # compute a xor, then halt\n\
            xor p0 v2 v0 v1\n\
            \n\
            add p0 v3 v2 v2   # doubled\n\
            halt\n";
        let program = assemble(src).expect("parses");
        assert_eq!(program.len(), 3);
        assert_eq!(program.instructions[2], Instruction::Halt);
    }

    #[test]
    fn disassemble_then_reassemble_round_trips() {
        let src = "\
            nor p1 v1 v2 v3\n\
            not p1 v4 v1\n\
            mul p2 v0 v1 v2 8\n\
            select p0 v4 v3 v1 v2\n\
            rotl p0 v1 v2 v9 8 32\n\
            copyx p3 v1 p4 v2\n\
            eload p0 v1 p63 v2\n\
            wimm p0 v1 42 0xdeadbeef\n\
            mvm ac0 p1 v2 p3 v4 4\n\
            valloc ac2 8 2 8 1\n\
            fence\n\
            amode 0\n\
            halt\n";
        let program = assemble(src).expect("parses");
        let text = disassemble_program(&program);
        let again = assemble(&text).expect("reparses");
        assert_eq!(program, again);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = assemble("nop\nbogus p0\n").unwrap_err();
        match err {
            Error::Parse { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("bogus"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_operand_is_reported() {
        let err = assemble("add p0 v1 v2").unwrap_err();
        assert!(matches!(err, Error::Parse { line: 1, .. }));
    }

    #[test]
    fn extra_operand_is_reported() {
        let err = assemble("halt v1").unwrap_err();
        assert!(matches!(err, Error::Parse { line: 1, .. }));
    }

    #[test]
    fn wrong_prefix_is_reported() {
        let err = assemble("add v0 v1 v2 v3").unwrap_err();
        match err {
            Error::Parse { reason, .. } => assert!(reason.contains("pipeline")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn hex_and_decimal_immediates() {
        let p1 = assemble("wimm p0 v0 0 255").expect("parses");
        let p2 = assemble("wimm p0 v0 0 0xff").expect("parses");
        assert_eq!(p1, p2);
    }
}
