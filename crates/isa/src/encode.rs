//! Fixed-width binary encoding.
//!
//! Every instruction occupies one 16-byte record: an opcode byte followed
//! by little-endian operand fields at fixed offsets. Fixed-width records
//! keep the front end's fetch/decode trivially pipelined (one record per
//! cycle) and make program sizes predictable.

use crate::instruction::{Instruction, IsaBoolOp, PipelineId, Program, VaCoreId, Vr};
use crate::{Error, Result};
use bytes::{Buf, BufMut};

/// Size of one encoded instruction record.
pub const RECORD_SIZE: usize = 16;

mod opcode {
    pub const NOP: u8 = 0x00;
    pub const BOOL: u8 = 0x01;
    pub const NOT: u8 = 0x02;
    pub const ADD: u8 = 0x03;
    pub const SUB: u8 = 0x04;
    pub const MUL: u8 = 0x05;
    pub const CMPLT: u8 = 0x06;
    pub const SELECT: u8 = 0x07;
    pub const RELU: u8 = 0x08;
    pub const SHL: u8 = 0x09;
    pub const SHR: u8 = 0x0A;
    pub const ROTL: u8 = 0x0B;
    pub const COPY: u8 = 0x0C;
    pub const COPYX: u8 = 0x0D;
    pub const ELOAD: u8 = 0x0E;
    pub const PREV: u8 = 0x0F;
    pub const WIMM: u8 = 0x10;
    pub const MVM: u8 = 0x11;
    pub const PROGM: u8 = 0x12;
    pub const UPDROW: u8 = 0x13;
    pub const UPDCOL: u8 = 0x14;
    pub const PRESV: u8 = 0x15;
    pub const VALLOC: u8 = 0x16;
    pub const VFREE: u8 = 0x17;
    pub const FENCE: u8 = 0x18;
    pub const AMODE: u8 = 0x19;
    pub const DMODE: u8 = 0x1A;
    pub const HALT: u8 = 0x1B;
}

/// Whether `op` is an assigned opcode byte. Decoding a record whose
/// first byte fails this check returns [`Error::UnknownOpcode`]; fuzzers
/// and the property suite use it to partition the byte space.
pub fn is_valid_opcode(op: u8) -> bool {
    op <= opcode::HALT
}

/// Encodes one instruction into a 16-byte record.
pub fn encode(inst: &Instruction) -> [u8; RECORD_SIZE] {
    let mut record = [0u8; RECORD_SIZE];
    {
        let mut buf = &mut record[..];
        match *inst {
            Instruction::Nop => buf.put_u8(opcode::NOP),
            Instruction::Bool {
                op,
                pipe,
                dst,
                a,
                b,
            } => {
                buf.put_u8(opcode::BOOL);
                buf.put_u8(op.code());
                buf.put_u16_le(pipe.0);
                buf.put_u8(dst.0);
                buf.put_u8(a.0);
                buf.put_u8(b.0);
            }
            Instruction::Not { pipe, dst, a } => {
                buf.put_u8(opcode::NOT);
                buf.put_u8(0);
                buf.put_u16_le(pipe.0);
                buf.put_u8(dst.0);
                buf.put_u8(a.0);
            }
            Instruction::Add { pipe, dst, a, b } => {
                buf.put_u8(opcode::ADD);
                buf.put_u8(0);
                buf.put_u16_le(pipe.0);
                buf.put_u8(dst.0);
                buf.put_u8(a.0);
                buf.put_u8(b.0);
            }
            Instruction::Sub { pipe, dst, a, b } => {
                buf.put_u8(opcode::SUB);
                buf.put_u8(0);
                buf.put_u16_le(pipe.0);
                buf.put_u8(dst.0);
                buf.put_u8(a.0);
                buf.put_u8(b.0);
            }
            Instruction::Mul {
                pipe,
                dst,
                a,
                b,
                width,
            } => {
                buf.put_u8(opcode::MUL);
                buf.put_u8(width);
                buf.put_u16_le(pipe.0);
                buf.put_u8(dst.0);
                buf.put_u8(a.0);
                buf.put_u8(b.0);
            }
            Instruction::CmpLt { pipe, dst, a, b } => {
                buf.put_u8(opcode::CMPLT);
                buf.put_u8(0);
                buf.put_u16_le(pipe.0);
                buf.put_u8(dst.0);
                buf.put_u8(a.0);
                buf.put_u8(b.0);
            }
            Instruction::Select {
                pipe,
                dst,
                cond,
                a,
                b,
            } => {
                buf.put_u8(opcode::SELECT);
                buf.put_u8(0);
                buf.put_u16_le(pipe.0);
                buf.put_u8(dst.0);
                buf.put_u8(a.0);
                buf.put_u8(b.0);
                buf.put_u8(cond.0);
            }
            Instruction::Relu { pipe, dst, a } => {
                buf.put_u8(opcode::RELU);
                buf.put_u8(0);
                buf.put_u16_le(pipe.0);
                buf.put_u8(dst.0);
                buf.put_u8(a.0);
            }
            Instruction::ShiftLeft {
                pipe,
                dst,
                src,
                amount,
            } => {
                buf.put_u8(opcode::SHL);
                buf.put_u8(amount);
                buf.put_u16_le(pipe.0);
                buf.put_u8(dst.0);
                buf.put_u8(src.0);
            }
            Instruction::ShiftRight {
                pipe,
                dst,
                src,
                amount,
            } => {
                buf.put_u8(opcode::SHR);
                buf.put_u8(amount);
                buf.put_u16_le(pipe.0);
                buf.put_u8(dst.0);
                buf.put_u8(src.0);
            }
            Instruction::RotateLeft {
                pipe,
                dst,
                src,
                tmp,
                amount,
                width,
            } => {
                buf.put_u8(opcode::ROTL);
                buf.put_u8(amount);
                buf.put_u16_le(pipe.0);
                buf.put_u8(dst.0);
                buf.put_u8(src.0);
                buf.put_u8(tmp.0);
                buf.put_u8(width);
            }
            Instruction::CopyVr { pipe, dst, src } => {
                buf.put_u8(opcode::COPY);
                buf.put_u8(0);
                buf.put_u16_le(pipe.0);
                buf.put_u8(dst.0);
                buf.put_u8(src.0);
            }
            Instruction::CopyAcross {
                src_pipe,
                src,
                dst_pipe,
                dst,
            } => {
                buf.put_u8(opcode::COPYX);
                buf.put_u8(0);
                buf.put_u16_le(src_pipe.0);
                buf.put_u8(src.0);
                buf.put_u16_le(dst_pipe.0);
                buf.put_u8(dst.0);
            }
            Instruction::ElementLoad {
                pipe,
                addr,
                table_pipe,
                dst,
            } => {
                buf.put_u8(opcode::ELOAD);
                buf.put_u8(0);
                buf.put_u16_le(pipe.0);
                buf.put_u8(addr.0);
                buf.put_u16_le(table_pipe.0);
                buf.put_u8(dst.0);
            }
            Instruction::PipeReverse { pipe } => {
                buf.put_u8(opcode::PREV);
                buf.put_u8(0);
                buf.put_u16_le(pipe.0);
            }
            Instruction::WriteImm {
                pipe,
                vr,
                element,
                value,
            } => {
                buf.put_u8(opcode::WIMM);
                buf.put_u8(element);
                buf.put_u16_le(pipe.0);
                buf.put_u8(vr.0);
                buf.put_u8(0);
                buf.put_u16_le(0);
                buf.put_u64_le(value);
            }
            Instruction::Mvm {
                vacore,
                input_pipe,
                input_vr,
                dst_pipe,
                dst_vr,
                early_levels,
            } => {
                buf.put_u8(opcode::MVM);
                buf.put_u8(vacore.0);
                buf.put_u16_le(input_pipe.0);
                buf.put_u8(input_vr.0);
                buf.put_u16_le(dst_pipe.0);
                buf.put_u8(dst_vr.0);
                buf.put_u16_le(early_levels);
            }
            Instruction::ProgMatrix {
                vacore,
                matrix_handle,
            } => {
                buf.put_u8(opcode::PROGM);
                buf.put_u8(vacore.0);
                buf.put_u16_le(matrix_handle);
            }
            Instruction::UpdateRow {
                vacore,
                row,
                data_handle,
            } => {
                buf.put_u8(opcode::UPDROW);
                buf.put_u8(vacore.0);
                buf.put_u8(row);
                buf.put_u8(0);
                buf.put_u16_le(data_handle);
            }
            Instruction::UpdateCol {
                vacore,
                col,
                data_handle,
            } => {
                buf.put_u8(opcode::UPDCOL);
                buf.put_u8(vacore.0);
                buf.put_u8(col);
                buf.put_u8(0);
                buf.put_u16_le(data_handle);
            }
            Instruction::PipeReserve { pipe } => {
                buf.put_u8(opcode::PRESV);
                buf.put_u8(0);
                buf.put_u16_le(pipe.0);
            }
            Instruction::AllocVaCore {
                vacore,
                element_bits,
                bits_per_cell,
                input_bits,
                input_signed,
            } => {
                buf.put_u8(opcode::VALLOC);
                buf.put_u8(vacore.0);
                buf.put_u8(element_bits);
                buf.put_u8(bits_per_cell);
                buf.put_u8(input_bits);
                buf.put_u8(u8::from(input_signed));
            }
            Instruction::FreeVaCore { vacore } => {
                buf.put_u8(opcode::VFREE);
                buf.put_u8(vacore.0);
            }
            Instruction::FenceAd => buf.put_u8(opcode::FENCE),
            Instruction::SetAnalogMode { enabled } => {
                buf.put_u8(opcode::AMODE);
                buf.put_u8(u8::from(enabled));
            }
            Instruction::SetDigitalMode { enabled } => {
                buf.put_u8(opcode::DMODE);
                buf.put_u8(u8::from(enabled));
            }
            Instruction::Halt => buf.put_u8(opcode::HALT),
        }
    }
    record
}

/// Decodes one 16-byte record.
///
/// # Errors
///
/// Returns [`Error::Truncated`] for short input and
/// [`Error::UnknownOpcode`] / [`Error::InvalidField`] for malformed
/// records.
pub fn decode(record: &[u8]) -> Result<Instruction> {
    if record.len() < RECORD_SIZE {
        return Err(Error::Truncated { got: record.len() });
    }
    let mut buf = &record[..RECORD_SIZE];
    let op = buf.get_u8();
    let inst = match op {
        opcode::NOP => Instruction::Nop,
        opcode::BOOL => {
            let code = buf.get_u8();
            let op = IsaBoolOp::from_code(code).ok_or(Error::InvalidField {
                mnemonic: "bool",
                reason: "unknown boolean operator code",
            })?;
            Instruction::Bool {
                op,
                pipe: PipelineId(buf.get_u16_le()),
                dst: Vr(buf.get_u8()),
                a: Vr(buf.get_u8()),
                b: Vr(buf.get_u8()),
            }
        }
        opcode::NOT => {
            buf.advance(1);
            Instruction::Not {
                pipe: PipelineId(buf.get_u16_le()),
                dst: Vr(buf.get_u8()),
                a: Vr(buf.get_u8()),
            }
        }
        opcode::ADD => {
            buf.advance(1);
            Instruction::Add {
                pipe: PipelineId(buf.get_u16_le()),
                dst: Vr(buf.get_u8()),
                a: Vr(buf.get_u8()),
                b: Vr(buf.get_u8()),
            }
        }
        opcode::SUB => {
            buf.advance(1);
            Instruction::Sub {
                pipe: PipelineId(buf.get_u16_le()),
                dst: Vr(buf.get_u8()),
                a: Vr(buf.get_u8()),
                b: Vr(buf.get_u8()),
            }
        }
        opcode::MUL => {
            let width = buf.get_u8();
            Instruction::Mul {
                pipe: PipelineId(buf.get_u16_le()),
                dst: Vr(buf.get_u8()),
                a: Vr(buf.get_u8()),
                b: Vr(buf.get_u8()),
                width,
            }
        }
        opcode::CMPLT => {
            buf.advance(1);
            Instruction::CmpLt {
                pipe: PipelineId(buf.get_u16_le()),
                dst: Vr(buf.get_u8()),
                a: Vr(buf.get_u8()),
                b: Vr(buf.get_u8()),
            }
        }
        opcode::SELECT => {
            buf.advance(1);
            let pipe = PipelineId(buf.get_u16_le());
            let dst = Vr(buf.get_u8());
            let a = Vr(buf.get_u8());
            let b = Vr(buf.get_u8());
            let cond = Vr(buf.get_u8());
            Instruction::Select {
                pipe,
                dst,
                cond,
                a,
                b,
            }
        }
        opcode::RELU => {
            buf.advance(1);
            Instruction::Relu {
                pipe: PipelineId(buf.get_u16_le()),
                dst: Vr(buf.get_u8()),
                a: Vr(buf.get_u8()),
            }
        }
        opcode::SHL => {
            let amount = buf.get_u8();
            Instruction::ShiftLeft {
                pipe: PipelineId(buf.get_u16_le()),
                dst: Vr(buf.get_u8()),
                src: Vr(buf.get_u8()),
                amount,
            }
        }
        opcode::SHR => {
            let amount = buf.get_u8();
            Instruction::ShiftRight {
                pipe: PipelineId(buf.get_u16_le()),
                dst: Vr(buf.get_u8()),
                src: Vr(buf.get_u8()),
                amount,
            }
        }
        opcode::ROTL => {
            let amount = buf.get_u8();
            let pipe = PipelineId(buf.get_u16_le());
            let dst = Vr(buf.get_u8());
            let src = Vr(buf.get_u8());
            let tmp = Vr(buf.get_u8());
            let width = buf.get_u8();
            Instruction::RotateLeft {
                pipe,
                dst,
                src,
                tmp,
                amount,
                width,
            }
        }
        opcode::COPY => {
            buf.advance(1);
            Instruction::CopyVr {
                pipe: PipelineId(buf.get_u16_le()),
                dst: Vr(buf.get_u8()),
                src: Vr(buf.get_u8()),
            }
        }
        opcode::COPYX => {
            buf.advance(1);
            Instruction::CopyAcross {
                src_pipe: PipelineId(buf.get_u16_le()),
                src: Vr(buf.get_u8()),
                dst_pipe: PipelineId(buf.get_u16_le()),
                dst: Vr(buf.get_u8()),
            }
        }
        opcode::ELOAD => {
            buf.advance(1);
            Instruction::ElementLoad {
                pipe: PipelineId(buf.get_u16_le()),
                addr: Vr(buf.get_u8()),
                table_pipe: PipelineId(buf.get_u16_le()),
                dst: Vr(buf.get_u8()),
            }
        }
        opcode::PREV => {
            buf.advance(1);
            Instruction::PipeReverse {
                pipe: PipelineId(buf.get_u16_le()),
            }
        }
        opcode::WIMM => {
            let element = buf.get_u8();
            let pipe = PipelineId(buf.get_u16_le());
            let vr = Vr(buf.get_u8());
            buf.advance(3);
            let value = buf.get_u64_le();
            Instruction::WriteImm {
                pipe,
                vr,
                element,
                value,
            }
        }
        opcode::MVM => {
            let vacore = VaCoreId(buf.get_u8());
            Instruction::Mvm {
                vacore,
                input_pipe: PipelineId(buf.get_u16_le()),
                input_vr: Vr(buf.get_u8()),
                dst_pipe: PipelineId(buf.get_u16_le()),
                dst_vr: Vr(buf.get_u8()),
                early_levels: buf.get_u16_le(),
            }
        }
        opcode::PROGM => {
            let vacore = VaCoreId(buf.get_u8());
            Instruction::ProgMatrix {
                vacore,
                matrix_handle: buf.get_u16_le(),
            }
        }
        opcode::UPDROW => {
            let vacore = VaCoreId(buf.get_u8());
            let row = buf.get_u8();
            buf.advance(1);
            Instruction::UpdateRow {
                vacore,
                row,
                data_handle: buf.get_u16_le(),
            }
        }
        opcode::UPDCOL => {
            let vacore = VaCoreId(buf.get_u8());
            let col = buf.get_u8();
            buf.advance(1);
            Instruction::UpdateCol {
                vacore,
                col,
                data_handle: buf.get_u16_le(),
            }
        }
        opcode::PRESV => {
            buf.advance(1);
            Instruction::PipeReserve {
                pipe: PipelineId(buf.get_u16_le()),
            }
        }
        opcode::VALLOC => Instruction::AllocVaCore {
            vacore: VaCoreId(buf.get_u8()),
            element_bits: buf.get_u8(),
            bits_per_cell: buf.get_u8(),
            input_bits: buf.get_u8(),
            input_signed: buf.get_u8() != 0,
        },
        opcode::VFREE => Instruction::FreeVaCore {
            vacore: VaCoreId(buf.get_u8()),
        },
        opcode::FENCE => Instruction::FenceAd,
        opcode::AMODE => Instruction::SetAnalogMode {
            enabled: buf.get_u8() != 0,
        },
        opcode::DMODE => Instruction::SetDigitalMode {
            enabled: buf.get_u8() != 0,
        },
        opcode::HALT => Instruction::Halt,
        other => return Err(Error::UnknownOpcode(other)),
    };
    Ok(inst)
}

/// Encodes a whole program.
pub fn encode_program(program: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(program.len() * RECORD_SIZE);
    for inst in program.iter() {
        out.extend_from_slice(&encode(inst));
    }
    out
}

/// Decodes a whole program.
///
/// # Errors
///
/// Returns the first decoding failure; the byte length must be a multiple
/// of [`RECORD_SIZE`].
pub fn decode_program(bytes: &[u8]) -> Result<Program> {
    if !bytes.len().is_multiple_of(RECORD_SIZE) {
        return Err(Error::Truncated {
            got: bytes.len() % RECORD_SIZE,
        });
    }
    bytes
        .chunks_exact(RECORD_SIZE)
        .map(decode)
        .collect::<Result<Vec<_>>>()
        .map(|instructions| Program { instructions })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exemplars() -> Vec<Instruction> {
        vec![
            Instruction::Nop,
            Instruction::Bool {
                op: IsaBoolOp::Xor,
                pipe: PipelineId(513),
                dst: Vr(1),
                a: Vr(2),
                b: Vr(3),
            },
            Instruction::Not {
                pipe: PipelineId(0),
                dst: Vr(4),
                a: Vr(5),
            },
            Instruction::Add {
                pipe: PipelineId(63),
                dst: Vr(9),
                a: Vr(8),
                b: Vr(7),
            },
            Instruction::Sub {
                pipe: PipelineId(1),
                dst: Vr(0),
                a: Vr(1),
                b: Vr(2),
            },
            Instruction::Mul {
                pipe: PipelineId(2),
                dst: Vr(3),
                a: Vr(4),
                b: Vr(5),
                width: 8,
            },
            Instruction::CmpLt {
                pipe: PipelineId(2),
                dst: Vr(3),
                a: Vr(4),
                b: Vr(5),
            },
            Instruction::Select {
                pipe: PipelineId(2),
                dst: Vr(3),
                cond: Vr(6),
                a: Vr(4),
                b: Vr(5),
            },
            Instruction::Relu {
                pipe: PipelineId(40),
                dst: Vr(1),
                a: Vr(1),
            },
            Instruction::ShiftLeft {
                pipe: PipelineId(3),
                dst: Vr(1),
                src: Vr(2),
                amount: 17,
            },
            Instruction::ShiftRight {
                pipe: PipelineId(3),
                dst: Vr(1),
                src: Vr(2),
                amount: 63,
            },
            Instruction::RotateLeft {
                pipe: PipelineId(3),
                dst: Vr(1),
                src: Vr(2),
                tmp: Vr(9),
                amount: 8,
                width: 32,
            },
            Instruction::CopyVr {
                pipe: PipelineId(3),
                dst: Vr(1),
                src: Vr(2),
            },
            Instruction::CopyAcross {
                src_pipe: PipelineId(3),
                src: Vr(1),
                dst_pipe: PipelineId(4),
                dst: Vr(2),
            },
            Instruction::ElementLoad {
                pipe: PipelineId(3),
                addr: Vr(1),
                table_pipe: PipelineId(63),
                dst: Vr(2),
            },
            Instruction::PipeReverse {
                pipe: PipelineId(21),
            },
            Instruction::WriteImm {
                pipe: PipelineId(3),
                vr: Vr(1),
                element: 42,
                value: 0xDEAD_BEEF_CAFE_F00D,
            },
            Instruction::Mvm {
                vacore: VaCoreId(7),
                input_pipe: PipelineId(1),
                input_vr: Vr(2),
                dst_pipe: PipelineId(3),
                dst_vr: Vr(4),
                early_levels: 4,
            },
            Instruction::ProgMatrix {
                vacore: VaCoreId(7),
                matrix_handle: 999,
            },
            Instruction::UpdateRow {
                vacore: VaCoreId(7),
                row: 13,
                data_handle: 55,
            },
            Instruction::UpdateCol {
                vacore: VaCoreId(7),
                col: 14,
                data_handle: 56,
            },
            Instruction::PipeReserve {
                pipe: PipelineId(11),
            },
            Instruction::AllocVaCore {
                vacore: VaCoreId(2),
                element_bits: 8,
                bits_per_cell: 2,
                input_bits: 8,
                input_signed: true,
            },
            Instruction::FreeVaCore {
                vacore: VaCoreId(2),
            },
            Instruction::FenceAd,
            Instruction::SetAnalogMode { enabled: false },
            Instruction::SetDigitalMode { enabled: true },
            Instruction::Halt,
        ]
    }

    #[test]
    fn every_instruction_round_trips() {
        for inst in exemplars() {
            let bytes = encode(&inst);
            let back = decode(&bytes).expect("decodes");
            assert_eq!(back, inst, "{}", inst.mnemonic());
        }
    }

    #[test]
    fn program_round_trips() {
        let program: Program = exemplars().into_iter().collect();
        let bytes = encode_program(&program);
        assert_eq!(bytes.len(), program.len() * RECORD_SIZE);
        let back = decode_program(&bytes).expect("decodes");
        assert_eq!(back, program);
    }

    #[test]
    fn truncated_input_is_rejected() {
        assert!(matches!(
            decode(&[0u8; 3]),
            Err(Error::Truncated { got: 3 })
        ));
        assert!(decode_program(&[0u8; 17]).is_err());
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        let mut rec = [0u8; RECORD_SIZE];
        rec[0] = 0xFF;
        assert_eq!(decode(&rec), Err(Error::UnknownOpcode(0xFF)));
    }

    #[test]
    fn opcode_validity_partitions_the_byte_space() {
        for op in 0u8..=255 {
            let mut rec = [0u8; RECORD_SIZE];
            rec[0] = op;
            let decoded = decode(&rec);
            if is_valid_opcode(op) {
                // Valid opcodes never report UnknownOpcode (payload
                // errors like a bad Bool code are still possible).
                assert!(
                    !matches!(decoded, Err(Error::UnknownOpcode(_))),
                    "opcode {op:#x}"
                );
            } else {
                assert_eq!(decoded, Err(Error::UnknownOpcode(op)));
            }
        }
    }

    #[test]
    fn every_exemplar_opcode_is_valid() {
        for inst in exemplars() {
            assert!(is_valid_opcode(encode(&inst)[0]), "{}", inst.mnemonic());
        }
    }

    #[test]
    fn bad_bool_code_is_rejected() {
        let mut rec = encode(&Instruction::Bool {
            op: IsaBoolOp::Nor,
            pipe: PipelineId(0),
            dst: Vr(0),
            a: Vr(0),
            b: Vr(0),
        });
        rec[1] = 99;
        assert!(matches!(decode(&rec), Err(Error::InvalidField { .. })));
    }
}
