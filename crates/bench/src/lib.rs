//! Shared harness code for regenerating every table and figure of the
//! DARTH-PUM paper.
//!
//! Each `fig*`/`tables` binary in `src/bin/` builds the three workload
//! traces, prices them on every architecture model, and prints the
//! paper-vs-measured comparison that `EXPERIMENTS.md` records. The
//! Criterion benches in `benches/` exercise the functional simulators
//! (AES on the tile, pipeline macros, crossbar MVMs).

use darth_analog::adc::AdcKind;
use darth_apps::aes::workload::{block_trace, AesVariant};
use darth_apps::cnn::resnet::ResNet;
use darth_apps::cnn::workload::inference_trace;
use darth_apps::llm::encoder::EncoderConfig;
use darth_apps::llm::workload::encoder_trace;
use darth_baselines::analog_only::BaselineModel;
use darth_baselines::app_accel::AppAccelModel;
use darth_baselines::digital_only::DigitalPumModel;
use darth_baselines::gpu::GpuModel;
use darth_digital::logic::LogicFamily;
use darth_pum::model::DarthModel;
use darth_pum::trace::{geomean, CostReport, Trace};

/// The three evaluation workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// AES-128 encryption.
    Aes,
    /// ResNet-20 inference.
    ResNet20,
    /// LLM encoder pass.
    LlmEnc,
}

impl Workload {
    /// All workloads in figure order.
    pub const ALL: [Workload; 3] = [Workload::Aes, Workload::ResNet20, Workload::LlmEnc];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Aes => "AES",
            Workload::ResNet20 => "ResNet-20",
            Workload::LlmEnc => "LLMEnc",
        }
    }

    /// Builds the workload trace.
    pub fn trace(self) -> Trace {
        match self {
            Workload::Aes => block_trace(AesVariant::Aes128),
            Workload::ResNet20 => {
                let net = ResNet::resnet20(1).expect("ResNet-20 builds");
                inference_trace(&net).expect("trace builds")
            }
            Workload::LlmEnc => encoder_trace(&EncoderConfig::bert_base()),
        }
    }
}

/// All architecture reports for one workload.
#[derive(Debug, Clone)]
pub struct WorkloadReports {
    /// The workload.
    pub workload: Workload,
    /// CPU + analog accelerator (the normalisation baseline).
    pub baseline: CostReport,
    /// Iso-area RACER chip.
    pub digital: CostReport,
    /// DARTH-PUM.
    pub darth: CostReport,
    /// The per-application accelerator.
    pub app_accel: CostReport,
    /// The RTX-4090 model.
    pub gpu: CostReport,
}

impl WorkloadReports {
    /// Prices one workload on every architecture with the given ADC for
    /// the analog-bearing chips.
    pub fn build(workload: Workload, adc: AdcKind) -> Self {
        let trace = workload.trace();
        let baseline = BaselineModel::paper(adc).price(&trace);
        let digital = DigitalPumModel::paper(LogicFamily::Oscar).price(&trace);
        let mut darth_model = DarthModel::paper(adc);
        if workload == Workload::Aes && adc == AdcKind::Ramp {
            // §7.3: MixColumns terminates the ramp sweep after 4 levels.
            darth_model.early_levels = Some(4);
        }
        let darth = darth_model.price(&trace);
        let app_accel = match workload {
            Workload::Aes => AppAccelModel::aes_ni(),
            Workload::ResNet20 => AppAccelModel::cnn(AdcKind::Ramp),
            Workload::LlmEnc => AppAccelModel::llm(AdcKind::Sar),
        }
        .price(&trace);
        let gpu = GpuModel::rtx_4090().price(&trace);
        WorkloadReports {
            workload,
            baseline,
            digital,
            darth,
            app_accel,
            gpu,
        }
    }

    /// Throughput of each architecture normalised to the Baseline
    /// (Figure 13's bars): `(digital, darth, app_accel)`.
    pub fn fig13_row(&self) -> (f64, f64, f64) {
        (
            self.digital.speedup_over(&self.baseline),
            self.darth.speedup_over(&self.baseline),
            self.app_accel.speedup_over(&self.baseline),
        )
    }

    /// Energy savings vs Baseline (Figure 16's bars).
    pub fn fig16_row(&self) -> (f64, f64, f64) {
        (
            self.digital.energy_savings_over(&self.baseline),
            self.darth.energy_savings_over(&self.baseline),
            self.app_accel.energy_savings_over(&self.baseline),
        )
    }

    /// GPU comparison (Figure 18): `(digital/gpu, darth/gpu)` for
    /// throughput and energy savings.
    pub fn fig18_row(&self) -> ((f64, f64), (f64, f64)) {
        (
            (
                self.digital.speedup_over(&self.gpu),
                self.darth.speedup_over(&self.gpu),
            ),
            (
                self.digital.energy_savings_over(&self.gpu),
                self.darth.energy_savings_over(&self.gpu),
            ),
        )
    }
}

/// Builds reports for all three workloads.
pub fn all_reports(adc: AdcKind) -> Vec<WorkloadReports> {
    Workload::ALL
        .iter()
        .map(|&w| WorkloadReports::build(w, adc))
        .collect()
}

/// Geometric mean across workloads of a per-workload ratio.
pub fn geomean_of<F: Fn(&WorkloadReports) -> f64>(reports: &[WorkloadReports], f: F) -> f64 {
    let ratios: Vec<f64> = reports.iter().map(f).collect();
    geomean(&ratios)
}

/// Pretty-prints an aligned table: header plus rows of labelled values.
pub fn print_table(title: &str, header: &[&str], rows: &[(String, Vec<f64>)]) {
    println!("\n=== {title} ===");
    print!("{:<14}", "");
    for h in header {
        print!("{h:>14}");
    }
    println!();
    for (label, values) in rows {
        print!("{label:<14}");
        for v in values {
            if *v >= 100.0 {
                print!("{v:>14.1}");
            } else {
                print!("{v:>14.2}");
            }
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_build_for_all_workloads() {
        for reports in all_reports(AdcKind::Sar) {
            assert!(reports.baseline.latency_s > 0.0);
            assert!(reports.darth.latency_s > 0.0);
            let (d, h, a) = reports.fig13_row();
            assert!(d.is_finite() && h.is_finite() && a.is_finite());
            assert!(h > 0.0);
        }
    }

    #[test]
    fn darth_beats_baseline_everywhere() {
        // The headline claim's direction: DARTH-PUM > Baseline on all
        // three workloads, in both throughput and energy.
        for reports in all_reports(AdcKind::Sar) {
            let (_, speedup, _) = reports.fig13_row();
            let (_, savings, _) = reports.fig16_row();
            assert!(
                speedup > 1.0,
                "{}: speedup {speedup}",
                reports.workload.label()
            );
            assert!(
                savings > 1.0,
                "{}: savings {savings}",
                reports.workload.label()
            );
        }
    }
}
