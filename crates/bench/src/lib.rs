//! Shared harness code for regenerating every table and figure of the
//! DARTH-PUM paper.
//!
//! Since the trait-based evaluation engine landed, this crate is a *view*
//! layer: every `fig*`/`tables` binary in `src/bin/` asks `darth_eval`
//! for a priced workload × architecture [`EvalMatrix`] (op streams
//! recorded once, cells priced in parallel through streaming
//! accumulators) and renders one paper figure from its cells, next to
//! the paper's reference numbers. Each binary also drops a
//! machine-readable `BENCH_<figure>.json` via [`emit_json`]; the `eval`
//! binary prices the full extended matrix (`BENCH_eval.json`), and the
//! `eval_large` binary prices the bulk scenarios under a memory cap
//! (`BENCH_eval_large.json`). The Criterion benches in `benches/`
//! exercise the functional simulators (AES on the tile, pipeline
//! macros, crossbar MVMs), the engine, and streaming vs materialized
//! pricing.

use darth_analog::adc::AdcKind;
use darth_eval::registry::{paper_models, paper_workloads};
use darth_pum::trace::{geomean, CostReport};
use std::path::PathBuf;

pub use darth_eval::{Engine, EvalMatrix, JsonValue, Threading};

/// The registry slug fragment for an ADC choice (`"sar"` / `"ramp"`).
pub fn adc_slug(adc: AdcKind) -> &'static str {
    adc.slug()
}

/// Prices the paper's three workloads on the five figure columns
/// (Baseline, DigitalPUM, DARTH-PUM, AppAccel, GPU) with the chosen ADC
/// for the analog-bearing chips.
pub fn paper_matrix(adc: AdcKind) -> EvalMatrix {
    let mut engine = Engine::new();
    for workload in paper_workloads() {
        engine.register_workload(workload);
    }
    for model in paper_models(adc) {
        engine.register_model(model);
    }
    engine.run()
}

/// All architecture reports for one workload — one row of the paper
/// matrix, named the way the figure code reads.
#[derive(Debug, Clone)]
pub struct WorkloadReports {
    /// Workload registry name (`"aes-128"`, …).
    pub name: String,
    /// Figure label (`"AES"`, `"ResNet-20"`, `"LLMEnc"`).
    pub label: String,
    /// CPU + analog accelerator (the normalisation baseline).
    pub baseline: CostReport,
    /// Iso-area RACER chip.
    pub digital: CostReport,
    /// DARTH-PUM.
    pub darth: CostReport,
    /// The per-application accelerator.
    pub app_accel: CostReport,
    /// The RTX-4090 model.
    pub gpu: CostReport,
}

impl WorkloadReports {
    /// Extracts one workload's row from a [`paper_matrix`] run.
    ///
    /// Returns `None` when the workload or any of the five paper columns
    /// is missing from the matrix.
    pub fn from_matrix(matrix: &EvalMatrix, workload: &str, adc: AdcKind) -> Option<Self> {
        let slug = adc_slug(adc);
        let w = matrix.workload_index(workload)?;
        Some(WorkloadReports {
            name: matrix.workloads[w].name.clone(),
            label: matrix.workloads[w].label.clone(),
            baseline: matrix.cell(workload, &format!("baseline-{slug}"))?.clone(),
            digital: matrix.cell(workload, "digitalpum-oscar")?.clone(),
            darth: matrix.cell(workload, &format!("darth-{slug}"))?.clone(),
            app_accel: matrix.cell(workload, "appaccel")?.clone(),
            gpu: matrix.cell(workload, "gpu-rtx-4090")?.clone(),
        })
    }

    /// Throughput of each architecture normalised to the Baseline
    /// (Figure 13's bars): `(digital, darth, app_accel)`.
    pub fn fig13_row(&self) -> (f64, f64, f64) {
        (
            self.digital.speedup_over(&self.baseline),
            self.darth.speedup_over(&self.baseline),
            self.app_accel.speedup_over(&self.baseline),
        )
    }

    /// Energy savings vs Baseline (Figure 16's bars).
    pub fn fig16_row(&self) -> (f64, f64, f64) {
        (
            self.digital.energy_savings_over(&self.baseline),
            self.darth.energy_savings_over(&self.baseline),
            self.app_accel.energy_savings_over(&self.baseline),
        )
    }

    /// GPU comparison (Figure 18): `(digital/gpu, darth/gpu)` for
    /// throughput and energy savings.
    pub fn fig18_row(&self) -> ((f64, f64), (f64, f64)) {
        (
            (
                self.digital.speedup_over(&self.gpu),
                self.darth.speedup_over(&self.gpu),
            ),
            (
                self.digital.energy_savings_over(&self.gpu),
                self.darth.energy_savings_over(&self.gpu),
            ),
        )
    }
}

/// Builds reports for the paper's three workloads through the engine.
pub fn all_reports(adc: AdcKind) -> Vec<WorkloadReports> {
    let matrix = paper_matrix(adc);
    matrix
        .workloads
        .iter()
        .map(|w| {
            WorkloadReports::from_matrix(&matrix, &w.name, adc)
                .expect("paper matrix has all five columns")
        })
        .collect()
}

/// Geometric mean across workloads of a per-workload ratio.
pub fn geomean_of<F: Fn(&WorkloadReports) -> f64>(reports: &[WorkloadReports], f: F) -> f64 {
    let ratios: Vec<f64> = reports.iter().map(f).collect();
    geomean(&ratios)
}

/// Pretty-prints an aligned table: header plus rows of labelled values.
pub fn print_table(title: &str, header: &[&str], rows: &[(String, Vec<f64>)]) {
    println!("\n=== {title} ===");
    print!("{:<14}", "");
    for h in header {
        print!("{h:>14}");
    }
    println!();
    for (label, values) in rows {
        print!("{label:<14}");
        for v in values {
            if *v >= 100.0 {
                print!("{v:>14.1}");
            } else {
                print!("{v:>14.2}");
            }
        }
        println!();
    }
}

/// A printed table as JSON: `{title, columns, rows: [{label, values}]}`.
/// Labels and headers are borrowed into the tree, not cloned.
pub fn table_json<'a>(
    title: &'a str,
    header: &[&'a str],
    rows: &'a [(String, Vec<f64>)],
) -> JsonValue<'a> {
    JsonValue::object(vec![
        ("title", JsonValue::from(title)),
        (
            "columns",
            JsonValue::array(header.iter().map(|&h| JsonValue::from(h)).collect()),
        ),
        (
            "rows",
            JsonValue::array(
                rows.iter()
                    .map(|(label, values)| {
                        JsonValue::object(vec![
                            ("label", JsonValue::from(label)),
                            (
                                "values",
                                JsonValue::array(
                                    values.iter().map(|&v| JsonValue::from(v)).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Wraps a figure's tables in the `darth-bench-figure/v1` envelope.
pub fn figure_json<'a>(figure: &'a str, tables: Vec<JsonValue<'a>>) -> JsonValue<'a> {
    JsonValue::object(vec![
        ("schema", JsonValue::from("darth-bench-figure/v1")),
        ("figure", JsonValue::from(figure)),
        ("tables", JsonValue::array(tables)),
    ])
}

/// Writes `BENCH_<name>.json` into `$DARTH_BENCH_DIR` (default: the
/// current directory), returning the path written.
///
/// # Errors
///
/// Propagates the filesystem error when the directory is not writable.
pub fn write_json(name: &str, value: &JsonValue) -> std::io::Result<PathBuf> {
    let dir = std::env::var_os("DARTH_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, value.pretty())?;
    Ok(path)
}

/// [`write_json`], reporting the outcome on stdout/stderr instead of
/// failing — figure binaries should still print their tables on a
/// read-only filesystem.
pub fn emit_json(name: &str, value: &JsonValue) {
    match write_json(name, value) {
        Ok(path) => println!("\n[machine-readable report: {}]", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_{name}.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_apps::aes::workload::{block_trace, AesVariant};
    use darth_apps::cnn::resnet::ResNet;
    use darth_apps::cnn::workload::inference_trace;
    use darth_apps::llm::encoder::EncoderConfig;
    use darth_apps::llm::workload::encoder_trace;
    use darth_baselines::analog_only::BaselineModel;
    use darth_baselines::app_accel::AppAccelModel;
    use darth_baselines::digital_only::DigitalPumModel;
    use darth_baselines::gpu::GpuModel;
    use darth_digital::logic::LogicFamily;
    use darth_pum::model::DarthModel;

    #[test]
    fn reports_build_for_all_workloads() {
        for reports in all_reports(AdcKind::Sar) {
            assert!(reports.baseline.latency_s > 0.0);
            assert!(reports.darth.latency_s > 0.0);
            let (d, h, a) = reports.fig13_row();
            assert!(d.is_finite() && h.is_finite() && a.is_finite());
            assert!(h > 0.0);
        }
    }

    #[test]
    fn darth_beats_baseline_everywhere() {
        // The headline claim's direction: DARTH-PUM > Baseline on all
        // three workloads, in both throughput and energy.
        for reports in all_reports(AdcKind::Sar) {
            let (_, speedup, _) = reports.fig13_row();
            let (_, savings, _) = reports.fig16_row();
            assert!(speedup > 1.0, "{}: speedup {speedup}", reports.label);
            assert!(savings > 1.0, "{}: savings {savings}", reports.label);
        }
    }

    /// The engine path reproduces the pre-engine figure numbers: price
    /// each trace by direct model calls exactly the way the old
    /// `WorkloadReports::build` did, and compare cell by cell.
    #[test]
    fn engine_reports_match_direct_model_pricing() {
        for adc in [AdcKind::Sar, AdcKind::Ramp] {
            let reports = all_reports(adc);
            assert_eq!(reports.len(), 3);
            let traces = [
                block_trace(AesVariant::Aes128),
                inference_trace(&ResNet::resnet20(1).expect("builds")).expect("builds"),
                encoder_trace(&EncoderConfig::bert_base()),
            ];
            for (report, trace) in reports.iter().zip(&traces) {
                assert_eq!(report.name, trace.name);
                assert_eq!(report.baseline, BaselineModel::paper(adc).price(trace));
                assert_eq!(
                    report.digital,
                    DigitalPumModel::paper(LogicFamily::Oscar).price(trace)
                );
                let mut darth_model = DarthModel::paper(adc);
                if trace.name == "aes-128" && adc == AdcKind::Ramp {
                    darth_model.early_levels = Some(4);
                }
                assert_eq!(report.darth, darth_model.price(trace));
                let accel = match trace.name.as_str() {
                    "aes-128" => AppAccelModel::aes_ni(),
                    "llm-encoder" => AppAccelModel::llm(AdcKind::Sar),
                    _ => AppAccelModel::cnn(AdcKind::Ramp),
                };
                assert_eq!(report.app_accel, accel.price(trace));
                assert_eq!(report.gpu, GpuModel::rtx_4090().price(trace));
            }
        }
    }

    #[test]
    fn table_json_round_trip_shape() {
        let rows = vec![("AES".to_owned(), vec![1.0, 2.0])];
        let json = table_json("t", &["a", "b"], &rows);
        let text = json.pretty();
        assert!(text.contains("\"label\": \"AES\""));
        assert!(text.contains("\"columns\""));
    }
}
