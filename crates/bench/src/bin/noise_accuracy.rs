//! §7.5: end-to-end ResNet-20 accuracy under analog noise matches the
//! digital-exact accuracy (the paper reports 75.4% for both on CIFAR-10;
//! we reproduce the *comparison* on the synthetic dataset per DESIGN.md).

use darth_apps::cnn::data::{evaluate, train_classifier, Dataset};
use darth_apps::cnn::resnet::{AnalogNoise, ResNet};
use darth_bench::{emit_json, JsonValue};

fn main() {
    let mut net = ResNet::new(16, 8, 3, 10, 42).expect("network builds");
    let data = Dataset::synthetic(200, 16, 10, 7).expect("dataset builds");
    let (train, test) = data.split(0.7);
    let train_acc = train_classifier(&mut net, &train, 60, 11).expect("training runs");
    let clean = evaluate(&net, &test, &AnalogNoise::none(), 13).expect("evaluates");
    let noisy = evaluate(&net, &test, &AnalogNoise::evaluation(), 13).expect("evaluates");
    let raw = evaluate(&net, &test, &AnalogNoise::uncompensated(), 13).expect("evaluates");
    println!("\n=== Section 7.5: accuracy under analog noise ===");
    println!(
        "train accuracy (digital):           {:.1}%",
        train_acc * 100.0
    );
    println!("test accuracy, digital-exact:       {:.1}%", clean * 100.0);
    println!("test accuracy, compensated analog:  {:.1}%", noisy * 100.0);
    println!("test accuracy, uncompensated:       {:.1}%", raw * 100.0);
    println!("\nPaper reference: 75.4% end-to-end accuracy with noise, matching Baseline");
    println!("and AppAccel (no accuracy loss from analog execution).");
    println!("Reproduction criterion: noisy accuracy within a few points of digital.");
    emit_json(
        "noise_accuracy",
        &JsonValue::object(vec![
            ("schema", JsonValue::from("darth-bench-figure/v1")),
            ("figure", JsonValue::from("noise_accuracy")),
            ("train_accuracy", JsonValue::from(train_acc)),
            ("test_accuracy_digital", JsonValue::from(clean)),
            ("test_accuracy_compensated", JsonValue::from(noisy)),
            ("test_accuracy_uncompensated", JsonValue::from(raw)),
        ]),
    );
}
