//! Figure 18: iso-area comparison with an RTX-4090-class GPU.
//!
//! The GPU die (6.08 cm²) is larger than the 2.57 cm² DARTH-PUM chip, so
//! the DARTH model is rebuilt with the GPU's area budget (a custom
//! column registered alongside the paper models — no early termination:
//! this figure is SAR end to end).

use darth_analog::adc::AdcKind;
use darth_baselines::digital_only::DigitalPumModel;
use darth_baselines::gpu::GpuModel;
use darth_bench::{emit_json, figure_json, print_table, table_json, Engine};
use darth_digital::logic::LogicFamily;
use darth_eval::registry::paper_workloads;
use darth_pum::model::DarthModel;
use darth_pum::trace::geomean;
use darth_reram::SquareMicrons;

fn main() {
    let gpu = GpuModel::rtx_4090();
    let mut darth_model = DarthModel::paper(AdcKind::Sar);
    darth_model.chip.area_budget = SquareMicrons::from_cm2(gpu.die_area_cm2);
    let area_scale = gpu.die_area_cm2 / 2.57;

    let mut engine = Engine::new();
    for workload in paper_workloads() {
        engine.register_workload(workload);
    }
    engine
        .register_model(Box::new(DigitalPumModel::paper(LogicFamily::Oscar)))
        .register_model(Box::new(darth_model))
        .register_model(Box::new(gpu));
    let matrix = engine.run();

    let mut thr_rows = Vec::new();
    let mut eng_rows = Vec::new();
    let mut speedups = Vec::new();
    let mut savings = Vec::new();
    for workload in matrix.workloads.clone() {
        let gpu_report = matrix.cell(&workload.name, "gpu-rtx-4090").expect("priced");
        let darth = matrix.cell(&workload.name, "darth-sar").expect("priced");
        let digital = matrix
            .cell(&workload.name, "digitalpum-oscar")
            .expect("priced");
        // the digital chip scales with area linearly through cluster count
        let digital_thr = digital.throughput_items_per_s * area_scale;
        thr_rows.push((
            workload.label.clone(),
            vec![
                digital_thr / gpu_report.throughput_items_per_s,
                darth.speedup_over(gpu_report),
            ],
        ));
        eng_rows.push((
            workload.label.clone(),
            vec![
                gpu_report.energy_per_item_j / digital.energy_per_item_j,
                darth.energy_savings_over(gpu_report),
            ],
        ));
        speedups.push(darth.speedup_over(gpu_report));
        savings.push(darth.energy_savings_over(gpu_report));
    }
    thr_rows.push((
        "GeoMean".to_owned(),
        vec![
            geomean(&thr_rows.iter().map(|(_, v)| v[0]).collect::<Vec<_>>()),
            geomean(&speedups),
        ],
    ));
    eng_rows.push((
        "GeoMean".to_owned(),
        vec![
            geomean(&eng_rows.iter().map(|(_, v)| v[0]).collect::<Vec<_>>()),
            geomean(&savings),
        ],
    ));
    let header = ["DigitalPUM", "DARTH-PUM"];
    let thr_title = "Figure 18a: iso-area speedup vs RTX 4090";
    let eng_title = "Figure 18b: iso-area energy savings vs RTX 4090";
    print_table(thr_title, &header, &thr_rows);
    print_table(eng_title, &header, &eng_rows);
    println!("\nPaper reference: DARTH-PUM averages 11.8x throughput and 7.5x energy vs the GPU;");
    println!("AES gains are the smallest (cache-resident lookup tables favour the GPU).");
    emit_json(
        "fig18",
        &figure_json(
            "fig18",
            vec![
                table_json(thr_title, &header, &thr_rows),
                table_json(eng_title, &header, &eng_rows),
            ],
        ),
    );
}
