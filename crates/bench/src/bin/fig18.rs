//! Figure 18: iso-area comparison with an RTX-4090-class GPU.
//!
//! The GPU die (6.08 cm²) is larger than the 2.57 cm² DARTH-PUM chip, so
//! the chip models are rebuilt with the GPU's area budget.

use darth_analog::adc::AdcKind;
use darth_baselines::digital_only::DigitalPumModel;
use darth_baselines::gpu::GpuModel;
use darth_bench::{print_table, Workload};
use darth_digital::logic::LogicFamily;
use darth_pum::model::DarthModel;
use darth_pum::trace::geomean;
use darth_reram::SquareMicrons;

fn main() {
    let gpu = GpuModel::rtx_4090();
    let mut thr_rows = Vec::new();
    let mut eng_rows = Vec::new();
    let mut speedups = Vec::new();
    let mut savings = Vec::new();
    for workload in Workload::ALL {
        let trace = workload.trace();
        let gpu_report = gpu.price(&trace);
        let mut darth_model = DarthModel::paper(AdcKind::Sar);
        darth_model.chip.area_budget = SquareMicrons::from_cm2(gpu.die_area_cm2);
        if workload == Workload::Aes {
            darth_model.early_levels = None;
        }
        let darth = darth_model.price(&trace);
        // the digital chip scales with area linearly through cluster count
        let digital = DigitalPumModel::paper(LogicFamily::Oscar).price(&trace);
        let area_scale = gpu.die_area_cm2 / 2.57;
        let digital_thr = digital.throughput_items_per_s * area_scale;
        thr_rows.push((
            workload.label().to_owned(),
            vec![
                digital_thr / gpu_report.throughput_items_per_s,
                darth.speedup_over(&gpu_report),
            ],
        ));
        eng_rows.push((
            workload.label().to_owned(),
            vec![
                gpu_report.energy_per_item_j / digital.energy_per_item_j,
                darth.energy_savings_over(&gpu_report),
            ],
        ));
        speedups.push(darth.speedup_over(&gpu_report));
        savings.push(darth.energy_savings_over(&gpu_report));
    }
    thr_rows.push((
        "GeoMean".to_owned(),
        vec![
            geomean(&thr_rows.iter().map(|(_, v)| v[0]).collect::<Vec<_>>()),
            geomean(&speedups),
        ],
    ));
    eng_rows.push((
        "GeoMean".to_owned(),
        vec![
            geomean(&eng_rows.iter().map(|(_, v)| v[0]).collect::<Vec<_>>()),
            geomean(&savings),
        ],
    ));
    print_table(
        "Figure 18a: iso-area speedup vs RTX 4090",
        &["DigitalPUM", "DARTH-PUM"],
        &thr_rows,
    );
    print_table(
        "Figure 18b: iso-area energy savings vs RTX 4090",
        &["DigitalPUM", "DARTH-PUM"],
        &eng_rows,
    );
    println!("\nPaper reference: DARTH-PUM averages 11.8x throughput and 7.5x energy vs the GPU;");
    println!("AES gains are the smallest (cache-resident lookup tables favour the GPU).");
}
