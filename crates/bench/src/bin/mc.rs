//! The Monte-Carlo accuracy campaign at the paper's design points
//! (`make mc`): executed noise-injected trials of the standard
//! functional workloads (AES-128 FIPS-197, integer GEMM, conv, reduce)
//! on the SAR and ramp paper configurations, reporting per-workload
//! error statistics and trial throughput to `BENCH_mc.json`
//! (schema `darth-mc/v1`).
//!
//! Before the noisy campaign, a zero-sigma pass asserts the
//! noise-injected execution path reproduces the golden outputs
//! bit-exactly — noise-off and ideal are the same machine. Trial count:
//! `DARTH_MC_TRIALS` (default 32).

use darth_analog::adc::AdcKind;
use darth_bench::{emit_json, JsonValue};
use darth_eval::dse::DesignPoint;
use darth_eval::mc::{measure_accuracy, standard_workloads, McConfig};
use darth_pum::config::DarthConfig;
use std::time::Instant;

fn trials_from_env(default: usize) -> usize {
    std::env::var("DARTH_MC_TRIALS")
        .ok()
        .and_then(|raw| raw.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn paper_points() -> Vec<DesignPoint> {
    [AdcKind::Sar, AdcKind::Ramp]
        .iter()
        .map(|&adc| DesignPoint {
            name: format!("paper-{}", adc.slug()),
            axis_values: vec![("adc".to_owned(), adc.slug().to_owned())],
            config: DarthConfig::paper(adc),
        })
        .collect()
}

fn main() {
    let points = paper_points();
    let workloads = standard_workloads();

    // Zero-sigma gate: all noise sources zeroed, still on the noisy
    // code path, must match the golden outputs bit-exactly.
    let exact = measure_accuracy(&points, &workloads, &McConfig::zero_sigma().with_trials(1))
        .expect("zero-sigma campaign runs");
    for (point, accuracy) in points.iter().zip(&exact) {
        assert_eq!(
            accuracy.mean_error, 0.0,
            "{}: zero-sigma trials diverged from the golden outputs",
            point.name
        );
    }
    println!("zero-sigma campaign reproduced the golden outputs bit-exactly");

    let mc = McConfig::evaluation().with_trials(trials_from_env(32));
    let start = Instant::now();
    let accuracies = measure_accuracy(&points, &workloads, &mc).expect("campaign runs");
    let elapsed = start.elapsed().as_secs_f64();
    let trials = points.len() * workloads.len() * mc.trials;
    let trials_per_second = trials as f64 / elapsed.max(1e-12);

    println!(
        "\n=== Monte-Carlo accuracy (sigma_w = {}, sigma_r = {}, {} trials/workload) ===",
        mc.program_sigma, mc.read_sigma, mc.trials
    );
    for (point, accuracy) in points.iter().zip(&accuracies) {
        println!("{}:", point.name);
        for w in &accuracy.workloads {
            println!(
                "  {:<24} mean {:>10.3e}  worst {:>10.3e}  exact {}/{}",
                w.workload, w.mean_error, w.worst_error, w.exact_trials, w.trials
            );
        }
    }
    println!("\n{trials} trials in {elapsed:.2} s = {trials_per_second:.1} trials/s");

    emit_json(
        "mc",
        &JsonValue::object(vec![
            ("schema", JsonValue::from("darth-mc/v1")),
            ("trials_per_workload", JsonValue::from(mc.trials)),
            ("root_seed", JsonValue::from(mc.root_seed)),
            ("program_sigma", JsonValue::from(mc.program_sigma)),
            ("read_sigma", JsonValue::from(mc.read_sigma)),
            ("ir_drop_alpha", JsonValue::from(mc.ir_drop_alpha)),
            ("trials_per_second", JsonValue::from(trials_per_second)),
            (
                "points",
                JsonValue::array(
                    points
                        .iter()
                        .zip(&accuracies)
                        .map(|(p, a)| {
                            JsonValue::object(vec![
                                ("name", JsonValue::from(&p.name)),
                                ("accuracy", a.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    );
}
