//! Tables 2 and 3: the HCT configuration and area/power breakdown, printed
//! from the same constants the simulator computes with, plus the derived
//! iso-area chip sizing of §6.

use darth_analog::adc::AdcKind;
use darth_bench::{emit_json, JsonValue};
use darth_pum::params::{area, power, ChipParams, HctParams};

fn main() {
    let sar = HctParams::paper(AdcKind::Sar);
    println!("\n=== Table 2: hybrid compute tile configuration ===");
    println!("DCE pipelines            {}", sar.dce_pipelines);
    println!("DCE pipeline depth       {} arrays", sar.dce_pipeline_depth);
    println!("ReRAM array size         {0}x{0}", sar.array_dim);
    println!("ACE arrays               {}", sar.ace_arrays);
    println!("ADCs                     SAR: 2; Ramp: 1");
    println!("ADC latency              SAR: 1 cycle; Ramp: 256 cycles");

    let areas: Vec<(&str, f64)> = vec![
        ("DCE ReRAM array", area::DCE_ARRAY),
        ("Pipeline control", area::DCE_PIPELINE_CONTROL),
        ("IO ctrl", area::DCE_IO_CTRL),
        ("Decode & drive", area::DCE_DECODE_DRIVE),
        ("Pipeline select", area::DCE_PIPELINE_SELECT),
        ("ACE input buffers", area::ACE_INPUT_BUFFERS),
        ("Row periphery", area::ACE_ROW_PERIPHERY),
        ("SAR ADC", area::SAR_ADC),
        ("Ramp ADC", area::RAMP_ADC),
        ("Sample & hold", area::SAMPLE_HOLD),
        ("Shift unit", area::SHIFT_UNIT),
        ("A/D arbiter", area::AD_ARBITER),
        ("Transpose unit", area::TRANSPOSE_UNIT),
        ("Instr. injection unit", area::INSTR_INJECTION_UNIT),
        ("Front end (8 HCTs)", area::FRONT_END),
    ];
    let powers: Vec<(&str, f64)> = vec![
        ("Array (bool ops) mW", power::ARRAY_BOOL_OPS),
        ("Pipeline ctrl mW", power::PIPELINE_CTRL),
        ("Row periphery mW", power::ROW_PERIPHERY),
        ("SAR ADC mW", power::SAR_ADC),
        ("Ramp ADC mW", power::RAMP_ADC),
        ("S&H mW", power::SAMPLE_HOLD),
        ("Front end mW", power::FRONT_END),
    ];
    println!("\n=== Table 3: area (um^2) and power (mW) ===");
    for (label, value) in &areas {
        println!("{label:<26}{value:>12}");
    }
    println!();
    for (label, value) in &powers {
        println!("{label:<26}{value:>12}");
    }

    println!("\n=== Derived iso-area sizing (Section 6) ===");
    let mut sizing = Vec::new();
    for adc in [AdcKind::Sar, AdcKind::Ramp] {
        let chip = ChipParams::paper(adc);
        println!(
            "{:?}: {} HCTs, {:.1} GB capacity (paper: SAR 1860 / 4.1 GB, ramp 1660 / 3.7 GB)",
            adc,
            chip.hct_count(),
            chip.capacity_bytes() as f64 / 1e9
        );
        sizing.push(JsonValue::object(vec![
            ("adc", JsonValue::from(format!("{adc:?}"))),
            ("hcts", JsonValue::from(chip.hct_count() as u64)),
            ("capacity_bytes", JsonValue::from(chip.capacity_bytes())),
        ]));
    }

    let pairs = |items: &[(&'static str, f64)]| {
        JsonValue::Object(
            items
                .iter()
                .map(|&(k, v)| (k.into(), JsonValue::from(v)))
                .collect(),
        )
    };
    emit_json(
        "tables",
        &JsonValue::object(vec![
            ("schema", JsonValue::from("darth-bench-figure/v1")),
            ("figure", JsonValue::from("tables")),
            (
                "table2",
                JsonValue::object(vec![
                    ("dce_pipelines", JsonValue::from(sar.dce_pipelines)),
                    (
                        "dce_pipeline_depth",
                        JsonValue::from(sar.dce_pipeline_depth),
                    ),
                    ("array_dim", JsonValue::from(sar.array_dim)),
                    ("ace_arrays", JsonValue::from(sar.ace_arrays)),
                ]),
            ),
            ("table3_area_um2", pairs(&areas)),
            ("table3_power_mw", pairs(&powers)),
            ("iso_area_sizing", JsonValue::array(sizing)),
        ]),
    );
}
