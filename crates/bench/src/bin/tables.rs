//! Tables 2 and 3: the HCT configuration and area/power breakdown, printed
//! from the same constants the simulator computes with, plus the derived
//! iso-area chip sizing of §6.

use darth_analog::adc::AdcKind;
use darth_pum::params::{area, power, ChipParams, HctParams};

fn main() {
    let sar = HctParams::paper(AdcKind::Sar);
    println!("\n=== Table 2: hybrid compute tile configuration ===");
    println!("DCE pipelines            {}", sar.dce_pipelines);
    println!("DCE pipeline depth       {} arrays", sar.dce_pipeline_depth);
    println!("ReRAM array size         {0}x{0}", sar.array_dim);
    println!("ACE arrays               {}", sar.ace_arrays);
    println!("ADCs                     SAR: 2; Ramp: 1");
    println!("ADC latency              SAR: 1 cycle; Ramp: 256 cycles");

    println!("\n=== Table 3: area (um^2) and power (mW) ===");
    println!("{:<26}{:>12}", "DCE ReRAM array", area::DCE_ARRAY);
    println!(
        "{:<26}{:>12}",
        "Pipeline control",
        area::DCE_PIPELINE_CONTROL
    );
    println!("{:<26}{:>12}", "IO ctrl", area::DCE_IO_CTRL);
    println!("{:<26}{:>12}", "Decode & drive", area::DCE_DECODE_DRIVE);
    println!("{:<26}{:>12}", "Pipeline select", area::DCE_PIPELINE_SELECT);
    println!("{:<26}{:>12}", "ACE input buffers", area::ACE_INPUT_BUFFERS);
    println!("{:<26}{:>12}", "Row periphery", area::ACE_ROW_PERIPHERY);
    println!("{:<26}{:>12}", "SAR ADC", area::SAR_ADC);
    println!("{:<26}{:>12}", "Ramp ADC", area::RAMP_ADC);
    println!("{:<26}{:>12}", "Sample & hold", area::SAMPLE_HOLD);
    println!("{:<26}{:>12}", "Shift unit", area::SHIFT_UNIT);
    println!("{:<26}{:>12}", "A/D arbiter", area::AD_ARBITER);
    println!("{:<26}{:>12}", "Transpose unit", area::TRANSPOSE_UNIT);
    println!(
        "{:<26}{:>12}",
        "Instr. injection unit",
        area::INSTR_INJECTION_UNIT
    );
    println!("{:<26}{:>12}", "Front end (8 HCTs)", area::FRONT_END);
    println!();
    println!("{:<26}{:>12}", "Array (bool ops) mW", power::ARRAY_BOOL_OPS);
    println!("{:<26}{:>12}", "Pipeline ctrl mW", power::PIPELINE_CTRL);
    println!("{:<26}{:>12}", "Row periphery mW", power::ROW_PERIPHERY);
    println!("{:<26}{:>12}", "SAR ADC mW", power::SAR_ADC);
    println!("{:<26}{:>12}", "Ramp ADC mW", power::RAMP_ADC);
    println!("{:<26}{:>12}", "S&H mW", power::SAMPLE_HOLD);
    println!("{:<26}{:>12}", "Front end mW", power::FRONT_END);

    println!("\n=== Derived iso-area sizing (Section 6) ===");
    for adc in [AdcKind::Sar, AdcKind::Ramp] {
        let chip = ChipParams::paper(adc);
        println!(
            "{:?}: {} HCTs, {:.1} GB capacity (paper: SAR 1860 / 4.1 GB, ramp 1660 / 3.7 GB)",
            adc,
            chip.hct_count(),
            chip.capacity_bytes() as f64 / 1e9
        );
    }
}
