//! Figure 14: AES kernel latency breakdown, normalised to Baseline's total.
//!
//! Three architectures (Baseline, DigitalPUM, DARTH-PUM), five kernels
//! (DataMovement, SubBytes, ShiftRows, MixColumns, AddRoundKey).

use darth_analog::adc::AdcKind;
use darth_apps::aes::workload::{block_trace, AesVariant};
use darth_baselines::analog_only::BaselineModel;
use darth_baselines::digital_only::DigitalPumModel;
use darth_digital::logic::LogicFamily;
use darth_pum::model::DarthModel;

fn main() {
    let trace = block_trace(AesVariant::Aes128);
    let baseline = BaselineModel::paper(AdcKind::Sar).price(&trace);
    let digital = DigitalPumModel::paper(LogicFamily::Oscar).price(&trace);
    let darth = DarthModel::paper(AdcKind::Sar).price(&trace);
    let base_total = baseline.latency_s;

    println!("\n=== Figure 14: AES kernel latency breakdown (% of Baseline total) ===");
    print!("{:<14}", "kernel");
    for arch in ["Baseline", "DigitalPUM", "DARTH-PUM"] {
        print!("{arch:>14}");
    }
    println!();
    let kernels = [
        "DataMovement",
        "SubBytes",
        "ShiftRows",
        "MixColumns",
        "AddRoundKey",
    ];
    for kernel in kernels {
        print!("{kernel:<14}");
        for report in [&baseline, &digital, &darth] {
            let t = report
                .kernel_latency_s
                .iter()
                .find(|(n, _)| n == kernel)
                .map(|(_, t)| *t)
                .unwrap_or(0.0);
            print!("{:>13.1}%", 100.0 * t / base_total);
        }
        println!();
    }
    print!("{:<14}", "TOTAL");
    for report in [&baseline, &digital, &darth] {
        print!("{:>13.1}%", 100.0 * report.latency_s / base_total);
    }
    println!();
    println!("\nPaper reference: DARTH-PUM single-encryption latency improves 53.7% over");
    println!("Baseline; MixColumns on DARTH-PUM is 11.5x faster than on DigitalPUM;");
    println!("DigitalPUM total is several times Baseline (MixColumns-dominated).");
    let mix_digital = digital
        .kernel_latency_s
        .iter()
        .find(|(n, _)| n == "MixColumns")
        .map(|(_, t)| *t)
        .unwrap_or(0.0);
    let mix_darth = darth
        .kernel_latency_s
        .iter()
        .find(|(n, _)| n == "MixColumns")
        .map(|(_, t)| *t)
        .unwrap_or(1.0);
    println!(
        "Measured MixColumns DigitalPUM/DARTH-PUM ratio: {:.1}x",
        mix_digital / mix_darth
    );
}
