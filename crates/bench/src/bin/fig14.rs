//! Figure 14: AES kernel latency breakdown, normalised to Baseline's total.
//!
//! Three architectures (Baseline, DigitalPUM, DARTH-PUM), five kernels
//! (DataMovement, SubBytes, ShiftRows, MixColumns, AddRoundKey) — all
//! read from the engine's AES row.

use darth_analog::adc::AdcKind;
use darth_bench::{emit_json, figure_json, paper_matrix, table_json};
use darth_pum::trace::CostReport;

fn main() {
    let matrix = paper_matrix(AdcKind::Sar);
    let baseline = matrix.cell("aes-128", "baseline-sar").expect("priced");
    let digital = matrix.cell("aes-128", "digitalpum-oscar").expect("priced");
    let darth = matrix.cell("aes-128", "darth-sar").expect("priced");
    let base_total = baseline.latency_s;

    let lookup = |report: &CostReport, kernel: &str| {
        report
            .kernel_latency_s
            .iter()
            .find(|(n, _)| n == kernel)
            .map(|(_, t)| *t)
            .unwrap_or(0.0)
    };

    println!("\n=== Figure 14: AES kernel latency breakdown (% of Baseline total) ===");
    print!("{:<14}", "kernel");
    for arch in ["Baseline", "DigitalPUM", "DARTH-PUM"] {
        print!("{arch:>14}");
    }
    println!();
    let kernels = [
        "DataMovement",
        "SubBytes",
        "ShiftRows",
        "MixColumns",
        "AddRoundKey",
    ];
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for kernel in kernels {
        print!("{kernel:<14}");
        let mut values = Vec::new();
        for report in [baseline, digital, darth] {
            let pct = 100.0 * lookup(report, kernel) / base_total;
            print!("{pct:>13.1}%");
            values.push(pct);
        }
        println!();
        rows.push((kernel.to_owned(), values));
    }
    print!("{:<14}", "TOTAL");
    let mut totals = Vec::new();
    for report in [baseline, digital, darth] {
        let pct = 100.0 * report.latency_s / base_total;
        print!("{pct:>13.1}%");
        totals.push(pct);
    }
    println!();
    rows.push(("TOTAL".to_owned(), totals));
    println!("\nPaper reference: DARTH-PUM single-encryption latency improves 53.7% over");
    println!("Baseline; MixColumns on DARTH-PUM is 11.5x faster than on DigitalPUM;");
    println!("DigitalPUM total is several times Baseline (MixColumns-dominated).");
    let mix_ratio =
        lookup(digital, "MixColumns") / lookup(darth, "MixColumns").max(f64::MIN_POSITIVE);
    println!("Measured MixColumns DigitalPUM/DARTH-PUM ratio: {mix_ratio:.1}x");
    emit_json(
        "fig14",
        &figure_json(
            "fig14",
            vec![table_json(
                "Figure 14: AES kernel latency breakdown (% of Baseline total)",
                &["Baseline", "DigitalPUM", "DARTH-PUM"],
                &rows,
            )],
        ),
    );
}
