//! Figure 16: energy savings normalised to Baseline (log-scale bars in the
//! paper), plus the abstract's 39.6x / 51.2x / 110.7x headline.

use darth_analog::adc::AdcKind;
use darth_bench::{all_reports, emit_json, figure_json, geomean_of, print_table, table_json};

fn main() {
    let reports = all_reports(AdcKind::Sar);
    let mut rows: Vec<(String, Vec<f64>)> = reports
        .iter()
        .map(|r| {
            let (d, h, a) = r.fig16_row();
            (r.label.clone(), vec![d, h, a])
        })
        .collect();
    rows.push((
        "GeoMean".to_owned(),
        vec![
            geomean_of(&reports, |r| r.fig16_row().0),
            geomean_of(&reports, |r| r.fig16_row().1),
            geomean_of(&reports, |r| r.fig16_row().2),
        ],
    ));
    let title = "Figure 16: energy savings normalised to Baseline";
    let header = ["DigitalPUM", "DARTH-PUM", "AppAccel"];
    print_table(title, &header, &rows);
    println!("\nPaper reference (DARTH-PUM column): AES 39.6, ResNet-20 51.2, LLMEnc 110.7, GeoMean 66.8");
    println!("Paper reference: DARTH-PUM ~2x DigitalPUM savings; AppAccel competitive, DARTH shortfall largest on ResNet-20");
    emit_json(
        "fig16",
        &figure_json("fig16", vec![table_json(title, &header, &rows)]),
    );
}
