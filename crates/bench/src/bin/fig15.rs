//! Figure 15: per-layer ResNet-20 speedup over Baseline for DigitalPUM,
//! DARTH-PUM and AppAccel (22 layers plus GeoMean).

use darth_analog::adc::AdcKind;
use darth_apps::cnn::resnet::ResNet;
use darth_apps::cnn::workload::inference_trace;
use darth_baselines::analog_only::BaselineModel;
use darth_baselines::app_accel::AppAccelModel;
use darth_baselines::digital_only::DigitalPumModel;
use darth_digital::logic::LogicFamily;
use darth_pum::model::DarthModel;
use darth_pum::trace::geomean;

fn main() {
    let net = ResNet::resnet20(1).expect("ResNet-20 builds");
    let trace = inference_trace(&net).expect("trace builds");
    let baseline = BaselineModel::paper(AdcKind::Sar).price(&trace);
    let digital = DigitalPumModel::paper(LogicFamily::Oscar).price(&trace);
    let darth = DarthModel::paper(AdcKind::Sar).price(&trace);
    let accel = AppAccelModel::cnn(AdcKind::Ramp).price(&trace);

    // Per-layer *throughput* ratio: each architecture's chip-level item
    // parallelism (throughput x latency) applies uniformly to its layers.
    let parallelism =
        |report: &darth_pum::trace::CostReport| report.throughput_items_per_s * report.latency_s;
    let lookup = |report: &darth_pum::trace::CostReport, name: &str| {
        report
            .kernel_latency_s
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
            .unwrap_or(f64::NAN)
    };
    let (pb, pd, ph, pa) = (
        parallelism(&baseline),
        parallelism(&digital),
        parallelism(&darth),
        parallelism(&accel),
    );
    // The Baseline's host-link movement belongs to the layers that caused
    // it (the paper's per-layer bars include each layer's transfers).
    let movement: f64 = baseline
        .kernel_latency_s
        .iter()
        .find(|(n, _)| n == "DataMovement")
        .map(|(_, t)| *t)
        .unwrap_or(0.0);
    let layer_count = (baseline.kernel_latency_s.len() - 1) as f64;
    let movement_share = movement / layer_count.max(1.0);

    println!("\n=== Figure 15: per-layer ResNet-20 speedup over Baseline ===");
    println!(
        "{:<16}{:>12}{:>12}{:>12}",
        "layer", "DigitalPUM", "DARTH-PUM", "AppAccel"
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(), Vec::new(), Vec::new()];
    for (kernel_name, _) in &baseline.kernel_latency_s {
        if kernel_name == "DataMovement" {
            continue;
        }
        let base = (lookup(&baseline, kernel_name) + movement_share) / pb;
        let row = [
            base / (lookup(&digital, kernel_name) / pd),
            base / (lookup(&darth, kernel_name) / ph),
            base / (lookup(&accel, kernel_name) / pa),
        ];
        println!(
            "{kernel_name:<16}{:>12.2}{:>12.2}{:>12.2}",
            row[0], row[1], row[2]
        );
        for (c, v) in cols.iter_mut().zip(row) {
            c.push(v);
        }
    }
    println!(
        "{:<16}{:>12.2}{:>12.2}{:>12.2}",
        "GeoMean",
        geomean(&cols[0]),
        geomean(&cols[1]),
        geomean(&cols[2])
    );
    println!("\nPaper reference: DARTH-PUM per-layer speedups cluster in the single digits");
    println!("(inference latency -40.0% vs Baseline); AppAccel's dedicated SFUs win per layer,");
    println!("DigitalPUM loses everywhere (bit-serial MVMs).");
}
