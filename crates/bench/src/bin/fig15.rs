//! Figure 15: per-layer ResNet-20 speedup over Baseline for DigitalPUM,
//! DARTH-PUM and AppAccel (22 layers plus GeoMean) — read from the
//! engine's ResNet row.

use darth_analog::adc::AdcKind;
use darth_bench::{emit_json, figure_json, paper_matrix, table_json};
use darth_pum::trace::geomean;

fn main() {
    let matrix = paper_matrix(AdcKind::Sar);
    let baseline = matrix.cell("resnet-20", "baseline-sar").expect("priced");
    let digital = matrix
        .cell("resnet-20", "digitalpum-oscar")
        .expect("priced");
    let darth = matrix.cell("resnet-20", "darth-sar").expect("priced");
    let accel = matrix.cell("resnet-20", "appaccel").expect("priced");

    // Per-layer *throughput* ratio: each architecture's chip-level item
    // parallelism (throughput x latency) applies uniformly to its layers.
    let parallelism =
        |report: &darth_pum::trace::CostReport| report.throughput_items_per_s * report.latency_s;
    let lookup = |report: &darth_pum::trace::CostReport, name: &str| {
        report
            .kernel_latency_s
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
            .unwrap_or(f64::NAN)
    };
    let (pb, pd, ph, pa) = (
        parallelism(baseline),
        parallelism(digital),
        parallelism(darth),
        parallelism(accel),
    );
    // The Baseline's host-link movement belongs to the layers that caused
    // it (the paper's per-layer bars include each layer's transfers).
    let movement: f64 = baseline
        .kernel_latency_s
        .iter()
        .find(|(n, _)| n == "DataMovement")
        .map(|(_, t)| *t)
        .unwrap_or(0.0);
    let layer_count = (baseline.kernel_latency_s.len() - 1) as f64;
    let movement_share = movement / layer_count.max(1.0);

    println!("\n=== Figure 15: per-layer ResNet-20 speedup over Baseline ===");
    println!(
        "{:<16}{:>12}{:>12}{:>12}",
        "layer", "DigitalPUM", "DARTH-PUM", "AppAccel"
    );
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(), Vec::new(), Vec::new()];
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for (kernel_name, _) in &baseline.kernel_latency_s {
        if kernel_name == "DataMovement" {
            continue;
        }
        let base = (lookup(baseline, kernel_name) + movement_share) / pb;
        let row = [
            base / (lookup(digital, kernel_name) / pd),
            base / (lookup(darth, kernel_name) / ph),
            base / (lookup(accel, kernel_name) / pa),
        ];
        println!(
            "{kernel_name:<16}{:>12.2}{:>12.2}{:>12.2}",
            row[0], row[1], row[2]
        );
        for (c, v) in cols.iter_mut().zip(row) {
            c.push(v);
        }
        rows.push((kernel_name.clone(), row.to_vec()));
    }
    let geomeans = [geomean(&cols[0]), geomean(&cols[1]), geomean(&cols[2])];
    println!(
        "{:<16}{:>12.2}{:>12.2}{:>12.2}",
        "GeoMean", geomeans[0], geomeans[1], geomeans[2]
    );
    rows.push(("GeoMean".to_owned(), geomeans.to_vec()));
    println!("\nPaper reference: DARTH-PUM per-layer speedups cluster in the single digits");
    println!("(inference latency -40.0% vs Baseline); AppAccel's dedicated SFUs win per layer,");
    println!("DigitalPUM loses everywhere (bit-serial MVMs).");
    emit_json(
        "fig15",
        &figure_json(
            "fig15",
            vec![table_json(
                "Figure 15: per-layer ResNet-20 speedup over Baseline",
                &["DigitalPUM", "DARTH-PUM", "AppAccel"],
                &rows,
            )],
        ),
    );
}
