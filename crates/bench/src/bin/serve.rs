//! The serving benchmark (`make serve`): a ≥1M-request deterministic
//! bursty trace, mixed over the standard class registry (AES key sizes,
//! GEMM shapes, convolution layers), served on a fleet drawn from the
//! default DSE sweep's aggregate Pareto frontier. Emits
//! `BENCH_serve.json` (`darth-serve/v1`): offered vs. sustained
//! throughput, p50/p99/p999 latency, batch-size histogram, cache hit
//! rates, per-chip utilization, differential spot-check totals, and the
//! warm-vs-cold resident-program comparison.
//!
//! Environment knobs:
//!
//! * `DARTH_SERVE_REQUESTS` — trace length (default 1,000,000);
//! * `DARTH_SERVE_SEED` — trace seed (default 20260809);
//! * `DARTH_SERVE_LOAD` — offered load in requests/s (default 500,000);
//! * `DARTH_EVAL_THREADS` — execution worker count (default: one per
//!   core), identical results at any value.

use darth_bench::{emit_json, JsonValue, Threading};
use darth_eval::dse::{default_sweep, frontier_fleet, price_sweep};
use darth_eval::registry::paper_workloads;
use darth_serve::{
    fleet_from_frontier, measure_warm_vs_cold, standard_classes, trace, FleetChip, ServeEngine,
    TraceSpec,
};
use std::time::Instant;

fn env_or<T: std::str::FromStr>(var: &str, default: T) -> T {
    std::env::var(var)
        .ok()
        .and_then(|raw| raw.trim().parse().ok())
        .unwrap_or(default)
}

fn main() {
    let requests: usize = env_or("DARTH_SERVE_REQUESTS", 1_000_000);
    let seed: u64 = env_or("DARTH_SERVE_SEED", 20_260_809);
    let offered_rps: f64 = env_or("DARTH_SERVE_LOAD", 500_000.0);

    // Fleet: the default sweep's aggregate Pareto frontier, replicated
    // to 8 chips with serving-sized caches.
    let points = default_sweep().generate().expect("default grid is valid");
    let sweep =
        price_sweep(&points, paper_workloads(), Threading::Parallel).expect("default grid builds");
    let frontier = frontier_fleet(&points, &sweep);
    assert!(!frontier.is_empty(), "the priced sweep has no frontier");
    let fleet: Vec<FleetChip> = fleet_from_frontier(&frontier, 8)
        .into_iter()
        .map(|chip| chip.with_cache_capacity(8).with_queue_capacity(512))
        .collect();
    println!(
        "fleet ({} chips from {} frontier points):",
        fleet.len(),
        frontier.len()
    );
    for chip in &fleet {
        println!("  {:<44} {:.2} GHz", chip.name, chip.clock_hz / 1e9);
    }

    let classes = standard_classes().expect("classes compile");
    let class_count = classes.len();
    let spec = TraceSpec::bursty(seed, requests, offered_rps);
    let start = Instant::now();
    let stream = trace::generate(&spec, class_count);
    println!(
        "\ntrace: {} requests over {} classes, seed {seed}, offered {offered_rps:.0} rps \
         (generated in {:.2} s)",
        stream.len(),
        class_count,
        start.elapsed().as_secs_f64()
    );

    let engine = ServeEngine::new(classes.clone(), fleet).expect("engine builds");
    let start = Instant::now();
    let mut report = engine.serve(&stream).expect("trace serves");
    let wall_s = start.elapsed().as_secs_f64();

    // Hard invariants: every sampled request is bit-exact against the
    // monolithic reference execution and the software golden.
    assert!(report.spot_checks.checked > 0, "no spot checks sampled");
    assert_eq!(
        report.spot_checks.mismatches, 0,
        "served outputs diverged from the reference executor"
    );
    assert_eq!(report.served + report.rejected, stream.len() as u64);

    // Warm vs. cold on the heaviest class (AES-256): what the resident
    // program cache buys over per-request preparation.
    let aes256 = classes
        .iter()
        .find(|class| class.name() == "aes256")
        .expect("standard classes include aes256");
    let warm_cold = measure_warm_vs_cold(aes256, 200).expect("warm/cold arms agree");
    assert!(
        warm_cold.speedup > 1.0,
        "resident serving did not beat cold per-request prepare"
    );
    report.warm_vs_cold = Some(warm_cold);

    println!(
        "\n=== serving ({} requests, {:.1} s wall) ===",
        report.requests, wall_s
    );
    println!(
        "  served {} / rejected {}  offered {:>12.0} rps  sustained {:>12.0} rps",
        report.served, report.rejected, report.offered_rps, report.sustained_rps
    );
    println!(
        "  latency p50 {:>10} ns  p99 {:>10} ns  p999 {:>10} ns  max {:>10} ns",
        report.latency.p50_ns, report.latency.p99_ns, report.latency.p999_ns, report.latency.max_ns
    );
    println!(
        "  batches {}  mean batch size {:.2}  cache hit rate {:.4}  ({} hits / {} misses / {} evictions)",
        report.batches(),
        report.mean_batch_size(),
        report.cache_hit_rate(),
        report.cache.hits,
        report.cache.misses,
        report.cache.evictions
    );
    println!(
        "  spot checks {} (0 mismatches)  wall throughput {:>10.0} req/s",
        report.spot_checks.checked,
        report.served as f64 / wall_s.max(1e-12)
    );
    println!("\n=== per-chip utilization ===");
    for chip in &report.chips {
        println!(
            "  {:<44} served {:>8}  batches {:>8}  util {:>6.3}",
            chip.name, chip.served, chip.batches, chip.utilization
        );
    }
    let wc = report.warm_vs_cold.expect("just set");
    println!(
        "\nwarm vs cold ({} requests): cold {:.3} s, warm {:.3} s, speedup {:.1}x",
        wc.requests, wc.cold_s, wc.warm_s, wc.speedup
    );

    // Wrap the serving report with the trace spec so BENCH_serve.json
    // is self-describing and exactly reproducible.
    let mut json = report.to_json();
    if let JsonValue::Object(pairs) = &mut json {
        pairs.insert(
            1,
            (
                "trace".into(),
                JsonValue::object(vec![
                    ("seed", JsonValue::from(seed)),
                    ("requests", JsonValue::from(requests)),
                    ("offered_rps", JsonValue::from(offered_rps)),
                    ("classes", JsonValue::from(class_count)),
                    ("wall_seconds", JsonValue::from(wall_s)),
                ]),
            ),
        );
    }
    emit_json("serve", &json);
}
