//! `make eval-large`: the bulk scenarios the streaming trace pipeline
//! exists for, priced under a memory ceiling.
//!
//! Prices the [`large_workloads`] registry — ≥1M-block bulk AES, a
//! BERT-large encoder at a 4096-token context, a GPT-2-XL-scale stack,
//! ResNet-110 — on every architecture column, twice over:
//!
//! * **streaming** (default): the engine records each emission as a
//!   run-length summary and replays it into every model's accumulator,
//!   plus a fused single-pass [`Engine::price_streamed`] cross-check.
//!   Peak memory stays flat no matter how many blocks stream by, which
//!   is why the `make eval-large` target runs this mode under
//!   `ulimit -v`.
//! * **`--materialized`**: the legacy path — `Workload::build_trace`
//!   collects every op into a heap `Vec` before pricing. For the bulk
//!   AES scenario that is ~3 GB of `KernelOp`s; under the same `ulimit`
//!   the allocation fails, which is the point the Makefile demonstrates.
//!
//! Results land in `BENCH_eval_large.json` together with per-workload
//! stream statistics (op events, estimated materialized bytes) and the
//! process's peak resident set.

use darth_bench::{emit_json, print_table, Engine, JsonValue, Threading};
use darth_eval::registry::{all_models, large_workloads};
use darth_pum::trace::{SummaryRecorder, Trace};
use std::time::Instant;

/// Peak resident set (`VmHWM`) in kilobytes, or 0 when `/proc` is
/// unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

fn print_stream_stats(name: &str, summary: &darth_pum::trace::TraceSummary) {
    println!(
        "{:<22} {:>12} op events, {:>6} summary runs, ~{:.2} GB if materialized",
        name,
        summary.op_count(),
        summary.kernels.iter().map(|k| k.runs.len()).sum::<usize>(),
        summary.materialized_bytes_estimate() as f64 / 1e9,
    );
}

fn main() {
    let materialized_mode = std::env::args().any(|a| a == "--materialized");
    let workloads = large_workloads();
    let models = all_models();

    let start = Instant::now();
    let result = if materialized_mode {
        // The legacy pipeline: collect every op on the heap, then price.
        // Bulk scenarios are expected to exhaust a memory-capped process
        // right there, in `Trace::from_workload`. (The stats pass first
        // records each stream — run-length, so it stays tiny.)
        for workload in &workloads {
            let mut recorder = SummaryRecorder::new();
            workload.emit(&mut recorder);
            print_stream_stats(&workload.name(), &recorder.finish());
        }
        println!("\nmaterializing traces (legacy path)...");
        let mut cells = Vec::new();
        for workload in &workloads {
            let trace = Trace::from_workload(workload.as_ref());
            println!(
                "materialized {}: {} kernels",
                trace.name,
                trace.kernels.len()
            );
            for model in &models {
                cells.push(model.price(&trace));
            }
        }
        println!("priced {} cells from materialized traces", cells.len());
        None
    } else {
        // The streaming engine: each emission recorded once into the
        // run-length summary cache, replayed per cell…
        let mut engine = Engine::new();
        engine.set_threading(Threading::Parallel);
        for workload in large_workloads() {
            engine.register_workload(workload);
        }
        for model in all_models() {
            engine.register_model(model);
        }
        let matrix = engine.run();
        // …with the stream statistics read back from that same cache
        // (no re-emission)…
        for workload in &workloads {
            let summary = engine
                .summary(&workload.name())
                .expect("run() cached every registered stream");
            print_stream_stats(&workload.name(), summary);
        }
        // …and cross-checked against the fused single-pass fanout.
        for workload in &workloads {
            let fused = engine.price_streamed(workload.as_ref());
            for (report, model) in fused.iter().zip(&models) {
                let cell = matrix
                    .cell(&workload.name(), &model.name())
                    .expect("cell priced");
                assert_eq!(
                    report,
                    cell,
                    "fused pass diverged from summary replay ({}, {})",
                    workload.name(),
                    model.name()
                );
            }
        }
        Some((engine, matrix))
    };
    let priced_s = start.elapsed().as_secs_f64();
    let mode = if materialized_mode {
        "materialized"
    } else {
        "streaming"
    };
    println!(
        "\npriced {} workloads x {} models in {priced_s:.3} s ({mode}); peak RSS {:.1} MB",
        workloads.len(),
        models.len(),
        peak_rss_kb() as f64 / 1024.0
    );

    let Some((engine, matrix)) = result else {
        // Materialized mode is a memory demonstration; no report file.
        return;
    };

    // Summary view: throughput and energy vs the SAR Baseline.
    let columns = ["digitalpum-oscar", "darth-sar", "appaccel", "gpu-rtx-4090"];
    let mut thr_rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut eng_rows: Vec<(String, Vec<f64>)> = Vec::new();
    for (w, workload) in matrix.workloads.iter().enumerate() {
        let baseline = matrix
            .cell(&workload.name, "baseline-sar")
            .expect("baseline column present");
        let mut thr = Vec::new();
        let mut eng = Vec::new();
        for column in columns {
            let m = matrix.model_index(column).expect("column present");
            thr.push(matrix.cell_at(w, m).speedup_over(baseline));
            eng.push(matrix.cell_at(w, m).energy_savings_over(baseline));
        }
        thr_rows.push((workload.name.clone(), thr));
        eng_rows.push((workload.name.clone(), eng));
    }
    let header = ["DigitalPUM", "DARTH-PUM", "AppAccel", "GPU"];
    print_table(
        "Bulk scenarios: throughput vs Baseline(SAR)",
        &header,
        &thr_rows,
    );
    print_table(
        "Bulk scenarios: energy savings vs Baseline(SAR)",
        &header,
        &eng_rows,
    );

    let streams = workloads
        .iter()
        .map(|workload| {
            let name = workload.name();
            let summary = engine
                .summary(&name)
                .expect("run() cached every registered stream");
            JsonValue::object(vec![
                ("workload", JsonValue::from(name)),
                ("op_events", JsonValue::from(summary.op_count())),
                ("kernel_events", JsonValue::from(summary.kernel_count())),
                (
                    "summary_runs",
                    JsonValue::from(summary.kernels.iter().map(|k| k.runs.len()).sum::<usize>()),
                ),
                (
                    "materialized_bytes_estimate",
                    JsonValue::from(summary.materialized_bytes_estimate()),
                ),
            ])
        })
        .collect();
    emit_json(
        "eval_large",
        &JsonValue::object(vec![
            ("schema", JsonValue::from("darth-bench-figure/v1")),
            ("figure", JsonValue::from("eval_large")),
            ("mode", JsonValue::from(mode)),
            ("priced_seconds", JsonValue::from(priced_s)),
            ("peak_rss_kb", JsonValue::from(peak_rss_kb())),
            ("streams", JsonValue::Array(streams)),
            ("matrix", matrix.to_json()),
        ]),
    );
}
