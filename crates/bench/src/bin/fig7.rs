//! Figure 7: AES-128 throughput for digital (D), naive hybrid (H-1..H-9)
//! and analog+CPU (A) configurations, OSCAR vs ideal logic families,
//! normalised to D with OSCAR.

use darth_baselines::naive_hybrid::NaiveHybridConfig;
use darth_digital::logic::LogicFamily;

fn main() {
    let sweep = NaiveHybridConfig::figure7_sweep();
    let d_oscar = sweep[0].aes_throughput(LogicFamily::Oscar);
    println!("\n=== Figure 7: naive hybrid AES-128 throughput (normalised to D/OSCAR) ===");
    println!(
        "{:<8}{:>10}{:>10}{:>12}",
        "config", "OSCAR", "Ideal", "D/A arrays"
    );
    for config in &sweep {
        let oscar = config.aes_throughput(LogicFamily::Oscar) / d_oscar;
        let ideal = config.aes_throughput(LogicFamily::Ideal) / d_oscar;
        let arrays = if config.analog_plus_cpu {
            "CPU+free".to_owned()
        } else {
            format!("{}/{}", config.digital_arrays, config.analog_arrays)
        };
        println!("{:<8}{oscar:>10.2}{ideal:>10.2}{arrays:>12}", config.label);
    }
    println!("\nPaper reference: peak at H-5 = 3.54x D; A = 1.18x D; ideal D = 2.1x D;");
    println!("ideal improves the best hybrid by only 3.2% (observation 3).");
}
