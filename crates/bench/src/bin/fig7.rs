//! Figure 7: AES-128 throughput for digital (D), naive hybrid (H-1..H-9)
//! and analog+CPU (A) configurations, OSCAR vs ideal logic families,
//! normalised to D with OSCAR.
//!
//! The naive hybrid is a two-resource bound over calibrated per-block
//! work constants, not a trace pricer, so this motivation figure stays on
//! [`NaiveHybridConfig`] directly; it shares the harness's JSON emitter.

use darth_baselines::naive_hybrid::NaiveHybridConfig;
use darth_bench::{emit_json, JsonValue};
use darth_digital::logic::LogicFamily;

fn main() {
    let sweep = NaiveHybridConfig::figure7_sweep();
    let d_oscar = sweep[0].aes_throughput(LogicFamily::Oscar);
    println!("\n=== Figure 7: naive hybrid AES-128 throughput (normalised to D/OSCAR) ===");
    println!(
        "{:<8}{:>10}{:>10}{:>12}",
        "config", "OSCAR", "Ideal", "D/A arrays"
    );
    let mut rows = Vec::new();
    for config in &sweep {
        let oscar = config.aes_throughput(LogicFamily::Oscar) / d_oscar;
        let ideal = config.aes_throughput(LogicFamily::Ideal) / d_oscar;
        let arrays = if config.analog_plus_cpu {
            "CPU+free".to_owned()
        } else {
            format!("{}/{}", config.digital_arrays, config.analog_arrays)
        };
        println!("{:<8}{oscar:>10.2}{ideal:>10.2}{arrays:>12}", config.label);
        rows.push(JsonValue::object(vec![
            ("config", JsonValue::from(config.label)),
            ("oscar", JsonValue::from(oscar)),
            ("ideal", JsonValue::from(ideal)),
            ("arrays", JsonValue::from(arrays)),
        ]));
    }
    println!("\nPaper reference: peak at H-5 = 3.54x D; A = 1.18x D; ideal D = 2.1x D;");
    println!("ideal improves the best hybrid by only 3.2% (observation 3).");
    emit_json(
        "fig7",
        &JsonValue::object(vec![
            ("schema", JsonValue::from("darth-bench-figure/v1")),
            ("figure", JsonValue::from("fig7")),
            ("normalised_to", JsonValue::from("D/OSCAR")),
            ("rows", JsonValue::array(rows)),
        ]),
    );
}
