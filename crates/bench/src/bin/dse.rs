//! The design-space exploration sweep: the default 48-configuration
//! grid (ADC kind × resolution × crossbar geometry × slicing × clock)
//! priced on the full extended workload registry, with the paper's SAR
//! and ramp design points asserted to reproduce the Figure 13 pricing
//! byte-for-byte inside the sweep.
//!
//! The serial pass is the reference: the parallel pass must produce a
//! bit-identical sweep (each workload row replays once into a fanout
//! over all design-point columns; workers own disjoint rows). Results —
//! the priced matrix, Pareto frontiers over (latency, energy, tile
//! area) and the per-workload best-config table — land in
//! `BENCH_dse.json` (`make dse`).

use darth_analog::adc::AdcKind;
use darth_bench::{all_reports, emit_json, Threading};
use darth_eval::dse::{default_sweep, price_sweep, Metric};
use darth_eval::engine::forced_workers;
use darth_eval::mc::{attach_accuracy, McConfig};
use darth_eval::registry::extended_workloads;
use darth_pum::config::DarthConfig;
use std::time::Instant;

fn main() {
    let sweep_def = default_sweep();
    let points = sweep_def.generate().expect("default grid is valid");
    assert!(points.len() >= 48, "default grid shrank below 48 configs");

    let start = Instant::now();
    let serial =
        price_sweep(&points, extended_workloads(), Threading::Serial).expect("default grid builds");
    let serial_s = start.elapsed().as_secs_f64();

    let threading = match forced_workers("DARTH_EVAL_THREADS") {
        Some(n) => Threading::Workers(n),
        None => Threading::Parallel,
    };
    let start = Instant::now();
    let mut sweep =
        price_sweep(&points, extended_workloads(), threading).expect("default grid builds");
    let parallel_s = start.elapsed().as_secs_f64();
    assert_eq!(
        sweep, serial,
        "parallel and serial sweeps must be bit-identical"
    );
    println!(
        "priced {} configs x {} workloads = {} cells (serial {serial_s:.3} s, parallel {parallel_s:.3} s)",
        sweep.points.len(),
        sweep.matrix.workloads.len(),
        sweep.matrix.cells.len()
    );

    // The paper's design points, byte-identical inside the sweep: each
    // sweep cell equals the Figure 13–18 engine pricing (CostReport
    // equality), and the rendered figure numbers — the Figure 13
    // throughput-vs-Baseline ratios — match as strings.
    for adc in [AdcKind::Sar, AdcKind::Ramp] {
        let paper = DarthConfig::paper(adc);
        let point = sweep
            .points
            .iter()
            .find(|p| p.config_params == paper.params())
            .unwrap_or_else(|| panic!("paper {adc:?} point missing from the sweep"));
        for report in all_reports(adc) {
            let cell = sweep
                .cell(&report.name, &point.name)
                .expect("paper workload is in the sweep");
            assert_eq!(
                cell, &report.darth,
                "{}: sweep cell diverged from the figure pricing",
                report.name
            );
            let figure_number = format!("{}", report.darth.speedup_over(&report.baseline));
            let sweep_number = format!("{}", cell.speedup_over(&report.baseline));
            assert_eq!(figure_number, sweep_number, "{}", report.name);
        }
        println!(
            "paper design point reproduced byte-identically: {}",
            point.name
        );
    }

    // Aggregate Pareto frontier over (geomean latency, geomean energy,
    // tile area).
    println!("\n=== Aggregate Pareto frontier (latency / energy / tile area) ===");
    for p in sweep.pareto_frontier_aggregate() {
        let (latency, energy) = sweep.aggregate(p);
        println!(
            "  {:<44} {latency:>12.3e} s {energy:>12.3e} J {:>12.0} um2",
            sweep.points[p].name, sweep.points[p].tile_area_um2
        );
    }

    println!("\n=== Per-workload best configs ===");
    println!(
        "  {:<20}{:<40}{:<40}{:<40}",
        "workload", "best latency", "best energy", "best throughput"
    );
    for (workload, [latency, energy, throughput]) in sweep.best_table() {
        let name = |p: Option<usize>| p.map_or("-".to_owned(), |p| sweep.points[p].name.clone());
        println!(
            "  {workload:<20}{:<40}{:<40}{:<40}",
            name(latency),
            name(energy),
            name(throughput)
        );
    }
    // Every row of a fully-priced sweep has a winner under every metric.
    for workload in &sweep.matrix.workloads {
        for metric in [Metric::Latency, Metric::Energy, Metric::Throughput] {
            assert!(
                sweep.best_for(&workload.name, metric).is_some(),
                "{}: no finite cell under {metric:?}",
                workload.name
            );
        }
    }

    // Monte-Carlo accuracy: executed noise-injected trials of the
    // standard functional workloads at every design point attach the
    // 4th (accuracy) Pareto axis to each row. Trial count per
    // (point, workload): DARTH_MC_TRIALS (default 4).
    let trials = std::env::var("DARTH_MC_TRIALS")
        .ok()
        .and_then(|raw| raw.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);
    let mc = McConfig::evaluation().with_trials(trials);
    let start = Instant::now();
    attach_accuracy(&mut sweep, &points, &mc).expect("Monte-Carlo campaign runs");
    assert!(
        sweep.points.iter().all(|p| p.accuracy.is_some()),
        "a sweep row is missing its Monte-Carlo accuracy"
    );
    println!(
        "\nMonte-Carlo accuracy attached: {} points x {} trials/workload in {:.2} s",
        sweep.points.len(),
        trials,
        start.elapsed().as_secs_f64()
    );

    emit_json("dse", &sweep.to_json());
}
