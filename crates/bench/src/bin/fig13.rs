//! Figure 13: iso-area throughput normalised to Baseline, plus the
//! abstract's headline speedups (59.4× / 14.8× / 40.8×).

use darth_analog::adc::AdcKind;
use darth_bench::{all_reports, emit_json, figure_json, geomean_of, print_table, table_json};

fn main() {
    let reports = all_reports(AdcKind::Sar);
    let mut rows: Vec<(String, Vec<f64>)> = reports
        .iter()
        .map(|r| {
            let (d, h, a) = r.fig13_row();
            (r.label.clone(), vec![d, h, a])
        })
        .collect();
    rows.push((
        "GeoMean".to_owned(),
        vec![
            geomean_of(&reports, |r| r.fig13_row().0),
            geomean_of(&reports, |r| r.fig13_row().1),
            geomean_of(&reports, |r| r.fig13_row().2),
        ],
    ));
    let title = "Figure 13: throughput normalised to Baseline";
    let header = ["DigitalPUM", "DARTH-PUM", "AppAccel"];
    print_table(title, &header, &rows);
    println!(
        "\nPaper reference (DARTH-PUM column): AES 59.4, ResNet-20 14.8, LLMEnc 40.8, GeoMean 31.4"
    );
    println!("Paper reference (AppAccel): AES-NI = DARTH/36.9, ResNet within 26.2% above DARTH, LLM above DARTH");
    emit_json(
        "fig13",
        &figure_json("fig13", vec![table_json(title, &header, &rows)]),
    );
}
