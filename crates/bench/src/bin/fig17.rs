//! Figure 17: SAR vs ramp ADCs — throughput and energy savings for
//! Baseline, DARTH-PUM and AppAccel, normalised to Baseline with SAR.

use darth_analog::adc::AdcKind;
use darth_bench::{all_reports, emit_json, figure_json, print_table, table_json};

fn main() {
    let sar = all_reports(AdcKind::Sar);
    let ramp = all_reports(AdcKind::Ramp);
    let mut thr_rows = Vec::new();
    let mut eng_rows = Vec::new();
    for (s, r) in sar.iter().zip(&ramp) {
        let base = &s.baseline; // Baseline: SAR is the normalisation
        thr_rows.push((
            s.label.clone(),
            vec![
                r.baseline.speedup_over(base),
                r.darth.speedup_over(base),
                s.darth.speedup_over(base),
            ],
        ));
        eng_rows.push((
            s.label.clone(),
            vec![
                r.baseline.energy_savings_over(base),
                r.darth.energy_savings_over(base),
                s.darth.energy_savings_over(base),
            ],
        ));
    }
    let header = ["Base:Ramp", "DARTH:Ramp", "DARTH:SAR"];
    let thr_title = "Figure 17a: throughput vs Baseline(SAR)";
    let eng_title = "Figure 17b: energy savings vs Baseline(SAR)";
    print_table(thr_title, &header, &thr_rows);
    print_table(eng_title, &header, &eng_rows);
    // AES early-termination: the one case where ramp wins (§7.3)
    let aes_sar = sar.iter().find(|r| r.name == "aes-128").expect("aes");
    let aes_ramp = ramp.iter().find(|r| r.name == "aes-128").expect("aes");
    println!(
        "\nAES DARTH ramp/SAR throughput ratio: {:.2} (paper: ramp wins AES via 256->4-cycle early termination)",
        aes_ramp.darth.throughput_items_per_s / aes_sar.darth.throughput_items_per_s
    );
    println!("Paper reference: SAR outperforms ramp by 1.5x overall at 99% of the energy savings;");
    println!("Boolean PUM ops are >88% of DARTH-PUM energy, so ADC choice barely moves energy.");
    emit_json(
        "fig17",
        &figure_json(
            "fig17",
            vec![
                table_json(thr_title, &header, &thr_rows),
                table_json(eng_title, &header, &eng_rows),
            ],
        ),
    );
}
