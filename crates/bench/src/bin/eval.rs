//! The full extended evaluation matrix in one run: every scenario sweep
//! (AES key sizes, ResNet depths, encoder shapes, GEMM sizes) priced on
//! every architecture column, serially and in parallel.
//!
//! The serial pass is the reference: the parallel pass must produce a
//! bit-identical matrix (the engine only ever writes disjoint slices),
//! and on a multi-core host it should be measurably faster. The priced
//! matrix lands in `BENCH_eval.json` (`make eval`).

use darth_bench::{emit_json, print_table, Engine, JsonValue, Threading};
use darth_eval::registry::{all_models, extended_workloads};
use std::time::Instant;

fn build_engine() -> Engine {
    let mut engine = Engine::new();
    for workload in extended_workloads() {
        engine.register_workload(workload);
    }
    for model in all_models() {
        engine.register_model(model);
    }
    engine
}

fn main() {
    let mut serial_engine = build_engine();
    serial_engine.set_threading(Threading::Serial);
    let start = Instant::now();
    let serial_matrix = serial_engine.run();
    let serial_s = start.elapsed().as_secs_f64();

    // `DARTH_EVAL_THREADS` forces a worker count (e.g. to exercise the
    // multi-threaded path on a single-core CI box); the default is one
    // worker per available core. Empty, zero or non-numeric values fall
    // back to the default with a warning (`engine::forced_workers`).
    let forced_threads = darth_eval::engine::forced_workers("DARTH_EVAL_THREADS");
    let mut parallel_engine = build_engine();
    if let Some(n) = forced_threads {
        parallel_engine.set_threading(Threading::Workers(n));
    }
    let start = Instant::now();
    let matrix = parallel_engine.run();
    let parallel_s = start.elapsed().as_secs_f64();

    assert_eq!(
        matrix, serial_matrix,
        "parallel and serial runs must be bit-identical"
    );
    let threads = forced_threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from));
    println!(
        "priced {} workloads x {} models = {} cells",
        matrix.workloads.len(),
        matrix.models.len(),
        matrix.cells.len()
    );
    println!(
        "serial: {serial_s:.3} s; parallel ({threads} threads): {parallel_s:.3} s; speedup {:.2}x",
        serial_s / parallel_s
    );

    // Summary view: throughput and energy vs the SAR Baseline.
    let mut thr_rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut eng_rows: Vec<(String, Vec<f64>)> = Vec::new();
    let columns = ["digitalpum-oscar", "darth-sar", "appaccel", "gpu-rtx-4090"];
    for (w, workload) in matrix.workloads.iter().enumerate() {
        let baseline = matrix
            .cell(&workload.name, "baseline-sar")
            .expect("baseline column present");
        let mut thr = Vec::new();
        let mut eng = Vec::new();
        for column in columns {
            let m = matrix.model_index(column).expect("column present");
            thr.push(matrix.cell_at(w, m).speedup_over(baseline));
            eng.push(matrix.cell_at(w, m).energy_savings_over(baseline));
        }
        thr_rows.push((workload.name.clone(), thr));
        eng_rows.push((workload.name.clone(), eng));
    }
    thr_rows.push((
        "GeoMean".to_owned(),
        columns
            .iter()
            .map(|c| matrix.geomean_speedup(c, "baseline-sar"))
            .collect(),
    ));
    eng_rows.push((
        "GeoMean".to_owned(),
        columns
            .iter()
            .map(|c| matrix.geomean_energy_savings(c, "baseline-sar"))
            .collect(),
    ));
    let header = ["DigitalPUM", "DARTH-PUM", "AppAccel", "GPU"];
    print_table(
        "Extended matrix: throughput vs Baseline(SAR)",
        &header,
        &thr_rows,
    );
    print_table(
        "Extended matrix: energy savings vs Baseline(SAR)",
        &header,
        &eng_rows,
    );

    emit_json(
        "eval",
        &JsonValue::object(vec![
            ("schema", JsonValue::from("darth-bench-figure/v1")),
            ("figure", JsonValue::from("eval")),
            ("serial_seconds", JsonValue::from(serial_s)),
            ("parallel_seconds", JsonValue::from(parallel_s)),
            ("threads", JsonValue::from(threads)),
            ("matrix", matrix.to_json()),
        ]),
    );
}
