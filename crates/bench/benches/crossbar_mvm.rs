//! Criterion bench: analog crossbar MVM with full non-ideality modelling.

use criterion::{criterion_group, criterion_main, Criterion};
use darth_analog::crossbar::{Crossbar, CrossbarConfig};
use darth_reram::NoiseRng;
use std::hint::black_box;

fn bench_mvm(c: &mut Criterion) {
    let mut rng = NoiseRng::seed_from(42);
    let config = CrossbarConfig::evaluation(2).expect("valid");
    let mut xbar = Crossbar::new(config).expect("valid");
    let matrix: Vec<Vec<i64>> = (0..64)
        .map(|r| (0..64).map(|cc| ((r * cc) % 7) as i64 - 3).collect())
        .collect();
    xbar.program(&matrix, &mut rng).expect("programs");
    let input: Vec<bool> = (0..64).map(|i| i % 3 != 0).collect();
    c.bench_function("crossbar_mvm_64x64_noisy", |b| {
        b.iter(|| {
            black_box(
                xbar.mvm_currents(black_box(&input), &mut rng)
                    .expect("runs"),
            )
        })
    });
    c.bench_function("crossbar_mvm_64x64_exact", |b| {
        b.iter(|| black_box(xbar.mvm_exact(black_box(&input)).expect("runs")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mvm
}
criterion_main!(benches);
