//! Criterion bench + machine-readable report for the `darth_kir`
//! compiler pipeline: per-kernel cost of the full build → verify →
//! allocate → lower path for every compiled application (AES-128, the
//! standard GEMM, the standard convolution, the PrIM-style reduction),
//! plus a self-timed summary with section instruction counts written to
//! `BENCH_kir.json` (schema `darth-bench-kir-compile/v1`). The compile
//! path is the serving engine's cold-start cost — resident classes pay
//! it once — so this pins how expensive "once" is.

use criterion::{criterion_group, Criterion};
use darth_apps::aes::golden::KeySize;
use darth_apps::aes::program::AesExec;
use darth_apps::cnn::program::ConvExec;
use darth_apps::gemm::GemmExec;
use darth_apps::reduce::ReduceExec;
use darth_bench::{emit_json, JsonValue};
use darth_kir::CompiledKernel;
use std::hint::black_box;
use std::time::Instant;

/// A thunk building and compiling one kernel's IR.
type CompileThunk = Box<dyn Fn() -> CompiledKernel>;

/// The benched kernels: name + a thunk building and compiling the IR.
fn kernels() -> Vec<(&'static str, CompileThunk)> {
    vec![
        (
            "aes-128",
            Box::new(|| {
                AesExec::fips197_appendix_c(KeySize::Aes128)
                    .build_ir()
                    .compile()
                    .expect("compiles")
            }) as CompileThunk,
        ),
        (
            "gemm",
            Box::new(|| GemmExec::standard().build_ir().compile().expect("compiles")),
        ),
        (
            "conv",
            Box::new(|| ConvExec::standard().build_ir().compile().expect("compiles")),
        ),
        (
            "reduce",
            Box::new(|| {
                ReduceExec::standard()
                    .build_ir()
                    .compile()
                    .expect("compiles")
            }),
        ),
    ]
}

fn bench_compile(c: &mut Criterion) {
    for (name, compile) in kernels() {
        c.bench_function(&format!("kir_compile_{name}"), |b| {
            b.iter(|| black_box(compile()))
        });
    }
}

fn compile_report() {
    let iters: usize = std::env::var("DARTH_KIR_BENCH_ITERS")
        .ok()
        .and_then(|raw| raw.trim().parse().ok())
        .unwrap_or(50);

    println!("\n=== kir_compile ({iters} iterations per kernel) ===");
    let mut rows = Vec::new();
    for (name, compile) in kernels() {
        let compiled = compile();
        let start = Instant::now();
        for _ in 0..iters {
            black_box(compile());
        }
        let micros = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
        println!(
            "{name:>8}: {micros:>9.1} µs/compile  (setup {} ‖ input {} ‖ body {} instructions)",
            compiled.setup_instructions(),
            compiled.input_instructions(),
            compiled.body_instructions(),
        );
        rows.push(JsonValue::object(vec![
            ("kernel", JsonValue::from(name)),
            ("compile_micros", JsonValue::from(micros)),
            (
                "setup_instructions",
                JsonValue::from(compiled.setup_instructions()),
            ),
            (
                "input_instructions",
                JsonValue::from(compiled.input_instructions()),
            ),
            (
                "body_instructions",
                JsonValue::from(compiled.body_instructions()),
            ),
        ]));
    }

    emit_json(
        "kir",
        &JsonValue::object(vec![
            ("schema", JsonValue::from("darth-bench-kir-compile/v1")),
            ("iterations", JsonValue::from(iters)),
            ("kernels", JsonValue::array(rows)),
        ]),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compile
}

fn main() {
    benches();
    compile_report();
}
