//! Criterion bench + machine-readable throughput report for the two
//! functional-simulator backends: the reference interpreter
//! (`SimExecutor`) and the fast path (`FastExecutor`: packed bit-planes,
//! precompiled dispatch, sharded tiles).
//!
//! Criterion covers per-block latency; the self-timed section then runs
//! a bulk-AES batch through both backends — fast at 1 worker and at one
//! worker per core — and writes simulated-instructions-per-second points
//! to `BENCH_sim.json` (schema `darth-bench-sim/v1`). Block count:
//! `DARTH_SIM_BENCH_BLOCKS` (default 64; the reference interpreter is
//! the budget constraint).

use criterion::{criterion_group, Criterion};
use darth_bench::{emit_json, JsonValue};
use darth_pum::eval::ExecJob;
use darth_sim::{bulk_aes_cases, FastExecutor, SimExecutor, StatExecutor};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn bulk_jobs(blocks: usize) -> Vec<ExecJob> {
    bulk_aes_cases(blocks)
        .iter()
        .map(|case| case.executable.job().expect("compiles"))
        .collect()
}

fn bench_block_latency(c: &mut Criterion) {
    let job = &bulk_jobs(1)[0];
    let reference = SimExecutor::new();
    c.bench_function("sim_reference_aes_block", |b| {
        b.iter(|| black_box(reference.execute_with_stats(black_box(job)).expect("runs")))
    });
    let fast = FastExecutor::new();
    c.bench_function("sim_fast_aes_block", |b| {
        b.iter(|| black_box(fast.execute_with_stats(black_box(job)).expect("runs")))
    });
}

/// One measured configuration of the throughput sweep.
struct Point {
    executor: &'static str,
    workers: usize,
    instructions: u64,
    elapsed: Duration,
}

impl Point {
    fn instr_per_sec(&self) -> f64 {
        self.instructions as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    fn json(&self) -> JsonValue<'_> {
        JsonValue::object(vec![
            ("executor", JsonValue::from(self.executor)),
            ("workers", JsonValue::from(self.workers)),
            ("instructions", JsonValue::from(self.instructions)),
            ("seconds", JsonValue::from(self.elapsed.as_secs_f64())),
            ("instr_per_sec", JsonValue::from(self.instr_per_sec())),
        ])
    }
}

fn throughput_report() {
    let blocks: usize = std::env::var("DARTH_SIM_BENCH_BLOCKS")
        .ok()
        .and_then(|raw| raw.trim().parse().ok())
        .unwrap_or(64);
    let jobs = bulk_jobs(blocks);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut points = Vec::new();

    // Reference interpreter, serial (it has no batch mode by design).
    let reference = SimExecutor::new();
    let start = Instant::now();
    let mut instructions = 0u64;
    for job in &jobs {
        let (_, stats) = reference.execute_with_stats(job).expect("reference runs");
        instructions += stats.run.instructions;
    }
    points.push(Point {
        executor: "darth-sim",
        workers: 1,
        instructions,
        elapsed: start.elapsed(),
    });

    // Fast path at 1 worker (packed planes + precompiled dispatch alone)
    // and at one worker per core (sharding on top).
    for workers in [1, cores] {
        let fast = FastExecutor::new().with_workers(workers);
        let start = Instant::now();
        let stats = fast.execute_batch_with_stats(&jobs).expect("fast runs");
        let elapsed = start.elapsed();
        points.push(Point {
            executor: "darth-sim-fast",
            workers,
            instructions: stats.iter().map(|(_, s)| s.run.instructions).sum(),
            elapsed,
        });
        if workers == cores {
            break; // cores == 1: don't measure the same point twice
        }
    }

    let reference_rate = points[0].instr_per_sec();
    println!("\n=== sim_throughput ({blocks} AES blocks) ===");
    for p in &points {
        println!(
            "{:<14} workers={:<3} {:>12} instructions in {:>8.3}s = {:>12.0} instr/s ({:>6.1}x)",
            p.executor,
            p.workers,
            p.instructions,
            p.elapsed.as_secs_f64(),
            p.instr_per_sec(),
            p.instr_per_sec() / reference_rate,
        );
    }

    let best = points
        .iter()
        .map(Point::instr_per_sec)
        .fold(0.0f64, f64::max);
    let report = JsonValue::object(vec![
        ("schema", JsonValue::from("darth-bench-sim/v1")),
        ("blocks", JsonValue::from(blocks)),
        (
            "points",
            JsonValue::array(points.iter().map(Point::json).collect()),
        ),
        (
            "fast_speedup_1_worker",
            JsonValue::from(points[1].instr_per_sec() / reference_rate),
        ),
        ("fast_speedup_best", JsonValue::from(best / reference_rate)),
    ]);
    emit_json("sim", &report);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_block_latency
}

fn main() {
    benches();
    throughput_report();
}
