//! Criterion bench + machine-readable report for the serving fast
//! path: per-request cost of **warm** serving (clone a resident
//! program's prototype, run the input stub + compiled body) vs. a
//! **cold** per-request preparation (decode + compile + tile build +
//! setup, then run), plus a self-timed requests-per-second comparison
//! written to `BENCH_serve_throughput.json`
//! (schema `darth-bench-serve-throughput/v1`). Request count:
//! `DARTH_SERVE_BENCH_REQUESTS` (default 200).

use criterion::{criterion_group, Criterion};
use darth_bench::{emit_json, JsonValue};
use darth_serve::{measure_warm_vs_cold, standard_classes, ServeClass};
use darth_sim::{FastExecutor, ResidentProgram};
use std::hint::black_box;

fn aes_class() -> ServeClass {
    standard_classes()
        .expect("classes compile")
        .into_iter()
        .find(|class| class.name() == "aes256")
        .expect("standard classes include aes256")
}

fn bench_request_latency(c: &mut Criterion) {
    let class = aes_class();

    let resident =
        ResidentProgram::for_split(class.split().clone()).expect("resident program builds");
    let input = class.input_program(1).expect("input lowers");
    c.bench_function("serve_warm_aes256_request", |b| {
        b.iter(|| black_box(resident.serve(black_box(&input)).expect("serves")))
    });

    let executor = FastExecutor::new();
    let job = class.full_job(1).expect("job lowers");
    c.bench_function("serve_cold_aes256_request", |b| {
        b.iter(|| {
            let prepared = executor.prepare(black_box(&job)).expect("prepares");
            black_box(executor.run_prepared(&prepared).expect("runs"))
        })
    });
}

fn throughput_report() {
    let requests: usize = std::env::var("DARTH_SERVE_BENCH_REQUESTS")
        .ok()
        .and_then(|raw| raw.trim().parse().ok())
        .unwrap_or(200);
    let class = aes_class();
    let report = measure_warm_vs_cold(&class, requests).expect("warm/cold arms agree");

    let cold_rps = report.requests as f64 / report.cold_s.max(1e-12);
    let warm_rps = report.requests as f64 / report.warm_s.max(1e-12);
    println!(
        "\n=== serve_throughput ({} {} requests) ===",
        requests,
        class.name()
    );
    println!(
        "cold (per-request prepare): {:>8.3}s = {:>10.0} req/s",
        report.cold_s, cold_rps
    );
    println!(
        "warm (resident program):    {:>8.3}s = {:>10.0} req/s",
        report.warm_s, warm_rps
    );
    println!("resident-program speedup:   {:>8.1}x", report.speedup);

    emit_json(
        "serve_throughput",
        &JsonValue::object(vec![
            ("schema", JsonValue::from("darth-bench-serve-throughput/v1")),
            ("class", JsonValue::from(class.name().to_owned())),
            ("requests", JsonValue::from(report.requests)),
            ("cold_seconds", JsonValue::from(report.cold_s)),
            ("warm_seconds", JsonValue::from(report.warm_s)),
            ("cold_requests_per_sec", JsonValue::from(cold_rps)),
            ("warm_requests_per_sec", JsonValue::from(warm_rps)),
            ("warm_speedup", JsonValue::from(report.speedup)),
        ]),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_request_latency
}

fn main() {
    benches();
    throughput_report();
}
