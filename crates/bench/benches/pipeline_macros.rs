//! Criterion bench: RACER pipeline macro operations (cell-accurate).

use criterion::{criterion_group, criterion_main, Criterion};
use darth_digital::logic::LogicFamily;
use darth_digital::pipeline::{Pipeline, PipelineConfig};
use darth_digital::BoolOp;
use std::hint::black_box;

fn pipeline() -> Pipeline {
    let mut p = Pipeline::new(PipelineConfig {
        depth: 32,
        elements: 64,
        vr_count: 16,
        scratch_cols: 12,
        family: LogicFamily::Oscar,
    })
    .expect("valid");
    p.write_vector(0, &vec![0xDEAD; 64]).expect("fits");
    p.write_vector(1, &vec![0xBEEF; 64]).expect("fits");
    p
}

fn bench_macros(c: &mut Criterion) {
    let mut p = pipeline();
    c.bench_function("pipeline_xor_64x32b", |b| {
        b.iter(|| p.bool_op(BoolOp::Xor, 2, 0, 1).expect("runs"))
    });
    c.bench_function("pipeline_add_64x32b", |b| {
        b.iter(|| p.add(3, 0, 1).expect("runs"))
    });
    c.bench_function("pipeline_shl_64x32b", |b| {
        b.iter(|| p.shl(4, 0, 3).expect("runs"))
    });
    c.bench_function("pipeline_relu_64x32b", |b| {
        b.iter(|| p.relu(5, 0).expect("runs"))
    });
    let _ = black_box(&p);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_macros
}
criterion_main!(benches);
