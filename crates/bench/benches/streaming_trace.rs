//! Criterion bench: streaming versus materialized pricing of a bulk AES
//! workload, plus the heap high-water mark of each path.
//!
//! The streaming path records/replays run-length op events and never
//! stores the trace; the materialized path collects every op into a heap
//! `Vec<KernelOp>` first (the pre-refactor pipeline). A counting global
//! allocator reports the peak live allocation of one run of each path
//! before the timed samples, making the O(1)-vs-O(ops) memory contrast
//! a measured number rather than a claim.

// The one place the workspace needs `unsafe`: a `GlobalAlloc` wrapper is
// the only way to observe the heap high-water mark, and the trait is
// itself unsafe to implement. The wrapper only counts and forwards.
#![allow(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use darth_analog::adc::AdcKind;
use darth_apps::aes::workload::{AesVariant, BulkAesWorkload};
use darth_pum::eval::{ArchModel, Workload};
use darth_pum::model::DarthModel;
use darth_pum::trace::Trace;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

/// `System`, instrumented with live/peak byte counters.
struct CountingAllocator;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Peak live bytes observed while running `f`, measured from the
/// current live level.
fn peak_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let before = LIVE.load(Ordering::Relaxed);
    PEAK.store(before, Ordering::Relaxed);
    let out = f();
    (out, PEAK.load(Ordering::Relaxed).saturating_sub(before))
}

fn bench_streaming(c: &mut Criterion) {
    // Large enough for the memory contrast to be unmistakable, small
    // enough that the materialized path still fits a bench process:
    // 2^15 blocks ≈ 2.3M ops ≈ 93 MB of KernelOps.
    let bulk = BulkAesWorkload {
        variant: AesVariant::Aes128,
        blocks: 1 << 15,
    };
    let model = DarthModel::paper(AdcKind::Sar);

    let (streamed, streaming_peak) = peak_during(|| {
        let mut acc = ArchModel::accumulator(&model);
        bulk.emit(&mut *acc);
        acc.finish()
    });
    let (materialized, materialized_peak) = peak_during(|| {
        let trace = Trace::from_workload(&bulk);
        model.price(&trace)
    });
    assert_eq!(streamed, materialized, "the two paths must agree exactly");
    println!(
        "peak heap while pricing {} blocks on darth-sar: streaming {:.1} KB, materialized {:.1} MB",
        bulk.blocks,
        streaming_peak as f64 / 1e3,
        materialized_peak as f64 / 1e6,
    );

    c.bench_function("bulk_aes_price_streaming", |b| {
        b.iter(|| {
            let mut acc = ArchModel::accumulator(&model);
            black_box(&bulk).emit(&mut *acc);
            black_box(acc.finish())
        })
    });
    c.bench_function("bulk_aes_price_materialized", |b| {
        b.iter(|| {
            let trace = Trace::from_workload(black_box(&bulk));
            black_box(model.price(&trace))
        })
    });
    c.bench_function("bulk_aes_materialize_only", |b| {
        b.iter(|| black_box(Trace::from_workload(black_box(&bulk))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_streaming
}
criterion_main!(benches);
