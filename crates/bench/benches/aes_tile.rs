//! Criterion bench: AES-128 block encryption on the functional hybrid
//! compute tile (cell-accurate OSCAR pulses + analog MixColumns), plus the
//! golden software implementation for reference.

use criterion::{criterion_group, criterion_main, Criterion};
use darth_apps::aes::golden::Aes;
use darth_apps::aes::mapping::AesDarth;
use std::hint::black_box;

fn bench_aes(c: &mut Criterion) {
    let key = *b"benchmark-key-16";
    let block = *b"benchmark-block!";
    let golden = Aes::new_128(&key);
    c.bench_function("aes_golden_block", |b| {
        b.iter(|| black_box(golden.encrypt_block(black_box(&block))))
    });
    let mut engine = AesDarth::new_128(&key).expect("engine builds");
    c.bench_function("aes_hybrid_tile_block", |b| {
        b.iter(|| black_box(engine.encrypt_block(black_box(&block)).expect("encrypts")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_aes
}
criterion_main!(benches);
