//! Criterion bench + machine-readable report for the Monte-Carlo
//! accuracy engine: per-trial latency of a noise-injected execution
//! (criterion), then a self-timed campaign at the paper's SAR design
//! point writing trial throughput and per-workload accuracy to
//! `BENCH_mc.json` (schema `darth-mc/v1`, the same report `make mc`
//! regenerates at full trial count). Campaign size:
//! `DARTH_MC_TRIALS` (default 16 here; the bin defaults to 32).

use criterion::{criterion_group, Criterion};
use darth_analog::adc::AdcKind;
use darth_bench::{emit_json, JsonValue};
use darth_eval::dse::DesignPoint;
use darth_eval::mc::{measure_accuracy, standard_workloads, McConfig};
use darth_pum::config::DarthConfig;
use std::hint::black_box;
use std::time::Instant;

fn paper_sar_point() -> DesignPoint {
    DesignPoint {
        name: "paper-sar".to_owned(),
        axis_values: vec![("adc".to_owned(), "sar".to_owned())],
        config: DarthConfig::paper(AdcKind::Sar),
    }
}

fn bench_trial_latency(c: &mut Criterion) {
    let point = [paper_sar_point()];
    let workloads = standard_workloads();
    // One noisy trial per call: seed-tree derivation + tile build +
    // noise-injected execution + error fold.
    let mc = McConfig::evaluation().with_trials(1);
    c.bench_function("mc_noisy_trial_all_workloads", |b| {
        b.iter(|| {
            black_box(measure_accuracy(black_box(&point), &workloads, &mc).expect("campaign runs"))
        })
    });
}

fn campaign_report() {
    let trials = std::env::var("DARTH_MC_TRIALS")
        .ok()
        .and_then(|raw| raw.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(16);
    let point = [paper_sar_point()];
    let workloads = standard_workloads();
    let mc = McConfig::evaluation().with_trials(trials);

    let start = Instant::now();
    let accuracies = measure_accuracy(&point, &workloads, &mc).expect("campaign runs");
    let elapsed = start.elapsed().as_secs_f64();
    let total = workloads.len() * mc.trials;
    let trials_per_second = total as f64 / elapsed.max(1e-12);

    println!(
        "\n=== mc campaign (paper-sar, {} trials/workload) ===",
        mc.trials
    );
    for w in &accuracies[0].workloads {
        println!(
            "{:<24} mean {:>10.3e}  worst {:>10.3e}  exact {}/{}",
            w.workload, w.mean_error, w.worst_error, w.exact_trials, w.trials
        );
    }
    println!("{total} trials in {elapsed:.2} s = {trials_per_second:.1} trials/s");

    emit_json(
        "mc",
        &JsonValue::object(vec![
            ("schema", JsonValue::from("darth-mc/v1")),
            ("trials_per_workload", JsonValue::from(mc.trials)),
            ("root_seed", JsonValue::from(mc.root_seed)),
            ("program_sigma", JsonValue::from(mc.program_sigma)),
            ("read_sigma", JsonValue::from(mc.read_sigma)),
            ("ir_drop_alpha", JsonValue::from(mc.ir_drop_alpha)),
            ("trials_per_second", JsonValue::from(trials_per_second)),
            (
                "points",
                JsonValue::array(
                    point
                        .iter()
                        .zip(&accuracies)
                        .map(|(p, a)| {
                            JsonValue::object(vec![
                                ("name", JsonValue::from(&p.name)),
                                ("accuracy", a.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trial_latency
}

fn main() {
    benches();
    campaign_report();
}
