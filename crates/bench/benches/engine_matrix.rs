//! Criterion bench: the evaluation engine pricing the paper's workload ×
//! architecture matrix, serial vs parallel scheduling (bit-identical
//! results; the gap is the thread-scope win on multi-core hosts).

use criterion::{criterion_group, criterion_main, Criterion};
use darth_eval::registry::{all_models, extended_workloads, paper_workloads};
use darth_eval::{Engine, Threading};
use std::hint::black_box;

fn engine(threading: Threading) -> Engine {
    let mut e = Engine::new();
    for workload in paper_workloads() {
        e.register_workload(workload);
    }
    for model in all_models() {
        e.register_model(model);
    }
    e.set_threading(threading);
    e
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("eval_matrix_serial", |b| {
        b.iter(|| {
            let mut e = engine(Threading::Serial);
            black_box(e.run())
        })
    });
    c.bench_function("eval_matrix_parallel", |b| {
        b.iter(|| {
            let mut e = engine(Threading::Parallel);
            black_box(e.run())
        })
    });
    c.bench_function("eval_matrix_trace_memoized", |b| {
        // Reuse one engine: traces are built once, reruns only price.
        let mut e = engine(Threading::Parallel);
        e.run();
        b.iter(|| black_box(e.run()))
    });

    // Serialization of the full 14-workload × 8-model extended matrix:
    // the JSON tree build plus the text render behind `BENCH_eval.json`.
    let mut e = Engine::new();
    for workload in extended_workloads() {
        e.register_workload(workload);
    }
    for model in all_models() {
        e.register_model(model);
    }
    let matrix = e.run();
    c.bench_function("extended_matrix_to_json", |b| {
        b.iter(|| black_box(matrix.to_json()))
    });
    c.bench_function("extended_matrix_to_json_pretty", |b| {
        b.iter(|| black_box(matrix.to_json().pretty()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine
}
criterion_main!(benches);
