//! The serving engine: admission + scheduling over a heterogeneous
//! chip fleet, same-signature batch formation, and per-chip execution
//! against resident compiled programs.
//!
//! A serving run is three deterministic passes:
//!
//! 1. **Admission** (sequential): requests are walked in arrival order
//!    through a discrete-event model of every chip's backlog. Each
//!    request goes to the chip with the earliest *estimated* finish
//!    (per-class cycle estimates calibrated once on a scratch resident
//!    program, scaled by each chip's clock); chips whose bounded
//!    admission queue is full drop out, and a request rejected by every
//!    chip is dropped.
//! 2. **Execution** (parallel over whole chips): each chip replays its
//!    assignment list on a virtual timeline. At each dispatch the head
//!    request is coalesced with every already-arrived pending request
//!    sharing its program signature (up to the batch limit), the
//!    resident program is fetched from the chip's LRU
//!    [`ProgramCache`] — a miss charges the one-time setup cycles — and
//!    each batch member runs as one input stub + compiled body on a
//!    clone of the warmed prototype. Worker threads shard *whole
//!    chips*, so every chip's timeline, outputs and counters are
//!    byte-identical at any worker count.
//! 3. **Merge** (sequential): per-chip records fold into fleet-wide
//!    percentiles, throughput, batch histograms, cache totals,
//!    utilization and an order-independent output digest.
//!
//! Time is *virtual* — cycle counts from the functional simulation
//! divided by each chip's frontier clock — so latency percentiles are
//! exactly reproducible, never a function of host scheduling.

use std::collections::VecDeque;
use std::thread;
use std::time::Instant;

use darth_pum::eval::{ExecOutput, Executor};
use darth_pum::workers::forced_workers;
use darth_pum::Error;
use darth_sim::{FastExecutor, ProgramCache, ResidentProgram, SimExecutor};

use crate::class::ServeClass;
use crate::fleet::FleetChip;
use crate::report::{ChipReport, LatencyStats, ServeReport, SpotChecks, WarmColdReport};
use crate::trace::Request;

/// FNV-1a over a byte stream (fixed offset/prime, so digests are
/// stable across runs and platforms).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }
}

/// Hashes a served request's outputs (labels + cells, in order).
fn hash_outputs(outputs: &[ExecOutput]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(outputs.len() as u64);
    for out in outputs {
        h.write(out.label.as_bytes());
        h.write_u64(out.cells.len() as u64);
        for &cell in &out.cells {
            h.write(&cell.to_le_bytes());
        }
    }
    h.0
}

/// Converts a cycle count on a chip's clock to nanoseconds of virtual
/// time.
fn cycles_to_ns(cycles: u64, clock_hz: f64) -> u64 {
    (cycles as f64 * 1e9 / clock_hz) as u64
}

/// One served request's record, produced by its chip's timeline.
#[derive(Debug, Clone, Copy)]
struct RequestRecord {
    id: u64,
    arrival_ns: u64,
    completion_ns: u64,
    output_hash: u64,
}

/// Everything one chip produced in the execution pass.
#[derive(Debug, Clone)]
struct ChipOutcome {
    records: Vec<RequestRecord>,
    busy_cycles: u64,
    batch_histogram: Vec<(usize, u64)>,
    cache: darth_sim::CacheStats,
    spot: SpotChecks,
}

/// The batched multi-chip serving engine.
///
/// Construction takes the class registry (resident programs) and the
/// fleet; builder methods tune batching, spot-check sampling and the
/// execution worker count. [`ServeEngine::serve`] runs a trace.
#[derive(Debug, Clone)]
pub struct ServeEngine {
    classes: Vec<ServeClass>,
    chips: Vec<FleetChip>,
    workers: Option<usize>,
    batch_limit: usize,
    dispatch_overhead_cycles: u64,
    spot_interval: u64,
}

impl ServeEngine {
    /// Creates an engine over the given classes and fleet.
    ///
    /// Defaults: batch limit 32, dispatch overhead 2000 cycles per
    /// batch (host dispatch + DMA setup), spot-check every 8192nd
    /// request, workers from `DARTH_EVAL_THREADS` else available
    /// parallelism.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for an empty class registry, an
    /// empty fleet, or a chip without a positive clock.
    pub fn new(classes: Vec<ServeClass>, chips: Vec<FleetChip>) -> darth_pum::Result<Self> {
        if classes.is_empty() {
            return Err(Error::InvalidConfig(
                "serving needs at least one class".into(),
            ));
        }
        if chips.is_empty() {
            return Err(Error::InvalidConfig(
                "serving needs at least one chip".into(),
            ));
        }
        for chip in &chips {
            let clock_valid = chip.clock_hz.is_finite() && chip.clock_hz > 0.0;
            if !clock_valid {
                return Err(Error::InvalidConfig(format!(
                    "chip {} has non-positive clock {}",
                    chip.name, chip.clock_hz
                )));
            }
        }
        Ok(ServeEngine {
            classes,
            chips,
            workers: None,
            batch_limit: 32,
            dispatch_overhead_cycles: 2000,
            spot_interval: 8192,
        })
    }

    /// Forces a fixed execution worker count, overriding the
    /// environment (determinism tests pin {1, 2, 64} this way).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Sets the maximum requests coalesced into one batch (min 1).
    #[must_use]
    pub fn with_batch_limit(mut self, limit: usize) -> Self {
        self.batch_limit = limit.max(1);
        self
    }

    /// Sets the per-batch dispatch overhead in cycles.
    #[must_use]
    pub fn with_dispatch_overhead(mut self, cycles: u64) -> Self {
        self.dispatch_overhead_cycles = cycles;
        self
    }

    /// Sets the spot-check sampling interval: every `interval`-th
    /// request id is re-executed monolithically on the reference
    /// executor and compared against the software golden. `0` disables
    /// spot checks.
    #[must_use]
    pub fn with_spot_interval(mut self, interval: u64) -> Self {
        self.spot_interval = interval;
        self
    }

    /// The registered classes.
    pub fn classes(&self) -> &[ServeClass] {
        &self.classes
    }

    /// The fleet.
    pub fn chips(&self) -> &[FleetChip] {
        &self.chips
    }

    /// The worker count the execution pass runs on.
    fn worker_count(&self) -> usize {
        self.workers
            .or_else(|| forced_workers("DARTH_EVAL_THREADS"))
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, usize::from))
            .max(1)
            .min(self.chips.len())
    }

    /// Calibrates per-class service-cycle estimates for the admission
    /// model: one scratch resident program per class, one probe serve.
    fn calibrate(&self) -> darth_pum::Result<Vec<u64>> {
        self.classes
            .iter()
            .map(|class| {
                let resident = ResidentProgram::for_split(class.split().clone())?;
                let probe = resident.serve(&class.input_program(0)?)?;
                Ok(probe.busy_cycles.get() + self.dispatch_overhead_cycles)
            })
            .collect()
    }

    /// Pass 1: walks the trace in arrival order, assigning each request
    /// to the chip with the earliest estimated finish (ties go to the
    /// lowest fleet index). Returns per-chip assignment lists and the
    /// rejected-request count.
    fn assign(&self, trace: &[Request], est_cycles: &[u64]) -> (Vec<Vec<Request>>, u64) {
        struct ChipQueue {
            // Estimated completion times of admitted, unfinished work.
            inflight: VecDeque<u64>,
            // Estimated time the chip drains everything admitted so far.
            free_ns: u64,
        }
        let mut queues: Vec<ChipQueue> = self
            .chips
            .iter()
            .map(|_| ChipQueue {
                inflight: VecDeque::new(),
                free_ns: 0,
            })
            .collect();
        let mut assigned: Vec<Vec<Request>> = self.chips.iter().map(|_| Vec::new()).collect();
        let mut rejected = 0u64;

        for request in trace {
            let mut best: Option<(u64, usize)> = None;
            for (i, (chip, queue)) in self.chips.iter().zip(&mut queues).enumerate() {
                while queue
                    .inflight
                    .front()
                    .is_some_and(|&done| done <= request.arrival_ns)
                {
                    queue.inflight.pop_front();
                }
                if queue.inflight.len() >= chip.queue_capacity {
                    continue;
                }
                let finish = queue.free_ns.max(request.arrival_ns)
                    + cycles_to_ns(est_cycles[request.class], chip.clock_hz);
                if best.is_none_or(|(t, _)| finish < t) {
                    best = Some((finish, i));
                }
            }
            match best {
                None => rejected += 1,
                Some((finish, i)) => {
                    queues[i].free_ns = finish;
                    queues[i].inflight.push_back(finish);
                    assigned[i].push(*request);
                }
            }
        }
        (assigned, rejected)
    }

    /// Pass 2 (one chip): replays the chip's assignment list on its
    /// virtual timeline with batch coalescing and the resident-program
    /// cache.
    fn run_chip(&self, chip: &FleetChip, assigned: &[Request]) -> darth_pum::Result<ChipOutcome> {
        let mut cache = ProgramCache::new(chip.cache_capacity);
        let reference = SimExecutor::new();
        let mut served = vec![false; assigned.len()];
        let mut records = Vec::with_capacity(assigned.len());
        let mut histogram = std::collections::BTreeMap::<usize, u64>::new();
        let mut busy_cycles = 0u64;
        let mut spot = SpotChecks::default();
        let mut now_ns = 0u64;
        let mut head = 0usize;

        while head < assigned.len() {
            if served[head] {
                head += 1;
                continue;
            }
            let lead = &assigned[head];
            let class = &self.classes[lead.class];
            let signature = class.signature();
            let batch_start_ns = now_ns.max(lead.arrival_ns);

            // Coalesce every pending same-signature request that has
            // already arrived (the list is arrival-sorted, so the scan
            // stops at the first future arrival).
            let mut batch = vec![head];
            let mut next = head + 1;
            while next < assigned.len() && batch.len() < self.batch_limit {
                let candidate = &assigned[next];
                if candidate.arrival_ns > batch_start_ns {
                    break;
                }
                if !served[next] && self.classes[candidate.class].signature() == signature {
                    batch.push(next);
                }
                next += 1;
            }

            let misses_before = cache.stats().misses;
            let mut batch_runs = Vec::with_capacity(batch.len());
            let setup_cycles;
            {
                let resident = cache.get_or_build_split(class.split())?;
                setup_cycles = resident.setup_cycles().get();
                for &idx in &batch {
                    let input = class.input_program(assigned[idx].input_seed)?;
                    batch_runs.push(resident.serve(&input)?);
                }
            }
            let missed = cache.stats().misses > misses_before;

            // Timeline: dispatch overhead (plus setup on a cache miss)
            // lands before the first member; members then complete in
            // batch order as their cycles accumulate.
            let mut elapsed = self.dispatch_overhead_cycles + if missed { setup_cycles } else { 0 };
            for (&idx, run) in batch.iter().zip(&batch_runs) {
                elapsed += run.busy_cycles.get();
                let request = &assigned[idx];
                let record = RequestRecord {
                    id: request.id,
                    arrival_ns: request.arrival_ns,
                    completion_ns: batch_start_ns + cycles_to_ns(elapsed, chip.clock_hz),
                    output_hash: hash_outputs(&run.run.outputs),
                };
                records.push(record);
                served[idx] = true;

                if self.spot_interval > 0 && request.id.is_multiple_of(self.spot_interval) {
                    spot.checked += 1;
                    let monolithic = reference.execute(&class.full_job(request.input_seed)?)?;
                    let golden = class.golden(request.input_seed)?;
                    if monolithic.outputs != run.run.outputs || golden != run.run.outputs {
                        spot.mismatches += 1;
                    }
                }
            }
            busy_cycles += elapsed;
            now_ns = batch_start_ns + cycles_to_ns(elapsed, chip.clock_hz);
            *histogram.entry(batch.len()).or_insert(0) += 1;
        }

        Ok(ChipOutcome {
            records,
            busy_cycles,
            batch_histogram: histogram.into_iter().collect(),
            cache: cache.stats(),
            spot,
        })
    }

    /// Serves a trace end to end.
    ///
    /// Deterministic: the same engine configuration and trace produce a
    /// byte-identical [`ServeReport`] (per-request outputs, counters,
    /// and percentiles) at **any** worker count, because worker threads
    /// shard whole chips and every chip's timeline is virtual.
    ///
    /// # Errors
    ///
    /// Returns the first compile/execution error; an empty trace is an
    /// [`Error::InvalidConfig`].
    pub fn serve(&self, trace: &[Request]) -> darth_pum::Result<ServeReport> {
        if trace.is_empty() {
            return Err(Error::InvalidConfig("cannot serve an empty trace".into()));
        }
        for request in trace {
            if request.class >= self.classes.len() {
                return Err(Error::InvalidConfig(format!(
                    "request {} names class {} but only {} are registered",
                    request.id,
                    request.class,
                    self.classes.len()
                )));
            }
        }

        let est_cycles = self.calibrate()?;
        let (assigned, rejected) = self.assign(trace, &est_cycles);

        // Execution: shard whole chips across workers.
        let workers = self.worker_count();
        let mut outcomes: Vec<Option<darth_pum::Result<ChipOutcome>>> = Vec::new();
        outcomes.resize_with(self.chips.len(), || None);
        let chunk = self.chips.len().div_ceil(workers);
        thread::scope(|scope| {
            let chip_chunks = self.chips.chunks(chunk);
            let assign_chunks = assigned.chunks(chunk);
            let out_chunks = outcomes.chunks_mut(chunk);
            for ((chips, lists), outs) in chip_chunks.zip(assign_chunks).zip(out_chunks) {
                scope.spawn(move || {
                    for ((chip, list), out) in chips.iter().zip(lists).zip(outs.iter_mut()) {
                        *out = Some(self.run_chip(chip, list));
                    }
                });
            }
        });
        let outcomes = outcomes
            .into_iter()
            .map(|slot| slot.expect("every chip slot is filled"))
            .collect::<darth_pum::Result<Vec<ChipOutcome>>>()?;

        Ok(self.merge(trace, rejected, outcomes))
    }

    /// Pass 3: folds per-chip outcomes into the fleet-wide report.
    fn merge(&self, trace: &[Request], rejected: u64, outcomes: Vec<ChipOutcome>) -> ServeReport {
        let served: u64 = outcomes.iter().map(|o| o.records.len() as u64).sum();
        let first_arrival = trace.first().map_or(0, |r| r.arrival_ns);
        let last_arrival = trace.last().map_or(0, |r| r.arrival_ns);
        let arrival_span_s = ((last_arrival - first_arrival).max(1)) as f64 / 1e9;
        let offered_rps = (trace.len().saturating_sub(1)) as f64 / arrival_span_s;

        let last_completion = outcomes
            .iter()
            .flat_map(|o| o.records.iter().map(|r| r.completion_ns))
            .max()
            .unwrap_or(first_arrival);
        let serve_span_s = ((last_completion - first_arrival).max(1)) as f64 / 1e9;
        let sustained_rps = served as f64 / serve_span_s;

        // Latency percentiles over every served request.
        let mut latencies: Vec<u64> = outcomes
            .iter()
            .flat_map(|o| o.records.iter().map(|r| r.completion_ns - r.arrival_ns))
            .collect();
        latencies.sort_unstable();
        let percentile = |q: f64| nearest_rank(&latencies, q);
        let latency = LatencyStats {
            p50_ns: percentile(0.50),
            p99_ns: percentile(0.99),
            p999_ns: percentile(0.999),
            max_ns: latencies.last().copied().unwrap_or(0),
            mean_ns: if latencies.is_empty() {
                0.0
            } else {
                latencies.iter().map(|&l| l as f64).sum::<f64>() / latencies.len() as f64
            },
        };

        // Order-independent digest: (id, output hash) in id order.
        let mut hashes: Vec<(u64, u64)> = outcomes
            .iter()
            .flat_map(|o| o.records.iter().map(|r| (r.id, r.output_hash)))
            .collect();
        hashes.sort_unstable();
        let mut digest = Fnv1a::new();
        for (id, hash) in &hashes {
            digest.write_u64(*id);
            digest.write_u64(*hash);
        }

        let mut batch_histogram = std::collections::BTreeMap::new();
        let mut cache = darth_sim::CacheStats::default();
        let mut spot = SpotChecks::default();
        let mut chips = Vec::with_capacity(self.chips.len());
        for (chip, outcome) in self.chips.iter().zip(&outcomes) {
            for &(size, count) in &outcome.batch_histogram {
                *batch_histogram.entry(size).or_insert(0) += count;
            }
            cache.hits += outcome.cache.hits;
            cache.misses += outcome.cache.misses;
            cache.evictions += outcome.cache.evictions;
            spot.checked += outcome.spot.checked;
            spot.mismatches += outcome.spot.mismatches;
            chips.push(ChipReport {
                name: chip.name.clone(),
                clock_hz: chip.clock_hz,
                served: outcome.records.len() as u64,
                batches: outcome.batch_histogram.iter().map(|&(_, n)| n).sum(),
                busy_cycles: outcome.busy_cycles,
                utilization: (outcome.busy_cycles as f64 / chip.clock_hz) / serve_span_s,
                busy_fraction: busy_fraction(
                    outcome.busy_cycles as f64 / chip.clock_hz,
                    &outcome.records,
                ),
                cache: outcome.cache,
            });
        }

        ServeReport {
            requests: trace.len() as u64,
            served,
            rejected,
            offered_rps,
            sustained_rps,
            latency,
            batch_histogram,
            cache,
            chips,
            spot_checks: spot,
            output_digest: digest.0,
            warm_vs_cold: None,
        }
    }
}

/// Measures what the resident-program cache buys: the same `requests`
/// synthetic requests of one class run **cold** (a fresh
/// [`FastExecutor::prepare`] per request — decode, compile, tile
/// build, then run) and **warm** (one [`ResidentProgram`], then a
/// clone + input stub + compiled body per request), wall-clock timed.
///
/// Both arms must produce bit-identical outputs per request; a
/// divergence is an error, not a report.
///
/// # Errors
///
/// Returns compile/execution errors, and [`Error::InvalidConfig`] if
/// `requests` is zero or the arms diverge.
pub fn measure_warm_vs_cold(
    class: &ServeClass,
    requests: usize,
) -> darth_pum::Result<WarmColdReport> {
    if requests == 0 {
        return Err(Error::InvalidConfig(
            "warm/cold comparison needs at least one request".into(),
        ));
    }
    let executor = FastExecutor::new();

    let cold_start = Instant::now();
    let mut cold_hashes = Vec::with_capacity(requests);
    for seed in 0..requests as u64 {
        let job = class.full_job(seed)?;
        let prepared = executor.prepare(&job)?;
        let (run, _) = executor.run_prepared(&prepared)?;
        cold_hashes.push(hash_outputs(&run.outputs));
    }
    let cold_s = cold_start.elapsed().as_secs_f64();

    let resident = ResidentProgram::for_split(class.split().clone())?;
    let warm_start = Instant::now();
    for seed in 0..requests as u64 {
        let served = resident.serve(&class.input_program(seed)?)?;
        if hash_outputs(&served.run.outputs) != cold_hashes[seed as usize] {
            return Err(Error::InvalidConfig(format!(
                "warm/cold outputs diverged for {} request seed {seed}",
                class.name()
            )));
        }
    }
    let warm_s = warm_start.elapsed().as_secs_f64();

    Ok(WarmColdReport {
        requests: requests as u64,
        cold_s,
        warm_s,
        speedup: cold_s / warm_s.max(1e-12),
    })
}

/// Nearest-rank percentile over an ascending-sorted sample: the smallest
/// sample with at least `ceil(q·n)` values at or below it (1-based rank
/// `ceil(q·n)`, clamped into the sample). For `n = 100` and `q = 0.99`
/// that is rank 99 exactly — no interpolation and no rounding toward a
/// neighbouring rank.
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Fraction of the chip's **own** serving window — first arrival it
/// served to its last completion — spent executing. Unlike
/// `ChipReport::utilization`, which divides by the fleet-wide span, a
/// chip that burned through an early burst and then sat idle scores its
/// burst density here, not the fleet's tail.
fn busy_fraction(busy_s: f64, records: &[RequestRecord]) -> f64 {
    let first = records.iter().map(|r| r.arrival_ns).min();
    let last = records.iter().map(|r| r.completion_ns).max();
    match (first, last) {
        (Some(first), Some(last)) => busy_s / (((last.saturating_sub(first)).max(1)) as f64 / 1e9),
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_hand_computed_small_samples() {
        // n = 100, values 1..=100: rank(q·n) picks the value equal to
        // ceil(q·100).
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&hundred, 0.50), 50);
        assert_eq!(nearest_rank(&hundred, 0.99), 99);
        assert_eq!(nearest_rank(&hundred, 0.999), 100);
        assert_eq!(nearest_rank(&hundred, 1.0), 100);

        // n = 4: the median is the 2nd value (ceil(0.5·4) = 2), not the
        // 3rd that index-rounding `round(3·0.5) = 2` used to pick.
        let four = [10, 20, 30, 40];
        assert_eq!(nearest_rank(&four, 0.25), 10);
        assert_eq!(nearest_rank(&four, 0.50), 20);
        assert_eq!(nearest_rank(&four, 0.75), 30);
        assert_eq!(nearest_rank(&four, 0.99), 40);

        // Degenerate samples.
        assert_eq!(nearest_rank(&[], 0.99), 0);
        assert_eq!(nearest_rank(&[7], 0.5), 7);
        assert_eq!(nearest_rank(&[7], 0.999), 7);
    }

    #[test]
    fn nearest_rank_clamps_out_of_range_quantiles() {
        let sample = [1, 2, 3];
        assert_eq!(nearest_rank(&sample, 0.0), 1);
        assert_eq!(nearest_rank(&sample, 2.0), 3);
    }

    #[test]
    fn busy_fraction_uses_the_chips_own_window_not_the_fleet_span() {
        let record = |arrival_ns, completion_ns| RequestRecord {
            id: 0,
            arrival_ns,
            completion_ns,
            output_hash: 0,
        };
        // The chip worked 0.5 s solid inside its own 1 s window, then
        // idled while the rest of a 10 s fleet span played out: its
        // busy_fraction is 0.5 even though fleet-span utilization would
        // report 0.05.
        let records = vec![record(0, 400_000_000), record(500_000_000, 1_000_000_000)];
        let busy_s = 0.5;
        assert!((busy_fraction(busy_s, &records) - 0.5).abs() < 1e-12);
        let fleet_span_utilization = busy_s / 10.0;
        assert!(busy_fraction(busy_s, &records) > fleet_span_utilization);

        // A chip that served nothing has no window.
        assert_eq!(busy_fraction(0.0, &[]), 0.0);
    }
}
