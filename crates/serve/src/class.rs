//! Serving request classes: the fixed programs a DARTH-PUM fleet keeps
//! resident, each paired with a per-request input synthesizer and a
//! software golden reference.
//!
//! A class wraps one app's kernel compiled once through `darth_kir`
//! ([`CompiledKernel`]): the setup + body sections are compiled once per
//! chip (and cached by signature), while each request contributes only a
//! tiny halt-free input stub restaged straight from the resident
//! kernel's input slots — no per-request recompilation. Request inputs
//! are synthesized deterministically from the request's `input_seed`, so
//! every layer of the stack — served outputs, reference-executor spot
//! checks, software goldens — can regenerate the exact same request
//! independently.

use darth_apps::aes::golden::KeySize;
use darth_apps::aes::AesExec;
use darth_apps::cnn::ConvExec;
use darth_apps::gemm::GemmExec;
use darth_kir::CompiledKernel;
use darth_pum::eval::{ExecJob, ExecOutput, JobSignature, SplitJob};
use darth_reram::noise::NoiseRng;

/// The app behind a serving class.
#[derive(Debug, Clone)]
enum ClassKind {
    /// AES block encryption; requests supply the 16-byte plaintext.
    Aes(AesExec),
    /// Integer GEMM; requests supply the `m × k` activation matrix.
    Gemm(GemmExec),
    /// Convolution layer; requests supply the input tensor.
    Conv(ConvExec),
}

/// One serving request class: a resident compiled kernel plus the
/// per-request input synthesizer and golden reference for it.
#[derive(Debug, Clone)]
pub struct ServeClass {
    name: String,
    kind: ClassKind,
    kernel: CompiledKernel,
    signature: JobSignature,
}

/// Derives a deterministic 16-byte AES plaintext from a request seed.
fn aes_plaintext(input_seed: u64) -> [u8; 16] {
    let mut rng = NoiseRng::seed_from(input_seed);
    let mut block = [0u8; 16];
    for chunk in block.chunks_mut(8) {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    block
}

impl ServeClass {
    fn new(name: String, kind: ClassKind, kernel: CompiledKernel) -> Self {
        ServeClass {
            name,
            signature: kernel.split().signature(),
            kernel,
            kind,
        }
    }

    /// Wraps an AES job as a serving class.
    ///
    /// # Errors
    ///
    /// Returns compile errors from the kernel-IR pipeline.
    pub fn aes(name: impl Into<String>, exec: AesExec) -> darth_pum::Result<Self> {
        let kernel = exec.compiled()?;
        Ok(ServeClass::new(name.into(), ClassKind::Aes(exec), kernel))
    }

    /// Wraps a GEMM job as a serving class.
    ///
    /// # Errors
    ///
    /// Returns compile errors from the kernel-IR pipeline.
    pub fn gemm(name: impl Into<String>, exec: GemmExec) -> darth_pum::Result<Self> {
        let kernel = exec.compiled()?;
        Ok(ServeClass::new(name.into(), ClassKind::Gemm(exec), kernel))
    }

    /// Wraps a convolution job as a serving class.
    ///
    /// # Errors
    ///
    /// Returns compile errors from the kernel-IR pipeline.
    pub fn conv(name: impl Into<String>, exec: ConvExec) -> darth_pum::Result<Self> {
        let kernel = exec.compiled()?;
        Ok(ServeClass::new(name.into(), ClassKind::Conv(exec), kernel))
    }

    /// Class name (used in reports and request records).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The resident split program this class serves.
    pub fn split(&self) -> &SplitJob {
        self.kernel.split()
    }

    /// The split program's stable signature — the coalescing and
    /// program-cache key.
    pub fn signature(&self) -> JobSignature {
        self.signature
    }

    /// Synthesizes the encoded halt-free input stub for a request by
    /// restaging the resident kernel's input slots — no recompilation.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the kernel's input staging (cannot
    /// happen for inputs synthesized here, but the staging validates).
    pub fn input_program(&self, input_seed: u64) -> darth_pum::Result<Vec<u8>> {
        let payloads = match &self.kind {
            ClassKind::Aes(_) => AesExec::input_cells(&aes_plaintext(input_seed)),
            ClassKind::Gemm(exec) => exec.synth_activations(input_seed),
            ClassKind::Conv(exec) => exec.input_cells(&exec.synth_input(input_seed)),
        };
        Ok(self.kernel.input_program(&payloads)?)
    }

    /// The software golden outputs for a request.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the golden reference.
    pub fn golden(&self, input_seed: u64) -> darth_pum::Result<Vec<ExecOutput>> {
        match &self.kind {
            ClassKind::Aes(exec) => Ok(exec.golden_for(&aes_plaintext(input_seed))),
            ClassKind::Gemm(exec) => Ok(exec.golden_for(&exec.synth_activations(input_seed))),
            ClassKind::Conv(exec) => exec.golden_for(&exec.synth_input(input_seed)),
        }
    }

    /// Reassembles the request as one monolithic [`ExecJob`]
    /// (setup ‖ input ‖ body) for reference-executor spot checks.
    ///
    /// # Errors
    ///
    /// Propagates input-staging errors.
    pub fn full_job(&self, input_seed: u64) -> darth_pum::Result<ExecJob> {
        Ok(self.split().full_job(&self.input_program(input_seed)?))
    }
}

/// The standard serving mix: three AES key sizes, two GEMM shapes, two
/// convolution layers — seven resident programs with distinct
/// signatures, covering both serving regimes (tiny latency-bound AES
/// stubs vs. wide analog MVM batches).
///
/// # Errors
///
/// Returns compile errors from the kernel-IR pipeline (none occur for
/// these fixed shapes; the error channel keeps callers honest).
pub fn standard_classes() -> darth_pum::Result<Vec<ServeClass>> {
    Ok(vec![
        ServeClass::aes("aes128", AesExec::fips197_appendix_c(KeySize::Aes128))?,
        ServeClass::aes("aes192", AesExec::fips197_appendix_c(KeySize::Aes192))?,
        ServeClass::aes("aes256", AesExec::fips197_appendix_c(KeySize::Aes256))?,
        ServeClass::gemm("gemm-4x12x10", GemmExec::standard())?,
        ServeClass::gemm(
            "gemm-8x32x24",
            GemmExec {
                m: 8,
                k: 32,
                n: 24,
                seed: 11,
            },
        )?,
        ServeClass::conv("conv-2c4x4-o3k3", ConvExec::standard())?,
        ServeClass::conv(
            "conv-2c4x4-o5k3",
            ConvExec {
                in_channels: 2,
                size: 4,
                out_channels: 5,
                kernel: 3,
                seed: 13,
            },
        )?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_pum::eval::Executor;
    use darth_sim::SimExecutor;

    #[test]
    fn standard_classes_have_unique_signatures_and_golden_matched_jobs() {
        let classes = standard_classes().expect("classes compile");
        assert_eq!(classes.len(), 7);
        let mut signatures: Vec<_> = classes.iter().map(|c| c.signature()).collect();
        signatures.sort();
        signatures.dedup();
        assert_eq!(signatures.len(), classes.len(), "signatures collide");

        // Every class serves bit-exact against the reference executor
        // and its own software golden, for two distinct request seeds.
        let executor = SimExecutor::new();
        for class in &classes {
            class.split().check_invariants().expect("invariants hold");
            for seed in [1u64, 99] {
                let run = executor
                    .execute(&class.full_job(seed).expect("input lowers"))
                    .expect("job runs");
                let golden = class.golden(seed).expect("golden computes");
                assert_eq!(run.outputs, golden, "{} seed {seed}", class.name());
            }
            // Distinct seeds produce distinct inputs (the stub really
            // carries the request payload).
            assert_ne!(
                class.input_program(1).unwrap(),
                class.input_program(99).unwrap(),
                "{}",
                class.name()
            );
        }
    }
}
