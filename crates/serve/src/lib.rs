//! `darth_serve`: a batched request-serving engine over a fleet of
//! DARTH-PUM chips, built on resident compiled programs.
//!
//! The simulator stack can already *execute* jobs fast
//! ([`darth_sim::FastExecutor`]) and *keep them resident*
//! ([`darth_sim::ProgramCache`]: setup run once onto a warmed prototype
//! machine, body compiled once). This crate turns that into a serving
//! system — the regime where PUM's amortization story actually plays
//! out, because thousands of requests share a handful of programs:
//!
//! * [`class::ServeClass`] — the request classes: AES / GEMM / conv
//!   split programs ([`darth_pum::eval::SplitJob`]) paired with
//!   deterministic per-request input synthesis and software goldens,
//!   keyed by stable [`darth_pum::eval::JobSignature`]s.
//! * [`trace`] — deterministic synthetic traces: bursty two-state
//!   modulated Poisson arrivals over a weighted class mix, generated
//!   from the seeded fork-tree RNG.
//! * [`fleet::FleetChip`] — serving chips drawn from the design-space
//!   exploration's Pareto frontier
//!   ([`darth_eval::dse::frontier_fleet`]), each with a clock, a
//!   bounded admission queue and a resident-program cache budget.
//! * [`engine::ServeEngine`] — the three-pass engine: estimated-finish
//!   admission over the fleet, per-chip virtual-timeline execution
//!   with same-signature batch coalescing and LRU program caches
//!   (worker threads shard whole chips, so results are byte-identical
//!   at any worker count), and the fleet-wide merge.
//! * [`report::ServeReport`] — offered vs. sustained throughput,
//!   p50/p99/p999 latency, batch-size histograms, cache hit rates,
//!   per-chip utilization, spot-check totals and an output digest,
//!   rendered as the `darth-serve/v1` JSON behind `BENCH_serve.json`.
//!
//! # Example: serve a small bursty trace on a two-chip fleet
//!
//! ```
//! use darth_serve::{
//!     fleet::FleetChip, standard_classes, trace, ServeEngine, TraceSpec,
//! };
//!
//! # fn main() -> Result<(), darth_pum::Error> {
//! let classes = standard_classes()?;
//! let requests = trace::generate(&TraceSpec::bursty(1, 400, 100_000.0), classes.len());
//! let fleet = vec![
//!     FleetChip::new("fast/0", 1.5e9),
//!     FleetChip::new("slow/0", 1.0e9),
//! ];
//! let report = ServeEngine::new(classes, fleet)?
//!     .with_workers(2)
//!     .serve(&requests)?;
//! assert_eq!(report.served + report.rejected, 400);
//! assert_eq!(report.spot_checks.mismatches, 0);
//! # Ok(())
//! # }
//! ```

pub mod class;
pub mod engine;
pub mod fleet;
pub mod report;
pub mod trace;

pub use class::{standard_classes, ServeClass};
pub use engine::{measure_warm_vs_cold, ServeEngine};
pub use fleet::{fleet_from_frontier, FleetChip};
pub use report::{ChipReport, LatencyStats, ServeReport, SpotChecks, WarmColdReport};
pub use trace::{Request, TraceSpec};
