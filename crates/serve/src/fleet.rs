//! Serving fleets: chips drawn from the design-space exploration's
//! Pareto frontier ([`darth_eval::dse::frontier_fleet`]), each with a
//! bounded admission queue and a resident-program cache budget.
//!
//! The functional simulation behind serving is clock-exact but
//! config-agnostic (every class carries its own tile geometry), so a
//! fleet chip contributes exactly two things to the model: its **clock**
//! (the cycle → wall-time conversion for its virtual timeline) and its
//! **capacities** (admission queue depth, resident-program slots). A
//! frontier of heterogeneous design points therefore yields chips with
//! genuinely different service rates, which is what makes scheduling
//! across them non-trivial.

use darth_eval::dse::FleetPoint;

/// One chip in the serving fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetChip {
    /// Chip name (`"<design-point>/<replica>"` for frontier fleets).
    pub name: String,
    /// DCE clock in Hz: converts busy cycles to virtual time.
    pub clock_hz: f64,
    /// Admission-queue bound: requests assigned but not yet estimated
    /// complete; arrivals beyond this are rejected.
    pub queue_capacity: usize,
    /// Resident-program cache slots ([`darth_sim::ProgramCache`]).
    pub cache_capacity: usize,
}

impl FleetChip {
    /// A single chip with the given name and clock, default capacities
    /// (queue 256, cache 4).
    pub fn new(name: impl Into<String>, clock_hz: f64) -> Self {
        FleetChip {
            name: name.into(),
            clock_hz,
            queue_capacity: 256,
            cache_capacity: 4,
        }
    }

    /// Sets the admission-queue bound.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the resident-program cache budget.
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }
}

/// Builds a `size`-chip fleet by cycling through the frontier points in
/// frontier order (`point/0`, `point/1`, … replicas once the frontier
/// is exhausted). Deterministic; returns an empty fleet only for an
/// empty frontier or `size == 0`.
pub fn fleet_from_frontier(frontier: &[FleetPoint], size: usize) -> Vec<FleetChip> {
    if frontier.is_empty() {
        return Vec::new();
    }
    (0..size)
        .map(|i| {
            let point = &frontier[i % frontier.len()];
            FleetChip::new(
                format!("{}/{}", point.name, i / frontier.len()),
                point.clock_ghz * 1e9,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_eval::dse::{frontier_fleet, price_sweep, smoke_sweep};
    use darth_eval::Threading;

    #[test]
    fn frontier_fleets_replicate_points_in_order() {
        let points = smoke_sweep().generate().expect("smoke grid is valid");
        let workloads = darth_eval::registry::paper_workloads();
        let matrix = price_sweep(&points, workloads, Threading::Serial).expect("sweep prices");
        let frontier = frontier_fleet(&points, &matrix);
        assert!(!frontier.is_empty());

        let fleet = fleet_from_frontier(&frontier, frontier.len() + 2);
        assert_eq!(fleet.len(), frontier.len() + 2);
        for (i, chip) in fleet.iter().enumerate() {
            let point = &frontier[i % frontier.len()];
            assert_eq!(chip.name, format!("{}/{}", point.name, i / frontier.len()));
            assert!((chip.clock_hz - point.clock_ghz * 1e9).abs() < 1.0);
            assert!(chip.queue_capacity > 0 && chip.cache_capacity > 0);
        }
        assert!(fleet_from_frontier(&[], 4).is_empty());
        assert!(fleet_from_frontier(&frontier, 0).is_empty());
    }
}
