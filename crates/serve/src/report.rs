//! Serving-run reports: aggregate throughput/latency/batching/cache
//! metrics plus the `darth-serve/v1` JSON rendering behind
//! `BENCH_serve.json`.

use std::collections::BTreeMap;

use darth_eval::JsonValue;
use darth_sim::CacheStats;

/// Latency distribution over served requests, in nanoseconds of
/// virtual (clock-derived) time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Median.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Worst observed.
    pub max_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
}

/// Differential spot-check totals: sampled served requests re-executed
/// monolithically on the reference executor and compared against the
/// software golden, cell for cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpotChecks {
    /// Requests re-checked.
    pub checked: u64,
    /// Checks where any output diverged (must be zero).
    pub mismatches: u64,
}

/// Per-chip serving outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipReport {
    /// Chip name (from the fleet).
    pub name: String,
    /// The chip's clock in Hz.
    pub clock_hz: f64,
    /// Requests this chip served.
    pub served: u64,
    /// Batches this chip dispatched.
    pub batches: u64,
    /// Cycles the chip spent executing (setup + stubs + bodies +
    /// dispatch overhead).
    pub busy_cycles: u64,
    /// Busy time over the fleet-wide serving span, in `[0, 1]`.
    pub utilization: f64,
    /// Busy time over the chip's **own** serving window (its first
    /// served arrival to its last completion), in `[0, 1]`. A chip that
    /// finished an early burst and then idled keeps a high
    /// `busy_fraction` while its fleet-span `utilization` decays with
    /// the fleet's tail; `0.0` for a chip that served nothing.
    pub busy_fraction: f64,
    /// The chip's resident-program cache counters.
    pub cache: CacheStats,
}

/// Warm-vs-cold program-cache comparison: the same request stream run
/// once with a per-request `prepare()` (decode + compile + tile build
/// every time) and once against a single resident program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmColdReport {
    /// Requests in each arm.
    pub requests: u64,
    /// Wall-clock seconds for the cold (per-request prepare) arm.
    pub cold_s: f64,
    /// Wall-clock seconds for the warm (resident program) arm.
    pub warm_s: f64,
    /// `cold_s / warm_s` — how much the resident cache buys.
    pub speedup: f64,
}

/// The full outcome of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests offered by the trace.
    pub requests: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests rejected at admission (every queue full).
    pub rejected: u64,
    /// Offered load measured over the trace's arrival span, in
    /// requests per second.
    pub offered_rps: f64,
    /// Sustained service rate over the serving span (first arrival to
    /// last completion), in requests per second.
    pub sustained_rps: f64,
    /// Latency distribution over served requests.
    pub latency: LatencyStats,
    /// Batch-size histogram: batch size → number of batches dispatched
    /// at that size.
    pub batch_histogram: BTreeMap<usize, u64>,
    /// Fleet-wide resident-program cache totals.
    pub cache: CacheStats,
    /// Per-chip outcomes, in fleet order.
    pub chips: Vec<ChipReport>,
    /// Differential spot-check totals.
    pub spot_checks: SpotChecks,
    /// Order-independent digest over `(id, output hash)` of every
    /// served request — byte-identical across worker counts.
    pub output_digest: u64,
    /// Warm-vs-cold comparison, when measured.
    pub warm_vs_cold: Option<WarmColdReport>,
}

impl ServeReport {
    /// Total batches dispatched across the fleet.
    pub fn batches(&self) -> u64 {
        self.batch_histogram.values().sum()
    }

    /// Mean requests per dispatched batch.
    pub fn mean_batch_size(&self) -> f64 {
        let batches = self.batches();
        if batches == 0 {
            return 0.0;
        }
        self.served as f64 / batches as f64
    }

    /// Fleet-wide cache hit rate in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache.hits + self.cache.misses;
        if lookups == 0 {
            return 0.0;
        }
        self.cache.hits as f64 / lookups as f64
    }

    /// Renders the `darth-serve/v1` report (the `BENCH_serve.json`
    /// payload).
    pub fn to_json(&self) -> JsonValue<'_> {
        let cache_json = |stats: &CacheStats| {
            let lookups = stats.hits + stats.misses;
            JsonValue::object(vec![
                ("hits", JsonValue::Num(stats.hits as f64)),
                ("misses", JsonValue::Num(stats.misses as f64)),
                ("evictions", JsonValue::Num(stats.evictions as f64)),
                (
                    "hit_rate",
                    JsonValue::Num(if lookups == 0 {
                        0.0
                    } else {
                        stats.hits as f64 / lookups as f64
                    }),
                ),
            ])
        };
        JsonValue::object(vec![
            ("schema", JsonValue::Str("darth-serve/v1".into())),
            (
                "requests",
                JsonValue::object(vec![
                    ("offered", JsonValue::Num(self.requests as f64)),
                    ("served", JsonValue::Num(self.served as f64)),
                    ("rejected", JsonValue::Num(self.rejected as f64)),
                ]),
            ),
            (
                "throughput",
                JsonValue::object(vec![
                    ("offered_rps", JsonValue::Num(self.offered_rps)),
                    ("sustained_rps", JsonValue::Num(self.sustained_rps)),
                ]),
            ),
            (
                "latency_ns",
                JsonValue::object(vec![
                    ("p50", JsonValue::Num(self.latency.p50_ns as f64)),
                    ("p99", JsonValue::Num(self.latency.p99_ns as f64)),
                    ("p999", JsonValue::Num(self.latency.p999_ns as f64)),
                    ("max", JsonValue::Num(self.latency.max_ns as f64)),
                    ("mean", JsonValue::Num(self.latency.mean_ns)),
                ]),
            ),
            (
                "batching",
                JsonValue::object(vec![
                    ("batches", JsonValue::Num(self.batches() as f64)),
                    ("mean_batch_size", JsonValue::Num(self.mean_batch_size())),
                    (
                        "histogram",
                        JsonValue::Object(
                            self.batch_histogram
                                .iter()
                                .map(|(size, count)| {
                                    (size.to_string().into(), JsonValue::Num(*count as f64))
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("cache", cache_json(&self.cache)),
            (
                "chips",
                JsonValue::array(
                    self.chips
                        .iter()
                        .map(|chip| {
                            JsonValue::object(vec![
                                ("name", JsonValue::Str((&chip.name).into())),
                                ("clock_ghz", JsonValue::Num(chip.clock_hz / 1e9)),
                                ("served", JsonValue::Num(chip.served as f64)),
                                ("batches", JsonValue::Num(chip.batches as f64)),
                                ("busy_cycles", JsonValue::Num(chip.busy_cycles as f64)),
                                ("utilization", JsonValue::Num(chip.utilization)),
                                ("busy_fraction", JsonValue::Num(chip.busy_fraction)),
                                ("cache", cache_json(&chip.cache)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "spot_checks",
                JsonValue::object(vec![
                    ("checked", JsonValue::Num(self.spot_checks.checked as f64)),
                    (
                        "mismatches",
                        JsonValue::Num(self.spot_checks.mismatches as f64),
                    ),
                ]),
            ),
            (
                "output_digest",
                JsonValue::Str(format!("{:016x}", self.output_digest).into()),
            ),
            (
                "warm_vs_cold",
                match &self.warm_vs_cold {
                    None => JsonValue::Null,
                    Some(wc) => JsonValue::object(vec![
                        ("requests", JsonValue::Num(wc.requests as f64)),
                        ("cold_s", JsonValue::Num(wc.cold_s)),
                        ("warm_s", JsonValue::Num(wc.warm_s)),
                        ("speedup", JsonValue::Num(wc.speedup)),
                    ]),
                },
            ),
        ])
    }
}
