//! Deterministic synthetic request traces: bursty arrivals over a
//! weighted class mix, generated from the seeded fork-tree RNG
//! ([`NoiseRng`]) so the same spec always produces the same byte-exact
//! request stream.
//!
//! Arrivals follow a two-state Markov-modulated Poisson process: a
//! *steady* state at the offered rate and a *burst* state at a
//! multiple of it (with a matching quiet factor applied on exit), with
//! geometrically distributed state residence times. This produces the
//! queue-depth excursions that make tail latency (p99/p999) interesting
//! without ever letting the long-run offered rate drift from the spec.

use darth_reram::noise::NoiseRng;

/// Serving trace parameters. All fields are plain data: two specs that
/// compare equal generate byte-identical traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// RNG seed for the whole trace (arrivals, classes, input seeds).
    pub seed: u64,
    /// Total requests to generate.
    pub requests: usize,
    /// Long-run offered load in requests per second.
    pub offered_rps: f64,
    /// Per-class sampling weights (index-aligned with the engine's
    /// class registry; uniform when empty).
    pub class_weights: Vec<f64>,
    /// Arrival-rate multiplier inside a burst (> 1 bursts, 1 = pure
    /// Poisson).
    pub burst_factor: f64,
    /// Arrival-rate multiplier in the quiet state after a burst
    /// (< 1 stretches gaps so the long-run rate stays near offered).
    pub quiet_factor: f64,
    /// Mean burst length in requests (geometric).
    pub mean_burst: f64,
    /// Mean quiet-state length in requests (geometric).
    pub mean_quiet: f64,
}

impl TraceSpec {
    /// A bursty mixed trace at the given size and offered rate:
    /// 4× bursts averaging 64 requests, quarter-rate quiet spells
    /// averaging 16 requests, uniform class mix. The quiet mean is
    /// chosen so the quiet state exactly repays the burst's time debt
    /// (`mean_quiet · (1/quiet − 1) = mean_burst · (1 − 1/burst)`) and
    /// the long-run rate stays at `offered_rps`.
    pub fn bursty(seed: u64, requests: usize, offered_rps: f64) -> Self {
        TraceSpec {
            seed,
            requests,
            offered_rps,
            class_weights: Vec::new(),
            burst_factor: 4.0,
            quiet_factor: 0.25,
            mean_burst: 64.0,
            mean_quiet: 16.0,
        }
    }
}

/// One serving request: arrival time plus everything needed to
/// regenerate its input deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Dense request id (index in arrival order).
    pub id: u64,
    /// Arrival time in nanoseconds from trace start.
    pub arrival_ns: u64,
    /// Index into the engine's class registry.
    pub class: usize,
    /// Seed the class synthesizes this request's input from.
    pub input_seed: u64,
}

/// The two arrival-process states.
#[derive(Clone, Copy, PartialEq)]
enum Phase {
    Steady,
    Burst,
    Quiet,
}

/// Generates the trace for `spec` over `class_count` request classes.
/// Deterministic: same spec + class count → byte-identical requests.
///
/// # Panics
///
/// Panics if `class_count` is zero, `offered_rps` is not positive, or
/// a class weight is negative — trace specs are programmer input.
pub fn generate(spec: &TraceSpec, class_count: usize) -> Vec<Request> {
    assert!(class_count > 0, "trace needs at least one request class");
    assert!(
        spec.offered_rps > 0.0,
        "offered load must be positive (got {})",
        spec.offered_rps
    );
    let weights: Vec<f64> = if spec.class_weights.is_empty() {
        vec![1.0; class_count]
    } else {
        assert_eq!(
            spec.class_weights.len(),
            class_count,
            "class weights must match the class registry"
        );
        spec.class_weights.clone()
    };
    assert!(
        weights.iter().all(|&w| w >= 0.0) && weights.iter().sum::<f64>() > 0.0,
        "class weights must be non-negative and not all zero"
    );
    let total_weight: f64 = weights.iter().sum();

    // Independent RNG streams per concern: the arrival process stays
    // byte-identical when input-seed consumption patterns change.
    let mut root = NoiseRng::seed_from(spec.seed);
    let mut arrivals = root.fork();
    let mut phases = root.fork();
    let mut classes = root.fork();
    let mut inputs = root.fork();

    let mut requests = Vec::with_capacity(spec.requests);
    let mut now_ns = 0f64;
    let mut phase = Phase::Steady;
    let mut remaining = 0usize; // requests left in the current phase
    for id in 0..spec.requests as u64 {
        if remaining == 0 {
            // Steady alternates with bursts; every burst is followed by
            // a quiet stretch that repays its rate debt.
            let (next, mean) = match phase {
                Phase::Steady => (Phase::Burst, spec.mean_burst),
                Phase::Burst => (Phase::Quiet, spec.mean_quiet),
                Phase::Quiet => (Phase::Steady, spec.mean_burst.max(spec.mean_quiet)),
            };
            phase = next;
            remaining = geometric(&mut phases, mean);
        }
        remaining -= 1;

        let rate_rps = spec.offered_rps
            * match phase {
                Phase::Steady => 1.0,
                Phase::Burst => spec.burst_factor,
                Phase::Quiet => spec.quiet_factor,
            };
        now_ns += exponential(&mut arrivals) / rate_rps * 1e9;

        let mut pick = classes.uniform() * total_weight;
        let mut class = 0;
        for (i, &w) in weights.iter().enumerate() {
            class = i;
            pick -= w;
            if pick < 0.0 {
                break;
            }
        }

        requests.push(Request {
            id,
            arrival_ns: now_ns as u64,
            class,
            input_seed: inputs.next_u64(),
        });
    }
    requests
}

/// A unit-mean exponential sample (inter-arrival shape).
fn exponential(rng: &mut NoiseRng) -> f64 {
    // uniform() is in [0, 1); flip to (0, 1] so ln() stays finite.
    -(1.0 - rng.uniform()).ln()
}

/// A geometric sample with the given mean, at least 1.
fn geometric(rng: &mut NoiseRng, mean: f64) -> usize {
    let mean = mean.max(1.0);
    1 + (exponential(rng) * (mean - 1.0)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_match_the_spec() {
        let spec = TraceSpec::bursty(7, 4000, 50_000.0);
        let a = generate(&spec, 7);
        let b = generate(&spec, 7);
        assert_eq!(a, b, "same spec must regenerate byte-identically");
        assert_eq!(a.len(), 4000);

        // Ids are dense, arrivals monotone, all classes hit.
        let mut seen = [0u64; 7];
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            if i > 0 {
                assert!(r.arrival_ns >= a[i - 1].arrival_ns);
            }
            seen[r.class] += 1;
        }
        assert!(seen.iter().all(|&n| n > 0), "class mix skipped a class");

        // The long-run rate lands near the offered rate (the quiet
        // state repays the bursts).
        let span_s = (a.last().unwrap().arrival_ns - a[0].arrival_ns) as f64 / 1e9;
        let rate = (a.len() - 1) as f64 / span_s;
        assert!(
            (rate / 50_000.0 - 1.0).abs() < 0.35,
            "long-run rate {rate} drifted from offered 50000"
        );

        // Different seeds produce different traces.
        let c = generate(&TraceSpec::bursty(8, 4000, 50_000.0), 7);
        assert_ne!(a, c);
    }

    #[test]
    fn class_weights_bias_the_mix() {
        let mut spec = TraceSpec::bursty(3, 2000, 10_000.0);
        spec.class_weights = vec![8.0, 1.0, 0.0];
        let trace = generate(&spec, 3);
        let counts = trace.iter().fold([0u64; 3], |mut acc, r| {
            acc[r.class] += 1;
            acc
        });
        assert!(counts[0] > counts[1] * 4, "weights ignored: {counts:?}");
        assert_eq!(counts[2], 0, "zero-weight class sampled");
    }
}
