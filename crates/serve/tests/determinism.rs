//! Serving determinism: the same trace served at every worker count —
//! explicit {1, 2, 64}, environment-selected, and the garbage-value
//! fallback path — must produce a byte-identical [`ServeReport`]:
//! per-request outputs (via the id-ordered output digest), aggregate
//! counters, **and** latency percentiles. Percentiles are included
//! deliberately: serving time is virtual (cycle counts over each chip's
//! clock), so even the tail of the latency distribution is independent
//! of host scheduling.
//!
//! Everything lives in ONE `#[test]` on purpose: the
//! `DARTH_EVAL_THREADS` probes mutate the process environment, and a
//! single test body is the only way to keep those mutations strictly
//! sequential without cross-test races (the explicit worker counts use
//! the `with_workers` override precisely so they *don't* need the
//! environment).

use darth_serve::{standard_classes, trace, FleetChip, ServeEngine, TraceSpec};

/// A small heterogeneous fleet: two clock tiers, two chips each.
fn fleet() -> Vec<FleetChip> {
    vec![
        FleetChip::new("fast/0", 1.5e9).with_cache_capacity(8),
        FleetChip::new("fast/1", 1.5e9).with_cache_capacity(8),
        FleetChip::new("slow/0", 1.0e9).with_cache_capacity(8),
        FleetChip::new("slow/1", 1.0e9).with_cache_capacity(8),
    ]
}

fn engine() -> ServeEngine {
    ServeEngine::new(standard_classes().expect("classes compile"), fleet())
        .expect("engine builds")
        .with_spot_interval(251)
}

#[test]
fn serving_is_identical_at_every_worker_count() {
    let classes = standard_classes().expect("classes compile");
    let requests = trace::generate(&TraceSpec::bursty(42, 1200, 200_000.0), classes.len());

    // Serial baseline: one worker, no environment involved.
    let baseline = engine()
        .with_workers(1)
        .serve(&requests)
        .expect("serial serve runs");
    assert_eq!(baseline.served + baseline.rejected, 1200);
    assert!(baseline.spot_checks.checked > 0, "spot checks sampled");
    assert_eq!(
        baseline.spot_checks.mismatches, 0,
        "served outputs diverged"
    );

    // Two workers: chips split across threads, same bytes everywhere.
    let two = engine()
        .with_workers(2)
        .serve(&requests)
        .expect("two-worker serve runs");
    assert_eq!(baseline, two, "two workers diverged from serial");

    // More workers than chips: the engine clamps, results unchanged.
    let many = engine()
        .with_workers(64)
        .serve(&requests)
        .expect("64-worker serve runs");
    assert_eq!(baseline, many, "worker clamp diverged from serial");

    // Environment-selected count (the production path).
    std::env::set_var("DARTH_EVAL_THREADS", "2");
    let from_env = engine().serve(&requests).expect("env-selected serve runs");
    assert_eq!(baseline, from_env, "DARTH_EVAL_THREADS=2 diverged");

    // Garbage value: the worker resolver warns, falls back to automatic
    // selection, and serving still produces identical results.
    std::env::set_var("DARTH_EVAL_THREADS", "4x");
    let fallback = engine().serve(&requests).expect("fallback serve runs");
    assert_eq!(baseline, fallback, "garbage-env fallback diverged");

    std::env::remove_var("DARTH_EVAL_THREADS");
}
