//! The serving smoke suite (`make serve-smoke`, part of `make verify`):
//! a small bursty trace served on a fleet drawn from the real DSE
//! smoke-sweep frontier, asserting the engine's core contracts —
//! resident-program cache hits, sustained ≥ offered at low load with
//! zero rejections, bit-exact outputs against the reference executor
//! and software goldens, batching under overload, and bounded
//! admission.

use darth_eval::dse::{frontier_fleet, price_sweep, smoke_sweep};
use darth_eval::registry::paper_workloads;
use darth_eval::Threading;
use darth_serve::{
    fleet_from_frontier, measure_warm_vs_cold, standard_classes, trace, FleetChip, ServeEngine,
    TraceSpec,
};

#[test]
fn low_load_serving_on_the_frontier_fleet_meets_the_contracts() {
    // The real DSE → serving pipeline: price the smoke grid, extract
    // the aggregate Pareto frontier, replicate it into a 4-chip fleet.
    let points = smoke_sweep().generate().expect("smoke grid is valid");
    let matrix =
        price_sweep(&points, paper_workloads(), Threading::Serial).expect("smoke grid prices");
    let frontier = frontier_fleet(&points, &matrix);
    assert!(!frontier.is_empty(), "smoke frontier is empty");
    let fleet: Vec<FleetChip> = fleet_from_frontier(&frontier, 4)
        .into_iter()
        .map(|chip| chip.with_cache_capacity(8))
        .collect();
    assert_eq!(fleet.len(), 4);

    let classes = standard_classes().expect("classes compile");
    let class_count = classes.len();
    let spec = TraceSpec::bursty(11, 1500, 50_000.0);
    let requests = trace::generate(&spec, class_count);

    let engine = ServeEngine::new(classes, fleet)
        .expect("engine builds")
        .with_spot_interval(127);
    let report = engine.serve(&requests).expect("trace serves");

    // Everything admitted and served at low load.
    assert_eq!(report.requests, 1500);
    assert_eq!(report.rejected, 0, "low-load serving rejected requests");
    assert_eq!(report.served, 1500);

    // The resident-program cache is doing its job: with more requests
    // than programs, almost every dispatch hits.
    assert!(
        report.cache_hit_rate() > 0.5,
        "cache hit rate {} too low",
        report.cache_hit_rate()
    );
    assert!(report.cache.hits > 0);

    // Sustained throughput keeps up with offered load (the serving span
    // exceeds the arrival span only by the last requests' drain time).
    assert!(
        report.sustained_rps >= 0.95 * report.offered_rps,
        "sustained {} fell behind offered {}",
        report.sustained_rps,
        report.offered_rps
    );

    // Bit-exactness: sampled requests re-executed monolithically on the
    // reference executor and checked against software goldens, cell for
    // cell.
    assert!(report.spot_checks.checked > 0, "no spot checks sampled");
    assert_eq!(
        report.spot_checks.mismatches, 0,
        "served outputs diverged from the reference executor"
    );

    // Latency sanity: percentiles are ordered and positive.
    assert!(report.latency.p50_ns > 0);
    assert!(report.latency.p50_ns <= report.latency.p99_ns);
    assert!(report.latency.p99_ns <= report.latency.p999_ns);
    assert!(report.latency.p999_ns <= report.latency.max_ns);

    // Utilization is a real fraction on every chip, and busy_fraction —
    // measured over the chip's own window, never a longer span than the
    // fleet's — can only meet or exceed it.
    for chip in &report.chips {
        assert!(
            (0.0..=1.0).contains(&chip.utilization),
            "{}: utilization {}",
            chip.name,
            chip.utilization
        );
        assert!(
            (0.0..=1.0).contains(&chip.busy_fraction),
            "{}: busy_fraction {}",
            chip.name,
            chip.busy_fraction
        );
        if chip.served > 0 {
            assert!(
                chip.busy_fraction >= chip.utilization - 1e-12,
                "{}: busy_fraction {} fell below fleet-span utilization {}",
                chip.name,
                chip.busy_fraction,
                chip.utilization
            );
        }
    }

    // The JSON report carries the schema and the headline sections.
    let json = report.to_json().pretty();
    for needle in [
        "darth-serve/v1",
        "sustained_rps",
        "p999",
        "histogram",
        "hit_rate",
        "utilization",
        "busy_fraction",
        "output_digest",
    ] {
        assert!(json.contains(needle), "BENCH_serve.json missing {needle}");
    }
}

#[test]
fn overload_forms_batches_and_bounded_queues_reject() {
    let classes = standard_classes().expect("classes compile");
    let class_count = classes.len();

    // One slow chip, tiny queue, trace far above capacity: batches must
    // form (same-signature coalescing) and admission must reject.
    let fleet = vec![FleetChip::new("tiny/0", 1.0e9)
        .with_queue_capacity(24)
        .with_cache_capacity(8)];
    let mut spec = TraceSpec::bursty(23, 900, 50_000_000.0);
    // Narrow the mix so same-signature requests are adjacent often.
    spec.class_weights = vec![6.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
    let requests = trace::generate(&spec, class_count);

    let engine = ServeEngine::new(classes, fleet)
        .expect("engine builds")
        .with_spot_interval(0);
    let report = engine.serve(&requests).expect("trace serves");

    assert_eq!(report.served + report.rejected, 900);
    assert!(report.rejected > 0, "bounded queue never rejected");
    assert!(report.served > 0, "everything was rejected");
    assert!(
        report.batch_histogram.keys().any(|&size| size > 1),
        "overload never coalesced a batch: {:?}",
        report.batch_histogram
    );
    assert!(report.mean_batch_size() > 1.0);
    // Under sustained overload the chip never idles between batches.
    assert!(report.chips[0].utilization > 0.9);
}

#[test]
fn warm_serving_beats_cold_per_request_preparation() {
    let classes = standard_classes().expect("classes compile");
    let aes = &classes[0];
    let report = measure_warm_vs_cold(aes, 20).expect("warm/cold arms agree");
    assert_eq!(report.requests, 20);
    assert!(report.cold_s > 0.0 && report.warm_s > 0.0);
    // The resident program skips per-request decode + compile + tile
    // construction + setup execution; even on a noisy host that is a
    // decisive win.
    assert!(
        report.speedup > 1.0,
        "resident serving ({}s) did not beat cold prepare ({}s)",
        report.warm_s,
        report.cold_s
    );
}
