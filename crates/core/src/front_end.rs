//! The front-end controller: fetch, decode, issue.
//!
//! One front end serves eight HCTs (Table 3), issuing one decoded
//! instruction per cycle. Without the IIU, every MVM's reduction sequence
//! (hundreds of µops, §4.2) occupies the issue port and starves the other
//! seven tiles; with it, the front end issues a single MVM instruction and
//! moves on. [`FrontEnd`] models exactly that contention.

use crate::params::{power, HCTS_PER_FRONT_END};
use darth_reram::{Cycles, PicoJoules};
use serde::{Deserialize, Serialize};

/// A front end shared by up to eight HCTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontEnd {
    issued: u64,
    injected_elsewhere: u64,
}

impl FrontEnd {
    /// Creates an idle front end.
    pub fn new() -> Self {
        FrontEnd {
            issued: 0,
            injected_elsewhere: 0,
        }
    }

    /// Number of tiles sharing this front end.
    pub fn tiles(&self) -> usize {
        HCTS_PER_FRONT_END
    }

    /// Issues `count` instructions, returning the occupancy (one per
    /// cycle).
    pub fn issue(&mut self, count: u64) -> Cycles {
        self.issued += count;
        Cycles::new(count)
    }

    /// Records µops that the IIU injected instead of the front end —
    /// bandwidth this unit did *not* spend.
    pub fn credit_injected(&mut self, count: u64) {
        self.injected_elsewhere += count;
    }

    /// Total instructions issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// µops saved by injection.
    pub fn injected_elsewhere(&self) -> u64 {
        self.injected_elsewhere
    }

    /// Fraction of issue bandwidth the IIU saved.
    pub fn injection_savings(&self) -> f64 {
        let total = self.issued + self.injected_elsewhere;
        if total == 0 {
            return 0.0;
        }
        self.injected_elsewhere as f64 / total as f64
    }

    /// Front-end energy over an execution window.
    pub fn energy(&self, window: Cycles) -> PicoJoules {
        PicoJoules::from_power(power::FRONT_END, window)
    }

    /// Issue-port occupancy if `tile_count` tiles each demand
    /// `per_tile_ops` issued operations in a window: the port serializes,
    /// so occupancy is the sum.
    pub fn contention_cycles(per_tile_ops: u64, tile_count: usize) -> Cycles {
        Cycles::new(per_tile_ops * tile_count.min(HCTS_PER_FRONT_END) as u64)
    }
}

impl Default for FrontEnd {
    fn default() -> Self {
        FrontEnd::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_occupies_one_cycle_each() {
        let mut fe = FrontEnd::new();
        assert_eq!(fe.issue(10).get(), 10);
        assert_eq!(fe.issued(), 10);
    }

    #[test]
    fn injection_savings_fraction() {
        let mut fe = FrontEnd::new();
        fe.issue(10);
        fe.credit_injected(90);
        assert!((fe.injection_savings() - 0.9).abs() < 1e-12);
        assert_eq!(FrontEnd::new().injection_savings(), 0.0);
    }

    #[test]
    fn energy_uses_table3_power() {
        let fe = FrontEnd::new();
        // 63 mW for 1000 cycles = 63,000 pJ
        assert!((fe.energy(Cycles::new(1000)).get() - 63_000.0).abs() < 1e-9);
    }

    #[test]
    fn contention_serializes_across_tiles() {
        assert_eq!(FrontEnd::contention_cycles(100, 8).get(), 800);
        // capped at the tiles actually sharing the port
        assert_eq!(FrontEnd::contention_cycles(100, 20).get(), 800);
        assert_eq!(FrontEnd::contention_cycles(100, 2).get(), 200);
    }
}
