//! The shift units: in-flight shift-and-place on ACE→DCE transfers (§4.1).
//!
//! Without them (Figure 10a), every partial product must be written to the
//! digital arrays, shifted into its bit position with Boolean µops (a
//! pipelining barrier), and only then added — serializing the whole
//! reduction. The shift units instead apply the statically known shift
//! *during* the transfer, writing each partial product pre-shifted, so only
//! pipelined ADDs remain (Figure 10b).
//!
//! The unit also enforces the rate match between ADC output and DCE write
//! bandwidth: the I/O network moves [`crate::params::ACE_DCE_BYTES_PER_CYCLE`]
//! bytes per cycle, and the DCE accepts one row of data per cycle.

use crate::params::ACE_DCE_BYTES_PER_CYCLE;
use darth_reram::Cycles;
use serde::{Deserialize, Serialize};

/// The in-flight shifting transfer engine of one HCT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShiftUnit {
    bytes_per_cycle: u64,
}

impl ShiftUnit {
    /// A shift unit with the paper's 8 B/cycle I/O network.
    pub fn new() -> Self {
        ShiftUnit {
            bytes_per_cycle: ACE_DCE_BYTES_PER_CYCLE,
        }
    }

    /// A shift unit with custom bandwidth (rate-match ablations).
    pub fn with_bandwidth(bytes_per_cycle: u64) -> Self {
        ShiftUnit {
            bytes_per_cycle: bytes_per_cycle.max(1),
        }
    }

    /// I/O bandwidth in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> u64 {
        self.bytes_per_cycle
    }

    /// Cycles to move one partial-product vector of `elements` values of
    /// `element_bits` bits into the DCE.
    ///
    /// Two limits apply: the I/O network's byte rate and the DCE's
    /// one-row-of-data-per-cycle write port (§4.1); the transfer takes the
    /// slower of the two.
    pub fn transfer_cycles(&self, elements: u64, element_bits: u64) -> Cycles {
        let bytes = elements * element_bits.div_ceil(8);
        let io_limit = bytes.div_ceil(self.bytes_per_cycle);
        let write_limit = elements; // one row of data per cycle
        Cycles::new(io_limit.max(write_limit))
    }

    /// Applies the in-flight transform: shift every code left by `amount`
    /// and negate when the term carries negative weight (the top bit of a
    /// two's-complement input).
    pub fn apply(&self, codes: &[i64], amount: u8, negative: bool) -> Vec<i64> {
        codes
            .iter()
            .map(|&c| {
                let shifted = c << amount;
                if negative {
                    -shifted
                } else {
                    shifted
                }
            })
            .collect()
    }
}

impl Default for ShiftUnit {
    fn default() -> Self {
        ShiftUnit::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidth_is_8_bytes() {
        assert_eq!(ShiftUnit::new().bytes_per_cycle(), 8);
    }

    #[test]
    fn transfer_is_write_port_limited_for_narrow_data() {
        // 64 one-byte elements: IO limit 64/8 = 8 cycles, write limit 64.
        let su = ShiftUnit::new();
        assert_eq!(su.transfer_cycles(64, 8).get(), 64);
    }

    #[test]
    fn transfer_is_io_limited_for_wide_data() {
        // 8 elements of 64 bits = 64 bytes: IO limit 8, write limit 8 — tie;
        // at 128 bits per element the IO limit dominates.
        let su = ShiftUnit::with_bandwidth(1);
        assert_eq!(su.transfer_cycles(8, 64).get(), 64); // 64 bytes at 1 B/cyc
    }

    #[test]
    fn zero_bandwidth_clamps_to_one() {
        assert_eq!(ShiftUnit::with_bandwidth(0).bytes_per_cycle(), 1);
    }

    #[test]
    fn apply_shifts_and_negates() {
        let su = ShiftUnit::new();
        assert_eq!(su.apply(&[1, -2, 3], 2, false), vec![4, -8, 12]);
        assert_eq!(su.apply(&[1, -2, 3], 1, true), vec![-2, 4, -6]);
        assert_eq!(su.apply(&[], 5, false), Vec::<i64>::new());
    }
}
