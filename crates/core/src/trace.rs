//! Architecture-neutral kernel traces.
//!
//! Each application (`darth-apps`) lowers one *work item* — an AES block
//! encryption, a ResNet-20 inference, an LLM encoder pass — into a
//! [`Trace`]: a sequence of named [`Kernel`]s made of coarse-grained
//! [`KernelOp`]s. Every architecture model prices the *same* trace: the
//! DARTH-PUM model in [`crate::model`], and the CPU / GPU / analog-only /
//! RACER / AppAccel models in `darth-baselines`. Figures 13–18 are all
//! ratios of these priced traces.

use serde::{Deserialize, Serialize};

/// The element-wise vector operation classes a kernel can request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VectorKind {
    /// Bitwise Boolean operation (XOR/AND/OR/NOT).
    Bool,
    /// Integer addition or subtraction.
    Add,
    /// Integer multiplication.
    Mul,
    /// Constant shift or rotate.
    Shift,
    /// Comparison / max / min (ReLU, pooling).
    Compare,
    /// Data copy between registers or buffers.
    Copy,
}

/// One coarse-grained operation inside a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KernelOp {
    /// A dense matrix–vector multiply (`batch` independent input vectors
    /// against the same `rows × cols` matrix).
    Mvm {
        /// Matrix rows (input length).
        rows: u64,
        /// Matrix columns (output length).
        cols: u64,
        /// Input operand width in bits.
        input_bits: u8,
        /// Weight element width in bits.
        weight_bits: u8,
        /// Independent input vectors.
        batch: u64,
    },
    /// `count` element-wise vector operations over `elements` lanes of
    /// `bits`-bit values.
    Vector {
        /// Operation class.
        kind: VectorKind,
        /// Lanes per operation.
        elements: u64,
        /// Lane width in bits.
        bits: u8,
        /// Number of such operations.
        count: u64,
    },
    /// A gather through a lookup table (AES S-box, quantized LUTs).
    TableLookup {
        /// Elements gathered.
        elements: u64,
        /// Table entries.
        table_size: u64,
        /// Entry width in bits.
        bits: u8,
    },
    /// Bytes moved between the host and the accelerator (Baseline's
    /// CPU↔PUM traffic; zero-cost inside a single chip).
    HostMove {
        /// Bytes transferred.
        bytes: u64,
    },
    /// Bytes moved on-chip between tiles or pipelines.
    OnChipMove {
        /// Bytes transferred.
        bytes: u64,
    },
    /// Reprogramming of analog weights (attention matrices, §5.2).
    WeightUpdate {
        /// Matrix rows rewritten.
        rows: u64,
        /// Matrix columns rewritten.
        cols: u64,
        /// Weight element width in bits.
        weight_bits: u8,
    },
}

impl KernelOp {
    /// Whether the op is a matrix multiply (the analog-accelerable class).
    pub fn is_mvm(&self) -> bool {
        matches!(self, KernelOp::Mvm { .. })
    }

    /// Total multiply–accumulate count represented by this op (zero for
    /// non-MVM ops) — used for roofline-style CPU/GPU pricing.
    pub fn macs(&self) -> u64 {
        match *self {
            KernelOp::Mvm {
                rows, cols, batch, ..
            } => rows * cols * batch,
            _ => 0,
        }
    }

    /// Total element-operations (lanes × count) for vector work.
    pub fn element_ops(&self) -> u64 {
        match *self {
            KernelOp::Vector {
                elements, count, ..
            } => elements * count,
            KernelOp::TableLookup { elements, .. } => elements,
            _ => 0,
        }
    }
}

/// A named phase of a work item (one AES round step, one CNN layer, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Display name (drives Figure 14/15 per-kernel breakdowns).
    pub name: String,
    /// The operations, assumed dependent in order.
    pub ops: Vec<KernelOp>,
}

impl Kernel {
    /// Creates a kernel.
    pub fn new(name: impl Into<String>, ops: Vec<KernelOp>) -> Self {
        Kernel {
            name: name.into(),
            ops,
        }
    }

    /// Total MACs in this kernel.
    pub fn macs(&self) -> u64 {
        self.ops.iter().map(KernelOp::macs).sum()
    }

    /// Total element-ops in this kernel.
    pub fn element_ops(&self) -> u64 {
        self.ops.iter().map(KernelOp::element_ops).sum()
    }

    /// Total host-move bytes in this kernel.
    pub fn host_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match *op {
                KernelOp::HostMove { bytes } => bytes,
                _ => 0,
            })
            .sum()
    }
}

/// A full work item: the unit whose latency and energy the figures report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Work item name (`"aes-128"`, `"resnet-20"`, `"llm-encoder"`).
    pub name: String,
    /// The kernels, executed in order.
    pub kernels: Vec<Kernel>,
    /// How many independent copies of this item a chip may run in parallel
    /// given unlimited area (caps iso-area batching; e.g. AES is
    /// embarrassingly parallel, one CNN inference is one item).
    pub parallel_items: u64,
    /// DCE pipelines one in-flight item occupies (placement hint from the
    /// application mapping; bounds per-tile batching).
    pub pipelines_per_item: u64,
}

impl Trace {
    /// Creates a trace.
    pub fn new(name: impl Into<String>, kernels: Vec<Kernel>) -> Self {
        Trace {
            name: name.into(),
            kernels,
            parallel_items: u64::MAX,
            pipelines_per_item: 1,
        }
    }

    /// Sets the per-item pipeline footprint (builder style).
    pub fn with_pipelines_per_item(mut self, pipelines: u64) -> Self {
        self.pipelines_per_item = pipelines.max(1);
        self
    }

    /// Caps the exploitable parallelism (builder style).
    pub fn with_parallel_items(mut self, items: u64) -> Self {
        self.parallel_items = items.max(1);
        self
    }

    /// Total MACs across kernels.
    pub fn macs(&self) -> u64 {
        self.kernels.iter().map(Kernel::macs).sum()
    }

    /// Total element-ops across kernels.
    pub fn element_ops(&self) -> u64 {
        self.kernels.iter().map(Kernel::element_ops).sum()
    }

    /// Fraction of MACs among (MACs + element ops) — a rough measure of
    /// how MVM-heavy the workload is.
    pub fn mvm_fraction(&self) -> f64 {
        let macs = self.macs() as f64;
        let eops = self.element_ops() as f64;
        if macs + eops == 0.0 {
            return 0.0;
        }
        macs / (macs + eops)
    }

    /// Looks up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

/// A priced trace: one architecture's cost for one work item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Architecture label.
    pub architecture: String,
    /// Work item name.
    pub workload: String,
    /// Latency of one item in seconds.
    pub latency_s: f64,
    /// Items completed per second at full chip utilisation.
    pub throughput_items_per_s: f64,
    /// Energy per item in joules.
    pub energy_per_item_j: f64,
    /// Per-kernel latency breakdown in seconds, in kernel order.
    pub kernel_latency_s: Vec<(String, f64)>,
}

impl CostReport {
    /// Throughput ratio vs another report (`self / other`).
    pub fn speedup_over(&self, other: &CostReport) -> f64 {
        self.throughput_items_per_s / other.throughput_items_per_s
    }

    /// Energy-savings ratio vs another report (`other / self`).
    pub fn energy_savings_over(&self, other: &CostReport) -> f64 {
        other.energy_per_item_j / self.energy_per_item_j
    }
}

/// Geometric mean of a set of ratios (used for the GeoMean columns and
/// the evaluation engine's summary rows).
///
/// A geometric mean is only defined over positive values, so zero,
/// negative, NaN and infinite entries (a workload with no measurable
/// throughput, a failed cell) are skipped rather than poisoning the whole
/// summary. Returns `0.0` when no valid ratio remains (including the
/// empty slice).
pub fn geomean(ratios: &[f64]) -> f64 {
    let mut log_sum = 0.0;
    let mut count = 0u32;
    for &r in ratios {
        if r.is_finite() && r > 0.0 {
            log_sum += r.ln();
            count += 1;
        }
    }
    if count == 0 {
        return 0.0;
    }
    (log_sum / f64::from(count)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::new(
            "sample",
            vec![
                Kernel::new(
                    "mix",
                    vec![KernelOp::Mvm {
                        rows: 16,
                        cols: 4,
                        input_bits: 1,
                        weight_bits: 1,
                        batch: 2,
                    }],
                ),
                Kernel::new(
                    "xor",
                    vec![KernelOp::Vector {
                        kind: VectorKind::Bool,
                        elements: 16,
                        bits: 8,
                        count: 3,
                    }],
                ),
            ],
        )
    }

    #[test]
    fn mac_and_element_counts() {
        let t = sample_trace();
        assert_eq!(t.macs(), 16 * 4 * 2);
        assert_eq!(t.element_ops(), 48);
        assert!(t.mvm_fraction() > 0.5);
    }

    #[test]
    fn kernel_lookup() {
        let t = sample_trace();
        assert!(t.kernel("mix").is_some());
        assert!(t.kernel("nope").is_none());
    }

    #[test]
    fn host_bytes() {
        let k = Kernel::new("move", vec![KernelOp::HostMove { bytes: 1024 }]);
        assert_eq!(k.host_bytes(), 1024);
        assert_eq!(k.macs(), 0);
    }

    #[test]
    fn geomean_of_ratios() {
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[8.0]) - 8.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_skips_degenerate_ratios() {
        // Zero, negative and non-finite entries are excluded, not fatal.
        assert!((geomean(&[4.0, 0.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[4.0, -3.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[4.0, f64::NAN, 1.0, f64::INFINITY]) - 2.0).abs() < 1e-12);
        // Nothing valid left: fall back to 0.0 rather than NaN.
        assert_eq!(geomean(&[0.0, -1.0, f64::NAN]), 0.0);
    }

    #[test]
    fn cost_report_ratios() {
        let fast = CostReport {
            architecture: "a".into(),
            workload: "w".into(),
            latency_s: 1e-6,
            throughput_items_per_s: 1e6,
            energy_per_item_j: 1e-9,
            kernel_latency_s: vec![],
        };
        let slow = CostReport {
            architecture: "b".into(),
            workload: "w".into(),
            latency_s: 1e-3,
            throughput_items_per_s: 1e3,
            energy_per_item_j: 1e-6,
            kernel_latency_s: vec![],
        };
        assert!((fast.speedup_over(&slow) - 1000.0).abs() < 1e-9);
        assert!((fast.energy_savings_over(&slow) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn mvm_fraction_empty_trace() {
        let t = Trace::new("empty", vec![]);
        assert_eq!(t.mvm_fraction(), 0.0);
    }
}
