//! Architecture-neutral kernel traces — streamed or materialized.
//!
//! Each application (`darth-apps`) lowers one *work item* — an AES block
//! encryption, a ResNet-20 inference, an LLM encoder pass — into a
//! sequence of named kernels made of coarse-grained [`KernelOp`]s. The
//! canonical form of that sequence is a *stream*: the workload pushes op
//! events into a [`TraceSink`] and never materializes anything, so a
//! million-block bulk scenario prices in O(1) memory. Two sinks matter
//! most:
//!
//! * every architecture model is a streaming cost accumulator (the
//!   DARTH-PUM model in [`crate::model`], the CPU / GPU / analog-only /
//!   RACER / AppAccel models in `darth-baselines`) — see
//!   [`crate::eval::CostAccumulator`];
//! * [`TraceCollector`] materializes the stream into a [`Trace`], the
//!   legacy heap form the figure tests still inspect, and
//!   [`SummaryRecorder`] compresses it into a run-length [`TraceSummary`]
//!   the evaluation engine caches and replays.
//!
//! Figures 13–18 are all ratios of the resulting [`CostReport`]s, and
//! streaming and materialized pricing are bit-identical by construction:
//! replaying a collected [`Trace`] or a recorded [`TraceSummary`]
//! reproduces the exact op sequence (and therefore the exact `f64`
//! accumulation order) of the original emission.

use serde::{Deserialize, Serialize};

/// The element-wise vector operation classes a kernel can request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VectorKind {
    /// Bitwise Boolean operation (XOR/AND/OR/NOT).
    Bool,
    /// Integer addition or subtraction.
    Add,
    /// Integer multiplication.
    Mul,
    /// Constant shift or rotate.
    Shift,
    /// Comparison / max / min (ReLU, pooling).
    Compare,
    /// Data copy between registers or buffers.
    Copy,
}

/// One coarse-grained operation inside a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KernelOp {
    /// A dense matrix–vector multiply (`batch` independent input vectors
    /// against the same `rows × cols` matrix).
    Mvm {
        /// Matrix rows (input length).
        rows: u64,
        /// Matrix columns (output length).
        cols: u64,
        /// Input operand width in bits.
        input_bits: u8,
        /// Weight element width in bits.
        weight_bits: u8,
        /// Independent input vectors.
        batch: u64,
    },
    /// `count` element-wise vector operations over `elements` lanes of
    /// `bits`-bit values.
    Vector {
        /// Operation class.
        kind: VectorKind,
        /// Lanes per operation.
        elements: u64,
        /// Lane width in bits.
        bits: u8,
        /// Number of such operations.
        count: u64,
    },
    /// A gather through a lookup table (AES S-box, quantized LUTs).
    TableLookup {
        /// Elements gathered.
        elements: u64,
        /// Table entries.
        table_size: u64,
        /// Entry width in bits.
        bits: u8,
    },
    /// Bytes moved between the host and the accelerator (Baseline's
    /// CPU↔PUM traffic; zero-cost inside a single chip).
    HostMove {
        /// Bytes transferred.
        bytes: u64,
    },
    /// Bytes moved on-chip between tiles or pipelines.
    OnChipMove {
        /// Bytes transferred.
        bytes: u64,
    },
    /// Reprogramming of analog weights (attention matrices, §5.2).
    WeightUpdate {
        /// Matrix rows rewritten.
        rows: u64,
        /// Matrix columns rewritten.
        cols: u64,
        /// Weight element width in bits.
        weight_bits: u8,
    },
}

impl KernelOp {
    /// Whether the op is a matrix multiply (the analog-accelerable class).
    pub fn is_mvm(&self) -> bool {
        matches!(self, KernelOp::Mvm { .. })
    }

    /// Total multiply–accumulate count represented by this op (zero for
    /// non-MVM ops) — used for roofline-style CPU/GPU pricing.
    ///
    /// Saturating: bulk streamed scenarios legitimately reach op shapes
    /// whose `rows × cols × batch` product would overflow `u64`, and a
    /// saturated count is a better answer than a wrapped one.
    pub fn macs(&self) -> u64 {
        match *self {
            KernelOp::Mvm {
                rows, cols, batch, ..
            } => rows.saturating_mul(cols).saturating_mul(batch),
            _ => 0,
        }
    }

    /// Total element-operations (lanes × count) for vector work
    /// (saturating, like [`KernelOp::macs`]).
    pub fn element_ops(&self) -> u64 {
        match *self {
            KernelOp::Vector {
                elements, count, ..
            } => elements.saturating_mul(count),
            KernelOp::TableLookup { elements, .. } => elements,
            _ => 0,
        }
    }
}

/// A named phase of a work item (one AES round step, one CNN layer, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Display name (drives Figure 14/15 per-kernel breakdowns).
    pub name: String,
    /// The operations, assumed dependent in order.
    pub ops: Vec<KernelOp>,
}

impl Kernel {
    /// Creates a kernel.
    pub fn new(name: impl Into<String>, ops: Vec<KernelOp>) -> Self {
        Kernel {
            name: name.into(),
            ops,
        }
    }

    /// Total MACs in this kernel (saturating).
    pub fn macs(&self) -> u64 {
        self.ops
            .iter()
            .fold(0u64, |acc, op| acc.saturating_add(op.macs()))
    }

    /// Total element-ops in this kernel (saturating).
    pub fn element_ops(&self) -> u64 {
        self.ops
            .iter()
            .fold(0u64, |acc, op| acc.saturating_add(op.element_ops()))
    }

    /// Total host-move bytes in this kernel (saturating).
    pub fn host_bytes(&self) -> u64 {
        self.ops.iter().fold(0u64, |acc, op| match *op {
            KernelOp::HostMove { bytes } => acc.saturating_add(bytes),
            _ => acc,
        })
    }
}

/// A full work item: the unit whose latency and energy the figures report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Work item name (`"aes-128"`, `"resnet-20"`, `"llm-encoder"`).
    pub name: String,
    /// The kernels, executed in order.
    pub kernels: Vec<Kernel>,
    /// How many independent copies of this item a chip may run in parallel
    /// given unlimited area (caps iso-area batching; e.g. AES is
    /// embarrassingly parallel, one CNN inference is one item).
    pub parallel_items: u64,
    /// DCE pipelines one in-flight item occupies (placement hint from the
    /// application mapping; bounds per-tile batching).
    pub pipelines_per_item: u64,
}

impl Trace {
    /// Creates a trace.
    pub fn new(name: impl Into<String>, kernels: Vec<Kernel>) -> Self {
        Trace {
            name: name.into(),
            kernels,
            parallel_items: u64::MAX,
            pipelines_per_item: 1,
        }
    }

    /// Sets the per-item pipeline footprint (builder style).
    pub fn with_pipelines_per_item(mut self, pipelines: u64) -> Self {
        self.pipelines_per_item = pipelines.max(1);
        self
    }

    /// Caps the exploitable parallelism (builder style).
    pub fn with_parallel_items(mut self, items: u64) -> Self {
        self.parallel_items = items.max(1);
        self
    }

    /// Total MACs across kernels (saturating).
    pub fn macs(&self) -> u64 {
        self.kernels
            .iter()
            .fold(0u64, |acc, k| acc.saturating_add(k.macs()))
    }

    /// Total element-ops across kernels (saturating).
    pub fn element_ops(&self) -> u64 {
        self.kernels
            .iter()
            .fold(0u64, |acc, k| acc.saturating_add(k.element_ops()))
    }

    /// Fraction of MACs among (MACs + element ops) — a rough measure of
    /// how MVM-heavy the workload is.
    pub fn mvm_fraction(&self) -> f64 {
        let macs = self.macs() as f64;
        let eops = self.element_ops() as f64;
        if macs + eops == 0.0 {
            return 0.0;
        }
        macs / (macs + eops)
    }

    /// Looks up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Streams this materialized trace into a sink, op by op, in the
    /// exact stored order. This is how the default
    /// [`crate::eval::ArchModel::price`] prices a `&Trace` through a
    /// streaming accumulator.
    pub fn emit_to(&self, sink: &mut dyn TraceSink) {
        let meta = TraceMeta {
            name: self.name.clone(),
            parallel_items: self.parallel_items,
            pipelines_per_item: self.pipelines_per_item,
        };
        sink.begin_trace(&meta);
        for kernel in &self.kernels {
            sink.begin_kernel(&kernel.name);
            for op in &kernel.ops {
                sink.op(op);
            }
        }
    }
}

/// Trace-level metadata, delivered to a [`TraceSink`] before any kernel:
/// the work-item name plus the placement hints [`Trace`] carries as
/// fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Work item name (`"aes-128"`, `"resnet-110"`, …).
    pub name: String,
    /// Independent-copy cap (see [`Trace::parallel_items`]).
    pub parallel_items: u64,
    /// DCE pipelines one in-flight item occupies (see
    /// [`Trace::pipelines_per_item`]).
    pub pipelines_per_item: u64,
}

impl TraceMeta {
    /// Metadata with the same defaults as [`Trace::new`]: unlimited
    /// parallel items, one pipeline per item.
    pub fn new(name: impl Into<String>) -> Self {
        TraceMeta {
            name: name.into(),
            parallel_items: u64::MAX,
            pipelines_per_item: 1,
        }
    }

    /// Sets the per-item pipeline footprint (builder style, clamped to
    /// ≥ 1 like [`Trace::with_pipelines_per_item`]).
    #[must_use]
    pub fn with_pipelines_per_item(mut self, pipelines: u64) -> Self {
        self.pipelines_per_item = pipelines.max(1);
        self
    }

    /// Caps the exploitable parallelism (builder style, clamped to ≥ 1
    /// like [`Trace::with_parallel_items`]).
    #[must_use]
    pub fn with_parallel_items(mut self, items: u64) -> Self {
        self.parallel_items = items.max(1);
        self
    }
}

/// An op-stream consumer: the other half of the streaming trace pipeline.
///
/// A workload emits one work item as a flat event stream — one
/// [`TraceSink::begin_trace`], then for each kernel a
/// [`TraceSink::begin_kernel`] followed by its ops in execution order —
/// and the sink prices, records, or materializes the events as they
/// arrive. Nothing is ever buffered by the protocol itself, so emission
/// is O(1) memory regardless of workload scale.
///
/// `op_run` is the primitive: `op_run(op, n)` means *the same op, `n`
/// times in a row*, and MUST be observationally identical to calling
/// [`TraceSink::op`] `n` times. Cost accumulators exploit the
/// equivalence by pricing the op once and folding the repeat in a tight
/// loop (bit-identical to op-by-op accumulation, since each repetition
/// adds the same addend in the same order); materializing sinks expand
/// the run.
pub trait TraceSink {
    /// Starts the work item. Emitters call this exactly once, before any
    /// kernel event.
    fn begin_trace(&mut self, meta: &TraceMeta);

    /// Starts the next kernel; subsequent ops belong to it until the next
    /// `begin_kernel`.
    fn begin_kernel(&mut self, name: &str);

    /// `repeat` consecutive occurrences of `op` inside the current
    /// kernel.
    fn op_run(&mut self, op: &KernelOp, repeat: u64);

    /// One occurrence of `op` (convenience over [`TraceSink::op_run`]).
    fn op(&mut self, op: &KernelOp) {
        self.op_run(op, 1);
    }
}

/// A sink that materializes the stream into a heap [`Trace`] — the
/// bridge that keeps the legacy materialized pipeline (figure tests, op
/// inspection, golden comparisons) alive on top of streaming emitters.
///
/// Note the asymmetry this makes explicit: collecting expands every
/// [`TraceSink::op_run`] into `repeat` stored ops, so a bulk scenario
/// that streams in O(1) memory can cost gigabytes to collect (that is
/// exactly what `make eval-large` demonstrates under its memory cap).
#[derive(Debug)]
pub struct TraceCollector {
    trace: Trace,
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector::new()
    }
}

impl TraceCollector {
    /// An empty collector.
    pub fn new() -> Self {
        TraceCollector {
            trace: Trace::new("", Vec::new()),
        }
    }

    /// The collected trace.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

impl TraceSink for TraceCollector {
    fn begin_trace(&mut self, meta: &TraceMeta) {
        self.trace.name = meta.name.clone();
        self.trace.parallel_items = meta.parallel_items;
        self.trace.pipelines_per_item = meta.pipelines_per_item;
    }

    fn begin_kernel(&mut self, name: &str) {
        self.trace.kernels.push(Kernel::new(name, Vec::new()));
    }

    fn op_run(&mut self, op: &KernelOp, repeat: u64) {
        let kernel = self
            .trace
            .kernels
            .last_mut()
            .expect("begin_kernel precedes ops");
        // usize::MAX ops cannot be materialized anyway; saturate rather
        // than wrap on 32-bit targets.
        let repeat = usize::try_from(repeat).unwrap_or(usize::MAX);
        kernel.ops.reserve(repeat);
        for _ in 0..repeat {
            kernel.ops.push(*op);
        }
    }
}

/// One run-length entry of a [`TraceSummary`]: `repeat` consecutive
/// occurrences of `op`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpRun {
    /// The repeated op.
    pub op: KernelOp,
    /// Consecutive occurrences.
    pub repeat: u64,
}

/// One kernel of a [`TraceSummary`]: a name plus run-length-encoded ops,
/// itself repeated `repeat` times when identical kernels arrive
/// back-to-back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSummary {
    /// Kernel display name.
    pub name: String,
    /// Run-length-encoded ops, in emission order.
    pub runs: Vec<OpRun>,
    /// Back-to-back repetitions of this whole kernel.
    pub repeat: u64,
}

impl KernelSummary {
    /// Total ops in one repetition of this kernel (saturating).
    fn ops_per_repeat(&self) -> u64 {
        self.runs
            .iter()
            .fold(0u64, |acc, run| acc.saturating_add(run.repeat))
    }
}

/// A run-length-compressed recording of one emitted op stream.
///
/// This is what the evaluation engine caches instead of a materialized
/// [`Trace`]: consecutive identical ops collapse into one [`OpRun`] and
/// consecutive identical kernels collapse into one [`KernelSummary`]
/// with a repeat count, so the regular bulk scenarios (a million
/// identical AES blocks) compress to a handful of entries while
/// [`TraceSummary::replay_into`] still reproduces the *exact* original
/// event sequence — same ops, same order, same `op_run` batching — into
/// any sink.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Trace-level metadata as emitted.
    pub meta: TraceMeta,
    /// Compressed kernels, in emission order.
    pub kernels: Vec<KernelSummary>,
}

impl TraceSummary {
    /// Records a full emission through a [`SummaryRecorder`].
    pub fn record(emit: impl FnOnce(&mut SummaryRecorder)) -> Self {
        let mut recorder = SummaryRecorder::new();
        emit(&mut recorder);
        recorder.finish()
    }

    /// Replays the recorded stream into `sink`, preserving the original
    /// event order (kernel repeats replay as separate kernels; op runs
    /// replay as the [`TraceSink::op_run`] batches that were recorded).
    pub fn replay_into(&self, sink: &mut dyn TraceSink) {
        sink.begin_trace(&self.meta);
        for kernel in &self.kernels {
            for _ in 0..kernel.repeat {
                sink.begin_kernel(&kernel.name);
                for run in &kernel.runs {
                    sink.op_run(&run.op, run.repeat);
                }
            }
        }
    }

    /// Total op events across all kernels and repeats (saturating).
    pub fn op_count(&self) -> u64 {
        self.kernels.iter().fold(0u64, |acc, k| {
            acc.saturating_add(k.ops_per_repeat().saturating_mul(k.repeat))
        })
    }

    /// Total kernel events across repeats (saturating).
    pub fn kernel_count(&self) -> u64 {
        self.kernels
            .iter()
            .fold(0u64, |acc, k| acc.saturating_add(k.repeat))
    }

    /// Total MACs across the stream (saturating).
    pub fn macs(&self) -> u64 {
        self.fold_ops(0u64, |acc, op, n| {
            acc.saturating_add(op.macs().saturating_mul(n))
        })
    }

    /// Total element-ops across the stream (saturating).
    pub fn element_ops(&self) -> u64 {
        self.fold_ops(0u64, |acc, op, n| {
            acc.saturating_add(op.element_ops().saturating_mul(n))
        })
    }

    /// MVM share of the work, as [`Trace::mvm_fraction`].
    pub fn mvm_fraction(&self) -> f64 {
        let macs = self.macs() as f64;
        let eops = self.element_ops() as f64;
        if macs + eops == 0.0 {
            return 0.0;
        }
        macs / (macs + eops)
    }

    /// Estimated heap footprint of materializing this stream into a
    /// [`Trace`]: the op storage plus per-kernel overhead. A lower bound
    /// (Vec growth slack is not modelled) used by `eval_large` to show
    /// what the streaming pipeline avoids allocating.
    pub fn materialized_bytes_estimate(&self) -> u64 {
        let op_bytes = self
            .op_count()
            .saturating_mul(std::mem::size_of::<KernelOp>() as u64);
        let kernel_bytes = self.kernels.iter().fold(0u64, |acc, k| {
            let per = (std::mem::size_of::<Kernel>() + k.name.len()) as u64;
            acc.saturating_add(per.saturating_mul(k.repeat))
        });
        op_bytes.saturating_add(kernel_bytes)
    }

    fn fold_ops<T>(&self, init: T, mut f: impl FnMut(T, &KernelOp, u64) -> T) -> T {
        let mut acc = init;
        for kernel in &self.kernels {
            for run in &kernel.runs {
                acc = f(acc, &run.op, run.repeat.saturating_mul(kernel.repeat));
            }
        }
        acc
    }
}

/// The sink behind [`TraceSummary`]: run-length-compresses an op stream
/// as it arrives (O(distinct consecutive events) memory).
#[derive(Debug, Default)]
pub struct SummaryRecorder {
    meta: Option<TraceMeta>,
    kernels: Vec<KernelSummary>,
    current: Option<KernelSummary>,
}

impl SummaryRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        SummaryRecorder::default()
    }

    fn flush_kernel(&mut self) {
        if let Some(done) = self.current.take() {
            match self.kernels.last_mut() {
                // Identical back-to-back kernels fold into a repeat.
                Some(prev) if prev.name == done.name && prev.runs == done.runs => {
                    prev.repeat = prev.repeat.saturating_add(done.repeat);
                }
                _ => self.kernels.push(done),
            }
        }
    }

    /// The compressed summary.
    pub fn finish(mut self) -> TraceSummary {
        self.flush_kernel();
        TraceSummary {
            meta: self.meta.unwrap_or_else(|| TraceMeta::new("")),
            kernels: self.kernels,
        }
    }
}

impl TraceSink for SummaryRecorder {
    fn begin_trace(&mut self, meta: &TraceMeta) {
        self.meta = Some(meta.clone());
    }

    fn begin_kernel(&mut self, name: &str) {
        self.flush_kernel();
        self.current = Some(KernelSummary {
            name: name.to_owned(),
            runs: Vec::new(),
            repeat: 1,
        });
    }

    fn op_run(&mut self, op: &KernelOp, repeat: u64) {
        if repeat == 0 {
            return;
        }
        let kernel = self.current.as_mut().expect("begin_kernel precedes ops");
        match kernel.runs.last_mut() {
            Some(run) if run.op == *op => run.repeat = run.repeat.saturating_add(repeat),
            _ => kernel.runs.push(OpRun { op: *op, repeat }),
        }
    }
}

/// A priced trace: one architecture's cost for one work item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Architecture label.
    pub architecture: String,
    /// Work item name.
    pub workload: String,
    /// Latency of one item in seconds.
    pub latency_s: f64,
    /// Items completed per second at full chip utilisation.
    pub throughput_items_per_s: f64,
    /// Energy per item in joules.
    pub energy_per_item_j: f64,
    /// Per-kernel latency breakdown in seconds, in kernel order.
    pub kernel_latency_s: Vec<(String, f64)>,
}

impl CostReport {
    /// Throughput ratio vs another report (`self / other`).
    pub fn speedup_over(&self, other: &CostReport) -> f64 {
        self.throughput_items_per_s / other.throughput_items_per_s
    }

    /// Energy-savings ratio vs another report (`other / self`).
    pub fn energy_savings_over(&self, other: &CostReport) -> f64 {
        other.energy_per_item_j / self.energy_per_item_j
    }
}

/// Geometric mean of a set of ratios (used for the GeoMean columns and
/// the evaluation engine's summary rows).
///
/// A geometric mean is only defined over positive values, so zero,
/// negative, NaN and infinite entries (a workload with no measurable
/// throughput, a failed cell) are skipped rather than poisoning the whole
/// summary. Returns `0.0` when no valid ratio remains (including the
/// empty slice).
pub fn geomean(ratios: &[f64]) -> f64 {
    let mut log_sum = 0.0;
    let mut count = 0u32;
    for &r in ratios {
        if r.is_finite() && r > 0.0 {
            log_sum += r.ln();
            count += 1;
        }
    }
    if count == 0 {
        return 0.0;
    }
    (log_sum / f64::from(count)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::new(
            "sample",
            vec![
                Kernel::new(
                    "mix",
                    vec![KernelOp::Mvm {
                        rows: 16,
                        cols: 4,
                        input_bits: 1,
                        weight_bits: 1,
                        batch: 2,
                    }],
                ),
                Kernel::new(
                    "xor",
                    vec![KernelOp::Vector {
                        kind: VectorKind::Bool,
                        elements: 16,
                        bits: 8,
                        count: 3,
                    }],
                ),
            ],
        )
    }

    #[test]
    fn mac_and_element_counts() {
        let t = sample_trace();
        assert_eq!(t.macs(), 16 * 4 * 2);
        assert_eq!(t.element_ops(), 48);
        assert!(t.mvm_fraction() > 0.5);
    }

    #[test]
    fn kernel_lookup() {
        let t = sample_trace();
        assert!(t.kernel("mix").is_some());
        assert!(t.kernel("nope").is_none());
    }

    #[test]
    fn host_bytes() {
        let k = Kernel::new("move", vec![KernelOp::HostMove { bytes: 1024 }]);
        assert_eq!(k.host_bytes(), 1024);
        assert_eq!(k.macs(), 0);
    }

    #[test]
    fn geomean_of_ratios() {
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[8.0]) - 8.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_skips_degenerate_ratios() {
        // Zero, negative and non-finite entries are excluded, not fatal.
        assert!((geomean(&[4.0, 0.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[4.0, -3.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[4.0, f64::NAN, 1.0, f64::INFINITY]) - 2.0).abs() < 1e-12);
        // Nothing valid left: fall back to 0.0 rather than NaN.
        assert_eq!(geomean(&[0.0, -1.0, f64::NAN]), 0.0);
    }

    #[test]
    fn cost_report_ratios() {
        let fast = CostReport {
            architecture: "a".into(),
            workload: "w".into(),
            latency_s: 1e-6,
            throughput_items_per_s: 1e6,
            energy_per_item_j: 1e-9,
            kernel_latency_s: vec![],
        };
        let slow = CostReport {
            architecture: "b".into(),
            workload: "w".into(),
            latency_s: 1e-3,
            throughput_items_per_s: 1e3,
            energy_per_item_j: 1e-6,
            kernel_latency_s: vec![],
        };
        assert!((fast.speedup_over(&slow) - 1000.0).abs() < 1e-9);
        assert!((fast.energy_savings_over(&slow) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn mvm_fraction_empty_trace() {
        let t = Trace::new("empty", vec![]);
        assert_eq!(t.mvm_fraction(), 0.0);
    }

    #[test]
    fn op_counts_saturate_instead_of_wrapping() {
        let huge_mvm = KernelOp::Mvm {
            rows: u64::MAX / 2,
            cols: 3,
            input_bits: 8,
            weight_bits: 8,
            batch: 5,
        };
        assert_eq!(huge_mvm.macs(), u64::MAX);
        let huge_vec = KernelOp::Vector {
            kind: VectorKind::Add,
            elements: u64::MAX,
            bits: 8,
            count: 2,
        };
        assert_eq!(huge_vec.element_ops(), u64::MAX);
        let k = Kernel::new("big", vec![huge_mvm, huge_mvm]);
        assert_eq!(k.macs(), u64::MAX);
        let t = Trace::new("big", vec![k.clone(), k]);
        assert_eq!(t.macs(), u64::MAX);
        let moves = Kernel::new(
            "mv",
            vec![
                KernelOp::HostMove { bytes: u64::MAX },
                KernelOp::HostMove { bytes: 7 },
            ],
        );
        assert_eq!(moves.host_bytes(), u64::MAX);
    }

    #[test]
    fn collect_round_trips_a_materialized_trace() {
        let original = sample_trace()
            .with_pipelines_per_item(3)
            .with_parallel_items(128);
        let mut collector = TraceCollector::new();
        original.emit_to(&mut collector);
        assert_eq!(collector.finish(), original);
    }

    #[test]
    fn summary_compresses_runs_and_replays_exactly() {
        let op = KernelOp::TableLookup {
            elements: 16,
            table_size: 256,
            bits: 8,
        };
        let move_op = KernelOp::HostMove { bytes: 32 };
        let mut recorder = SummaryRecorder::new();
        recorder.begin_trace(&TraceMeta::new("rle").with_pipelines_per_item(3));
        // Three identical kernels back to back, each 4 identical ops.
        for _ in 0..3 {
            recorder.begin_kernel("gather");
            for _ in 0..4 {
                recorder.op(&op);
            }
        }
        // A different kernel breaks the kernel run.
        recorder.begin_kernel("move");
        recorder.op_run(&move_op, 5);
        let summary = recorder.finish();

        // Compression: 2 kernel summaries, 1 op run each.
        assert_eq!(summary.kernels.len(), 2);
        assert_eq!(summary.kernels[0].repeat, 3);
        assert_eq!(summary.kernels[0].runs.len(), 1);
        assert_eq!(summary.kernels[0].runs[0].repeat, 4);
        assert_eq!(summary.op_count(), 3 * 4 + 5);
        assert_eq!(summary.kernel_count(), 4);
        assert_eq!(summary.element_ops(), 3 * 4 * 16);
        assert!(summary.materialized_bytes_estimate() > 0);

        // Replay expands back to the exact materialized form.
        let mut collector = TraceCollector::new();
        summary.replay_into(&mut collector);
        let trace = collector.finish();
        assert_eq!(trace.name, "rle");
        assert_eq!(trace.pipelines_per_item, 3);
        assert_eq!(trace.kernels.len(), 4);
        assert_eq!(trace.kernels[0].ops.len(), 4);
        assert_eq!(trace.kernels[3].ops.len(), 5);
    }

    #[test]
    fn summary_stats_match_materialized_totals() {
        let trace = sample_trace();
        let mut recorder = SummaryRecorder::new();
        trace.emit_to(&mut recorder);
        let summary = recorder.finish();
        assert_eq!(summary.macs(), trace.macs());
        assert_eq!(summary.element_ops(), trace.element_ops());
        assert_eq!(summary.mvm_fraction(), trace.mvm_fraction());
        assert_eq!(summary.meta.name, trace.name);
    }

    #[test]
    fn zero_repeat_runs_are_dropped() {
        let mut recorder = SummaryRecorder::new();
        recorder.begin_trace(&TraceMeta::new("z"));
        recorder.begin_kernel("k");
        recorder.op_run(&KernelOp::HostMove { bytes: 8 }, 0);
        let summary = recorder.finish();
        assert_eq!(summary.op_count(), 0);
        assert_eq!(summary.kernel_count(), 1);
    }
}
