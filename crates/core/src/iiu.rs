//! The hardware instruction injection unit (§4.2).
//!
//! A small table plus counter that replays the shift-and-add reduction
//! directly into the digital µop queues, freeing the front end to serve
//! other HCTs. This module executes an [`darth_isa::iiu::InjectionProgram`]
//! against any [`darth_digital::DcePipeline`] implementation (the
//! cell-accurate reference or the packed fast path), tracking how many
//! macro operations were injected (versus front-end issued) for the IIU
//! ablation.

use crate::{Error, Result};
use darth_digital::DcePipeline;
use darth_isa::iiu::{InjectionProgram, InjectionStep};
use serde::{Deserialize, Serialize};

/// Replay engine for injection programs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardwareIiu {
    injected_ops: u64,
    replays: u64,
}

impl HardwareIiu {
    /// Creates an idle IIU.
    pub fn new() -> Self {
        HardwareIiu::default()
    }

    /// Macro operations injected so far.
    pub fn injected_ops(&self) -> u64 {
        self.injected_ops
    }

    /// Programs replayed so far.
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Replays `program` on `pipeline`.
    ///
    /// `zero_vr` names a vector register the tile keeps at zero, used to
    /// realise negation (`Neg` = `0 - src`).
    ///
    /// # Errors
    ///
    /// Propagates pipeline execution errors (bad registers, shift range).
    pub fn replay<P: DcePipeline>(
        &mut self,
        program: &InjectionProgram,
        pipeline: &mut P,
        zero_vr: usize,
    ) -> Result<()> {
        for step in program.steps() {
            match *step {
                InjectionStep::Shift { dst, src, amount } => {
                    pipeline
                        .shl(dst.0 as usize, src.0 as usize, amount as usize)
                        .map_err(Error::Digital)?;
                }
                InjectionStep::Add { dst, a, b } => {
                    pipeline
                        .add(dst.0 as usize, a.0 as usize, b.0 as usize)
                        .map_err(Error::Digital)?;
                }
                InjectionStep::Sub { dst, a, b } => {
                    pipeline
                        .sub(dst.0 as usize, a.0 as usize, b.0 as usize)
                        .map_err(Error::Digital)?;
                }
                InjectionStep::Copy { dst, src } => {
                    pipeline
                        .copy_vr(dst.0 as usize, src.0 as usize)
                        .map_err(Error::Digital)?;
                }
                InjectionStep::Neg { dst, src } => {
                    pipeline
                        .sub(dst.0 as usize, zero_vr, src.0 as usize)
                        .map_err(Error::Digital)?;
                }
            }
            self.injected_ops += 1;
        }
        self.replays += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_digital::pipeline::{Pipeline, PipelineConfig};
    use darth_isa::iiu::ReductionRegs;

    fn pipeline() -> Pipeline {
        Pipeline::new(PipelineConfig {
            depth: 16,
            elements: 4,
            vr_count: 12,
            scratch_cols: 8,
            ..PipelineConfig::default()
        })
        .expect("valid")
    }

    #[test]
    fn replay_reduces_partial_products() {
        // 2-bit unsigned inputs, single weight slice: terms land in v0, v1
        // pre-shifted (in-flight mode), result accumulates in v3.
        let mut pipe = pipeline();
        let zero_vr = 11;
        // partial products for input bits 0 and 1, already shifted:
        // term0 = [3, 5, 0, 1], term1 = [2 << 1, 0, 4 << 1, 2 << 1]
        pipe.write_vector(0, &[3, 5, 0, 1]).expect("fits");
        pipe.write_vector(1, &[4, 0, 8, 4]).expect("fits");
        let regs = ReductionRegs::dense(2); // parts v0, v1; tmp v2; acc v3
        let program = InjectionProgram::shift_and_add(2, false, 1, 2, &regs, true);
        let mut iiu = HardwareIiu::new();
        iiu.replay(&program, &mut pipe, zero_vr).expect("replays");
        assert_eq!(pipe.read_vector(3).expect("in range"), vec![7, 5, 8, 5]);
        assert_eq!(iiu.replays(), 1);
        assert_eq!(iiu.injected_ops() as usize, program.len());
    }

    #[test]
    fn replay_with_shifts_in_table() {
        // unoptimized mode: raw partial products, shifts in the program
        let mut pipe = pipeline();
        pipe.write_vector(0, &[3, 5, 0, 1]).expect("fits");
        pipe.write_vector(1, &[2, 0, 4, 2]).expect("fits");
        let regs = ReductionRegs::dense(2);
        let program = InjectionProgram::shift_and_add(2, false, 1, 2, &regs, false);
        let mut iiu = HardwareIiu::new();
        iiu.replay(&program, &mut pipe, 11).expect("replays");
        assert_eq!(pipe.read_vector(3).expect("in range"), vec![7, 5, 8, 5]);
    }

    #[test]
    fn neg_uses_zero_register() {
        // 1-bit signed input: single all-negative term
        let mut pipe = pipeline();
        pipe.write_vector(0, &[1, 2, 3, 4]).expect("fits");
        let regs = ReductionRegs::dense(1);
        let program = InjectionProgram::shift_and_add(1, true, 1, 1, &regs, true);
        let mut iiu = HardwareIiu::new();
        iiu.replay(&program, &mut pipe, 11).expect("replays");
        let signed: Vec<i64> = (0..4)
            .map(|e| pipe.read_value_signed(2, e).expect("in range"))
            .collect();
        assert_eq!(signed, vec![-1, -2, -3, -4]);
    }

    #[test]
    fn bad_register_surfaces_error() {
        let mut pipe = pipeline();
        let regs = ReductionRegs {
            parts: vec![darth_isa::Vr(50)],
            tmp: darth_isa::Vr(51),
            acc: darth_isa::Vr(52),
        };
        let program = InjectionProgram::shift_and_add(1, false, 1, 1, &regs, true);
        let mut iiu = HardwareIiu::new();
        assert!(iiu.replay(&program, &mut pipe, 11).is_err());
    }
}
