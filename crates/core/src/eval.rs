//! The open evaluation contract: pluggable workloads × architecture
//! models, wired together as a *streaming* pipeline.
//!
//! The paper's evaluation is a matrix — every workload priced on every
//! architecture — and this module defines the two axes as object-safe
//! traits so the matrix is *open* on both sides and *streamed* in the
//! middle:
//!
//! * a [`Workload`] emits one work item as an op stream into any
//!   [`TraceSink`] (the AES/ResNet/LLM scenarios in `darth_apps`, plus
//!   any user-defined scenario). Materialization is just one sink:
//!   [`Workload::build_trace`] collects the stream into a legacy
//!   [`Trace`] via [`Trace::from_workload`];
//! * an [`ArchModel`] prices the stream through a [`CostAccumulator`] —
//!   a sink that folds op events into latency/energy state and finishes
//!   into a [`CostReport`] (the DARTH-PUM model in [`crate::model`] and
//!   every comparison model in `darth_baselines`). Pricing a
//!   materialized `&Trace` is the provided [`ArchModel::price`], which
//!   simply replays the trace through a fresh accumulator — so streamed
//!   and materialized pricing are bit-identical by construction.
//!
//! Because accumulators are independent sinks, one emission can feed
//! many of them at once: [`Fanout`] (and the [`price_on_all`]
//! convenience) prices a single op stream on every registered
//! architecture in one pass, never holding a trace. The `darth_eval`
//! crate's engine builds on exactly these pieces, caching compressed
//! [`crate::trace::TraceSummary`] recordings instead of traces.

use crate::chip::SideChannel;
use crate::hct::HctConfig;
use crate::trace::{CostReport, Trace, TraceCollector, TraceSink};
use serde::{Deserialize, Serialize};

/// A workload scenario: anything that can emit itself as an op stream.
///
/// Implementations are registered with the `darth_eval` engine, which
/// records each emission once (as a compressed run-length summary) and
/// replays it into every registered [`ArchModel`]'s accumulator.
/// Emission may be expensive (synthesizing network weights, walking
/// layer plans), which is why the engine parallelizes it —
/// implementations must therefore be `Send + Sync`, and `emit` must be
/// deterministic for a given configuration.
///
/// Emission protocol: exactly one [`TraceSink::begin_trace`] (carrying
/// the name returned by [`Workload::name`]), then for each kernel one
/// [`TraceSink::begin_kernel`] followed by its ops in execution order.
pub trait Workload: Send + Sync {
    /// Stable identifier, unique within a registry (`"aes-128"`,
    /// `"resnet-56"`, `"gemm-512x512x512"`); also the trace name the
    /// emission carries in its [`crate::trace::TraceMeta`].
    fn name(&self) -> String;

    /// Human-readable figure label (`"AES"`, `"ResNet-20"`). Defaults to
    /// [`Workload::name`].
    fn label(&self) -> String {
        self.name()
    }

    /// The scenario's parameters as `(key, value)` pairs, for the JSON
    /// report. Defaults to none.
    fn params(&self) -> Vec<(String, String)> {
        Vec::new()
    }

    /// Streams the work item into `sink`, op by op, without
    /// materializing it.
    fn emit(&self, sink: &mut dyn TraceSink);

    /// Materializes the emission into a heap [`Trace`] through a
    /// collecting sink. Prefer streaming ([`Workload::emit`]) — a bulk
    /// scenario can be far too large to collect.
    fn build_trace(&self) -> Trace {
        Trace::from_workload(self)
    }
}

impl Trace {
    /// Collects a workload's emission into a materialized trace (the
    /// sink behind the default [`Workload::build_trace`]).
    pub fn from_workload<W: Workload + ?Sized>(workload: &W) -> Trace {
        let mut collector = TraceCollector::new();
        workload.emit(&mut collector);
        collector.finish()
    }
}

/// A streaming cost model for one work item: a [`TraceSink`] that folds
/// the op stream into accumulated latency/energy state and finishes into
/// a [`CostReport`].
///
/// Accumulators are single-use: feed exactly one emission, then call
/// [`CostAccumulator::finish`] once. Feeding events after `finish`, or
/// finishing twice, is a logic error (implementations may return
/// nonsense but must not panic unsafely).
pub trait CostAccumulator: TraceSink {
    /// Finalizes the accumulated stream into a report.
    fn finish(&mut self) -> CostReport;
}

/// An architecture model: anything that can price an op stream.
///
/// The required method is [`ArchModel::accumulator`]: a fresh
/// per-work-item [`CostAccumulator`]. `accumulator` must be cheap and
/// pure — the engine calls it concurrently from multiple threads, once
/// per matrix cell.
pub trait ArchModel: Send + Sync {
    /// Stable identifier, unique within a registry (`"darth-sar"`,
    /// `"baseline-sar"`, `"gpu-rtx-4090"`).
    fn name(&self) -> String;

    /// Human-readable figure label (`"DARTH-PUM"`, `"DigitalPUM"`).
    /// Defaults to [`ArchModel::name`].
    fn label(&self) -> String {
        self.name()
    }

    /// A fresh streaming accumulator for one work item.
    fn accumulator(&self) -> Box<dyn CostAccumulator + '_>;

    /// Prices one materialized work item on this architecture, by
    /// replaying the trace through a fresh accumulator. Bit-identical to
    /// streaming the same op sequence directly.
    fn price(&self, trace: &Trace) -> CostReport {
        let mut acc = self.accumulator();
        trace.emit_to(&mut *acc);
        acc.finish()
    }
}

/// A readback location inside a finished job: which pipeline register to
/// read, how many elements, and whether the stored field decodes as
/// two's complement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Readback {
    /// Output name (`"ciphertext"`, `"row-2"`, `"pixel-0x1"`).
    pub label: String,
    /// Pipeline holding the output register.
    pub pipe: u16,
    /// The output vector register.
    pub vr: u8,
    /// Leading elements to read.
    pub elements: usize,
    /// Decode elements as signed two's complement.
    pub signed: bool,
}

/// One named output vector read back from an executed job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecOutput {
    /// Output name, matching the job's [`Readback::label`].
    pub label: String,
    /// The output cells, in element order.
    pub cells: Vec<i64>,
}

/// A functionally executable work item: an *encoded* `darth_isa`
/// instruction stream plus everything a machine needs to run it — the
/// tile geometry, the host-staged bulk data the program references by
/// handle, and the registers to read outputs from afterwards.
///
/// Jobs carry encoded bytes rather than decoded instructions on purpose:
/// every execution exercises the fixed-width binary decode path, so the
/// encode layer is under differential test too.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecJob {
    /// Work item name (matches the paired priced workload where one
    /// exists).
    pub name: String,
    /// Functional tile geometry the program was compiled for.
    pub tile: HctConfig,
    /// The encoded instruction stream ([`darth_isa::encode`] records).
    pub program: Vec<u8>,
    /// Host-staged matrices and vectors referenced by handle.
    pub data: SideChannel,
    /// Output locations to read after the program halts.
    pub readbacks: Vec<Readback>,
}

impl ExecJob {
    /// Decodes the job's instruction stream.
    ///
    /// # Errors
    ///
    /// Returns ISA decode errors for malformed records.
    pub fn decoded_program(&self) -> crate::Result<darth_isa::instruction::Program> {
        darth_isa::encode::decode_program(&self.program).map_err(crate::Error::Isa)
    }

    /// Number of encoded instruction records.
    pub fn instruction_count(&self) -> usize {
        self.program.len() / darth_isa::encode::RECORD_SIZE
    }

    /// The job's stable [`JobSignature`]: two jobs share a signature
    /// exactly when they run the same encoded program on the same tile
    /// geometry over the same staged side-channel data with the same
    /// readbacks. The job *name* is deliberately excluded — per-request
    /// names must not defeat signature-keyed program caches.
    pub fn signature(&self) -> JobSignature {
        let mut h = Fnv1a::new();
        hash_shape(&mut h, &self.tile, &self.data, &self.readbacks);
        h.write(&self.program);
        JobSignature(h.finish())
    }
}

/// A stable 64-bit identity for "same resident program" work: the FNV-1a
/// hash of a job's tile geometry, encoded instruction stream(s), staged
/// side-channel data and readbacks — everything that determines the
/// compiled program and warmed machine state, and nothing that varies
/// per request.
///
/// The hash is computed with a fixed, explicitly coded FNV-1a so it is
/// deterministic across processes and worker threads (unlike
/// `DefaultHasher`, whose keys are randomized). Serving-layer program
/// caches key on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobSignature(pub u64);

impl std::fmt::Display for JobSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The explicit FNV-1a folder behind [`JobSignature`] — fixed constants,
/// no per-process randomization.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Folds the program-independent parts of a job's identity — tile
/// geometry, staged data, readbacks — into `h`. The tile enters through
/// its `Debug` rendering: every field participates automatically, and
/// the rendering is deterministic for a given build.
fn hash_shape(h: &mut Fnv1a, tile: &HctConfig, data: &SideChannel, readbacks: &[Readback]) {
    h.write(format!("{tile:?}").as_bytes());
    h.write_u64(data.matrices.len() as u64);
    for (&handle, matrix) in &data.matrices {
        h.write_u64(u64::from(handle));
        h.write_u64(matrix.len() as u64);
        for row in matrix {
            h.write_u64(row.len() as u64);
            for &cell in row {
                h.write_i64(cell);
            }
        }
    }
    h.write_u64(data.vectors.len() as u64);
    for (&handle, vector) in &data.vectors {
        h.write_u64(u64::from(handle));
        h.write_u64(vector.len() as u64);
        for &cell in vector {
            h.write_i64(cell);
        }
    }
    h.write_u64(readbacks.len() as u64);
    for rb in readbacks {
        h.write(rb.label.as_bytes());
        h.write_u64(u64::from(rb.pipe));
        h.write_u64(u64::from(rb.vr));
        h.write_u64(rb.elements as u64);
        h.write_u64(u64::from(rb.signed));
    }
}

/// An [`ExecJob`] factored for serving: the request-invariant parts
/// (setup + compute body) separated from the per-request input program.
///
/// A serving layer runs `setup` **once** per resident cache entry (it
/// stages weights/constants/round keys onto a prototype machine),
/// compiles `body` **once**, and per request only interprets the tiny
/// per-request input program before re-running the compiled body —
/// that is the ACE-style "keep the circuit resident, swap the inputs"
/// optimization.
///
/// Invariants the producer must uphold (pinned by the app-layer
/// concatenation tests):
///
/// * `setup` and every per-request input program are **halt-free** —
///   execution must fall through into the next section;
/// * `body` ends with `halt`;
/// * `setup` ‖ `input` ‖ `body` byte-concatenated is exactly the
///   monolithic program an [`ExecJob`] for the same request would carry
///   ([`SplitJob::full_job`] builds it, and the differential spot check
///   runs it on the reference executor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitJob {
    /// Work item name (class-level, not per-request).
    pub name: String,
    /// Functional tile geometry all three program sections target.
    pub tile: HctConfig,
    /// Encoded request-invariant prologue: allocations, weight
    /// programming, constants. Halt-free.
    pub setup: Vec<u8>,
    /// Encoded request-invariant compute body; ends with `halt`.
    pub body: Vec<u8>,
    /// Host-staged data referenced by `setup` (weights, tables).
    pub data: SideChannel,
    /// Output locations to read after the body halts.
    pub readbacks: Vec<Readback>,
}

impl SplitJob {
    /// The split job's stable [`JobSignature`] — the program-cache key.
    /// Covers tile, both invariant program sections, staged data and
    /// readbacks; excludes the name and (by construction) anything
    /// per-request.
    pub fn signature(&self) -> JobSignature {
        let mut h = Fnv1a::new();
        hash_shape(&mut h, &self.tile, &self.data, &self.readbacks);
        h.write_u64(self.setup.len() as u64);
        h.write(&self.setup);
        h.write(&self.body);
        JobSignature(h.finish())
    }

    /// Decodes both invariant sections and checks the split-program
    /// contract: `setup` halt-free, `body` non-empty and ending with
    /// `halt`. Producers (the `darth_kir` lowering, hand-written split
    /// jobs) uphold this by construction; the check makes the invariant
    /// auditable on any serialized artifact.
    ///
    /// # Errors
    ///
    /// Returns a [`Shape`](crate::Error::Shape) error naming the
    /// violated invariant, or the decode error for corrupt sections.
    pub fn check_invariants(&self) -> crate::Result<()> {
        let setup = darth_isa::encode::decode_program(&self.setup)?;
        if !setup.is_halt_free() {
            return Err(crate::Error::Shape(format!(
                "split job `{}`: setup section contains a halt",
                self.name
            )));
        }
        let body = darth_isa::encode::decode_program(&self.body)?;
        if !body.ends_with_halt() {
            return Err(crate::Error::Shape(format!(
                "split job `{}`: body does not end with halt",
                self.name
            )));
        }
        Ok(())
    }

    /// Reassembles the monolithic [`ExecJob`] for one request: `setup` ‖
    /// `input` ‖ `body`, byte-concatenated (the encode layer is
    /// fixed-width records, so concatenation is itself a valid encoded
    /// program). This is what differential spot checks run on the
    /// reference executor to prove the resident serving path bit-exact.
    pub fn full_job(&self, input: &[u8]) -> ExecJob {
        let mut program = Vec::with_capacity(self.setup.len() + input.len() + self.body.len());
        program.extend_from_slice(&self.setup);
        program.extend_from_slice(input);
        program.extend_from_slice(&self.body);
        ExecJob {
            name: self.name.clone(),
            tile: self.tile.clone(),
            program,
            data: self.data.clone(),
            readbacks: self.readbacks.clone(),
        }
    }
}

/// The result of executing one [`ExecJob`]: its output cells plus basic
/// run statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecRun {
    /// The job's outputs, in readback order.
    pub outputs: Vec<ExecOutput>,
    /// Instructions executed (including the halting instruction).
    pub instructions: u64,
    /// Analog instructions among them.
    pub analog_instructions: u64,
}

/// The functional side of a workload: anything that can lower one work
/// item to an [`ExecJob`] and state its golden (software-reference)
/// outputs.
///
/// This is the execution counterpart of [`Workload`]: a scenario that
/// implements both can be *priced* (op-stream accumulators) and
/// *executed* (bit-accurate simulation) from the same registry entry,
/// which is exactly what the `darth_sim` differential harness does.
pub trait Executable: Send + Sync {
    /// Stable identifier, unique within a differential registry.
    fn exec_name(&self) -> String;

    /// Lowers the work item to an encoded program + data + readbacks.
    ///
    /// # Errors
    ///
    /// Returns mapping errors when the item does not fit the tile.
    fn job(&self) -> crate::Result<ExecJob>;

    /// The golden software-reference outputs, in the same order and
    /// shape as the job's readbacks.
    ///
    /// # Errors
    ///
    /// Returns reference-model errors.
    fn golden(&self) -> crate::Result<Vec<ExecOutput>>;
}

/// An execution backend: the functional counterpart of [`ArchModel`].
///
/// Where an [`ArchModel`] folds an op stream into latency/energy, an
/// `Executor` actually *runs* an encoded instruction stream over
/// bit-accurate machine state and returns the computed cells. The
/// `darth_sim` crate provides the reference implementation
/// (`SimExecutor`); the differential harness compares any executor's
/// outputs against [`Executable::golden`] cell by cell.
pub trait Executor: Send + Sync {
    /// Stable identifier (`"darth-sim"`).
    fn name(&self) -> String;

    /// Human-readable label. Defaults to [`Executor::name`].
    fn label(&self) -> String {
        self.name()
    }

    /// Executes one job to completion and reads its outputs.
    ///
    /// # Errors
    ///
    /// Returns decode or machine execution errors.
    fn execute(&self, job: &ExecJob) -> crate::Result<ExecRun>;
}

/// Fans one emitted op stream into many cost accumulators at once, so a
/// single pass over a workload prices it on every architecture without
/// the stream ever being stored.
pub struct Fanout<'m> {
    accumulators: Vec<Box<dyn CostAccumulator + 'm>>,
}

impl<'m> Fanout<'m> {
    /// A fanout over fresh accumulators from `models`, in order.
    pub fn new(models: impl IntoIterator<Item = &'m dyn ArchModel>) -> Self {
        Fanout {
            accumulators: models.into_iter().map(ArchModel::accumulator).collect(),
        }
    }

    /// Finalizes every accumulator, in model order.
    pub fn finish(mut self) -> Vec<CostReport> {
        self.accumulators
            .iter_mut()
            .map(|acc| acc.finish())
            .collect()
    }
}

impl TraceSink for Fanout<'_> {
    fn begin_trace(&mut self, meta: &crate::trace::TraceMeta) {
        for acc in &mut self.accumulators {
            acc.begin_trace(meta);
        }
    }

    fn begin_kernel(&mut self, name: &str) {
        for acc in &mut self.accumulators {
            acc.begin_kernel(name);
        }
    }

    fn op_run(&mut self, op: &crate::trace::KernelOp, repeat: u64) {
        for acc in &mut self.accumulators {
            acc.op_run(op, repeat);
        }
    }
}

/// Prices one workload on every model in a single streaming pass —
/// one emission, `models.len()` reports, no materialized trace.
pub fn price_on_all<'m>(
    workload: &dyn Workload,
    models: impl IntoIterator<Item = &'m dyn ArchModel>,
) -> Vec<CostReport> {
    let mut fanout = Fanout::new(models);
    workload.emit(&mut fanout);
    fanout.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Kernel, KernelOp, TraceMeta};

    struct OneMove;

    impl Workload for OneMove {
        fn name(&self) -> String {
            "one-move".into()
        }
        fn emit(&self, sink: &mut dyn TraceSink) {
            sink.begin_trace(&TraceMeta::new(self.name()));
            sink.begin_kernel("mv");
            sink.op(&KernelOp::HostMove { bytes: 64 });
        }
    }

    struct FreeLunch;

    #[derive(Default)]
    struct FreeLunchAccumulator {
        workload: String,
    }

    impl TraceSink for FreeLunchAccumulator {
        fn begin_trace(&mut self, meta: &TraceMeta) {
            self.workload = meta.name.clone();
        }
        fn begin_kernel(&mut self, _name: &str) {}
        fn op_run(&mut self, _op: &KernelOp, _repeat: u64) {}
    }

    impl CostAccumulator for FreeLunchAccumulator {
        fn finish(&mut self) -> CostReport {
            CostReport {
                architecture: "free-lunch".into(),
                workload: std::mem::take(&mut self.workload),
                latency_s: 1.0,
                throughput_items_per_s: 1.0,
                energy_per_item_j: 1.0,
                kernel_latency_s: vec![],
            }
        }
    }

    impl ArchModel for FreeLunch {
        fn name(&self) -> String {
            "free-lunch".into()
        }
        fn accumulator(&self) -> Box<dyn CostAccumulator + '_> {
            Box::new(FreeLunchAccumulator::default())
        }
    }

    #[test]
    fn traits_are_object_safe() {
        let w: Box<dyn Workload> = Box::new(OneMove);
        let m: Box<dyn ArchModel> = Box::new(FreeLunch);
        assert_eq!(w.label(), "one-move");
        assert!(w.params().is_empty());
        let report = m.price(&w.build_trace());
        assert_eq!(report.workload, "one-move");
        assert_eq!(m.label(), "free-lunch");
    }

    #[test]
    fn build_trace_collects_the_emission() {
        let trace = OneMove.build_trace();
        assert_eq!(trace.name, "one-move");
        assert_eq!(
            trace.kernels,
            vec![Kernel::new("mv", vec![KernelOp::HostMove { bytes: 64 }])]
        );
    }

    #[test]
    fn streamed_and_materialized_pricing_agree() {
        let model = FreeLunch;
        let materialized = model.price(&OneMove.build_trace());
        let mut acc = model.accumulator();
        OneMove.emit(&mut *acc);
        let streamed = acc.finish();
        assert_eq!(materialized, streamed);
    }

    #[test]
    fn exec_job_round_trips_through_the_encode_layer() {
        use darth_isa::instruction::{Instruction, PipelineId, Vr};
        let program: darth_isa::instruction::Program = [
            Instruction::WriteImm {
                pipe: PipelineId(0),
                vr: Vr(0),
                element: 0,
                value: 7,
            },
            Instruction::Halt,
        ]
        .into_iter()
        .collect();
        let job = ExecJob {
            name: "tiny".into(),
            tile: HctConfig::small_test(),
            program: darth_isa::encode::encode_program(&program),
            data: SideChannel::new(),
            readbacks: vec![Readback {
                label: "out".into(),
                pipe: 0,
                vr: 0,
                elements: 1,
                signed: false,
            }],
        };
        assert_eq!(job.instruction_count(), 2);
        assert_eq!(job.decoded_program().expect("decodes"), program);
    }

    #[test]
    fn signatures_are_stable_and_shape_sensitive() {
        use darth_isa::instruction::{Instruction, PipelineId, Vr};
        let program: darth_isa::instruction::Program = [
            Instruction::WriteImm {
                pipe: PipelineId(0),
                vr: Vr(0),
                element: 0,
                value: 7,
            },
            Instruction::Halt,
        ]
        .into_iter()
        .collect();
        let job = ExecJob {
            name: "tiny".into(),
            tile: HctConfig::small_test(),
            program: darth_isa::encode::encode_program(&program),
            data: SideChannel::new(),
            readbacks: vec![],
        };
        // Deterministic and name-independent…
        assert_eq!(job.signature(), job.signature());
        let mut renamed = job.clone();
        renamed.name = "request-194838".into();
        assert_eq!(job.signature(), renamed.signature());
        // …but sensitive to the program bytes, the tile and the data.
        let mut other_program = job.clone();
        other_program.program[8] ^= 1;
        assert_ne!(job.signature(), other_program.signature());
        let mut other_tile = job.clone();
        other_tile.tile.seed ^= 1;
        assert_ne!(job.signature(), other_tile.signature());
        let mut other_data = job.clone();
        other_data
            .data
            .stage_matrix(vec![vec![1, 2], vec![3, 4]])
            .expect("stages");
        assert_ne!(job.signature(), other_data.signature());
    }

    #[test]
    fn split_jobs_reassemble_and_sign_consistently() {
        use darth_isa::encode::encode_program;
        use darth_isa::instruction::{Instruction, PipelineId, Program, Vr};
        let wimm = |value: u64| -> Program {
            [Instruction::WriteImm {
                pipe: PipelineId(0),
                vr: Vr(0),
                element: 0,
                value,
            }]
            .into_iter()
            .collect()
        };
        let body: Program = [Instruction::Halt].into_iter().collect();
        let split = SplitJob {
            name: "split".into(),
            tile: HctConfig::small_test(),
            setup: encode_program(&wimm(1)),
            body: encode_program(&body),
            data: SideChannel::new(),
            readbacks: vec![],
        };
        let input = encode_program(&wimm(9));
        let full = split.full_job(&input);
        // Concatenation is a valid encoded program: setup ‖ input ‖ body.
        assert_eq!(full.instruction_count(), 3);
        let decoded = full.decoded_program().expect("decodes");
        assert_eq!(decoded.iter().count(), 3);
        // The split signature ignores the per-request input…
        let other_input = encode_program(&wimm(42));
        assert_eq!(split.signature(), split.signature());
        assert_ne!(
            split.full_job(&input).signature(),
            split.full_job(&other_input).signature()
        );
        // …and the section lengths are domain-separated: moving bytes
        // between setup and body changes the signature.
        let mut shifted = split.clone();
        shifted.body = [split.setup.clone(), split.body.clone()].concat();
        shifted.setup = Vec::new();
        assert_ne!(split.signature(), shifted.signature());
    }

    #[test]
    fn exec_job_rejects_malformed_records() {
        let job = ExecJob {
            name: "bad".into(),
            tile: HctConfig::small_test(),
            program: vec![0xFF; darth_isa::encode::RECORD_SIZE],
            data: SideChannel::new(),
            readbacks: vec![],
        };
        assert!(job.decoded_program().is_err());
    }

    #[test]
    fn executor_trait_is_object_safe() {
        struct NullExecutor;
        impl Executor for NullExecutor {
            fn name(&self) -> String {
                "null".into()
            }
            fn execute(&self, _job: &ExecJob) -> crate::Result<ExecRun> {
                Ok(ExecRun {
                    outputs: vec![],
                    instructions: 0,
                    analog_instructions: 0,
                })
            }
        }
        let e: Box<dyn Executor> = Box::new(NullExecutor);
        assert_eq!(e.label(), "null");
    }

    #[test]
    fn fanout_prices_one_stream_on_many_models() {
        let a = FreeLunch;
        let b = FreeLunch;
        let models: Vec<&dyn ArchModel> = vec![&a, &b];
        let reports = price_on_all(&OneMove, models);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0].workload, "one-move");
    }
}
