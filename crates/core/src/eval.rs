//! The open evaluation contract: pluggable workloads × architecture
//! models, wired together as a *streaming* pipeline.
//!
//! The paper's evaluation is a matrix — every workload priced on every
//! architecture — and this module defines the two axes as object-safe
//! traits so the matrix is *open* on both sides and *streamed* in the
//! middle:
//!
//! * a [`Workload`] emits one work item as an op stream into any
//!   [`TraceSink`] (the AES/ResNet/LLM scenarios in `darth_apps`, plus
//!   any user-defined scenario). Materialization is just one sink:
//!   [`Workload::build_trace`] collects the stream into a legacy
//!   [`Trace`] via [`Trace::from_workload`];
//! * an [`ArchModel`] prices the stream through a [`CostAccumulator`] —
//!   a sink that folds op events into latency/energy state and finishes
//!   into a [`CostReport`] (the DARTH-PUM model in [`crate::model`] and
//!   every comparison model in `darth_baselines`). Pricing a
//!   materialized `&Trace` is the provided [`ArchModel::price`], which
//!   simply replays the trace through a fresh accumulator — so streamed
//!   and materialized pricing are bit-identical by construction.
//!
//! Because accumulators are independent sinks, one emission can feed
//! many of them at once: [`Fanout`] (and the [`price_on_all`]
//! convenience) prices a single op stream on every registered
//! architecture in one pass, never holding a trace. The `darth_eval`
//! crate's engine builds on exactly these pieces, caching compressed
//! [`crate::trace::TraceSummary`] recordings instead of traces.

use crate::chip::SideChannel;
use crate::hct::HctConfig;
use crate::trace::{CostReport, Trace, TraceCollector, TraceSink};
use serde::{Deserialize, Serialize};

/// A workload scenario: anything that can emit itself as an op stream.
///
/// Implementations are registered with the `darth_eval` engine, which
/// records each emission once (as a compressed run-length summary) and
/// replays it into every registered [`ArchModel`]'s accumulator.
/// Emission may be expensive (synthesizing network weights, walking
/// layer plans), which is why the engine parallelizes it —
/// implementations must therefore be `Send + Sync`, and `emit` must be
/// deterministic for a given configuration.
///
/// Emission protocol: exactly one [`TraceSink::begin_trace`] (carrying
/// the name returned by [`Workload::name`]), then for each kernel one
/// [`TraceSink::begin_kernel`] followed by its ops in execution order.
pub trait Workload: Send + Sync {
    /// Stable identifier, unique within a registry (`"aes-128"`,
    /// `"resnet-56"`, `"gemm-512x512x512"`); also the trace name the
    /// emission carries in its [`crate::trace::TraceMeta`].
    fn name(&self) -> String;

    /// Human-readable figure label (`"AES"`, `"ResNet-20"`). Defaults to
    /// [`Workload::name`].
    fn label(&self) -> String {
        self.name()
    }

    /// The scenario's parameters as `(key, value)` pairs, for the JSON
    /// report. Defaults to none.
    fn params(&self) -> Vec<(String, String)> {
        Vec::new()
    }

    /// Streams the work item into `sink`, op by op, without
    /// materializing it.
    fn emit(&self, sink: &mut dyn TraceSink);

    /// Materializes the emission into a heap [`Trace`] through a
    /// collecting sink. Prefer streaming ([`Workload::emit`]) — a bulk
    /// scenario can be far too large to collect.
    fn build_trace(&self) -> Trace {
        Trace::from_workload(self)
    }
}

impl Trace {
    /// Collects a workload's emission into a materialized trace (the
    /// sink behind the default [`Workload::build_trace`]).
    pub fn from_workload<W: Workload + ?Sized>(workload: &W) -> Trace {
        let mut collector = TraceCollector::new();
        workload.emit(&mut collector);
        collector.finish()
    }
}

/// A streaming cost model for one work item: a [`TraceSink`] that folds
/// the op stream into accumulated latency/energy state and finishes into
/// a [`CostReport`].
///
/// Accumulators are single-use: feed exactly one emission, then call
/// [`CostAccumulator::finish`] once. Feeding events after `finish`, or
/// finishing twice, is a logic error (implementations may return
/// nonsense but must not panic unsafely).
pub trait CostAccumulator: TraceSink {
    /// Finalizes the accumulated stream into a report.
    fn finish(&mut self) -> CostReport;
}

/// An architecture model: anything that can price an op stream.
///
/// The required method is [`ArchModel::accumulator`]: a fresh
/// per-work-item [`CostAccumulator`]. `accumulator` must be cheap and
/// pure — the engine calls it concurrently from multiple threads, once
/// per matrix cell.
pub trait ArchModel: Send + Sync {
    /// Stable identifier, unique within a registry (`"darth-sar"`,
    /// `"baseline-sar"`, `"gpu-rtx-4090"`).
    fn name(&self) -> String;

    /// Human-readable figure label (`"DARTH-PUM"`, `"DigitalPUM"`).
    /// Defaults to [`ArchModel::name`].
    fn label(&self) -> String {
        self.name()
    }

    /// A fresh streaming accumulator for one work item.
    fn accumulator(&self) -> Box<dyn CostAccumulator + '_>;

    /// Prices one materialized work item on this architecture, by
    /// replaying the trace through a fresh accumulator. Bit-identical to
    /// streaming the same op sequence directly.
    fn price(&self, trace: &Trace) -> CostReport {
        let mut acc = self.accumulator();
        trace.emit_to(&mut *acc);
        acc.finish()
    }
}

/// A readback location inside a finished job: which pipeline register to
/// read, how many elements, and whether the stored field decodes as
/// two's complement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Readback {
    /// Output name (`"ciphertext"`, `"row-2"`, `"pixel-0x1"`).
    pub label: String,
    /// Pipeline holding the output register.
    pub pipe: u16,
    /// The output vector register.
    pub vr: u8,
    /// Leading elements to read.
    pub elements: usize,
    /// Decode elements as signed two's complement.
    pub signed: bool,
}

/// One named output vector read back from an executed job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecOutput {
    /// Output name, matching the job's [`Readback::label`].
    pub label: String,
    /// The output cells, in element order.
    pub cells: Vec<i64>,
}

/// A functionally executable work item: an *encoded* `darth_isa`
/// instruction stream plus everything a machine needs to run it — the
/// tile geometry, the host-staged bulk data the program references by
/// handle, and the registers to read outputs from afterwards.
///
/// Jobs carry encoded bytes rather than decoded instructions on purpose:
/// every execution exercises the fixed-width binary decode path, so the
/// encode layer is under differential test too.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecJob {
    /// Work item name (matches the paired priced workload where one
    /// exists).
    pub name: String,
    /// Functional tile geometry the program was compiled for.
    pub tile: HctConfig,
    /// The encoded instruction stream ([`darth_isa::encode`] records).
    pub program: Vec<u8>,
    /// Host-staged matrices and vectors referenced by handle.
    pub data: SideChannel,
    /// Output locations to read after the program halts.
    pub readbacks: Vec<Readback>,
}

impl ExecJob {
    /// Decodes the job's instruction stream.
    ///
    /// # Errors
    ///
    /// Returns ISA decode errors for malformed records.
    pub fn decoded_program(&self) -> crate::Result<darth_isa::instruction::Program> {
        darth_isa::encode::decode_program(&self.program).map_err(crate::Error::Isa)
    }

    /// Number of encoded instruction records.
    pub fn instruction_count(&self) -> usize {
        self.program.len() / darth_isa::encode::RECORD_SIZE
    }
}

/// The result of executing one [`ExecJob`]: its output cells plus basic
/// run statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecRun {
    /// The job's outputs, in readback order.
    pub outputs: Vec<ExecOutput>,
    /// Instructions executed (including the halting instruction).
    pub instructions: u64,
    /// Analog instructions among them.
    pub analog_instructions: u64,
}

/// The functional side of a workload: anything that can lower one work
/// item to an [`ExecJob`] and state its golden (software-reference)
/// outputs.
///
/// This is the execution counterpart of [`Workload`]: a scenario that
/// implements both can be *priced* (op-stream accumulators) and
/// *executed* (bit-accurate simulation) from the same registry entry,
/// which is exactly what the `darth_sim` differential harness does.
pub trait Executable: Send + Sync {
    /// Stable identifier, unique within a differential registry.
    fn exec_name(&self) -> String;

    /// Lowers the work item to an encoded program + data + readbacks.
    ///
    /// # Errors
    ///
    /// Returns mapping errors when the item does not fit the tile.
    fn job(&self) -> crate::Result<ExecJob>;

    /// The golden software-reference outputs, in the same order and
    /// shape as the job's readbacks.
    ///
    /// # Errors
    ///
    /// Returns reference-model errors.
    fn golden(&self) -> crate::Result<Vec<ExecOutput>>;
}

/// An execution backend: the functional counterpart of [`ArchModel`].
///
/// Where an [`ArchModel`] folds an op stream into latency/energy, an
/// `Executor` actually *runs* an encoded instruction stream over
/// bit-accurate machine state and returns the computed cells. The
/// `darth_sim` crate provides the reference implementation
/// (`SimExecutor`); the differential harness compares any executor's
/// outputs against [`Executable::golden`] cell by cell.
pub trait Executor: Send + Sync {
    /// Stable identifier (`"darth-sim"`).
    fn name(&self) -> String;

    /// Human-readable label. Defaults to [`Executor::name`].
    fn label(&self) -> String {
        self.name()
    }

    /// Executes one job to completion and reads its outputs.
    ///
    /// # Errors
    ///
    /// Returns decode or machine execution errors.
    fn execute(&self, job: &ExecJob) -> crate::Result<ExecRun>;
}

/// Fans one emitted op stream into many cost accumulators at once, so a
/// single pass over a workload prices it on every architecture without
/// the stream ever being stored.
pub struct Fanout<'m> {
    accumulators: Vec<Box<dyn CostAccumulator + 'm>>,
}

impl<'m> Fanout<'m> {
    /// A fanout over fresh accumulators from `models`, in order.
    pub fn new(models: impl IntoIterator<Item = &'m dyn ArchModel>) -> Self {
        Fanout {
            accumulators: models.into_iter().map(ArchModel::accumulator).collect(),
        }
    }

    /// Finalizes every accumulator, in model order.
    pub fn finish(mut self) -> Vec<CostReport> {
        self.accumulators
            .iter_mut()
            .map(|acc| acc.finish())
            .collect()
    }
}

impl TraceSink for Fanout<'_> {
    fn begin_trace(&mut self, meta: &crate::trace::TraceMeta) {
        for acc in &mut self.accumulators {
            acc.begin_trace(meta);
        }
    }

    fn begin_kernel(&mut self, name: &str) {
        for acc in &mut self.accumulators {
            acc.begin_kernel(name);
        }
    }

    fn op_run(&mut self, op: &crate::trace::KernelOp, repeat: u64) {
        for acc in &mut self.accumulators {
            acc.op_run(op, repeat);
        }
    }
}

/// Prices one workload on every model in a single streaming pass —
/// one emission, `models.len()` reports, no materialized trace.
pub fn price_on_all<'m>(
    workload: &dyn Workload,
    models: impl IntoIterator<Item = &'m dyn ArchModel>,
) -> Vec<CostReport> {
    let mut fanout = Fanout::new(models);
    workload.emit(&mut fanout);
    fanout.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Kernel, KernelOp, TraceMeta};

    struct OneMove;

    impl Workload for OneMove {
        fn name(&self) -> String {
            "one-move".into()
        }
        fn emit(&self, sink: &mut dyn TraceSink) {
            sink.begin_trace(&TraceMeta::new(self.name()));
            sink.begin_kernel("mv");
            sink.op(&KernelOp::HostMove { bytes: 64 });
        }
    }

    struct FreeLunch;

    #[derive(Default)]
    struct FreeLunchAccumulator {
        workload: String,
    }

    impl TraceSink for FreeLunchAccumulator {
        fn begin_trace(&mut self, meta: &TraceMeta) {
            self.workload = meta.name.clone();
        }
        fn begin_kernel(&mut self, _name: &str) {}
        fn op_run(&mut self, _op: &KernelOp, _repeat: u64) {}
    }

    impl CostAccumulator for FreeLunchAccumulator {
        fn finish(&mut self) -> CostReport {
            CostReport {
                architecture: "free-lunch".into(),
                workload: std::mem::take(&mut self.workload),
                latency_s: 1.0,
                throughput_items_per_s: 1.0,
                energy_per_item_j: 1.0,
                kernel_latency_s: vec![],
            }
        }
    }

    impl ArchModel for FreeLunch {
        fn name(&self) -> String {
            "free-lunch".into()
        }
        fn accumulator(&self) -> Box<dyn CostAccumulator + '_> {
            Box::new(FreeLunchAccumulator::default())
        }
    }

    #[test]
    fn traits_are_object_safe() {
        let w: Box<dyn Workload> = Box::new(OneMove);
        let m: Box<dyn ArchModel> = Box::new(FreeLunch);
        assert_eq!(w.label(), "one-move");
        assert!(w.params().is_empty());
        let report = m.price(&w.build_trace());
        assert_eq!(report.workload, "one-move");
        assert_eq!(m.label(), "free-lunch");
    }

    #[test]
    fn build_trace_collects_the_emission() {
        let trace = OneMove.build_trace();
        assert_eq!(trace.name, "one-move");
        assert_eq!(
            trace.kernels,
            vec![Kernel::new("mv", vec![KernelOp::HostMove { bytes: 64 }])]
        );
    }

    #[test]
    fn streamed_and_materialized_pricing_agree() {
        let model = FreeLunch;
        let materialized = model.price(&OneMove.build_trace());
        let mut acc = model.accumulator();
        OneMove.emit(&mut *acc);
        let streamed = acc.finish();
        assert_eq!(materialized, streamed);
    }

    #[test]
    fn exec_job_round_trips_through_the_encode_layer() {
        use darth_isa::instruction::{Instruction, PipelineId, Vr};
        let program: darth_isa::instruction::Program = [
            Instruction::WriteImm {
                pipe: PipelineId(0),
                vr: Vr(0),
                element: 0,
                value: 7,
            },
            Instruction::Halt,
        ]
        .into_iter()
        .collect();
        let job = ExecJob {
            name: "tiny".into(),
            tile: HctConfig::small_test(),
            program: darth_isa::encode::encode_program(&program),
            data: SideChannel::new(),
            readbacks: vec![Readback {
                label: "out".into(),
                pipe: 0,
                vr: 0,
                elements: 1,
                signed: false,
            }],
        };
        assert_eq!(job.instruction_count(), 2);
        assert_eq!(job.decoded_program().expect("decodes"), program);
    }

    #[test]
    fn exec_job_rejects_malformed_records() {
        let job = ExecJob {
            name: "bad".into(),
            tile: HctConfig::small_test(),
            program: vec![0xFF; darth_isa::encode::RECORD_SIZE],
            data: SideChannel::new(),
            readbacks: vec![],
        };
        assert!(job.decoded_program().is_err());
    }

    #[test]
    fn executor_trait_is_object_safe() {
        struct NullExecutor;
        impl Executor for NullExecutor {
            fn name(&self) -> String {
                "null".into()
            }
            fn execute(&self, _job: &ExecJob) -> crate::Result<ExecRun> {
                Ok(ExecRun {
                    outputs: vec![],
                    instructions: 0,
                    analog_instructions: 0,
                })
            }
        }
        let e: Box<dyn Executor> = Box::new(NullExecutor);
        assert_eq!(e.label(), "null");
    }

    #[test]
    fn fanout_prices_one_stream_on_many_models() {
        let a = FreeLunch;
        let b = FreeLunch;
        let models: Vec<&dyn ArchModel> = vec![&a, &b];
        let reports = price_on_all(&OneMove, models);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0].workload, "one-move");
    }
}
