//! The open evaluation contract: pluggable workloads × architecture models.
//!
//! The paper's evaluation is a matrix — every workload priced on every
//! architecture — and this module defines the two axes as object-safe
//! traits so the matrix is *open* on both sides:
//!
//! * a [`Workload`] lowers one work item into an architecture-neutral
//!   [`Trace`] (the AES/ResNet/LLM scenarios in `darth_apps`, plus any
//!   user-defined scenario);
//! * an [`ArchModel`] prices a trace into a [`CostReport`] (the DARTH-PUM
//!   model in [`crate::model`] and every comparison model in
//!   `darth_baselines`).
//!
//! The `darth_eval` crate provides the engine that crosses registries of
//! `Box<dyn Workload>` and `Box<dyn ArchModel>` in parallel; the traits
//! live here, next to [`Trace`] and [`CostReport`], so each crate can
//! implement them for its own types.

use crate::trace::{CostReport, Trace};

/// A workload scenario: anything that can lower itself into a [`Trace`].
///
/// Implementations are registered with the `darth_eval` engine, which
/// builds each trace once (memoized) and prices it on every registered
/// [`ArchModel`]. Trace construction may be expensive (synthesizing
/// network weights, walking layer plans), which is why the engine
/// parallelizes it — implementations must therefore be `Send + Sync` and
/// `build_trace` must be deterministic for a given configuration.
pub trait Workload: Send + Sync {
    /// Stable identifier, unique within a registry (`"aes-128"`,
    /// `"resnet-56"`, `"gemm-512x512x512"`); also the name of the trace
    /// `build_trace` returns.
    fn name(&self) -> String;

    /// Human-readable figure label (`"AES"`, `"ResNet-20"`). Defaults to
    /// [`Workload::name`].
    fn label(&self) -> String {
        self.name()
    }

    /// The scenario's parameters as `(key, value)` pairs, for the JSON
    /// report. Defaults to none.
    fn params(&self) -> Vec<(String, String)> {
        Vec::new()
    }

    /// Lowers the work item into its kernel trace.
    fn build_trace(&self) -> Trace;
}

/// An architecture model: anything that can price a [`Trace`].
///
/// `price` must be a pure function of `(self, trace)` — the engine calls
/// it concurrently from multiple threads against the same shared trace.
pub trait ArchModel: Send + Sync {
    /// Stable identifier, unique within a registry (`"darth-sar"`,
    /// `"baseline-sar"`, `"gpu-rtx-4090"`).
    fn name(&self) -> String;

    /// Human-readable figure label (`"DARTH-PUM"`, `"DigitalPUM"`).
    /// Defaults to [`ArchModel::name`].
    fn label(&self) -> String {
        self.name()
    }

    /// Prices one work item on this architecture.
    fn price(&self, trace: &Trace) -> CostReport;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Kernel, KernelOp};

    struct OneMove;

    impl Workload for OneMove {
        fn name(&self) -> String {
            "one-move".into()
        }
        fn build_trace(&self) -> Trace {
            Trace::new(
                self.name(),
                vec![Kernel::new("mv", vec![KernelOp::HostMove { bytes: 64 }])],
            )
        }
    }

    struct FreeLunch;

    impl ArchModel for FreeLunch {
        fn name(&self) -> String {
            "free-lunch".into()
        }
        fn price(&self, trace: &Trace) -> CostReport {
            CostReport {
                architecture: self.name(),
                workload: trace.name.clone(),
                latency_s: 1.0,
                throughput_items_per_s: 1.0,
                energy_per_item_j: 1.0,
                kernel_latency_s: vec![],
            }
        }
    }

    #[test]
    fn traits_are_object_safe() {
        let w: Box<dyn Workload> = Box::new(OneMove);
        let m: Box<dyn ArchModel> = Box::new(FreeLunch);
        assert_eq!(w.label(), "one-move");
        assert!(w.params().is_empty());
        let report = m.price(&w.build_trace());
        assert_eq!(report.workload, "one-move");
        assert_eq!(m.label(), "free-lunch");
    }
}
