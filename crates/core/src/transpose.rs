//! The transposition unit (§4.2).
//!
//! Analog and digital PUM operate on different axes: analog applies inputs
//! along wordlines and accumulates along bitlines, while digital stripes
//! operands column-wise and computes row-wise. Any data crossing between
//! domains — partial-product row vectors landing in column-oriented vector
//! registers, or matrices migrating between array types — therefore passes
//! through this unit.

use darth_reram::Cycles;
use serde::{Deserialize, Serialize};

/// The HCT's transposition engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TransposeUnit {
    transposes: u64,
}

impl TransposeUnit {
    /// Creates an idle unit.
    pub fn new() -> Self {
        TransposeUnit::default()
    }

    /// Number of transposes performed (for stats).
    pub fn transposes(&self) -> u64 {
        self.transposes
    }

    /// Transposes a matrix, streaming one element per cycle.
    ///
    /// Returns the transposed matrix and the cycle cost.
    pub fn transpose<T: Copy>(&mut self, matrix: &[Vec<T>]) -> (Vec<Vec<T>>, Cycles) {
        self.transposes += 1;
        let rows = matrix.len();
        let cols = matrix.first().map_or(0, Vec::len);
        let out: Vec<Vec<T>> = (0..cols)
            .map(|c| (0..rows).map(|r| matrix[r][c]).collect())
            .collect();
        (out, Cycles::new((rows * cols) as u64))
    }

    /// Cost of transposing a partial-product row vector into a column
    /// register: the unit retimes the stream as it passes, adding a
    /// one-cycle pipeline stage rather than a full matrix pass.
    pub fn vector_retime_cycles(&self) -> Cycles {
        Cycles::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_square() {
        let mut tu = TransposeUnit::new();
        let (t, cycles) = tu.transpose(&[vec![1, 2], vec![3, 4]]);
        assert_eq!(t, vec![vec![1, 3], vec![2, 4]]);
        assert_eq!(cycles.get(), 4);
    }

    #[test]
    fn transpose_rectangular() {
        let mut tu = TransposeUnit::new();
        let (t, cycles) = tu.transpose(&[vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(t, vec![vec![1, 4], vec![2, 5], vec![3, 6]]);
        assert_eq!(cycles.get(), 6);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let mut tu = TransposeUnit::new();
        let m = vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]];
        let (t, _) = tu.transpose(&m);
        let (tt, _) = tu.transpose(&t);
        assert_eq!(tt, m);
        assert_eq!(tu.transposes(), 2);
    }

    #[test]
    fn empty_matrix() {
        let mut tu = TransposeUnit::new();
        let (t, cycles) = tu.transpose::<i64>(&[]);
        assert!(t.is_empty());
        assert_eq!(cycles, Cycles::ZERO);
    }

    #[test]
    fn vector_retime_is_one_stage() {
        assert_eq!(TransposeUnit::new().vector_retime_cycles().get(), 1);
    }
}
