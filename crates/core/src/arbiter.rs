//! The analog/digital arbiter (§4.2).
//!
//! Analog instructions run for hundreds of cycles and must appear atomic:
//! a younger digital instruction touching the same pipeline (e.g. the ReLU
//! after an MVM) must wait until the MVM's reduction completes. The
//! arbiter enforces per-pipeline domain ownership and age-ordered
//! serialization, and counts the stall cycles it introduces.

use crate::{Error, Result};
use darth_reram::Cycles;
use serde::{Deserialize, Serialize};

/// Which domain currently owns a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Owned by an in-flight analog operation (MVM landing zone).
    Analog,
    /// Owned by digital operations.
    Digital,
}

/// Per-pipeline ownership tracker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdArbiter {
    owners: Vec<Option<Domain>>,
    stall_cycles: Cycles,
    acquisitions: u64,
    conflicts: u64,
}

impl AdArbiter {
    /// Creates an arbiter over `pipelines` pipelines, all free.
    pub fn new(pipelines: usize) -> Self {
        AdArbiter {
            owners: vec![None; pipelines],
            stall_cycles: Cycles::ZERO,
            acquisitions: 0,
            conflicts: 0,
        }
    }

    /// Number of managed pipelines.
    pub fn pipelines(&self) -> usize {
        self.owners.len()
    }

    /// Current owner of a pipeline (`None` = free).
    pub fn owner(&self, pipeline: usize) -> Option<Domain> {
        self.owners.get(pipeline).copied().flatten()
    }

    /// Attempts to acquire a pipeline for a domain.
    ///
    /// Acquiring a pipeline the same domain already owns is idempotent;
    /// acquiring one owned by the *other* domain is a conflict.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ArbiterConflict`] when the pipeline belongs to the
    /// other domain. The caller then serializes (see
    /// [`AdArbiter::stall_until_release`]).
    pub fn acquire(&mut self, pipeline: usize, domain: Domain) -> Result<()> {
        let slot = self
            .owners
            .get_mut(pipeline)
            .ok_or(Error::ArbiterConflict { pipeline })?;
        match *slot {
            None => {
                *slot = Some(domain);
                self.acquisitions += 1;
                Ok(())
            }
            Some(current) if current == domain => Ok(()),
            Some(_) => {
                self.conflicts += 1;
                Err(Error::ArbiterConflict { pipeline })
            }
        }
    }

    /// Releases a pipeline (no-op when already free).
    pub fn release(&mut self, pipeline: usize) {
        if let Some(slot) = self.owners.get_mut(pipeline) {
            *slot = None;
        }
    }

    /// Releases every pipeline owned by `domain`.
    pub fn release_domain(&mut self, domain: Domain) {
        for slot in &mut self.owners {
            if *slot == Some(domain) {
                *slot = None;
            }
        }
    }

    /// Records that a younger instruction stalled for `cycles` waiting on
    /// an older one to release its pipeline — the serialization the
    /// arbiter enforces in hardware.
    pub fn stall_until_release(&mut self, cycles: Cycles) {
        self.stall_cycles += cycles;
    }

    /// Total stall cycles introduced by serialization.
    pub fn stall_cycles(&self) -> Cycles {
        self.stall_cycles
    }

    /// Total successful acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Total conflicts observed.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of currently owned pipelines.
    pub fn owned_count(&self) -> usize {
        self.owners.iter().filter(|o| o.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_free_pipeline() {
        let mut arb = AdArbiter::new(4);
        arb.acquire(0, Domain::Analog).expect("free");
        assert_eq!(arb.owner(0), Some(Domain::Analog));
        assert_eq!(arb.owned_count(), 1);
    }

    #[test]
    fn same_domain_reacquire_is_idempotent() {
        let mut arb = AdArbiter::new(4);
        arb.acquire(1, Domain::Digital).expect("free");
        arb.acquire(1, Domain::Digital).expect("idempotent");
        assert_eq!(arb.conflicts(), 0);
    }

    #[test]
    fn cross_domain_acquire_conflicts() {
        let mut arb = AdArbiter::new(4);
        arb.acquire(2, Domain::Analog).expect("free");
        let err = arb.acquire(2, Domain::Digital).unwrap_err();
        assert!(matches!(err, Error::ArbiterConflict { pipeline: 2 }));
        assert_eq!(arb.conflicts(), 1);
    }

    #[test]
    fn release_frees_for_other_domain() {
        let mut arb = AdArbiter::new(4);
        arb.acquire(3, Domain::Analog).expect("free");
        arb.release(3);
        arb.acquire(3, Domain::Digital).expect("released");
    }

    #[test]
    fn release_domain_sweeps() {
        let mut arb = AdArbiter::new(4);
        arb.acquire(0, Domain::Analog).expect("free");
        arb.acquire(1, Domain::Analog).expect("free");
        arb.acquire(2, Domain::Digital).expect("free");
        arb.release_domain(Domain::Analog);
        assert_eq!(arb.owner(0), None);
        assert_eq!(arb.owner(1), None);
        assert_eq!(arb.owner(2), Some(Domain::Digital));
    }

    #[test]
    fn out_of_range_pipeline_is_a_conflict_error() {
        let mut arb = AdArbiter::new(2);
        assert!(arb.acquire(7, Domain::Analog).is_err());
    }

    #[test]
    fn stall_accounting() {
        let mut arb = AdArbiter::new(1);
        arb.stall_until_release(Cycles::new(100));
        arb.stall_until_release(Cycles::new(20));
        assert_eq!(arb.stall_cycles().get(), 120);
    }
}
