//! Whole-chip assembly and ISA interpretation.
//!
//! A [`DarthPumChip`] couples the iso-area sizing of [`ChipParams`] with
//! one or more *functional* hybrid compute tiles and a front-end model. It
//! executes [`darth_isa`] programs instruction by instruction: digital ops
//! dispatch to pipelines, analog ops route through vACores and the
//! arbiter, and coordination ops manage allocation — exactly the §4.2
//! flow. Bulk data (matrices, immediates) is supplied through a
//! [`SideChannel`], mirroring how a host would stage data into the chip's
//! memory before launching a kernel.

use crate::front_end::FrontEnd;
use crate::hct::{GenericTile, HctConfig};
use crate::params::ChipParams;
use crate::{Error, Result};
use darth_digital::{BoolOp, DcePipeline, PackedPipeline, Pipeline};
use darth_isa::iiu::ReductionRegs;
use darth_isa::instruction::{Instruction, IsaBoolOp, Program};
use darth_isa::VaCoreId;
use darth_reram::{Cycles, EnergyMeter};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Host-staged bulk data referenced by instruction handles.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SideChannel {
    /// Matrices for `ProgMatrix`, keyed by handle.
    pub matrices: BTreeMap<u16, Vec<Vec<i64>>>,
    /// Row/column vectors for `UpdateRow`/`UpdateCol`, keyed by handle.
    pub vectors: BTreeMap<u16, Vec<i64>>,
}

impl SideChannel {
    /// Creates an empty side channel.
    pub fn new() -> Self {
        SideChannel::default()
    }

    /// Stages a matrix, returning its handle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ResourceExhausted`] once handle `u16::MAX` is in
    /// use — the next allocation would wrap the `u16` handle space that
    /// instructions encode.
    pub fn stage_matrix(&mut self, matrix: Vec<Vec<i64>>) -> Result<u16> {
        let handle = Self::next_handle(&self.matrices, "matrix handles")?;
        self.matrices.insert(handle, matrix);
        Ok(handle)
    }

    /// Stages a vector, returning its handle.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ResourceExhausted`] once handle `u16::MAX` is in
    /// use (see [`SideChannel::stage_matrix`]).
    pub fn stage_vector(&mut self, vector: Vec<i64>) -> Result<u16> {
        let handle = Self::next_handle(&self.vectors, "vector handles")?;
        self.vectors.insert(handle, vector);
        Ok(handle)
    }

    /// One past the highest staged handle, or an error when the `u16`
    /// handle space is exhausted.
    fn next_handle<T>(staged: &BTreeMap<u16, T>, what: &'static str) -> Result<u16> {
        match staged.keys().next_back() {
            None => Ok(0),
            Some(&k) => k.checked_add(1).ok_or(Error::ResourceExhausted(what)),
        }
    }
}

/// Execution statistics of one program run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Instructions executed (including the halting instruction).
    pub instructions: u64,
    /// Analog instructions among them.
    pub analog_instructions: u64,
    /// Front-end issue cycles consumed.
    pub issue_cycles: u64,
}

/// The DARTH-PUM chip, generic over its DCE pipeline implementation.
///
/// [`DarthPumChip`] is the reference chip over cell-accurate
/// [`Pipeline`]s; [`FastChip`] swaps in [`PackedPipeline`]s. All ISA
/// interpretation, accounting and side-channel handling is shared.
#[derive(Debug, Clone)]
pub struct GenericChip<P: DcePipeline> {
    params: ChipParams,
    tile: GenericTile<P>,
    front_end: FrontEnd,
    analog_enabled: bool,
    digital_enabled: bool,
}

/// The reference chip: cell-accurate pipelines.
pub type DarthPumChip = GenericChip<Pipeline>;

/// The fast-path chip: packed bit-plane pipelines.
pub type FastChip = GenericChip<PackedPipeline>;

/// The per-instruction dispatch closure of a [`CompiledProgram`].
type OpThunk<P> = Box<dyn Fn(&mut GenericChip<P>, &SideChannel) -> Result<()> + Send + Sync>;

/// A decoded instruction stream precompiled into a jump table of
/// monomorphic op closures.
///
/// Operand casts, the Boolean-op mapping and the instruction `match` are
/// all paid once at [`GenericChip::compile`] time; repeated
/// [`GenericChip::run_compiled`] runs dispatch straight through the boxed
/// thunks. Run statistics (executed-prefix length, analog count,
/// per-mnemonic histogram) are precomputed too, so a run only pays for
/// the work the instructions actually do.
pub struct CompiledProgram<P: DcePipeline> {
    thunks: Vec<OpThunk<P>>,
    instructions: u64,
    analog_instructions: u64,
    histogram: BTreeMap<&'static str, u64>,
}

impl<P: DcePipeline> CompiledProgram<P> {
    /// Instructions executed per run: the prefix through the first `halt`
    /// (inclusive), or the whole program when there is none.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Analog instructions among [`CompiledProgram::instructions`].
    pub fn analog_instructions(&self) -> u64 {
        self.analog_instructions
    }

    /// Per-mnemonic instruction counts over the executed prefix. Keys are
    /// the interned `&'static str` mnemonics from
    /// [`Instruction::mnemonic`], so merging a run's histogram into a
    /// machine's lifetime histogram never clones a key.
    pub fn histogram(&self) -> &BTreeMap<&'static str, u64> {
        &self.histogram
    }
}

impl<P: DcePipeline> std::fmt::Debug for CompiledProgram<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledProgram")
            .field("thunks", &self.thunks.len())
            .field("instructions", &self.instructions)
            .field("analog_instructions", &self.analog_instructions)
            .finish()
    }
}

impl<P: DcePipeline> GenericChip<P> {
    /// Builds a chip with one functional tile (the architecture replicates
    /// it; throughput scaling is the model layer's job).
    ///
    /// # Errors
    ///
    /// Propagates tile construction errors.
    pub fn new(params: ChipParams, tile_config: HctConfig) -> Result<Self> {
        let tile = GenericTile::new(tile_config)?;
        Ok(GenericChip {
            params,
            tile,
            front_end: FrontEnd::new(),
            analog_enabled: true,
            digital_enabled: true,
        })
    }

    /// Chip-level parameters (iso-area sizing).
    pub fn params(&self) -> &ChipParams {
        &self.params
    }

    /// The functional tile.
    pub fn tile(&self) -> &GenericTile<P> {
        &self.tile
    }

    /// Mutable access to the functional tile (application mappings drive
    /// pipelines directly for digital-only kernels).
    pub fn tile_mut(&mut self) -> &mut GenericTile<P> {
        &mut self.tile
    }

    /// The front-end model.
    pub fn front_end(&self) -> &FrontEnd {
        &self.front_end
    }

    /// Merged energy meter.
    pub fn energy_meter(&self) -> EnergyMeter {
        let mut meter = self.tile.energy_meter();
        meter.add(
            "front_end",
            self.front_end.energy(Cycles::new(self.front_end.issued())),
        );
        meter
    }

    /// Executes a program against the functional tile.
    ///
    /// Returns statistics; results live in the tile's pipelines and can be
    /// read back through [`GenericChip::tile`].
    ///
    /// # Errors
    ///
    /// Returns the first execution error (bad operands, arbiter conflicts,
    /// missing side-channel data).
    pub fn execute(&mut self, program: &Program, data: &SideChannel) -> Result<RunStats> {
        let mut stats = RunStats::default();
        for inst in program.iter() {
            stats.instructions += 1;
            if inst.is_analog() {
                stats.analog_instructions += 1;
            }
            stats.issue_cycles += self.front_end.issue(1).get();
            match *inst {
                Instruction::Halt => break,
                other => self.execute_one(&other, data)?,
            }
        }
        Ok(stats)
    }

    /// Precompiles `program` into a [`CompiledProgram`] jump table.
    ///
    /// Only the executed prefix (through the first `halt`, inclusive) is
    /// compiled; instructions after a `halt` never run in the interpreter
    /// either. Unknown opcodes compile into thunks that fail exactly as
    /// [`GenericChip::execute`] would.
    pub fn compile(program: &Program) -> CompiledProgram<P> {
        let mut thunks = Vec::with_capacity(program.len());
        let mut instructions = 0u64;
        let mut analog_instructions = 0u64;
        // Count per static mnemonic first (a handful of distinct entries)
        // so the per-instruction loop never allocates key strings.
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        for inst in program.iter() {
            instructions += 1;
            if inst.is_analog() {
                analog_instructions += 1;
            }
            let mnemonic = inst.mnemonic();
            match counts.iter_mut().find(|(m, _)| *m == mnemonic) {
                Some((_, n)) => *n += 1,
                None => counts.push((mnemonic, 1)),
            }
            if matches!(inst, Instruction::Halt) {
                break;
            }
            thunks.push(Self::compile_one(inst));
        }
        let histogram = counts.into_iter().collect();
        CompiledProgram {
            thunks,
            instructions,
            analog_instructions,
            histogram,
        }
    }

    /// Runs a [`CompiledProgram`] against the chip.
    ///
    /// Bit-identical to interpreting the same program with
    /// [`GenericChip::execute`]: the thunks call the same tile methods in
    /// the same order, and the front end issues one cycle per executed
    /// instruction either way ([`FrontEnd::issue`] is linear in its
    /// count).
    ///
    /// # Errors
    ///
    /// Returns the first execution error, exactly as the interpreter
    /// would.
    pub fn run_compiled(
        &mut self,
        program: &CompiledProgram<P>,
        data: &SideChannel,
    ) -> Result<RunStats> {
        let issue_cycles = self.front_end.issue(program.instructions).get();
        for thunk in &program.thunks {
            thunk(self, data)?;
        }
        Ok(RunStats {
            instructions: program.instructions,
            analog_instructions: program.analog_instructions,
            issue_cycles,
        })
    }

    /// Compiles one instruction into its dispatch thunk, hoisting operand
    /// casts and opcode mapping out of the run loop. Mirrors
    /// [`GenericChip::execute_one`] arm for arm.
    fn compile_one(inst: &Instruction) -> OpThunk<P> {
        match *inst {
            Instruction::Nop | Instruction::FenceAd | Instruction::Halt => Box::new(|_, _| Ok(())),
            Instruction::Bool {
                op,
                pipe,
                dst,
                a,
                b,
            } => {
                let bool_op = match op {
                    IsaBoolOp::Nor => BoolOp::Nor,
                    IsaBoolOp::Or => BoolOp::Or,
                    IsaBoolOp::And => BoolOp::And,
                    IsaBoolOp::Nand => BoolOp::Nand,
                    IsaBoolOp::Xor => BoolOp::Xor,
                    IsaBoolOp::Xnor => BoolOp::Xnor,
                };
                let (pipe, dst, a, b) =
                    (pipe.0 as usize, dst.0 as usize, a.0 as usize, b.0 as usize);
                Box::new(move |chip, _| {
                    chip.require_digital()?;
                    chip.tile.pipeline_mut(pipe)?.bool_op(bool_op, dst, a, b)?;
                    Ok(())
                })
            }
            Instruction::Not { pipe, dst, a } => {
                let (pipe, dst, a) = (pipe.0 as usize, dst.0 as usize, a.0 as usize);
                Box::new(move |chip, _| {
                    chip.require_digital()?;
                    chip.tile.pipeline_mut(pipe)?.not(dst, a)?;
                    Ok(())
                })
            }
            Instruction::Add { pipe, dst, a, b } => {
                let (pipe, dst, a, b) =
                    (pipe.0 as usize, dst.0 as usize, a.0 as usize, b.0 as usize);
                Box::new(move |chip, _| {
                    chip.require_digital()?;
                    chip.tile.pipeline_mut(pipe)?.add(dst, a, b)?;
                    Ok(())
                })
            }
            Instruction::Sub { pipe, dst, a, b } => {
                let (pipe, dst, a, b) =
                    (pipe.0 as usize, dst.0 as usize, a.0 as usize, b.0 as usize);
                Box::new(move |chip, _| {
                    chip.require_digital()?;
                    chip.tile.pipeline_mut(pipe)?.sub(dst, a, b)?;
                    Ok(())
                })
            }
            Instruction::Mul {
                pipe,
                dst,
                a,
                b,
                width,
            } => {
                let (pipe, dst, a, b) =
                    (pipe.0 as usize, dst.0 as usize, a.0 as usize, b.0 as usize);
                Box::new(move |chip, _| {
                    chip.require_digital()?;
                    chip.tile.pipeline_mut(pipe)?.mul(dst, a, b, width)?;
                    Ok(())
                })
            }
            Instruction::CmpLt { pipe, dst, a, b } => {
                let (pipe, dst, a, b) =
                    (pipe.0 as usize, dst.0 as usize, a.0 as usize, b.0 as usize);
                Box::new(move |chip, _| {
                    chip.require_digital()?;
                    chip.tile.pipeline_mut(pipe)?.cmp_lt(dst, a, b)?;
                    Ok(())
                })
            }
            Instruction::Select {
                pipe,
                dst,
                cond,
                a,
                b,
            } => {
                let (pipe, dst, cond, a, b) = (
                    pipe.0 as usize,
                    dst.0 as usize,
                    cond.0 as usize,
                    a.0 as usize,
                    b.0 as usize,
                );
                Box::new(move |chip, _| {
                    chip.require_digital()?;
                    chip.tile.pipeline_mut(pipe)?.select(dst, cond, a, b)?;
                    Ok(())
                })
            }
            Instruction::Relu { pipe, dst, a } => {
                let (pipe, dst, a) = (pipe.0 as usize, dst.0 as usize, a.0 as usize);
                Box::new(move |chip, _| {
                    chip.require_digital()?;
                    chip.tile.pipeline_mut(pipe)?.relu(dst, a)?;
                    Ok(())
                })
            }
            Instruction::ShiftLeft {
                pipe,
                dst,
                src,
                amount,
            } => {
                let (pipe, dst, src, amount) = (
                    pipe.0 as usize,
                    dst.0 as usize,
                    src.0 as usize,
                    amount as usize,
                );
                Box::new(move |chip, _| {
                    chip.require_digital()?;
                    chip.tile.pipeline_mut(pipe)?.shl(dst, src, amount)?;
                    Ok(())
                })
            }
            Instruction::ShiftRight {
                pipe,
                dst,
                src,
                amount,
            } => {
                let (pipe, dst, src, amount) = (
                    pipe.0 as usize,
                    dst.0 as usize,
                    src.0 as usize,
                    amount as usize,
                );
                Box::new(move |chip, _| {
                    chip.require_digital()?;
                    chip.tile.pipeline_mut(pipe)?.shr(dst, src, amount)?;
                    Ok(())
                })
            }
            Instruction::RotateLeft {
                pipe,
                dst,
                src,
                tmp,
                amount,
                width,
            } => {
                let (pipe, dst, src, tmp, amount, width) = (
                    pipe.0 as usize,
                    dst.0 as usize,
                    src.0 as usize,
                    tmp.0 as usize,
                    amount as usize,
                    width as usize,
                );
                Box::new(move |chip, _| {
                    chip.require_digital()?;
                    chip.tile
                        .pipeline_mut(pipe)?
                        .rotate_left(dst, src, tmp, amount, width)?;
                    Ok(())
                })
            }
            Instruction::CopyVr { pipe, dst, src } => {
                let (pipe, dst, src) = (pipe.0 as usize, dst.0 as usize, src.0 as usize);
                Box::new(move |chip, _| {
                    chip.require_digital()?;
                    chip.tile.pipeline_mut(pipe)?.copy_vr(dst, src)?;
                    Ok(())
                })
            }
            Instruction::CopyAcross {
                src_pipe,
                src,
                dst_pipe,
                dst,
            } => {
                let (src_pipe, src, dst_pipe, dst) = (
                    src_pipe.0 as usize,
                    src.0 as usize,
                    dst_pipe.0 as usize,
                    dst.0 as usize,
                );
                Box::new(move |chip, _| {
                    chip.require_digital()?;
                    let (dst_p, src_p) = chip.tile.pipeline_pair(dst_pipe, src_pipe)?;
                    dst_p.copy_from(src_p, src, dst)?;
                    Ok(())
                })
            }
            Instruction::ElementLoad {
                pipe,
                addr,
                table_pipe,
                dst,
            } => {
                let (pipe, addr, table_pipe, dst) = (
                    pipe.0 as usize,
                    addr.0 as usize,
                    table_pipe.0 as usize,
                    dst.0 as usize,
                );
                Box::new(move |chip, _| {
                    chip.require_digital()?;
                    let (p, table) = chip.tile.pipeline_pair(pipe, table_pipe)?;
                    p.elementwise_load(addr, table, dst)?;
                    Ok(())
                })
            }
            Instruction::PipeReverse { pipe } => {
                let pipe = pipe.0 as usize;
                Box::new(move |chip, _| {
                    chip.require_digital()?;
                    chip.tile.pipeline_mut(pipe)?.reverse();
                    Ok(())
                })
            }
            Instruction::WriteImm {
                pipe,
                vr,
                element,
                value,
            } => {
                let (pipe, vr, element) = (pipe.0 as usize, vr.0 as usize, element as usize);
                Box::new(move |chip, _| {
                    chip.tile
                        .pipeline_mut(pipe)?
                        .write_value(vr, element, value)?;
                    Ok(())
                })
            }
            Instruction::PipeReserve { pipe } => {
                let _ = pipe;
                Box::new(|_, _| Ok(()))
            }
            Instruction::AllocVaCore {
                vacore,
                element_bits,
                bits_per_cell,
                input_bits,
                input_signed,
            } => Box::new(move |chip, _| {
                if !chip.analog_enabled {
                    return Err(Error::DomainDisabled("analog"));
                }
                let allocated = chip.tile.alloc_vacore(
                    element_bits,
                    bits_per_cell,
                    input_bits,
                    input_signed,
                )?;
                if allocated != vacore {
                    return Err(Error::VaCore(format!(
                        "program expected vACore {vacore}, firmware allocated {allocated}"
                    )));
                }
                Ok(())
            }),
            Instruction::FreeVaCore { vacore } => {
                Box::new(move |chip, _| chip.tile.free_vacore(vacore))
            }
            Instruction::ProgMatrix {
                vacore,
                matrix_handle,
            } => Box::new(move |chip, data| {
                if !chip.analog_enabled {
                    return Err(Error::DomainDisabled("analog"));
                }
                let matrix = data
                    .matrices
                    .get(&matrix_handle)
                    .ok_or(Error::UnknownMatrix(matrix_handle as usize))?;
                chip.tile.set_matrix(vacore, matrix)?;
                Ok(())
            }),
            Instruction::UpdateRow {
                vacore,
                row,
                data_handle,
            } => Box::new(move |chip, data| {
                let values = data
                    .vectors
                    .get(&data_handle)
                    .ok_or(Error::UnknownMatrix(data_handle as usize))?;
                chip.tile.update_row(vacore, row as usize, values)?;
                Ok(())
            }),
            Instruction::UpdateCol {
                vacore,
                col,
                data_handle,
            } => Box::new(move |chip, data| {
                let values = data
                    .vectors
                    .get(&data_handle)
                    .ok_or(Error::UnknownMatrix(data_handle as usize))?;
                chip.update_col(vacore, col as usize, values)
            }),
            Instruction::Mvm {
                vacore,
                input_pipe,
                input_vr,
                dst_pipe,
                dst_vr,
                early_levels,
            } => {
                let (input_pipe, input_vr, dst_pipe, dst_vr) = (
                    input_pipe.0 as usize,
                    input_vr.0 as usize,
                    dst_pipe.0 as usize,
                    dst_vr.0 as usize,
                );
                Box::new(move |chip, _| {
                    if !chip.analog_enabled {
                        return Err(Error::DomainDisabled("analog"));
                    }
                    chip.exec_mvm_instruction(
                        vacore,
                        input_pipe,
                        input_vr,
                        dst_pipe,
                        dst_vr,
                        early_levels,
                    )
                })
            }
            Instruction::SetAnalogMode { enabled } => Box::new(move |chip, _| {
                chip.analog_enabled = enabled;
                Ok(())
            }),
            Instruction::SetDigitalMode { enabled } => Box::new(move |chip, _| {
                chip.digital_enabled = enabled;
                Ok(())
            }),
            other => {
                let mnemonic = other.mnemonic();
                Box::new(move |_, _| {
                    Err(Error::InvalidConfig(format!(
                        "instruction `{mnemonic}` is not implemented by this chip model"
                    )))
                })
            }
        }
    }

    fn require_digital(&self) -> Result<()> {
        if !self.digital_enabled {
            return Err(Error::DomainDisabled("digital"));
        }
        Ok(())
    }

    fn execute_one(&mut self, inst: &Instruction, data: &SideChannel) -> Result<()> {
        match *inst {
            Instruction::Nop | Instruction::FenceAd | Instruction::Halt => Ok(()),
            Instruction::Bool {
                op,
                pipe,
                dst,
                a,
                b,
            } => {
                self.require_digital()?;
                let bool_op = match op {
                    IsaBoolOp::Nor => BoolOp::Nor,
                    IsaBoolOp::Or => BoolOp::Or,
                    IsaBoolOp::And => BoolOp::And,
                    IsaBoolOp::Nand => BoolOp::Nand,
                    IsaBoolOp::Xor => BoolOp::Xor,
                    IsaBoolOp::Xnor => BoolOp::Xnor,
                };
                self.tile.pipeline_mut(pipe.0 as usize)?.bool_op(
                    bool_op,
                    dst.0 as usize,
                    a.0 as usize,
                    b.0 as usize,
                )?;
                Ok(())
            }
            Instruction::Not { pipe, dst, a } => {
                self.require_digital()?;
                self.tile
                    .pipeline_mut(pipe.0 as usize)?
                    .not(dst.0 as usize, a.0 as usize)?;
                Ok(())
            }
            Instruction::Add { pipe, dst, a, b } => {
                self.require_digital()?;
                self.tile.pipeline_mut(pipe.0 as usize)?.add(
                    dst.0 as usize,
                    a.0 as usize,
                    b.0 as usize,
                )?;
                Ok(())
            }
            Instruction::Sub { pipe, dst, a, b } => {
                self.require_digital()?;
                self.tile.pipeline_mut(pipe.0 as usize)?.sub(
                    dst.0 as usize,
                    a.0 as usize,
                    b.0 as usize,
                )?;
                Ok(())
            }
            Instruction::Mul {
                pipe,
                dst,
                a,
                b,
                width,
            } => {
                self.require_digital()?;
                self.tile.pipeline_mut(pipe.0 as usize)?.mul(
                    dst.0 as usize,
                    a.0 as usize,
                    b.0 as usize,
                    width,
                )?;
                Ok(())
            }
            Instruction::CmpLt { pipe, dst, a, b } => {
                self.require_digital()?;
                self.tile.pipeline_mut(pipe.0 as usize)?.cmp_lt(
                    dst.0 as usize,
                    a.0 as usize,
                    b.0 as usize,
                )?;
                Ok(())
            }
            Instruction::Select {
                pipe,
                dst,
                cond,
                a,
                b,
            } => {
                self.require_digital()?;
                self.tile.pipeline_mut(pipe.0 as usize)?.select(
                    dst.0 as usize,
                    cond.0 as usize,
                    a.0 as usize,
                    b.0 as usize,
                )?;
                Ok(())
            }
            Instruction::Relu { pipe, dst, a } => {
                self.require_digital()?;
                self.tile
                    .pipeline_mut(pipe.0 as usize)?
                    .relu(dst.0 as usize, a.0 as usize)?;
                Ok(())
            }
            Instruction::ShiftLeft {
                pipe,
                dst,
                src,
                amount,
            } => {
                self.require_digital()?;
                self.tile.pipeline_mut(pipe.0 as usize)?.shl(
                    dst.0 as usize,
                    src.0 as usize,
                    amount as usize,
                )?;
                Ok(())
            }
            Instruction::ShiftRight {
                pipe,
                dst,
                src,
                amount,
            } => {
                self.require_digital()?;
                self.tile.pipeline_mut(pipe.0 as usize)?.shr(
                    dst.0 as usize,
                    src.0 as usize,
                    amount as usize,
                )?;
                Ok(())
            }
            Instruction::RotateLeft {
                pipe,
                dst,
                src,
                tmp,
                amount,
                width,
            } => {
                self.require_digital()?;
                self.tile.pipeline_mut(pipe.0 as usize)?.rotate_left(
                    dst.0 as usize,
                    src.0 as usize,
                    tmp.0 as usize,
                    amount as usize,
                    width as usize,
                )?;
                Ok(())
            }
            Instruction::CopyVr { pipe, dst, src } => {
                self.require_digital()?;
                self.tile
                    .pipeline_mut(pipe.0 as usize)?
                    .copy_vr(dst.0 as usize, src.0 as usize)?;
                Ok(())
            }
            Instruction::CopyAcross {
                src_pipe,
                src,
                dst_pipe,
                dst,
            } => {
                self.require_digital()?;
                let (dst_p, src_p) = self
                    .tile
                    .pipeline_pair(dst_pipe.0 as usize, src_pipe.0 as usize)?;
                dst_p.copy_from(src_p, src.0 as usize, dst.0 as usize)?;
                Ok(())
            }
            Instruction::ElementLoad {
                pipe,
                addr,
                table_pipe,
                dst,
            } => {
                self.require_digital()?;
                let (p, table) = self
                    .tile
                    .pipeline_pair(pipe.0 as usize, table_pipe.0 as usize)?;
                p.elementwise_load(addr.0 as usize, table, dst.0 as usize)?;
                Ok(())
            }
            Instruction::PipeReverse { pipe } => {
                self.require_digital()?;
                self.tile.pipeline_mut(pipe.0 as usize)?.reverse();
                Ok(())
            }
            Instruction::WriteImm {
                pipe,
                vr,
                element,
                value,
            } => {
                self.tile.pipeline_mut(pipe.0 as usize)?.write_value(
                    vr.0 as usize,
                    element as usize,
                    value,
                )?;
                Ok(())
            }
            Instruction::PipeReserve { pipe } => {
                // Marks the pipeline's registers dead for MVM landing; the
                // functional model needs no action beyond arbiter intent.
                let _ = pipe;
                Ok(())
            }
            Instruction::AllocVaCore {
                vacore,
                element_bits,
                bits_per_cell,
                input_bits,
                input_signed,
            } => {
                if !self.analog_enabled {
                    return Err(Error::DomainDisabled("analog"));
                }
                let allocated = self.tile.alloc_vacore(
                    element_bits,
                    bits_per_cell,
                    input_bits,
                    input_signed,
                )?;
                if allocated != vacore {
                    return Err(Error::VaCore(format!(
                        "program expected vACore {vacore}, firmware allocated {allocated}"
                    )));
                }
                Ok(())
            }
            Instruction::FreeVaCore { vacore } => self.tile.free_vacore(vacore),
            Instruction::ProgMatrix {
                vacore,
                matrix_handle,
            } => {
                if !self.analog_enabled {
                    return Err(Error::DomainDisabled("analog"));
                }
                let matrix = data
                    .matrices
                    .get(&matrix_handle)
                    .ok_or(Error::UnknownMatrix(matrix_handle as usize))?;
                self.tile.set_matrix(vacore, matrix)?;
                Ok(())
            }
            Instruction::UpdateRow {
                vacore,
                row,
                data_handle,
            } => {
                let values = data
                    .vectors
                    .get(&data_handle)
                    .ok_or(Error::UnknownMatrix(data_handle as usize))?;
                self.tile.update_row(vacore, row as usize, values)?;
                Ok(())
            }
            Instruction::UpdateCol {
                vacore,
                col,
                data_handle,
            } => {
                // Column updates reprogram one device column per slice.
                let values = data
                    .vectors
                    .get(&data_handle)
                    .ok_or(Error::UnknownMatrix(data_handle as usize))?;
                self.update_col(vacore, col as usize, values)
            }
            Instruction::Mvm {
                vacore,
                input_pipe,
                input_vr,
                dst_pipe,
                dst_vr,
                early_levels,
            } => {
                if !self.analog_enabled {
                    return Err(Error::DomainDisabled("analog"));
                }
                self.exec_mvm_instruction(
                    vacore,
                    input_pipe.0 as usize,
                    input_vr.0 as usize,
                    dst_pipe.0 as usize,
                    dst_vr.0 as usize,
                    early_levels,
                )
            }
            Instruction::SetAnalogMode { enabled } => {
                self.analog_enabled = enabled;
                Ok(())
            }
            Instruction::SetDigitalMode { enabled } => {
                self.digital_enabled = enabled;
                Ok(())
            }
            // `Instruction` is non-exhaustive; future opcodes must fail
            // loudly rather than silently no-op.
            _ => Err(Error::InvalidConfig(format!(
                "instruction `{}` is not implemented by this chip model",
                inst.mnemonic()
            ))),
        }
    }

    fn update_col(&mut self, vacore: VaCoreId, col: usize, values: &[i64]) -> Result<()> {
        // Reuses update_row per affected row (a column touches one device
        // per row; write–verify granularity is per row here).
        let core_rows = self.tile.vacores().get(vacore)?.rows;
        let core_cols = self.tile.vacores().get(vacore)?.cols;
        if col >= core_cols || values.len() != core_rows {
            return Err(Error::Shape(format!(
                "column {col} of length {} does not fit matrix {core_rows}x{core_cols}",
                values.len()
            )));
        }
        for (row, &v) in values.iter().enumerate() {
            // Read-modify-write of the stored row, reconstructing the
            // full-precision values from the per-array weight slices.
            let mut stored: Vec<i64> = {
                let core = self.tile.vacores().get(vacore)?;
                let mut row_vals = vec![0i64; core_cols];
                for (s, &array) in core.arrays.iter().enumerate() {
                    let shift = core.plan().weight_shift(s);
                    let w = self
                        .tile
                        .ace()
                        .crossbar(array)
                        .map_err(Error::Analog)?
                        .weights();
                    for (c, val) in row_vals.iter_mut().enumerate() {
                        *val += w[row][c] << shift;
                    }
                }
                row_vals
            };
            stored[col] = v;
            self.tile.update_row(vacore, row, &stored)?;
        }
        Ok(())
    }

    fn exec_mvm_instruction(
        &mut self,
        vacore: VaCoreId,
        input_pipe: usize,
        input_vr: usize,
        dst_pipe: usize,
        dst_vr: usize,
        early_levels: u16,
    ) -> Result<()> {
        let (rows, terms) = {
            let core = self.tile.vacores().get(vacore)?;
            (core.rows, core.term_count())
        };
        // Read the input vector out of the DCE.
        let input: Vec<i64> = {
            let pipe = self.tile.pipeline_mut(input_pipe)?;
            pipe.read_signed_prefix(input_vr, rows)?
        };
        // Landing convention: parts occupy dst_vr+1.., tmp above them, the
        // accumulator is dst_vr itself.
        let pipe_vrs = self.tile.pipeline(dst_pipe)?.vr_count();
        let needed = dst_vr + terms + 2;
        if needed > pipe_vrs - 1 {
            return Err(Error::Shape(format!(
                "MVM needs registers v{dst_vr}..v{needed} but pipeline has {pipe_vrs} \
                 (last is the zero register)"
            )));
        }
        let regs = ReductionRegs {
            parts: (0..terms)
                .map(|i| darth_isa::Vr((dst_vr + 1 + i) as u8))
                .collect(),
            tmp: darth_isa::Vr((dst_vr + 1 + terms) as u8),
            acc: darth_isa::Vr(dst_vr as u8),
        };
        let early = if early_levels == 0 {
            None
        } else {
            Some(early_levels)
        };
        self.tile.exec_mvm(vacore, &input, dst_pipe, &regs, early)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_isa::asm::assemble;

    fn chip() -> DarthPumChip {
        DarthPumChip::new(ChipParams::default(), HctConfig::small_test()).expect("valid")
    }

    #[test]
    fn execute_digital_program() {
        let mut c = chip();
        let program = assemble(
            "wimm p0 v0 0 25\n\
             wimm p0 v1 0 17\n\
             add p0 v2 v0 v1\n\
             xor p0 v3 v0 v1\n\
             halt\n",
        )
        .expect("parses");
        let stats = c.execute(&program, &SideChannel::new()).expect("runs");
        assert_eq!(stats.instructions, 5);
        assert_eq!(stats.analog_instructions, 0);
        let pipe = c.tile_mut().pipeline_mut(0).expect("exists");
        assert_eq!(pipe.read_value(2, 0).expect("in range"), 42);
        assert_eq!(pipe.read_value(3, 0).expect("in range"), 25 ^ 17);
    }

    #[test]
    fn execute_hybrid_mvm_program() {
        let mut c = chip();
        let mut data = SideChannel::new();
        let handle = data
            .stage_matrix(vec![vec![5, 9], vec![8, 7]])
            .expect("stages");
        let program = assemble(&format!(
            "valloc ac0 4 4 3 0\n\
             progm ac0 {handle}\n\
             wimm p0 v0 0 2\n\
             wimm p0 v0 1 7\n\
             mvm ac0 p0 v0 p1 v4 0\n\
             halt\n"
        ))
        .expect("parses");
        let stats = c.execute(&program, &data).expect("runs");
        assert_eq!(stats.analog_instructions, 2); // progm + mvm
        let pipe = c.tile_mut().pipeline_mut(1).expect("exists");
        assert_eq!(pipe.read_value(4, 0).expect("in range"), 66);
        assert_eq!(pipe.read_value(4, 1).expect("in range"), 67);
    }

    #[test]
    fn halt_stops_execution() {
        let mut c = chip();
        let program = assemble("halt\nwimm p0 v0 0 9\n").expect("parses");
        c.execute(&program, &SideChannel::new()).expect("runs");
        let pipe = c.tile_mut().pipeline_mut(0).expect("exists");
        assert_eq!(pipe.read_value(0, 0).expect("in range"), 0);
    }

    #[test]
    fn disabled_analog_mode_rejects_mvm() {
        let mut c = chip();
        let program = assemble("amode 0\nvalloc ac0 4 2 3 0\n").expect("parses");
        let err = c.execute(&program, &SideChannel::new()).unwrap_err();
        assert!(matches!(err, Error::DomainDisabled("analog")));
    }

    #[test]
    fn disabled_digital_mode_rejects_vector_ops() {
        let mut c = chip();
        let program = assemble("dmode 0\nadd p0 v2 v0 v1\n").expect("parses");
        let err = c.execute(&program, &SideChannel::new()).unwrap_err();
        assert!(matches!(err, Error::DomainDisabled("digital")));
    }

    #[test]
    fn missing_matrix_handle_errors() {
        let mut c = chip();
        let program = assemble("valloc ac0 4 2 3 0\nprogm ac0 99\n").expect("parses");
        let err = c.execute(&program, &SideChannel::new()).unwrap_err();
        assert!(matches!(err, Error::UnknownMatrix(99)));
    }

    #[test]
    fn update_col_through_isa() {
        let mut c = chip();
        let mut data = SideChannel::new();
        let mh = data
            .stage_matrix(vec![vec![1, 2], vec![3, 4]])
            .expect("stages");
        let vh = data.stage_vector(vec![9, 9]).expect("stages");
        let program = assemble(&format!(
            "valloc ac0 4 4 2 0\n\
             progm ac0 {mh}\n\
             updcol ac0 1 {vh}\n\
             wimm p0 v0 0 1\n\
             wimm p0 v0 1 1\n\
             mvm ac0 p0 v0 p1 v4 0\n\
             halt\n"
        ))
        .expect("parses");
        c.execute(&program, &data).expect("runs");
        let pipe = c.tile_mut().pipeline_mut(1).expect("exists");
        assert_eq!(pipe.read_value(4, 0).expect("in range"), 4); // 1 + 3
        assert_eq!(pipe.read_value(4, 1).expect("in range"), 18); // 9 + 9
    }

    #[test]
    fn compiled_program_matches_interpreter() {
        let mut data = SideChannel::new();
        let handle = data
            .stage_matrix(vec![vec![5, 9], vec![8, 7]])
            .expect("stages");
        let program = assemble(&format!(
            "valloc ac0 4 4 3 0\n\
             progm ac0 {handle}\n\
             wimm p0 v0 0 2\n\
             wimm p0 v0 1 7\n\
             mvm ac0 p0 v0 p1 v4 0\n\
             add p1 v5 v4 v4\n\
             halt\n\
             wimm p0 v9 0 1\n"
        ))
        .expect("parses");
        let mut interpreted = chip();
        let interp_stats = interpreted.execute(&program, &data).expect("runs");
        let mut compiled_chip = chip();
        let compiled = DarthPumChip::compile(&program);
        assert_eq!(compiled.instructions(), 7, "prefix stops at halt");
        assert_eq!(compiled.histogram()["halt"], 1);
        let compiled_stats = compiled_chip.run_compiled(&compiled, &data).expect("runs");
        assert_eq!(interp_stats, compiled_stats);
        for (vr, e) in [(4usize, 0usize), (4, 1), (5, 0), (5, 1), (9, 0)] {
            let a = interpreted
                .tile_mut()
                .pipeline_mut(1)
                .expect("exists")
                .read_value(vr, e)
                .expect("in range");
            let b = compiled_chip
                .tile_mut()
                .pipeline_mut(1)
                .expect("exists")
                .read_value(vr, e)
                .expect("in range");
            assert_eq!(a, b, "v{vr}[{e}]");
        }
        assert_eq!(
            interpreted.front_end().issued(),
            compiled_chip.front_end().issued(),
            "issue accounting must match for identical energy"
        );
    }

    #[test]
    fn fast_chip_matches_reference_on_hybrid_program() {
        let mut data = SideChannel::new();
        let handle = data
            .stage_matrix(vec![vec![5, 9], vec![8, 7]])
            .expect("stages");
        let program = assemble(&format!(
            "valloc ac0 4 4 3 0\n\
             progm ac0 {handle}\n\
             wimm p0 v0 0 2\n\
             wimm p0 v0 1 7\n\
             mvm ac0 p0 v0 p1 v4 0\n\
             xor p1 v5 v4 v4\n\
             add p1 v6 v4 v4\n\
             halt\n"
        ))
        .expect("parses");
        let mut reference = chip();
        let ref_stats = reference.execute(&program, &data).expect("runs");
        let mut fast =
            FastChip::new(ChipParams::default(), HctConfig::small_test()).expect("valid");
        let compiled = FastChip::compile(&program);
        let fast_stats = fast.run_compiled(&compiled, &data).expect("runs");
        assert_eq!(ref_stats, fast_stats);
        for vr in [4usize, 5, 6] {
            for e in 0..2 {
                let a = reference
                    .tile_mut()
                    .pipeline_mut(1)
                    .expect("exists")
                    .read_value(vr, e)
                    .expect("in range");
                let b = fast
                    .tile_mut()
                    .pipeline_mut(1)
                    .expect("exists")
                    .read_value(vr, e)
                    .expect("in range");
                assert_eq!(a, b, "v{vr}[{e}]");
            }
        }
        // Primitive accounting (and therefore energy) matches too.
        assert_eq!(
            reference
                .tile()
                .pipeline(1)
                .expect("exists")
                .primitives_executed(),
            fast.tile()
                .pipeline(1)
                .expect("exists")
                .primitives_executed()
        );
    }

    #[test]
    fn side_channel_handles_increment() {
        let mut data = SideChannel::new();
        let a = data.stage_matrix(vec![vec![1]]).expect("stages");
        let b = data.stage_matrix(vec![vec![2]]).expect("stages");
        assert_ne!(a, b);
        let v1 = data.stage_vector(vec![1]).expect("stages");
        let v2 = data.stage_vector(vec![2]).expect("stages");
        assert_ne!(v1, v2);
    }

    #[test]
    fn side_channel_handle_exhaustion_is_an_error() {
        let mut data = SideChannel::new();
        // Occupy the top of the u16 handle space directly; the next
        // allocation has nowhere to go and must not wrap to 0.
        data.matrices.insert(u16::MAX, vec![vec![1]]);
        let err = data.stage_matrix(vec![vec![2]]).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted("matrix handles")));
        data.vectors.insert(u16::MAX, vec![1]);
        let err = data.stage_vector(vec![2]).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted("vector handles")));
        // Allocation below the ceiling still works (no off-by-one).
        let mut low = SideChannel::new();
        low.matrices.insert(u16::MAX - 1, vec![vec![1]]);
        assert_eq!(low.stage_matrix(vec![vec![2]]).expect("stages"), u16::MAX);
    }
}
