//! Virtual analog cores (§4.2).
//!
//! A *vACore* logically combines several analog arrays within one ACE to
//! support operand widths beyond a single device: an 8-bit-element matrix
//! in 2-bit cells occupies four arrays (weight slices), all driven by the
//! same inputs with their partial products recombined by the shift-and-add
//! program. Firmware tracks the allocation; allocating a vACore also
//! configures the shift units and the instruction injection unit.
//!
//! The paper's simplification — "the HCT can only have vACores of the same
//! bit width at a time" — is enforced by [`VaCoreTable`].

use crate::{Error, Result};
use darth_analog::slicing::{RecombinationPlan, WeightSlicer};
use darth_isa::iiu::{InjectionProgram, ReductionRegs};
use darth_isa::VaCoreId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One allocated virtual analog core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VaCore {
    /// Firmware id.
    pub id: VaCoreId,
    /// ACE array indices holding the weight slices, LSB slice first.
    pub arrays: Vec<usize>,
    /// Matrix element width in bits.
    pub element_bits: u8,
    /// Device bits per cell.
    pub bits_per_cell: u8,
    /// Input width in bits.
    pub input_bits: u8,
    /// Whether inputs are two's complement.
    pub input_signed: bool,
    /// Logical matrix rows (set by `set_matrix`).
    pub rows: usize,
    /// Logical matrix columns.
    pub cols: usize,
    slicer: WeightSlicer,
    plan: RecombinationPlan,
}

impl VaCore {
    /// The weight slicer for this core's geometry.
    pub fn slicer(&self) -> &WeightSlicer {
        &self.slicer
    }

    /// The recombination plan (shift amounts and signs per term).
    pub fn plan(&self) -> &RecombinationPlan {
        &self.plan
    }

    /// Number of weight slices (= arrays used).
    pub fn slice_count(&self) -> usize {
        self.slicer.slice_count()
    }

    /// Total partial-product terms per MVM.
    pub fn term_count(&self) -> usize {
        self.plan.term_count()
    }

    /// Bit shift and sign for term index `t` (slice-major ordering).
    pub fn term_shift(&self, t: usize) -> (u8, bool) {
        let bits = usize::from(self.input_bits);
        let slice = t / bits;
        let bit = t % bits;
        let shift = self.plan.weight_shift(slice) + self.plan.input_shift(bit);
        (shift as u8, self.plan.input_negative(bit))
    }

    /// Compiles the IIU program for this core.
    ///
    /// `shifts_in_flight` selects the Figure 10b (optimized) form without
    /// shift steps.
    pub fn injection_program(
        &self,
        regs: &ReductionRegs,
        shifts_in_flight: bool,
    ) -> InjectionProgram {
        InjectionProgram::shift_and_add(
            self.input_bits,
            self.input_signed,
            self.slice_count() as u8,
            self.bits_per_cell,
            regs,
            shifts_in_flight,
        )
    }
}

/// Firmware table of a tile's vACores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VaCoreTable {
    cores: BTreeMap<u8, VaCore>,
    free_arrays: Vec<usize>,
    next_id: u8,
}

impl VaCoreTable {
    /// Creates a table managing `ace_arrays` analog arrays.
    pub fn new(ace_arrays: usize) -> Self {
        VaCoreTable {
            cores: BTreeMap::new(),
            free_arrays: (0..ace_arrays).rev().collect(),
            next_id: 0,
        }
    }

    /// Number of unallocated arrays.
    pub fn free_arrays(&self) -> usize {
        self.free_arrays.len()
    }

    /// Number of live vACores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// The uniform element width currently configured, if any core exists.
    pub fn fixed_element_bits(&self) -> Option<u8> {
        self.cores.values().next().map(|c| c.element_bits)
    }

    /// Allocates a vACore.
    ///
    /// # Errors
    ///
    /// * [`Error::VaCore`] when the requested width conflicts with live
    ///   cores (§4.2's single-width constraint) or parameters are invalid.
    /// * [`Error::ResourceExhausted`] when too few arrays remain.
    pub fn alloc(
        &mut self,
        element_bits: u8,
        bits_per_cell: u8,
        input_bits: u8,
        input_signed: bool,
    ) -> Result<VaCoreId> {
        if let Some(fixed) = self.fixed_element_bits() {
            if fixed != element_bits {
                return Err(Error::VaCore(format!(
                    "HCT is configured for {fixed}-bit elements; cannot allocate \
                     a {element_bits}-bit vACore (single-width constraint)"
                )));
            }
        }
        let slicer = WeightSlicer::new(element_bits, bits_per_cell)
            .map_err(|e| Error::VaCore(e.to_string()))?;
        let needed = slicer.slice_count();
        if self.free_arrays.len() < needed {
            return Err(Error::ResourceExhausted("analog arrays"));
        }
        if input_bits == 0 || input_bits > 32 {
            return Err(Error::VaCore("input bits must be in 1..=32".to_owned()));
        }
        let arrays: Vec<usize> = (0..needed)
            .map(|_| self.free_arrays.pop().expect("checked length"))
            .collect();
        let id = VaCoreId(self.next_id);
        self.next_id = self.next_id.wrapping_add(1);
        let core = VaCore {
            id,
            arrays,
            element_bits,
            bits_per_cell,
            input_bits,
            input_signed,
            rows: 0,
            cols: 0,
            slicer,
            plan: RecombinationPlan {
                input_bits,
                input_signed,
                weight_slices: needed as u8,
                bits_per_cell,
            },
        };
        self.cores.insert(id.0, core);
        Ok(id)
    }

    /// Frees a vACore, returning its arrays to the pool.
    ///
    /// # Errors
    ///
    /// Returns [`Error::VaCore`] for an unknown id.
    pub fn free(&mut self, id: VaCoreId) -> Result<()> {
        let core = self
            .cores
            .remove(&id.0)
            .ok_or_else(|| Error::VaCore(format!("unknown vACore {id}")))?;
        self.free_arrays.extend(core.arrays);
        Ok(())
    }

    /// Looks up a core.
    ///
    /// # Errors
    ///
    /// Returns [`Error::VaCore`] for an unknown id.
    pub fn get(&self, id: VaCoreId) -> Result<&VaCore> {
        self.cores
            .get(&id.0)
            .ok_or_else(|| Error::VaCore(format!("unknown vACore {id}")))
    }

    /// Mutable lookup.
    ///
    /// # Errors
    ///
    /// Returns [`Error::VaCore`] for an unknown id.
    pub fn get_mut(&mut self, id: VaCoreId) -> Result<&mut VaCore> {
        self.cores
            .get_mut(&id.0)
            .ok_or_else(|| Error::VaCore(format!("unknown vACore {id}")))
    }

    /// Iterates over live cores.
    pub fn iter(&self) -> impl Iterator<Item = &VaCore> {
        self.cores.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_reserves_slice_count_arrays() {
        let mut table = VaCoreTable::new(8);
        let id = table.alloc(8, 2, 8, false).expect("fits");
        let core = table.get(id).expect("exists");
        assert_eq!(core.slice_count(), 4); // 8 bits / 2 per cell
        assert_eq!(core.arrays.len(), 4);
        assert_eq!(table.free_arrays(), 4);
    }

    #[test]
    fn single_width_constraint() {
        let mut table = VaCoreTable::new(8);
        table.alloc(8, 2, 8, false).expect("fits");
        let err = table.alloc(4, 2, 8, false).unwrap_err();
        assert!(matches!(err, Error::VaCore(_)));
        // same width is fine
        table.alloc(8, 4, 8, false).expect("same width allowed");
    }

    #[test]
    fn width_constraint_lifts_after_free() {
        let mut table = VaCoreTable::new(8);
        let id = table.alloc(8, 2, 8, false).expect("fits");
        table.free(id).expect("frees");
        table.alloc(4, 2, 8, false).expect("constraint lifted");
    }

    #[test]
    fn exhausting_arrays() {
        let mut table = VaCoreTable::new(3);
        let err = table.alloc(8, 2, 8, false).unwrap_err(); // needs 4
        assert!(matches!(err, Error::ResourceExhausted(_)));
        table.alloc(6, 2, 8, false).expect("needs 3, fits");
        assert_eq!(table.free_arrays(), 0);
    }

    #[test]
    fn free_returns_arrays() {
        let mut table = VaCoreTable::new(4);
        let id = table.alloc(4, 2, 4, false).expect("fits");
        assert_eq!(table.free_arrays(), 2);
        table.free(id).expect("frees");
        assert_eq!(table.free_arrays(), 4);
        assert!(table.free(id).is_err(), "double free is an error");
    }

    #[test]
    fn term_shift_ordering() {
        let mut table = VaCoreTable::new(8);
        let id = table.alloc(4, 2, 3, false).expect("fits");
        let core = table.get(id).expect("exists");
        assert_eq!(core.term_count(), 6); // 2 slices x 3 input bits
        assert_eq!(core.term_shift(0), (0, false)); // slice 0, bit 0
        assert_eq!(core.term_shift(1), (1, false)); // slice 0, bit 1
        assert_eq!(core.term_shift(3), (2, false)); // slice 1, bit 0
        assert_eq!(core.term_shift(5), (4, false)); // slice 1, bit 2
    }

    #[test]
    fn signed_input_top_bit_is_negative() {
        let mut table = VaCoreTable::new(8);
        let id = table.alloc(4, 4, 4, true).expect("fits");
        let core = table.get(id).expect("exists");
        assert_eq!(core.term_shift(3), (3, true));
        assert_eq!(core.term_shift(2), (2, false));
    }

    #[test]
    fn invalid_parameters() {
        let mut table = VaCoreTable::new(8);
        assert!(table.alloc(0, 1, 8, false).is_err());
        assert!(table.alloc(8, 0, 8, false).is_err());
        assert!(table.alloc(8, 2, 0, false).is_err());
    }
}
