//! The application-agnostic runtime library (Table 1).
//!
//! `allocVACore` / `setMatrix` / `execMVM` / `updateRow` / `updateCol` /
//! `disableAnalogMode` / `disableDigitalMode`, with the paper's
//! programmer-facing simplifications: bit precision is a 0–2 scale mapped
//! to {1, half, max} bits per cell, matrices larger than one array tile
//! transparently across vACores (row tiles summed, column tiles
//! concatenated), and vACore handling stays invisible.
//!
//! The application-specific half of Table 1 (`AES_*`, `CNN_*`, `LLM_*`)
//! lives in `darth-apps`, built on these calls.

use crate::hct::{HctConfig, HybridComputeTile, MvmReport};
use crate::{Error, Result};
use darth_isa::iiu::ReductionRegs;
use darth_isa::VaCoreId;
use darth_reram::{Cycles, PicoJoules};
use serde::{Deserialize, Serialize};

/// Maximum device bits per cell in the modelled technology.
const MAX_BITS_PER_CELL: u8 = 4;

/// Runtime configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Functional tile configuration.
    pub hct: HctConfig,
    /// Number of functional tiles to instantiate.
    pub tiles: usize,
    /// Input operand width assumed for `execMVM` (Table 1 hides this
    /// behind `elementSize`; 8-bit signed covers the evaluated kernels).
    pub input_bits: u8,
    /// Whether MVM inputs are two's complement.
    pub input_signed: bool,
}

impl RuntimeConfig {
    /// A small functional configuration for tests, examples and doctests.
    pub fn small_test() -> Self {
        RuntimeConfig {
            hct: HctConfig::small_test(),
            tiles: 1,
            input_bits: 8,
            input_signed: true,
        }
    }

    /// Maps Table 1's 0–2 precision scale to device bits per cell.
    pub fn precision_to_bits_per_cell(precision: u8) -> u8 {
        match precision {
            0 => 1,
            1 => MAX_BITS_PER_CELL / 2,
            _ => MAX_BITS_PER_CELL,
        }
    }
}

/// A stored matrix, possibly tiled over several vACores.
#[derive(Debug, Clone)]
struct MatrixAllocation {
    rows: usize,
    cols: usize,
    row_tile: usize,
    col_tile: usize,
    /// `cores[r][c]` = (tile index, vACore id) for row tile `r`, col tile
    /// `c`.
    cores: Vec<Vec<(usize, VaCoreId)>>,
    terms: usize,
}

/// Handle to a stored matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatrixHandle(usize);

/// Cumulative runtime statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Cycles spent programming matrices.
    pub program_cycles: Cycles,
    /// Cycles spent executing MVMs.
    pub mvm_cycles: Cycles,
    /// MVMs executed.
    pub mvm_count: u64,
    /// Energy of all MVMs.
    pub mvm_energy: PicoJoules,
}

/// The DARTH-PUM runtime.
#[derive(Debug)]
pub struct Runtime {
    config: RuntimeConfig,
    tiles: Vec<HybridComputeTile>,
    matrices: Vec<MatrixAllocation>,
    next_tile: usize,
    analog_enabled: bool,
    digital_enabled: bool,
    stats: RuntimeStats,
}

impl Runtime {
    /// Builds a runtime over freshly constructed tiles.
    ///
    /// # Errors
    ///
    /// Propagates tile construction errors.
    pub fn new(config: RuntimeConfig) -> Result<Self> {
        if config.tiles == 0 {
            return Err(Error::InvalidConfig("at least one tile is required".into()));
        }
        let tiles = (0..config.tiles)
            .map(|i| {
                let mut c = config.hct.clone();
                c.seed = c.seed.wrapping_add(i as u64);
                HybridComputeTile::new(c)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Runtime {
            config,
            tiles,
            matrices: Vec::new(),
            next_tile: 0,
            analog_enabled: true,
            digital_enabled: true,
            stats: RuntimeStats::default(),
        })
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> RuntimeStats {
        self.stats
    }

    /// Borrow the functional tiles (application mappings drive pipelines
    /// directly for digital kernels).
    pub fn tiles_mut(&mut self) -> &mut [HybridComputeTile] {
        &mut self.tiles
    }

    /// Table 1 `setMatrix`: stores a matrix with the required number of
    /// vACores, tiling across tiles round-robin.
    ///
    /// `element_size` is the matrix element width in bits; `precision` is
    /// the 0–2 scale.
    ///
    /// # Errors
    ///
    /// Returns shape errors for empty/ragged matrices, resource errors
    /// when vACores run out, or [`Error::DomainDisabled`] with the ACE
    /// off.
    pub fn set_matrix(
        &mut self,
        matrix: &[Vec<i64>],
        element_size: u8,
        precision: u8,
    ) -> Result<MatrixHandle> {
        if !self.analog_enabled {
            return Err(Error::DomainDisabled("analog"));
        }
        let rows = matrix.len();
        let cols = matrix.first().map_or(0, Vec::len);
        if rows == 0 || cols == 0 {
            return Err(Error::Shape("matrix must be non-empty".into()));
        }
        if matrix.iter().any(|r| r.len() != cols) {
            return Err(Error::Shape("ragged matrix".into()));
        }
        let bits_per_cell =
            RuntimeConfig::precision_to_bits_per_cell(precision).min(element_size.max(1));
        let dim = self.config.hct.params.array_dim;
        let row_tiles = rows.div_ceil(dim);
        let col_tiles = cols.div_ceil(dim);
        let mut cores = Vec::with_capacity(row_tiles);
        let mut terms = 0;
        for rt in 0..row_tiles {
            let mut row_cores = Vec::with_capacity(col_tiles);
            for ct in 0..col_tiles {
                let tile_idx = self.next_tile % self.tiles.len();
                self.next_tile += 1;
                let tile = &mut self.tiles[tile_idx];
                let id = tile.alloc_vacore(
                    element_size,
                    bits_per_cell,
                    self.config.input_bits,
                    self.config.input_signed,
                )?;
                let r0 = rt * dim;
                let c0 = ct * dim;
                let sub: Vec<Vec<i64>> = matrix[r0..(r0 + dim).min(rows)]
                    .iter()
                    .map(|row| row[c0..(c0 + dim).min(cols)].to_vec())
                    .collect();
                let cycles = tile.set_matrix(id, &sub)?;
                self.stats.program_cycles += cycles;
                terms = tile.vacores().get(id)?.term_count();
                row_cores.push((tile_idx, id));
            }
            cores.push(row_cores);
        }
        self.matrices.push(MatrixAllocation {
            rows,
            cols,
            row_tile: row_tiles,
            col_tile: col_tiles,
            cores,
            terms,
        });
        Ok(MatrixHandle(self.matrices.len() - 1))
    }

    fn allocation(&self, handle: MatrixHandle) -> Result<&MatrixAllocation> {
        self.matrices
            .get(handle.0)
            .ok_or(Error::UnknownMatrix(handle.0))
    }

    /// Table 1 `execMVM`: multiplies the stored matrix with `input`.
    ///
    /// Row tiles are summed and column tiles concatenated, reproducing the
    /// §5.1 decomposition of oversized layers.
    ///
    /// # Errors
    ///
    /// Returns shape errors for wrong-length inputs and substrate errors.
    pub fn exec_mvm(&mut self, handle: MatrixHandle, input: &[i64]) -> Result<Vec<i64>> {
        let alloc = self.allocation(handle)?.clone();
        if input.len() != alloc.rows {
            return Err(Error::Shape(format!(
                "input length {} does not match matrix rows {}",
                input.len(),
                alloc.rows
            )));
        }
        let dim = self.config.hct.params.array_dim;
        let regs = ReductionRegs::dense(alloc.terms);
        let mut result = vec![0i64; alloc.cols];
        for rt in 0..alloc.row_tile {
            let r0 = rt * dim;
            let sub_input = &input[r0..(r0 + dim).min(alloc.rows)];
            for ct in 0..alloc.col_tile {
                let (tile_idx, id) = alloc.cores[rt][ct];
                let report: MvmReport = if self.analog_enabled {
                    self.tiles[tile_idx].exec_mvm(id, sub_input, 0, &regs, None)?
                } else {
                    // disableAnalogMode: the matrix was copied to digital
                    // arrays; the MVM runs as DCE multiply-adds with the
                    // exact same result.
                    self.digital_mvm(tile_idx, id, sub_input)?
                };
                self.stats.mvm_cycles += report.cycles;
                self.stats.mvm_energy += report.energy;
                let c0 = ct * dim;
                let width = (c0 + dim).min(alloc.cols) - c0;
                if self.digital_enabled {
                    for (c, &v) in report.result[..width].iter().enumerate() {
                        result[c0 + c] += v;
                    }
                } else {
                    // disableDigitalMode: post-processing (tile merging)
                    // falls back to the host, same values.
                    for (c, &v) in report.result[..width].iter().enumerate() {
                        result[c0 + c] += v;
                    }
                }
            }
        }
        self.stats.mvm_count += 1;
        Ok(result)
    }

    /// Fallback MVM on the digital side (disableAnalogMode semantics).
    fn digital_mvm(&mut self, tile_idx: usize, id: VaCoreId, input: &[i64]) -> Result<MvmReport> {
        let tile = &mut self.tiles[tile_idx];
        let result = tile.mvm_oracle(id, input)?;
        // Cost: one 8-bit multiply + add per matrix row per column on the
        // DCE (bit-serial), using the macro cost model.
        let core = tile.vacores().get(id)?;
        let family = tile.config().family;
        let depth = tile.config().params.dce_pipeline_depth as u64;
        let elements = core.cols as u64;
        let mul =
            darth_digital::macros::MacroOp::Mul(core.element_bits).cost(family, depth, elements);
        let cycles = mul.pipelined_batch(core.rows as u64)
            + darth_digital::macros::MacroOp::Add
                .cost(family, depth, elements)
                .pipelined_batch(core.rows as u64);
        let energy = PicoJoules::new(
            mul.primitives as f64 * core.rows as f64 * family.energy_per_primitive_pj(),
        );
        tile.advance(cycles);
        Ok(MvmReport {
            result,
            cycles,
            analog_cycles: Cycles::ZERO,
            transfer_cycles: Cycles::ZERO,
            reduce_cycles: cycles,
            energy,
        })
    }

    /// Table 1 `updateRow`.
    ///
    /// # Errors
    ///
    /// Returns shape or substrate errors.
    pub fn update_row(&mut self, handle: MatrixHandle, row: usize, values: &[i64]) -> Result<()> {
        let alloc = self.allocation(handle)?.clone();
        if row >= alloc.rows || values.len() != alloc.cols {
            return Err(Error::Shape(format!(
                "row {row} of length {} does not fit {}x{}",
                values.len(),
                alloc.rows,
                alloc.cols
            )));
        }
        let dim = self.config.hct.params.array_dim;
        let rt = row / dim;
        let local_row = row % dim;
        for ct in 0..alloc.col_tile {
            let (tile_idx, id) = alloc.cores[rt][ct];
            let c0 = ct * dim;
            let width = (c0 + dim).min(alloc.cols) - c0;
            let cycles = self.tiles[tile_idx].update_row(id, local_row, &values[c0..c0 + width])?;
            self.stats.program_cycles += cycles;
        }
        Ok(())
    }

    /// Table 1 `updateCol`.
    ///
    /// # Errors
    ///
    /// Returns shape or substrate errors.
    pub fn update_col(&mut self, handle: MatrixHandle, col: usize, values: &[i64]) -> Result<()> {
        let alloc = self.allocation(handle)?.clone();
        if col >= alloc.cols || values.len() != alloc.rows {
            return Err(Error::Shape(format!(
                "column {col} of length {} does not fit {}x{}",
                values.len(),
                alloc.rows,
                alloc.cols
            )));
        }
        // Column updates decompose into per-row updates of the stored
        // weights (write–verify reprograms whole wordlines).
        for (row, &value) in values.iter().enumerate() {
            let mut stored = self.read_row(handle, row)?;
            stored[col] = value;
            self.update_row(handle, row, &stored)?;
        }
        Ok(())
    }

    /// Reads back a stored matrix row from the crossbars (test/verify
    /// support; the hardware equivalent is a digital read of the arrays).
    ///
    /// # Errors
    ///
    /// Returns unknown-handle or substrate errors.
    pub fn read_row(&self, handle: MatrixHandle, row: usize) -> Result<Vec<i64>> {
        let alloc = self.allocation(handle)?;
        if row >= alloc.rows {
            return Err(Error::Shape(format!(
                "row {row} out of range for {} rows",
                alloc.rows
            )));
        }
        let dim = self.config.hct.params.array_dim;
        let rt = row / dim;
        let local_row = row % dim;
        let mut out = vec![0i64; alloc.cols];
        for ct in 0..alloc.col_tile {
            let (tile_idx, id) = alloc.cores[rt][ct];
            let tile = &self.tiles[tile_idx];
            let core = tile.vacores().get(id)?;
            let c0 = ct * dim;
            let width = (c0 + dim).min(alloc.cols) - c0;
            for (s, &array) in core.arrays.iter().enumerate() {
                let shift = core.plan().weight_shift(s);
                let weights = tile.ace().crossbar(array).map_err(Error::Analog)?.weights();
                for c in 0..width {
                    out[c0 + c] += weights[local_row][c] << shift;
                }
            }
        }
        Ok(out)
    }

    /// Table 1 `disableAnalogMode`: subsequent MVMs run on the DCE.
    pub fn disable_analog_mode(&mut self) {
        self.analog_enabled = false;
    }

    /// Re-enables the ACE.
    pub fn enable_analog_mode(&mut self) {
        self.analog_enabled = true;
    }

    /// Table 1 `disableDigitalMode`: DCE post-processing off (tile merges
    /// fall back to the host).
    pub fn disable_digital_mode(&mut self) {
        self.digital_enabled = false;
    }

    /// Re-enables DCE post-processing.
    pub fn enable_digital_mode(&mut self) {
        self.digital_enabled = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> Runtime {
        Runtime::new(RuntimeConfig::small_test()).expect("valid")
    }

    fn mvm_oracle(matrix: &[Vec<i64>], input: &[i64]) -> Vec<i64> {
        let cols = matrix[0].len();
        (0..cols)
            .map(|c| (0..matrix.len()).map(|r| input[r] * matrix[r][c]).sum())
            .collect()
    }

    #[test]
    fn small_mvm_round_trip() {
        let mut rt = runtime();
        let matrix = vec![vec![2, -1], vec![3, 4]];
        let h = rt.set_matrix(&matrix, 4, 1).expect("stores");
        let out = rt.exec_mvm(h, &[1, 2]).expect("executes");
        assert_eq!(out, mvm_oracle(&matrix, &[1, 2]));
        assert_eq!(rt.stats().mvm_count, 1);
        assert!(rt.stats().mvm_cycles > Cycles::ZERO);
    }

    #[test]
    fn precision_scale_mapping() {
        assert_eq!(RuntimeConfig::precision_to_bits_per_cell(0), 1);
        assert_eq!(RuntimeConfig::precision_to_bits_per_cell(1), 2);
        assert_eq!(RuntimeConfig::precision_to_bits_per_cell(2), 4);
    }

    #[test]
    fn row_tiled_matrix_sums_partials() {
        // 80 rows exceeds the 64-row array: two row tiles, summed.
        let mut rt = runtime();
        let rows = 80;
        let matrix: Vec<Vec<i64>> = (0..rows)
            .map(|r| vec![(r % 5) as i64 - 2, (r % 3) as i64])
            .collect();
        let h = rt.set_matrix(&matrix, 4, 1).expect("stores");
        let input: Vec<i64> = (0..rows).map(|r| (r % 7) as i64 - 3).collect();
        let out = rt.exec_mvm(h, &input).expect("executes");
        assert_eq!(out, mvm_oracle(&matrix, &input));
    }

    #[test]
    fn col_tiled_matrix_concatenates() {
        // 100 columns exceeds one array: two column tiles, concatenated.
        let mut rt = runtime();
        let cols = 100;
        let matrix: Vec<Vec<i64>> = (0..8)
            .map(|r| (0..cols).map(|c| ((r * c) % 9) as i64 - 4).collect())
            .collect();
        let h = rt.set_matrix(&matrix, 4, 1).expect("stores");
        let input = vec![1i64; 8];
        let out = rt.exec_mvm(h, &input).expect("executes");
        assert_eq!(out, mvm_oracle(&matrix, &input));
    }

    #[test]
    fn wrong_input_length_is_rejected() {
        let mut rt = runtime();
        let h = rt
            .set_matrix(&[vec![1, 2], vec![3, 4]], 4, 1)
            .expect("stores");
        assert!(matches!(rt.exec_mvm(h, &[1]), Err(Error::Shape(_))));
    }

    #[test]
    fn update_row_and_col() {
        let mut rt = runtime();
        let h = rt
            .set_matrix(&[vec![1, 1], vec![1, 1]], 4, 1)
            .expect("stores");
        rt.update_row(h, 0, &[5, -5]).expect("updates row");
        assert_eq!(rt.read_row(h, 0).expect("reads"), vec![5, -5]);
        rt.update_col(h, 1, &[7, 7]).expect("updates col");
        let out = rt.exec_mvm(h, &[1, 1]).expect("executes");
        assert_eq!(out, vec![5 + 1, 7 + 7]);
    }

    #[test]
    fn disable_analog_mode_uses_digital_path() {
        let mut rt = runtime();
        let matrix = vec![vec![3, -2], vec![1, 4]];
        let h = rt.set_matrix(&matrix, 4, 1).expect("stores");
        rt.disable_analog_mode();
        let out = rt.exec_mvm(h, &[2, -1]).expect("executes digitally");
        assert_eq!(out, mvm_oracle(&matrix, &[2, -1]));
        // new matrices cannot be stored while the ACE is down
        assert!(matches!(
            rt.set_matrix(&matrix, 4, 1),
            Err(Error::DomainDisabled("analog"))
        ));
        rt.enable_analog_mode();
        rt.set_matrix(&matrix, 4, 1).expect("stores again");
    }

    #[test]
    fn disable_digital_mode_still_correct() {
        let mut rt = runtime();
        let matrix = vec![vec![1, 2], vec![3, 4]];
        let h = rt.set_matrix(&matrix, 4, 1).expect("stores");
        rt.disable_digital_mode();
        let out = rt.exec_mvm(h, &[1, 1]).expect("executes");
        assert_eq!(out, mvm_oracle(&matrix, &[1, 1]));
        rt.enable_digital_mode();
    }

    #[test]
    fn unknown_handle() {
        let mut rt = runtime();
        assert!(matches!(
            rt.exec_mvm(MatrixHandle(9), &[1]),
            Err(Error::UnknownMatrix(9))
        ));
    }
}
