//! The hybrid compute tile (HCT): one ACE, one DCE, and the auxiliary
//! units that make them compose.
//!
//! The tile's signature operation is the hybrid MVM of Figure 9: the ACE
//! bit-slices the input, producing one partial-product vector per input
//! bit per weight slice; each vector crosses to the DCE through the shift
//! units (pre-shifted in flight under the optimized Figure 10b schedule)
//! and lands in a vector register; the instruction injection unit then
//! replays the pipelined ADD reduction, leaving the exact dot-product
//! vector in the accumulator register.
//!
//! A functional tile is deliberately smaller than the Table 2 tile (fewer
//! pipelines, shallower depth) — cell-accurate state for a full 64×64-array
//! tile would be hundreds of megabytes — while the *timing* model always
//! uses the configured geometry. Chip-level throughput scales tiles
//! analytically in [`crate::model`].

use crate::arbiter::{AdArbiter, Domain};
use crate::iiu::HardwareIiu;
use crate::params::{power, HctParams};
use crate::shift_unit::ShiftUnit;
use crate::transpose::TransposeUnit;
use crate::vacore::{VaCore, VaCoreTable};
use crate::{Error, Result};
use darth_analog::ace::{AceConfig, AnalogComputeElement};
use darth_analog::adc::AdcKind;
use darth_analog::dac::InputDriver;
use darth_digital::dce::DcePipeline;
use darth_digital::logic::LogicFamily;
use darth_digital::macros::MacroOp;
use darth_digital::packed::PackedPipeline;
use darth_digital::pipeline::{Pipeline, PipelineConfig};
use darth_isa::iiu::ReductionRegs;
use darth_isa::VaCoreId;
use darth_reram::{Cycles, EnergyMeter, PicoJoules};
use serde::{Deserialize, Serialize};

/// Configuration of a hybrid compute tile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HctConfig {
    /// Architectural geometry (Table 2) used by the timing model.
    pub params: HctParams,
    /// Logic family of the digital pipelines.
    pub family: LogicFamily,
    /// Use the Figure 10b optimized schedule (in-flight shifting); `false`
    /// reproduces the serialized Figure 10a flow for the ablation.
    pub optimized_schedule: bool,
    /// Route reductions through the IIU (`false` models front-end issue).
    pub use_iiu: bool,
    /// Inject device noise (evaluation mode) or run ideal (verification).
    pub noisy: bool,
    /// Lognormal programming-noise sigma applied when `noisy` (MILO-style
    /// write–verify residual, §6). Zero makes the noisy tile structurally
    /// identical to the ideal one — bit-exact by construction.
    pub program_sigma: f64,
    /// Gaussian read-noise sigma (fraction of `g_on`) applied when `noisy`.
    pub read_sigma: f64,
    /// Conductance range scale (§4.3 compensation sets 0.5).
    pub range_scale: f64,
    /// ADC resolution of the functional tile in bits. The paper's design
    /// space sweeps 6 and 8 bits; lower resolutions clip large bit-plane
    /// sums at the converter rails, which is exactly the precision/accuracy
    /// trade-off the Monte-Carlo engine measures.
    pub functional_adc_bits: u8,
    /// Functional pipelines to instantiate (timing still assumes the full
    /// `params.dce_pipelines`).
    pub functional_pipelines: usize,
    /// Functional pipeline depth in bits.
    pub functional_depth: usize,
    /// Elements per vector register.
    pub functional_elements: usize,
    /// Architectural vector registers per pipeline.
    pub functional_vrs: usize,
    /// Functional ACE arrays to instantiate.
    pub functional_ace_arrays: usize,
    /// Bits per cell of the functional ACE's devices. AES stores its
    /// GF(2) MixColumns matrix in SLC cells (§4.3) so each ±1 weight owns
    /// the full conductance window; MVM workloads default to 4-bit MLC.
    pub functional_bits_per_cell: u8,
    /// IR-drop coefficient applied to the functional ACE when `noisy`
    /// (the ideal tile keeps parasitics off, as verification requires).
    pub ir_drop_alpha: f64,
    /// RNG seed for device noise.
    pub seed: u64,
}

impl HctConfig {
    /// A compact functional tile for tests and examples: 4 pipelines of
    /// 32-bit depth, 16 ACE arrays, ideal devices.
    pub fn small_test() -> Self {
        HctConfig {
            params: HctParams::paper(AdcKind::Sar),
            family: LogicFamily::Oscar,
            optimized_schedule: true,
            use_iiu: true,
            noisy: false,
            program_sigma: 0.02,
            read_sigma: 0.005,
            range_scale: 1.0,
            functional_adc_bits: 10,
            functional_pipelines: 4,
            functional_depth: 32,
            functional_elements: 64,
            functional_vrs: 40,
            functional_ace_arrays: 16,
            functional_bits_per_cell: 4,
            ir_drop_alpha: 0.0008,
            seed: 0xDA27_0001,
        }
    }

    /// The evaluation tile: noisy devices, chosen ADC, full 64-element
    /// registers.
    pub fn evaluation(adc_kind: AdcKind) -> Self {
        HctConfig {
            params: HctParams::paper(adc_kind),
            noisy: true,
            ..HctConfig::small_test()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for unusable values.
    pub fn validate(&self) -> Result<()> {
        if self.functional_pipelines == 0 {
            return Err(Error::InvalidConfig(
                "at least one functional pipeline is required".into(),
            ));
        }
        if self.functional_ace_arrays == 0 {
            return Err(Error::InvalidConfig(
                "at least one functional ACE array is required".into(),
            ));
        }
        if !(self.range_scale > 0.0 && self.range_scale <= 1.0) {
            return Err(Error::InvalidConfig("range_scale must be in (0, 1]".into()));
        }
        if self.program_sigma < 0.0 || self.read_sigma < 0.0 {
            return Err(Error::InvalidConfig(
                "noise sigmas must be non-negative".into(),
            ));
        }
        if self.functional_adc_bits == 0 || self.functional_adc_bits > 16 {
            return Err(Error::InvalidConfig(
                "functional_adc_bits must be in 1..=16".into(),
            ));
        }
        if self.functional_bits_per_cell == 0 || self.functional_bits_per_cell > 8 {
            return Err(Error::InvalidConfig(
                "functional_bits_per_cell must be in 1..=8".into(),
            ));
        }
        if self.ir_drop_alpha < 0.0 {
            return Err(Error::InvalidConfig(
                "ir_drop_alpha must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// The result of one hybrid MVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MvmReport {
    /// The reduced output vector (one value per matrix column), exact when
    /// devices are ideal or noise stays below the compensation margin.
    pub result: Vec<i64>,
    /// Tile-level latency of the whole MVM (analog + transfer + reduce).
    pub cycles: Cycles,
    /// Cycles spent in the analog phase (apply + convert).
    pub analog_cycles: Cycles,
    /// Cycles spent transferring partial products (overlap accounted).
    pub transfer_cycles: Cycles,
    /// Cycles spent in the digital reduction.
    pub reduce_cycles: Cycles,
    /// Total energy of the MVM.
    pub energy: PicoJoules,
}

/// One hybrid compute tile, generic over its DCE pipeline implementation.
///
/// The reference tile ([`HybridComputeTile`]) instantiates cell-accurate
/// [`Pipeline`] state; the fast-path tile ([`FastTile`]) swaps in the
/// packed [`PackedPipeline`] (64 cells per `u64` word). Both share this
/// single implementation — MVM, timing and energy logic exist once —
/// which is what makes the fast path bit-identical by construction.
#[derive(Debug, Clone)]
pub struct GenericTile<P: DcePipeline> {
    config: HctConfig,
    pipelines: Vec<P>,
    ace: AnalogComputeElement,
    vacores: VaCoreTable,
    arbiter: AdArbiter,
    shift_unit: ShiftUnit,
    transpose: TransposeUnit,
    iiu: HardwareIiu,
    meter: EnergyMeter,
    busy: Cycles,
    front_end_ops: u64,
}

/// The reference tile: cell-accurate [`Pipeline`] state.
pub type HybridComputeTile = GenericTile<Pipeline>;

/// The fast-path tile: packed bit-plane [`PackedPipeline`] state.
pub type FastTile = GenericTile<PackedPipeline>;

impl<P: DcePipeline> GenericTile<P> {
    /// Builds a tile.
    ///
    /// # Errors
    ///
    /// Returns configuration/substrate errors.
    pub fn new(config: HctConfig) -> Result<Self> {
        config.validate()?;
        let pipe_config = PipelineConfig {
            depth: config.functional_depth,
            elements: config.functional_elements,
            vr_count: config.functional_vrs,
            scratch_cols: 12,
            family: config.family,
        };
        let pipelines = (0..config.functional_pipelines)
            .map(|_| P::new(pipe_config))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        // One construction path for both modes: start from the ideal
        // functional geometry and overlay only the noise sigmas when the
        // evaluation flag is set. (The old noisy branch rebuilt the ACE
        // from `AceConfig::evaluation(_, 1)`, silently forcing SLC cells,
        // a 64×64 geometry and an 8-bit ADC regardless of the tile's
        // configuration — MLC workloads broke and zero-sigma runs still
        // diverged from the ideal tile.) With zero sigmas the noisy config
        // is structurally identical to the ideal one, so noise-off
        // execution is bit-exact by construction.
        let mut ace_config = AceConfig::ideal(
            config.functional_ace_arrays,
            config.params.array_dim,
            config.params.array_dim,
        );
        ace_config.adc_kind = config.params.adc_kind;
        ace_config.adc_bits = config.functional_adc_bits;
        ace_config.crossbar.bits_per_cell = config.functional_bits_per_cell;
        ace_config.crossbar.range_scale = config.range_scale;
        if config.noisy {
            ace_config.crossbar.device.program_sigma = config.program_sigma;
            ace_config.crossbar.device.read_sigma = config.read_sigma;
            ace_config.crossbar.ir_drop_alpha = config.ir_drop_alpha;
        }
        let ace = AnalogComputeElement::new(ace_config, config.seed)?;
        let vacores = VaCoreTable::new(config.functional_ace_arrays);
        let arbiter = AdArbiter::new(config.functional_pipelines);
        Ok(GenericTile {
            config,
            pipelines,
            ace,
            vacores,
            arbiter,
            shift_unit: ShiftUnit::new(),
            transpose: TransposeUnit::new(),
            iiu: HardwareIiu::new(),
            meter: EnergyMeter::new(),
            busy: Cycles::ZERO,
            front_end_ops: 0,
        })
    }

    /// The tile's configuration.
    pub fn config(&self) -> &HctConfig {
        &self.config
    }

    /// Borrows a pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a bad index.
    pub fn pipeline(&self, index: usize) -> Result<&P> {
        self.pipelines
            .get(index)
            .ok_or_else(|| Error::InvalidConfig(format!("pipeline {index} not instantiated")))
    }

    /// Mutably borrows a pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a bad index.
    pub fn pipeline_mut(&mut self, index: usize) -> Result<&mut P> {
        self.pipelines
            .get_mut(index)
            .ok_or_else(|| Error::InvalidConfig(format!("pipeline {index} not instantiated")))
    }

    /// Two pipelines at once (element-wise loads read a table pipeline
    /// while writing another).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for bad or identical indices.
    pub fn pipeline_pair(&mut self, a: usize, b: usize) -> Result<(&mut P, &P)> {
        if a == b {
            return Err(Error::InvalidConfig(
                "pipeline pair must be distinct".into(),
            ));
        }
        if a >= self.pipelines.len() || b >= self.pipelines.len() {
            return Err(Error::InvalidConfig("pipeline index out of range".into()));
        }
        // Split the slice to hand out one mutable and one shared borrow.
        if a < b {
            let (left, right) = self.pipelines.split_at_mut(b);
            Ok((&mut left[a], &right[0]))
        } else {
            let (left, right) = self.pipelines.split_at_mut(a);
            Ok((&mut right[0], &left[b]))
        }
    }

    /// The analog compute element.
    pub fn ace(&self) -> &AnalogComputeElement {
        &self.ace
    }

    /// The vACore firmware table.
    pub fn vacores(&self) -> &VaCoreTable {
        &self.vacores
    }

    /// The arbiter (stall statistics).
    pub fn arbiter(&self) -> &AdArbiter {
        &self.arbiter
    }

    /// The instruction injection unit (injection statistics).
    pub fn iiu(&self) -> &HardwareIiu {
        &self.iiu
    }

    /// The transpose unit.
    pub fn transpose_unit(&mut self) -> &mut TransposeUnit {
        &mut self.transpose
    }

    /// Macro operations issued by the front end on this tile's behalf.
    pub fn front_end_ops(&self) -> u64 {
        self.front_end_ops
    }

    /// Total busy cycles accumulated by tile-level operations.
    pub fn busy_cycles(&self) -> Cycles {
        self.busy
    }

    /// Advances the tile's busy time (used by the chip when it schedules
    /// digital-only work through the pipelines directly).
    pub fn advance(&mut self, cycles: Cycles) {
        self.busy += cycles;
    }

    /// Allocates a vACore (§4.2) and reports it.
    ///
    /// # Errors
    ///
    /// Propagates table errors (width conflicts, exhaustion).
    pub fn alloc_vacore(
        &mut self,
        element_bits: u8,
        bits_per_cell: u8,
        input_bits: u8,
        input_signed: bool,
    ) -> Result<VaCoreId> {
        self.vacores
            .alloc(element_bits, bits_per_cell, input_bits, input_signed)
    }

    /// Frees a vACore.
    ///
    /// # Errors
    ///
    /// Propagates table errors.
    pub fn free_vacore(&mut self, id: VaCoreId) -> Result<()> {
        self.vacores.free(id)
    }

    /// Programs a matrix into a vACore's arrays (slice by slice).
    ///
    /// # Errors
    ///
    /// Returns shape errors when the matrix exceeds one array, plus
    /// substrate programming errors.
    pub fn set_matrix(&mut self, id: VaCoreId, matrix: &[Vec<i64>]) -> Result<Cycles> {
        let dim = self.config.params.array_dim;
        let rows = matrix.len();
        let cols = matrix.first().map_or(0, Vec::len);
        if rows == 0 || rows > dim || cols == 0 || cols > dim {
            return Err(Error::Shape(format!(
                "matrix {rows}x{cols} does not fit a {dim}x{dim} array"
            )));
        }
        if matrix.iter().any(|r| r.len() != cols) {
            return Err(Error::Shape("ragged matrix".into()));
        }
        // Pad to the full array so exact MVMs see zeroes elsewhere.
        let mut padded = vec![vec![0i64; dim]; dim];
        for (r, row) in matrix.iter().enumerate() {
            padded[r][..cols].copy_from_slice(row);
        }
        let core = self.vacores.get(id)?.clone();
        let slices = core.slicer().slice(&padded).map_err(Error::Analog)?;
        let mut total = Cycles::ZERO;
        for (slice, &array) in slices.iter().zip(&core.arrays) {
            total += self.ace.program_matrix(array, slice)?;
        }
        {
            let core = self.vacores.get_mut(id)?;
            core.rows = rows;
            core.cols = cols;
        }
        self.busy += total;
        Ok(total)
    }

    /// Reprograms one row of a vACore's matrix.
    ///
    /// # Errors
    ///
    /// Returns shape or programming errors.
    pub fn update_row(&mut self, id: VaCoreId, row: usize, values: &[i64]) -> Result<Cycles> {
        let core = self.vacores.get(id)?.clone();
        if row >= core.rows || values.len() != core.cols {
            return Err(Error::Shape(format!(
                "row {row} of length {} does not fit matrix {}x{}",
                values.len(),
                core.rows,
                core.cols
            )));
        }
        let dim = self.config.params.array_dim;
        let mut padded_row = vec![0i64; dim];
        padded_row[..values.len()].copy_from_slice(values);
        let row_matrix = vec![padded_row];
        let slices = core.slicer().slice(&row_matrix).map_err(Error::Analog)?;
        let mut total = Cycles::ZERO;
        for (slice, &array) in slices.iter().zip(&core.arrays) {
            total += self.ace.update_row(array, row, &slice[0])?;
        }
        self.busy += total;
        Ok(total)
    }

    /// Executes a hybrid MVM: analog multiply, shift-unit transfer, IIU
    /// reduction. Partial products land in `regs.parts` of pipeline
    /// `dst_pipe`; the reduced vector ends in `regs.acc` and is returned.
    ///
    /// `early_levels` forwards ramp-ADC early termination.
    ///
    /// # Errors
    ///
    /// Returns vACore/shape/arbiter/substrate errors.
    pub fn exec_mvm(
        &mut self,
        id: VaCoreId,
        input: &[i64],
        dst_pipe: usize,
        regs: &ReductionRegs,
        early_levels: Option<u16>,
    ) -> Result<MvmReport> {
        let core = self.vacores.get(id)?.clone();
        if core.rows == 0 {
            return Err(Error::VaCore(format!("vACore {id} has no matrix")));
        }
        if input.len() != core.rows {
            return Err(Error::Shape(format!(
                "input length {} does not match matrix rows {}",
                input.len(),
                core.rows
            )));
        }
        // The MVM occupies the landing pipeline exclusively (the paper's
        // pipeline-reserve + arbiter protocol).
        self.arbiter.acquire(dst_pipe, Domain::Analog)?;
        let report = self.exec_mvm_inner(&core, input, dst_pipe, regs, early_levels);
        self.arbiter.release(dst_pipe);
        report
    }

    fn exec_mvm_inner(
        &mut self,
        core: &VaCore,
        input: &[i64],
        dst_pipe: usize,
        regs: &ReductionRegs,
        early_levels: Option<u16>,
    ) -> Result<MvmReport> {
        let dim = self.config.params.array_dim;
        let driver = InputDriver::new(core.input_bits, core.input_signed).map_err(Error::Analog)?;
        let mut padded_input = vec![0i64; dim];
        padded_input[..input.len()].copy_from_slice(input);

        // --- Analog phase: bit-sliced MVM over the core's arrays.
        let out = self
            .ace
            .mvm_group(&core.arrays, &padded_input, driver, early_levels)?;
        let lsb = self.ace.adc().lsb_units();

        // --- Transfer phase: land each term, pre-shifted when optimized.
        let terms = core.term_count();
        let input_bits = usize::from(core.input_bits);
        let pipe = self
            .pipelines
            .get_mut(dst_pipe)
            .ok_or_else(|| Error::InvalidConfig(format!("pipeline {dst_pipe} not instantiated")))?;
        let depth = pipe.depth();
        let field_mask = if depth == 64 {
            u64::MAX
        } else {
            (1u64 << depth) - 1
        };
        if regs.parts.len() != terms {
            return Err(Error::Shape(format!(
                "reduction registers provide {} landing slots for {terms} terms",
                regs.parts.len()
            )));
        }
        let mut transfer_total = Cycles::ZERO;
        for t in 0..terms {
            let s = t / input_bits;
            let b = t % input_bits;
            // The grouped MVM concatenates each array's full (padded)
            // column set, so slice `s` occupies [s*dim, s*dim + cols).
            let codes: Vec<i64> = out.partial_products[b][s * dim..s * dim + core.cols]
                .iter()
                .map(|&code| ((code as f64) * lsb).round() as i64)
                .collect();
            // In-flight transform applies only the shift; the term's sign
            // is handled by the IIU's Sub step (negating here too would
            // double-count it).
            let (shift, _negative) = core.term_shift(t);
            let landing = if self.config.optimized_schedule {
                self.shift_unit.apply(&codes, shift, false)
            } else {
                codes
            };
            let fields: Vec<u64> = landing.iter().map(|&v| (v as u64) & field_mask).collect();
            pipe.write_vector(regs.parts[t].0 as usize, &fields)?;
            transfer_total += self.shift_unit.transfer_cycles(core.cols as u64, 8)
                + self.transpose.vector_retime_cycles();
        }

        // --- Reduce phase: replay the IIU program.
        let zero_vr = pipe.vr_count() - 1;
        let program = core.injection_program(regs, self.config.optimized_schedule);
        if self.config.use_iiu {
            self.iiu.replay(&program, pipe, zero_vr)?;
        } else {
            // Same dataflow, but the front end issues every µop.
            self.front_end_ops += program.len() as u64;
            let mut iiu = HardwareIiu::new();
            iiu.replay(&program, pipe, zero_vr)?;
        }
        let result: Vec<i64> = pipe.read_signed_prefix(regs.acc.0 as usize, core.cols)?;

        // --- Timing (documented schedule model).
        let family = self.config.family;
        let pipe_depth = self.config.params.dce_pipeline_depth as u64;
        let elements = core.cols as u64;
        let per_bit_ace = Cycles::new(out.cycles.get() / u64::from(core.input_bits).max(1));
        let per_bit_transfer =
            Cycles::new(transfer_total.get() / u64::from(core.input_bits).max(1));
        let add_cost = MacroOp::Add.cost(family, pipe_depth, elements);
        let shift_cost = MacroOp::ShiftBits(1).cost(family, pipe_depth, elements);
        let arith = program.arithmetic_steps() as u64;
        let (analog_cycles, transfer_cycles, reduce_cycles) = if self.config.optimized_schedule {
            // Figure 10b: conversions and transfers overlap; adds pipeline.
            let overlapped = per_bit_ace
                + Cycles::new(
                    per_bit_ace.get().max(per_bit_transfer.get())
                        * (u64::from(core.input_bits).saturating_sub(1)),
                )
                + per_bit_transfer;
            (
                out.cycles,
                overlapped - out.cycles.min(overlapped),
                add_cost.pipelined_batch(arith),
            )
        } else {
            // Figure 10a: write, shift, add fully serialize per term.
            let shifts = program.shift_steps() as u64;
            let serial_reduce =
                Cycles::new(shift_cost.latency().get() * shifts + add_cost.latency().get() * arith);
            (out.cycles, transfer_total, serial_reduce)
        };
        let cycles = analog_cycles + transfer_cycles + reduce_cycles;
        self.busy += cycles;

        // --- Energy. `dce.reduce` is the architectural estimate (full
        // Table 2 pipeline depth); the functional pipelines' own primitive
        // counts appear separately under `dce.array` as a diagnostic.
        let dce_energy = PicoJoules::new(
            add_cost.primitives as f64 * arith as f64 * family.energy_per_primitive_pj(),
        );
        let ctrl_energy = PicoJoules::from_power(power::PIPELINE_CTRL, reduce_cycles);
        self.meter.add("dce.reduce", dce_energy);
        self.meter.add("dce.pipeline_ctrl", ctrl_energy);
        let energy = out.energy + dce_energy + ctrl_energy;
        Ok(MvmReport {
            result,
            cycles,
            analog_cycles,
            transfer_cycles,
            reduce_cycles,
            energy,
        })
    }

    /// Merged energy meter: ACE components plus DCE primitive energy.
    pub fn energy_meter(&self) -> EnergyMeter {
        let mut meter = self.meter.clone();
        meter.merge(self.ace.energy_meter());
        let dce: PicoJoules = self.pipelines.iter().map(P::energy).sum();
        meter.add("dce.array", dce);
        meter
    }
}

impl<P: DcePipeline> GenericTile<P> {
    /// Exact software oracle for [`GenericTile::exec_mvm`].
    ///
    /// # Errors
    ///
    /// Returns vACore errors for unknown ids.
    pub fn mvm_oracle(&self, id: VaCoreId, input: &[i64]) -> Result<Vec<i64>> {
        let core = self.vacores.get(id)?;
        let xbar = self.ace.crossbar(core.arrays[0]).map_err(Error::Analog)?;
        let _ = xbar;
        // Reconstruct from the programmed slices for full fidelity.
        let mut out = vec![0i64; core.cols];
        for (s, &array) in core.arrays.iter().enumerate() {
            let weights = self.ace.crossbar(array).map_err(Error::Analog)?.weights();
            let shift = core.plan().weight_shift(s);
            for (r, &x) in input.iter().enumerate() {
                if x == 0 {
                    continue;
                }
                for c in 0..core.cols {
                    out[c] += x * (weights[r][c] << shift);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile() -> HybridComputeTile {
        HybridComputeTile::new(HctConfig::small_test()).expect("valid config")
    }

    #[test]
    fn config_validation() {
        let mut c = HctConfig::small_test();
        c.functional_pipelines = 0;
        assert!(HybridComputeTile::new(c).is_err());
        let mut c = HctConfig::small_test();
        c.range_scale = 0.0;
        assert!(HybridComputeTile::new(c).is_err());
    }

    #[test]
    fn mvm_4bit_weights_3bit_inputs_matches_oracle() {
        let mut t = tile();
        let id = t.alloc_vacore(4, 2, 3, false).expect("allocates");
        let matrix = vec![vec![5, 9, 1], vec![8, 7, 2], vec![3, 0, 15]];
        t.set_matrix(id, &matrix).expect("programs");
        let input = vec![2, 7, 1];
        let regs = ReductionRegs::dense(t.vacores().get(id).expect("exists").term_count());
        let report = t.exec_mvm(id, &input, 0, &regs, None).expect("executes");
        let oracle = t.mvm_oracle(id, &input).expect("oracle");
        assert_eq!(report.result, oracle);
        assert_eq!(
            report.result,
            vec![2 * 5 + 7 * 8 + 3, 2 * 9 + 7 * 7, 2 + 14 + 15]
        );
        assert!(report.cycles > Cycles::ZERO);
        assert!(report.energy > PicoJoules::ZERO);
    }

    #[test]
    fn mvm_signed_weights_and_inputs() {
        let mut t = tile();
        let id = t.alloc_vacore(4, 2, 4, true).expect("allocates");
        let matrix = vec![vec![-5, 9], vec![8, -7]];
        t.set_matrix(id, &matrix).expect("programs");
        for input in [vec![-8i64, 7], vec![3, -4], vec![-1, -1]] {
            let regs = ReductionRegs::dense(t.vacores().get(id).expect("exists").term_count());
            let report = t.exec_mvm(id, &input, 1, &regs, None).expect("executes");
            let expected: Vec<i64> = (0..2)
                .map(|c| (0..2).map(|r| input[r] * matrix[r][c]).sum())
                .collect();
            assert_eq!(report.result, expected, "input {input:?}");
        }
    }

    #[test]
    fn figure9_walkthrough() {
        // Figure 9: 2x2 matrix [[5,9],[8,7]], 3-bit input [2,7], 4-bit
        // elements — result [66, 67].
        let mut t = tile();
        let id = t.alloc_vacore(4, 4, 3, false).expect("allocates");
        t.set_matrix(id, &[vec![5, 9], vec![8, 7]])
            .expect("programs");
        let regs = ReductionRegs::dense(3);
        let report = t.exec_mvm(id, &[2, 7], 0, &regs, None).expect("executes");
        assert_eq!(report.result, vec![66, 67]);
    }

    #[test]
    fn optimized_schedule_beats_unoptimized() {
        let run = |optimized: bool| {
            let mut config = HctConfig::small_test();
            config.optimized_schedule = optimized;
            let mut t = HybridComputeTile::new(config).expect("valid");
            let id = t.alloc_vacore(8, 2, 8, false).expect("allocates");
            let matrix: Vec<Vec<i64>> = (0..8)
                .map(|r| (0..8).map(|c| ((r * c) % 16) as i64).collect())
                .collect();
            t.set_matrix(id, &matrix).expect("programs");
            let regs = ReductionRegs::dense(32); // 4 slices x 8 bits
            let input: Vec<i64> = (0..8).map(|i| (i * 31) % 256).collect();

            t.exec_mvm(id, &input, 0, &regs, None).expect("executes")
        };
        let opt = run(true);
        let unopt = run(false);
        assert_eq!(opt.result, unopt.result, "both schedules are correct");
        assert!(
            opt.cycles.get() * 2 < unopt.cycles.get(),
            "Fig 10b ({}) should be much faster than Fig 10a ({})",
            opt.cycles,
            unopt.cycles
        );
    }

    #[test]
    fn mvm_requires_matrix_and_matching_input() {
        let mut t = tile();
        let id = t.alloc_vacore(4, 2, 2, false).expect("allocates");
        let regs = ReductionRegs::dense(4);
        assert!(matches!(
            t.exec_mvm(id, &[1], 0, &regs, None),
            Err(Error::VaCore(_))
        ));
        t.set_matrix(id, &[vec![1, 2], vec![3, 4]])
            .expect("programs");
        assert!(matches!(
            t.exec_mvm(id, &[1], 0, &regs, None),
            Err(Error::Shape(_))
        ));
    }

    #[test]
    fn set_matrix_rejects_oversize_and_ragged() {
        let mut t = tile();
        let id = t.alloc_vacore(4, 2, 2, false).expect("allocates");
        let dim = t.config().params.array_dim;
        let too_tall = vec![vec![0i64; 2]; dim + 1];
        assert!(matches!(t.set_matrix(id, &too_tall), Err(Error::Shape(_))));
        let ragged = vec![vec![1, 2], vec![3]];
        assert!(matches!(t.set_matrix(id, &ragged), Err(Error::Shape(_))));
    }

    #[test]
    fn update_row_changes_results() {
        let mut t = tile();
        let id = t.alloc_vacore(4, 2, 2, false).expect("allocates");
        t.set_matrix(id, &[vec![1, 1], vec![1, 1]])
            .expect("programs");
        t.update_row(id, 0, &[3, -3]).expect("updates");
        let regs = ReductionRegs::dense(4);
        let report = t.exec_mvm(id, &[1, 1], 0, &regs, None).expect("executes");
        assert_eq!(report.result, vec![4, -2]);
    }

    #[test]
    fn iiu_vs_front_end_issue() {
        let mut config = HctConfig::small_test();
        config.use_iiu = false;
        let mut t = HybridComputeTile::new(config).expect("valid");
        let id = t.alloc_vacore(4, 2, 3, false).expect("allocates");
        t.set_matrix(id, &[vec![1, 2], vec![3, 4]])
            .expect("programs");
        let regs = ReductionRegs::dense(6);
        t.exec_mvm(id, &[1, 2], 0, &regs, None).expect("executes");
        assert!(t.front_end_ops() > 0);
        assert_eq!(t.iiu().replays(), 0);
    }

    #[test]
    fn energy_meter_has_both_domains() {
        let mut t = tile();
        let id = t.alloc_vacore(4, 2, 3, false).expect("allocates");
        t.set_matrix(id, &[vec![5, 9], vec![8, 7]])
            .expect("programs");
        let regs = ReductionRegs::dense(6);
        t.exec_mvm(id, &[2, 7], 0, &regs, None).expect("executes");
        let meter = t.energy_meter();
        assert!(meter.component("ace.adc").get() > 0.0);
        assert!(meter.component("dce.array").get() > 0.0);
        assert!(meter.component("dce.reduce").get() > 0.0);
    }

    #[test]
    fn pipeline_pair_borrows() {
        let mut t = tile();
        {
            let (a, b) = t.pipeline_pair(0, 1).expect("distinct");
            let _ = (a, b);
        }
        assert!(t.pipeline_pair(0, 0).is_err());
        assert!(t.pipeline_pair(0, 99).is_err());
    }
}
