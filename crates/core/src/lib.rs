//! DARTH-PUM: a hybrid analog/digital processing-using-memory architecture.
//!
//! This crate is the paper's primary contribution: the hybrid compute tile
//! (HCT) that pairs an analog compute element (ACE, matrix–vector multiply
//! in crossbars) with a digital compute element (DCE, RACER bit-pipelines),
//! the auxiliary hardware that makes the pairing practical, and the
//! software stack above it.
//!
//! Architecture (Figure 8):
//!
//! ```text
//!  Front end (fetch/decode/issue, shared by 8 HCTs)
//!    └── Hybrid Compute Tile × N
//!         ├── ACE: 64 analog arrays + DAC/S&H/ADC
//!         ├── DCE: 64 digital pipelines + µop queues
//!         ├── Shift units      (in-flight shift-and-place, §4.1)
//!         ├── A/D arbiter      (analog/digital mutual exclusion, §4.2)
//!         ├── Transpose unit   (row-vector ↔ column-register, §4.2)
//!         └── Instruction injection unit (IIU, §4.2)
//! ```
//!
//! Modules:
//!
//! * [`params`] — Table 2 (HCT configuration) and Table 3 (area/power),
//!   plus iso-area chip sizing.
//! * [`vacore`] — virtual analog cores: firmware-tracked array groups
//!   supporting flexible operand widths (§4.2).
//! * [`shift_unit`] / [`transpose`] / [`arbiter`] / [`iiu`] — the four
//!   auxiliary component models.
//! * [`hct`] — the hybrid compute tile: functional hybrid MVM with the
//!   optimized (Figure 10b) or unoptimized (Figure 10a) schedule.
//! * [`front_end`] — fetch/decode/issue with and without IIU assistance.
//! * [`chip`] — whole-chip assembly, ISA interpretation and accounting.
//! * [`runtime`] — the application-agnostic half of Table 1's library.
//! * [`trace`] — architecture-neutral kernel op streams: the
//!   [`trace::TraceSink`] pipeline every architecture model consumes,
//!   plus the materialized [`trace::Trace`] and the run-length
//!   [`trace::TraceSummary`] forms of a recorded stream.
//! * [`model`] — the analytical DARTH-PUM cost model (a streaming
//!   [`eval::CostAccumulator`]) used for the throughput/energy sweeps of
//!   Figures 13–18.
//! * [`config`] — the [`config::DarthConfig`] design space: validated
//!   ADC/crossbar/slicing/clock parameter points that build cost models,
//!   the substrate of the `darth_eval::dse` sweeps.
//! * [`eval`] — the open evaluation contract: the [`eval::Workload`]
//!   (op-stream emitter) and [`eval::ArchModel`] (accumulator factory)
//!   traits that the `darth_eval` engine crosses into a workload ×
//!   architecture matrix, [`eval::Fanout`] to price one emission on
//!   many architectures in a single pass, and the functional-execution
//!   side of the contract — [`eval::Executable`] (lowers a work item to
//!   an encoded-ISA [`eval::ExecJob`]) and [`eval::Executor`] (runs the
//!   job over bit-accurate machine state) — that the `darth_sim`
//!   differential harness checks against golden references.
//! * [`workers`] — the shared worker-count convention
//!   (`DARTH_EVAL_THREADS`) used by every `std::thread::scope` phase in
//!   the stack.
//!
//! # Example: hybrid MVM through the runtime
//!
//! ```
//! use darth_pum::runtime::{Runtime, RuntimeConfig};
//!
//! # fn main() -> Result<(), darth_pum::Error> {
//! let mut rt = Runtime::new(RuntimeConfig::small_test())?;
//! let matrix = vec![vec![2, -1], vec![3, 4]];
//! let handle = rt.set_matrix(&matrix, 4, 1)?;
//! let result = rt.exec_mvm(handle, &[1, 2])?;
//! assert_eq!(result, vec![2 * 1 + 3 * 2, -1 + 4 * 2]);
//! # Ok(())
//! # }
//! ```

pub mod arbiter;
pub mod chip;
pub mod config;
pub mod eval;
pub mod front_end;
pub mod hct;
pub mod iiu;
pub mod model;
pub mod params;
pub mod runtime;
pub mod shift_unit;
pub mod trace;
pub mod transpose;
pub mod vacore;
pub mod workers;

pub use chip::{CompiledProgram, DarthPumChip, FastChip, GenericChip};
pub use config::DarthConfig;
pub use eval::{
    ArchModel, CostAccumulator, ExecJob, ExecOutput, ExecRun, Executable, Executor, Readback,
    Workload,
};
pub use hct::{FastTile, GenericTile, HybridComputeTile};
pub use params::{ChipParams, HctParams};
pub use runtime::Runtime;
pub use trace::{Kernel, KernelOp, Trace, TraceMeta, TraceSink, TraceSummary};

use std::fmt;

/// Errors produced by the DARTH-PUM simulator.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An invalid configuration value.
    InvalidConfig(String),
    /// A vACore id is unknown or already in use.
    VaCore(String),
    /// A pipeline is owned by the other domain (arbiter violation).
    ArbiterConflict {
        /// The contested pipeline index.
        pipeline: usize,
    },
    /// A matrix or vector did not match the expected shape.
    Shape(String),
    /// A matrix handle is unknown.
    UnknownMatrix(usize),
    /// The chip ran out of a resource (HCTs, pipelines, vACores).
    ResourceExhausted(&'static str),
    /// The requested operation needs a domain that is disabled.
    DomainDisabled(&'static str),
    /// An error from the digital PUM substrate.
    Digital(darth_digital::Error),
    /// An error from the analog PUM substrate.
    Analog(darth_analog::Error),
    /// An error from the ISA layer.
    Isa(darth_isa::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::VaCore(msg) => write!(f, "vACore error: {msg}"),
            Error::ArbiterConflict { pipeline } => {
                write!(f, "pipeline {pipeline} is reserved by the other domain")
            }
            Error::Shape(msg) => write!(f, "shape mismatch: {msg}"),
            Error::UnknownMatrix(handle) => write!(f, "unknown matrix handle {handle}"),
            Error::ResourceExhausted(what) => write!(f, "out of {what}"),
            Error::DomainDisabled(which) => write!(f, "{which} domain is disabled"),
            Error::Digital(e) => write!(f, "digital PUM: {e}"),
            Error::Analog(e) => write!(f, "analog PUM: {e}"),
            Error::Isa(e) => write!(f, "ISA: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Digital(e) => Some(e),
            Error::Analog(e) => Some(e),
            Error::Isa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<darth_digital::Error> for Error {
    fn from(e: darth_digital::Error) -> Self {
        Error::Digital(e)
    }
}

impl From<darth_analog::Error> for Error {
    fn from(e: darth_analog::Error) -> Self {
        Error::Analog(e)
    }
}

impl From<darth_isa::Error> for Error {
    fn from(e: darth_isa::Error) -> Self {
        Error::Isa(e)
    }
}

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, Error>;
