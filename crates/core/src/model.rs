//! The analytical DARTH-PUM cost model.
//!
//! Prices a [`Trace`] on the iso-area chip: every kernel op maps to the
//! same latency/energy rules the functional tile uses (ACE bit-sliced MVM
//! with rate-matched transfer, DCE macro costs, IIU-injected reductions),
//! then throughput scales across the chip's HCTs. Figures 13–18 divide
//! these reports against the baseline models in `darth-baselines`.
//!
//! Modelling notes (also recorded in `EXPERIMENTS.md`):
//!
//! * Dynamic energy only; ReRAM leakage is negligible and CMOS idle power
//!   is excluded on all architectures alike.
//! * An MVM's matrix is assumed resident (programmed once, reused) except
//!   for explicit [`KernelOp::WeightUpdate`] ops — matching §5.2's
//!   treatment of attention versus FFN weights.
//! * Batched MVMs double-buffer across landing pipelines, so consecutive
//!   inputs overlap at `max(analog, reduce)` (§4.1's rate matching).

use crate::eval::CostAccumulator;
use crate::params::{power, ChipParams, HCTS_PER_FRONT_END};
use crate::trace::{CostReport, KernelOp, Trace, TraceMeta, TraceSink, VectorKind};
use darth_analog::adc::{Adc, AdcKind};
use darth_digital::logic::LogicFamily;
use darth_digital::macros::MacroOp;
use darth_reram::units::CLOCK_HZ;
use serde::{Deserialize, Serialize};

/// Analog-array programming cost per matrix row (write–verify dominated).
const PROGRAM_CYCLES_PER_ROW: u64 = 1000;

/// The converter resolution the §4.3 compensation scheme is sized
/// against: an 8-bit ADC digitizes a full 64-row bitline in one pass.
/// Designs below this reference split the line into `2^(8 - bits)`
/// row-group passes (each dropped bit halves the representable range);
/// extra bits above it buy headroom, not speed.
const ADC_REFERENCE_BITS: u8 = 8;

/// The analytical chip model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DarthModel {
    /// Chip geometry and iso-area sizing.
    pub chip: ChipParams,
    /// Digital logic family.
    pub family: LogicFamily,
    /// Reductions injected by the IIU (`false`: front-end issued, which
    /// adds issue contention across the 8 tiles sharing a front end).
    pub use_iiu: bool,
    /// Figure 10b overlap (`false`: serialized Figure 10a).
    pub optimized_schedule: bool,
    /// Ramp-ADC early-termination levels (AES's 4-level trick); ignored
    /// for SAR.
    pub early_levels: Option<u16>,
    /// Device bits per cell for multi-bit weights (1 forced for 1-bit
    /// matrices).
    pub bits_per_cell: u8,
    /// Tile clock in Hz (paper: [`CLOCK_HZ`], 1 GHz). Latency scales
    /// inversely; dynamic energy scales *quadratically* (constant-field
    /// supply-voltage scaling around the paper's 1 GHz reference), so
    /// clocking is a real latency↔energy trade in the DSE sweeps.
    pub clock_hz: f64,
}

impl DarthModel {
    /// The paper's configuration with the chosen ADC.
    pub fn paper(adc_kind: AdcKind) -> Self {
        DarthModel {
            chip: ChipParams::paper(adc_kind),
            family: LogicFamily::Oscar,
            use_iiu: true,
            optimized_schedule: true,
            early_levels: None,
            // vACores flex operand width (§4.2); 4-bit cells halve the
            // slice count for the 8-bit evaluation workloads.
            bits_per_cell: 4,
            clock_hz: CLOCK_HZ,
        }
    }

    fn adc(&self) -> Adc {
        // `DarthModel` is plain public data, so nothing forces it
        // through the validated `DarthConfig::build` path; clamp a
        // hand-set or deserialized resolution into `Adc::new`'s 1..=16
        // range rather than panicking mid-pricing.
        let bits = self.chip.hct.adc_bits.clamp(1, 16);
        Adc::new(self.chip.hct.adc_kind, bits, 1.0).expect("clamped resolution is valid")
    }

    /// Latency (cycles), energy (pJ), HCT-arrays occupied, and serial ACE
    /// occupancy (cycles) of one op on one HCT.
    fn price_op(&self, op: &KernelOp) -> (f64, f64, f64, f64) {
        let dim = self.chip.hct.array_dim as u64;
        let pipe_depth = self.chip.hct.dce_pipeline_depth as u64;
        let adc = self.adc();
        match *op {
            KernelOp::Mvm {
                rows,
                cols,
                input_bits,
                weight_bits,
                batch,
            } => {
                let bpc = if weight_bits <= 1 {
                    1
                } else {
                    self.bits_per_cell.min(weight_bits)
                };
                let slices = u64::from(weight_bits.div_ceil(bpc));
                let ace_rows = self.chip.hct.ace_rows as u64;
                let ace_cols = self.chip.hct.ace_cols as u64;
                let row_tiles = rows.div_ceil(ace_rows);
                let col_tiles = cols.div_ceil(ace_cols);
                let arrays = row_tiles * col_tiles * slices;

                // Analog phase per input bit on one (row, col) tile group:
                // the ADC group digitizes the tile's bitlines × slices.
                let bitlines = (ace_cols * slices) as usize;
                let readout = adc.readout_cycles(bitlines, self.early_levels).get();
                // Below-reference resolutions pay range splitting: one
                // sample+readout pass per row group (see
                // [`ADC_REFERENCE_BITS`]); exactly one pass at the
                // paper's 8-bit point.
                let range_groups =
                    1u64 << u32::from(ADC_REFERENCE_BITS.saturating_sub(self.chip.hct.adc_bits));
                let per_bit_ace = range_groups * (1 + readout);
                // Transfer: one row of data per cycle per landing
                // pipeline; each weight slice lands in its own pipeline,
                // so the transfer is one array's columns wide (the 8 B/cyc
                // network moves 8 codes per cycle, which is faster still).
                let per_bit_transfer = ace_cols;
                let bits = u64::from(input_bits.max(1));
                let analog_phase = if self.optimized_schedule {
                    per_bit_ace
                        + per_bit_ace.max(per_bit_transfer) * bits.saturating_sub(1)
                        + per_bit_transfer
                } else {
                    (per_bit_ace + per_bit_transfer) * bits
                };

                // Reduction: terms-1 adds, pipelined; plus row-tile merge.
                let terms = slices * bits;
                let add = MacroOp::Add.cost(self.family, pipe_depth, dim);
                let arith = terms.saturating_sub(1) + row_tiles.saturating_sub(1);
                let reduce = if self.optimized_schedule {
                    add.pipelined_batch(arith).get()
                } else {
                    let shift = MacroOp::ShiftBits(1).cost(self.family, pipe_depth, dim);
                    add.latency().get() * arith + shift.latency().get() * terms
                };
                // Front-end contention when the IIU is absent: reduction
                // µops are issued for all 8 tiles through one port.
                let issue_penalty = if self.use_iiu {
                    0
                } else {
                    arith * add.stage_cycles * (HCTS_PER_FRONT_END as u64 - 1) / 2
                };
                // Column tiles run on parallel arrays/ADC groups in other
                // tiles; row tiles' analog phases share the input buffers
                // and run concurrently too (their merges are in `reduce`).
                let per_input = analog_phase + reduce + issue_penalty;
                let pipelined =
                    per_input + (batch.saturating_sub(1)) * per_input.max(analog_phase.max(reduce));

                // Energy.
                let conversions =
                    (bitlines as u64) * bits * row_tiles * col_tiles * batch * range_groups;
                // Per-conversion SAR energy scales with resolution (one
                // comparator decision + DAC settle per bit; Table 3's
                // 1.5 mW is the 8-bit point, so the paper's factor is
                // exactly 1). Ramp energy scales with the total sweep
                // length (`2^bits` cycles per range-group pass).
                let sar_resolution = f64::from(self.chip.hct.adc_bits) / 8.0;
                let adc_energy = match self.chip.hct.adc_kind {
                    AdcKind::Sar => power::SAR_ADC * conversions as f64 * sar_resolution,
                    AdcKind::Ramp => {
                        power::RAMP_ADC
                            * (readout * range_groups * bits * row_tiles * col_tiles * batch) as f64
                    }
                };
                let row_periphery =
                    power::ROW_PERIPHERY * (bits * row_tiles * col_tiles * batch) as f64;
                // Each column tile runs its own reduction; row-tile merges
                // are already inside `arith`.
                let reduce_energy = add.primitives as f64
                    * self.family.energy_per_primitive_pj()
                    * (arith * col_tiles * batch) as f64;
                let ctrl = power::PIPELINE_CTRL * (reduce * batch) as f64;
                (
                    pipelined as f64,
                    adc_energy + row_periphery + reduce_energy + ctrl,
                    arrays as f64,
                    (analog_phase * batch) as f64,
                )
            }
            KernelOp::Vector {
                kind,
                elements,
                bits,
                count,
            } => {
                let lanes = dim; // 64 elements per pipeline op
                let instances = elements.div_ceil(lanes) * count;
                let macro_op = match kind {
                    VectorKind::Bool => MacroOp::Bool(darth_digital::BoolOp::Xor),
                    VectorKind::Add => MacroOp::Add,
                    VectorKind::Mul => MacroOp::Mul(bits),
                    VectorKind::Shift => MacroOp::ShiftBits(1),
                    VectorKind::Compare => MacroOp::CmpLt,
                    VectorKind::Copy => MacroOp::CopyVr,
                };
                let cost = macro_op.cost(self.family, u64::from(bits).max(1), lanes);
                let latency = if cost.barrier {
                    cost.latency().get() * instances
                } else {
                    cost.pipelined_batch(instances).get()
                };
                let energy = cost.primitives as f64
                    * instances as f64
                    * self.family.energy_per_primitive_pj();
                (latency as f64, energy, 0.0, 0.0)
            }
            KernelOp::TableLookup { elements, .. } => {
                let cost = MacroOp::ElementLoad.cost(self.family, pipe_depth, dim);
                let instances = elements.div_ceil(dim);
                let latency = cost.latency().get() * instances;
                // element-wise load is peripheral I/O: charge pipeline ctrl
                let energy = power::PIPELINE_CTRL * latency as f64;
                (latency as f64, energy, 0.0, 0.0)
            }
            KernelOp::HostMove { bytes } | KernelOp::OnChipMove { bytes } => {
                // On DARTH-PUM all movement stays on chip at 8 B/cycle.
                let cycles = bytes.div_ceil(crate::params::ACE_DCE_BYTES_PER_CYCLE);
                (
                    cycles as f64,
                    power::PIPELINE_CTRL * cycles as f64,
                    0.0,
                    0.0,
                )
            }
            KernelOp::WeightUpdate {
                rows, weight_bits, ..
            } => {
                let bpc = if weight_bits <= 1 {
                    1
                } else {
                    self.bits_per_cell
                };
                let slices = u64::from(weight_bits.div_ceil(bpc));
                let cycles = rows * PROGRAM_CYCLES_PER_ROW * slices;
                (
                    cycles as f64,
                    power::ROW_PERIPHERY * cycles as f64,
                    slices as f64,
                    cycles as f64,
                )
            }
        }
    }

    /// Prices a whole materialized trace into a [`CostReport`] by
    /// streaming it through a [`DarthAccumulator`].
    ///
    /// An item's digital (non-MVM) work spreads across the
    /// `pipelines_per_item` pipelines its mapping occupies; MVM chains are
    /// serial per vACore.
    pub fn price(&self, trace: &Trace) -> CostReport {
        let mut acc = DarthAccumulator::new(*self);
        trace.emit_to(&mut acc);
        acc.finish()
    }
}

/// The streaming accumulator behind [`DarthModel::price`]: folds an op
/// stream into per-kernel latency/energy state and finalizes with the
/// iso-area placement maths.
#[derive(Debug, Clone)]
pub struct DarthAccumulator {
    model: DarthModel,
    workload: String,
    parallel_items: u64,
    pipelines_per_item: u64,
    spread: f64,
    item_cycles: f64,
    item_energy_pj: f64,
    max_arrays: f64,
    ace_serial_cycles: f64,
    kernel_latency: Vec<(String, f64)>,
    current: Option<DarthKernel>,
}

#[derive(Debug, Clone)]
struct DarthKernel {
    name: String,
    cycles: f64,
    energy_pj: f64,
    arrays: f64,
}

impl DarthAccumulator {
    /// A fresh accumulator for one work item on `model`.
    pub fn new(model: DarthModel) -> Self {
        DarthAccumulator {
            model,
            workload: String::new(),
            parallel_items: u64::MAX,
            pipelines_per_item: 1,
            spread: 1.0,
            item_cycles: 0.0,
            item_energy_pj: 0.0,
            max_arrays: 0.0,
            ace_serial_cycles: 0.0,
            kernel_latency: Vec::new(),
            current: None,
        }
    }

    fn flush_kernel(&mut self) {
        if let Some(kernel) = self.current.take() {
            self.kernel_latency
                .push((kernel.name, kernel.cycles / self.model.clock_hz));
            self.item_cycles += kernel.cycles;
            self.item_energy_pj += kernel.energy_pj;
            self.max_arrays = self.max_arrays.max(kernel.arrays);
        }
    }
}

impl TraceSink for DarthAccumulator {
    fn begin_trace(&mut self, meta: &TraceMeta) {
        self.workload = meta.name.clone();
        self.parallel_items = meta.parallel_items;
        self.pipelines_per_item = meta.pipelines_per_item;
        self.spread = meta.pipelines_per_item.max(1) as f64;
    }

    fn begin_kernel(&mut self, name: &str) {
        self.flush_kernel();
        self.current = Some(DarthKernel {
            name: name.to_owned(),
            cycles: 0.0,
            energy_pj: 0.0,
            arrays: 0.0,
        });
    }

    fn op_run(&mut self, op: &KernelOp, repeat: u64) {
        let (ol, oe, oa, oace) = self.model.price_op(op);
        let ol = if matches!(op, KernelOp::Vector { .. } | KernelOp::TableLookup { .. }) {
            ol / self.spread
        } else {
            ol
        };
        let kernel = self.current.as_mut().expect("begin_kernel precedes ops");
        // Fold the run one repetition at a time: pricing the op once and
        // re-adding the same addends keeps a run of `n` bit-identical to
        // `n` single-op events while skipping `n - 1` model evaluations.
        for _ in 0..repeat {
            kernel.cycles += ol;
            kernel.energy_pj += oe;
            self.ace_serial_cycles += oace;
        }
        kernel.arrays = kernel.arrays.max(oa);
    }
}

impl CostAccumulator for DarthAccumulator {
    fn finish(&mut self) -> CostReport {
        self.flush_kernel();
        let model = &self.model;
        // Front-end share: one front end per 8 HCTs, amortised per item.
        // Dynamic energy scales quadratically with the clock around the
        // paper's 1 GHz reference (constant-field voltage scaling) —
        // exactly 1.0 at the paper point, a real trade-off in sweeps.
        let clock_scale = (model.clock_hz / CLOCK_HZ).powi(2);
        let item_energy_pj = (self.item_energy_pj
            + power::FRONT_END * self.item_cycles / HCTS_PER_FRONT_END as f64)
            * clock_scale;

        // Placement: arrays bound the analog footprint; DCE pipelines
        // bound digital batching.
        let arrays_per_hct = model.chip.hct.ace_arrays as f64;
        let hcts_for_arrays = (self.max_arrays / arrays_per_hct).ceil().max(1.0);
        let pipes_per_hct = model.chip.hct.dce_pipelines as f64;
        let items_per_hct_group =
            (pipes_per_hct * hcts_for_arrays / self.pipelines_per_item as f64).max(1.0);
        let hct_count = model.chip.hct_count() as f64;
        let groups = (hct_count / hcts_for_arrays).max(1.0);
        let chip_parallel = (groups * items_per_hct_group)
            .min(self.parallel_items as f64)
            .max(1.0);

        let latency_s = self.item_cycles / model.clock_hz;
        let pipeline_bound = chip_parallel / latency_s.max(1e-12);
        // Items sharing a tile group also share its ACEs: the group's
        // analog throughput caps the item rate regardless of how many
        // pipeline contexts are free.
        let ace_bound = if self.ace_serial_cycles > 0.0 {
            groups * model.clock_hz / self.ace_serial_cycles
        } else {
            f64::INFINITY
        };
        CostReport {
            architecture: format!("DARTH-PUM ({:?} ADC)", model.chip.hct.adc_kind),
            workload: std::mem::take(&mut self.workload),
            latency_s,
            throughput_items_per_s: pipeline_bound.min(ace_bound),
            energy_per_item_j: item_energy_pj * 1e-12,
            kernel_latency_s: std::mem::take(&mut self.kernel_latency),
        }
    }
}

impl crate::eval::ArchModel for DarthModel {
    /// `"darth-sar"` / `"darth-ramp"`, with the Figure-10a/ablation knobs
    /// appended when they differ from the paper configuration.
    fn name(&self) -> String {
        let mut name = format!("darth-{}", self.chip.hct.adc_kind.slug());
        if !self.use_iiu {
            name.push_str("-noiiu");
        }
        if !self.optimized_schedule {
            name.push_str("-serialized");
        }
        name
    }

    fn label(&self) -> String {
        "DARTH-PUM".into()
    }

    fn accumulator(&self) -> Box<dyn crate::eval::CostAccumulator + '_> {
        Box::new(DarthAccumulator::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Kernel;

    fn mvm_trace(input_bits: u8, weight_bits: u8) -> Trace {
        Trace::new(
            "t",
            vec![Kernel::new(
                "mvm",
                vec![KernelOp::Mvm {
                    rows: 64,
                    cols: 64,
                    input_bits,
                    weight_bits,
                    batch: 1,
                }],
            )],
        )
    }

    #[test]
    fn price_is_positive_and_finite() {
        let model = DarthModel::paper(AdcKind::Sar);
        let report = model.price(&mvm_trace(8, 8));
        assert!(report.latency_s > 0.0 && report.latency_s.is_finite());
        assert!(report.energy_per_item_j > 0.0);
        assert!(report.throughput_items_per_s > 0.0);
    }

    #[test]
    fn more_input_bits_cost_more() {
        let model = DarthModel::paper(AdcKind::Sar);
        let narrow = model.price(&mvm_trace(1, 1));
        let wide = model.price(&mvm_trace(8, 8));
        assert!(wide.latency_s > narrow.latency_s);
        assert!(wide.energy_per_item_j > narrow.energy_per_item_j);
    }

    #[test]
    fn optimized_schedule_is_faster() {
        let mut opt = DarthModel::paper(AdcKind::Sar);
        opt.optimized_schedule = true;
        let mut unopt = opt;
        unopt.optimized_schedule = false;
        let t = mvm_trace(8, 8);
        assert!(opt.price(&t).latency_s < unopt.price(&t).latency_s);
    }

    #[test]
    fn iiu_saves_latency() {
        let with = DarthModel::paper(AdcKind::Sar);
        let mut without = with;
        without.use_iiu = false;
        let t = mvm_trace(8, 8);
        assert!(with.price(&t).latency_s < without.price(&t).latency_s);
    }

    #[test]
    fn ramp_early_termination_helps_aes_style_mvm() {
        let mut ramp = DarthModel::paper(AdcKind::Ramp);
        let full = ramp.price(&mvm_trace(1, 1));
        ramp.early_levels = Some(4);
        let early = ramp.price(&mvm_trace(1, 1));
        assert!(early.latency_s < full.latency_s);
    }

    #[test]
    fn low_adc_resolution_trades_area_for_conversion_passes() {
        // A 6-bit design's converter is smaller, but the lost range
        // costs 2^(8-6) = 4 row-group passes per conversion — worse
        // latency and energy at lower area, so neither resolution
        // dominates the other in a sweep and the axis never produces
        // duplicate columns.
        let b8 = DarthModel::paper(AdcKind::Sar);
        let mut b6 = b8;
        b6.chip.hct.adc_bits = 6;
        let t = mvm_trace(8, 8);
        let full = b8.price(&t);
        let coarse = b6.price(&t);
        assert!(coarse.latency_s > full.latency_s);
        assert!(coarse.energy_per_item_j > full.energy_per_item_j);
        assert!(b6.chip.hct.ace_area() < b8.chip.hct.ace_area());
        // Above the reference, extra bits buy headroom (area), never
        // extra passes.
        let mut b12 = b8;
        b12.chip.hct.adc_bits = 12;
        assert_eq!(b12.price(&t).latency_s, full.latency_s);
        assert!(b12.chip.hct.ace_area() > b8.chip.hct.ace_area());
        // Hand-set out-of-range resolutions clamp rather than panic:
        // the model is plain data, not forced through DarthConfig.
        let mut raw = b8;
        raw.chip.hct.adc_bits = 0;
        assert!(raw.price(&t).latency_s.is_finite());
        raw.chip.hct.adc_bits = 200;
        assert!(raw.price(&t).latency_s.is_finite());
    }

    #[test]
    fn clock_trades_latency_for_energy() {
        // Faster clocks shorten items but pay quadratic dynamic energy
        // (voltage scaling), so no clock strictly dominates in a sweep.
        let base = DarthModel::paper(AdcKind::Sar);
        let mut fast = base;
        fast.clock_hz = 1.5e9;
        let t = mvm_trace(8, 8);
        let slow_report = base.price(&t);
        let fast_report = fast.price(&t);
        assert!(fast_report.latency_s < slow_report.latency_s);
        assert!(fast_report.energy_per_item_j > slow_report.energy_per_item_j);
        let ratio = fast_report.energy_per_item_j / slow_report.energy_per_item_j;
        assert!((ratio - 2.25).abs() < 1e-9, "expected (1.5)^2, got {ratio}");
    }

    #[test]
    fn vector_ops_price_by_macro_cost() {
        let model = DarthModel::paper(AdcKind::Sar);
        let bool_trace = Trace::new(
            "b",
            vec![Kernel::new(
                "xor",
                vec![KernelOp::Vector {
                    kind: VectorKind::Bool,
                    elements: 64,
                    bits: 8,
                    count: 100,
                }],
            )],
        );
        let mul_trace = Trace::new(
            "m",
            vec![Kernel::new(
                "mul",
                vec![KernelOp::Vector {
                    kind: VectorKind::Mul,
                    elements: 64,
                    bits: 8,
                    count: 100,
                }],
            )],
        );
        let b = model.price(&bool_trace);
        let m = model.price(&mul_trace);
        assert!(m.latency_s > b.latency_s, "mul is costlier than xor");
    }

    #[test]
    fn parallelism_caps_apply() {
        let model = DarthModel::paper(AdcKind::Sar);
        let free = model.price(&mvm_trace(8, 8));
        let capped_trace = mvm_trace(8, 8).with_parallel_items(1);
        let capped = model.price(&capped_trace);
        assert!(capped.throughput_items_per_s < free.throughput_items_per_s);
        let fat_trace = mvm_trace(8, 8).with_pipelines_per_item(64);
        let fat = model.price(&fat_trace);
        assert!(fat.throughput_items_per_s < free.throughput_items_per_s);
    }

    #[test]
    fn kernel_breakdown_sums_to_latency() {
        let model = DarthModel::paper(AdcKind::Sar);
        let trace = Trace::new(
            "multi",
            vec![
                Kernel::new(
                    "a",
                    vec![KernelOp::Vector {
                        kind: VectorKind::Add,
                        elements: 64,
                        bits: 8,
                        count: 10,
                    }],
                ),
                Kernel::new(
                    "b",
                    vec![KernelOp::TableLookup {
                        elements: 64,
                        table_size: 256,
                        bits: 8,
                    }],
                ),
            ],
        );
        let report = model.price(&trace);
        let sum: f64 = report.kernel_latency_s.iter().map(|(_, s)| s).sum();
        assert!((sum - report.latency_s).abs() / report.latency_s < 1e-9);
    }

    #[test]
    fn weight_update_is_expensive() {
        let model = DarthModel::paper(AdcKind::Sar);
        let update = Trace::new(
            "u",
            vec![Kernel::new(
                "prog",
                vec![KernelOp::WeightUpdate {
                    rows: 64,
                    cols: 64,
                    weight_bits: 8,
                }],
            )],
        );
        let mvm = model.price(&mvm_trace(8, 8));
        let upd = model.price(&update);
        assert!(
            upd.latency_s > 10.0 * mvm.latency_s,
            "programming dwarfs compute: {} vs {}",
            upd.latency_s,
            mvm.latency_s
        );
    }
}
