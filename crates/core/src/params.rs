//! Chip parameters: Table 2 (HCT configuration), Table 3 (area and power)
//! and the iso-area sizing of Section 6.
//!
//! All areas are in µm² at the 15 nm node the paper scales to; all powers
//! in mW at the 1 GHz clock; the iso-area budget is the Intel i7-13700's
//! 2.57 cm².

use darth_analog::adc::AdcKind;
use darth_reram::SquareMicrons;
use serde::{Deserialize, Serialize};

/// The iso-area budget: the baseline CPU's die area (Section 6).
pub const ISO_AREA_CM2: f64 = 2.57;

/// Bytes per cycle of the ACE↔DCE I/O network, chosen to rate-match ADC
/// throughput with DCE write bandwidth (Section 4).
pub const ACE_DCE_BYTES_PER_CYCLE: u64 = 8;

/// HCTs sharing one front end (Section 4 / Table 3).
pub const HCTS_PER_FRONT_END: usize = 8;

/// Table 3: area of each hardware component, in µm².
///
/// The ReRAM arrays integrate in the back-end-of-line *above* the CMOS
/// periphery, so the array entries are informational and do not count
/// toward die area; all other entries are per-tile totals. This reading
/// reproduces §6's tile counts: 2.57 cm² / 138,830 µm² ≈ 1851 HCTs with
/// SAR ADCs, within 0.5% of the paper's 1860.
pub mod area {
    /// One ReRAM array (stacked above the periphery; informational).
    pub const DCE_ARRAY: f64 = 240.0;
    /// DCE pipeline control (total for the tile's 64 pipelines).
    pub const DCE_PIPELINE_CONTROL: f64 = 74_000.0;
    /// DCE I/O control.
    pub const DCE_IO_CTRL: f64 = 9_600.0;
    /// DCE decode & drive.
    pub const DCE_DECODE_DRIVE: f64 = 280.0;
    /// DCE pipeline select.
    pub const DCE_PIPELINE_SELECT: f64 = 64.0;
    /// ACE ReRAM array.
    pub const ACE_ARRAY: f64 = 240.0;
    /// ACE input buffers.
    pub const ACE_INPUT_BUFFERS: f64 = 27_000.0;
    /// ACE row periphery.
    pub const ACE_ROW_PERIPHERY: f64 = 13_000.0;
    /// One SAR ADC.
    pub const SAR_ADC: f64 = 600.0;
    /// One ramp ADC.
    pub const RAMP_ADC: f64 = 3_800.0;
    /// Sample & hold.
    pub const SAMPLE_HOLD: f64 = 62.0;
    /// HCT shift unit.
    pub const SHIFT_UNIT: f64 = 946.0;
    /// HCT analog/digital arbiter.
    pub const AD_ARBITER: f64 = 0.6;
    /// HCT transpose unit.
    pub const TRANSPOSE_UNIT: f64 = 1_760.0;
    /// HCT instruction injection unit.
    pub const INSTR_INJECTION_UNIT: f64 = 42.0;
    /// Front end (shared by 8 HCTs).
    pub const FRONT_END: f64 = 87_000.0;
}

/// Table 3: power of each component, in mW.
pub mod power {
    /// Digital array executing Boolean operations.
    pub const ARRAY_BOOL_OPS: f64 = 8.0;
    /// DCE pipeline control.
    pub const PIPELINE_CTRL: f64 = 1.6;
    /// ACE row periphery.
    pub const ROW_PERIPHERY: f64 = 0.7;
    /// One SAR ADC.
    pub const SAR_ADC: f64 = 1.5;
    /// One ramp ADC.
    pub const RAMP_ADC: f64 = 1.2;
    /// Sample & hold (analog).
    pub const SAMPLE_HOLD: f64 = 2.1e-5;
    /// Front end (shared by 8 HCTs).
    pub const FRONT_END: f64 = 63.0;
}

/// Table 2: the hybrid compute tile configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HctParams {
    /// DCE: number of pipelines.
    pub dce_pipelines: usize,
    /// DCE: arrays per pipeline (pipeline depth = bit width).
    pub dce_pipeline_depth: usize,
    /// DCE: ReRAM array dimension (64×64) — the lanes per pipeline
    /// operation.
    pub array_dim: usize,
    /// ACE: number of analog arrays.
    pub ace_arrays: usize,
    /// ACE: crossbar wordlines per analog array (matrix rows). The paper
    /// uses square 64×64 arrays; the DSE sweeps vary rows and columns
    /// independently.
    pub ace_rows: usize,
    /// ACE: crossbar bitlines per analog array (matrix columns).
    pub ace_cols: usize,
    /// ADC architecture.
    pub adc_kind: AdcKind,
    /// ADC resolution in bits (Table 2: 8). Scales converter area and
    /// per-conversion energy; ramp sweeps additionally scale as
    /// `2^bits`.
    pub adc_bits: u8,
}

impl HctParams {
    /// The paper's Table 2 configuration with the chosen ADC.
    pub fn paper(adc_kind: AdcKind) -> Self {
        HctParams {
            dce_pipelines: 64,
            dce_pipeline_depth: 64,
            array_dim: 64,
            ace_arrays: 64,
            ace_rows: 64,
            ace_cols: 64,
            adc_kind,
            adc_bits: 8,
        }
    }

    /// ADC units in this tile (Table 2: SAR 2, ramp 1).
    pub fn adc_units(&self) -> usize {
        self.adc_kind.units_per_ace()
    }

    /// DCE die area (periphery only; arrays stack above, see [`area`]).
    ///
    /// The control totals scale with the pipeline count relative to the
    /// paper's 64-pipeline tile, which is what the Figure 7 naive-hybrid
    /// sweep trades against analog arrays.
    pub fn dce_area(&self) -> SquareMicrons {
        let pipeline_fraction = self.dce_pipelines as f64 / 64.0;
        SquareMicrons::new(
            pipeline_fraction * area::DCE_PIPELINE_CONTROL
                + pipeline_fraction * area::DCE_IO_CTRL
                + area::DCE_DECODE_DRIVE
                + area::DCE_PIPELINE_SELECT,
        )
    }

    /// ACE die area (periphery only; arrays stack above, see [`area`]).
    ///
    /// Every term scales from the paper's Table 3 entries, which were
    /// measured at the 64-array, 64×64, 8-bit design point: input
    /// buffers and row periphery scale with the array count *and* the
    /// wordline count per array, sample-and-hold with the bitline
    /// count, and converter area with the resolution (an extra SAR
    /// capacitor/register stage — or ramp counter bit — per bit). At
    /// the paper point every fraction is exactly 1.0, so the §6 tile
    /// counts are unchanged; off the paper point these are what make
    /// the DSE area axis respond to crossbar geometry and ADC
    /// resolution.
    pub fn ace_area(&self) -> SquareMicrons {
        let array_fraction = self.ace_arrays as f64 / 64.0;
        let row_fraction = self.ace_rows as f64 / 64.0;
        let col_fraction = self.ace_cols as f64 / 64.0;
        let resolution_fraction = f64::from(self.adc_bits) / 8.0;
        let adc_area = match self.adc_kind {
            AdcKind::Sar => area::SAR_ADC,
            AdcKind::Ramp => area::RAMP_ADC,
        } * self.adc_units() as f64
            * resolution_fraction;
        SquareMicrons::new(
            array_fraction * row_fraction * (area::ACE_INPUT_BUFFERS + area::ACE_ROW_PERIPHERY)
                + adc_area
                + col_fraction * area::SAMPLE_HOLD,
        )
    }

    /// Auxiliary-unit area (shift units, arbiter, transpose, IIU).
    pub fn auxiliary_area(&self) -> SquareMicrons {
        SquareMicrons::new(
            area::SHIFT_UNIT + area::AD_ARBITER + area::TRANSPOSE_UNIT + area::INSTR_INJECTION_UNIT,
        )
    }

    /// Full tile area including its share of a front end.
    pub fn tile_area_with_front_end_share(&self) -> SquareMicrons {
        self.dce_area()
            + self.ace_area()
            + self.auxiliary_area()
            + SquareMicrons::new(area::FRONT_END / HCTS_PER_FRONT_END as f64)
    }

    /// Raw storage capacity of one tile in bytes (DCE + ACE arrays, one bit
    /// per device).
    pub fn capacity_bytes(&self) -> u64 {
        let dce_bits =
            (self.dce_pipelines * self.dce_pipeline_depth * self.array_dim * self.array_dim) as u64;
        let ace_bits = (self.ace_arrays * self.ace_rows * self.ace_cols) as u64;
        (dce_bits + ace_bits) / 8
    }
}

impl Default for HctParams {
    fn default() -> Self {
        HctParams::paper(AdcKind::Sar)
    }
}

/// Whole-chip parameters: tile configuration plus iso-area sizing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipParams {
    /// Per-tile configuration.
    pub hct: HctParams,
    /// Area budget for iso-area sizing.
    pub area_budget: SquareMicrons,
}

impl ChipParams {
    /// The paper's chip: Table 2 tiles in the i7-13700's 2.57 cm².
    pub fn paper(adc_kind: AdcKind) -> Self {
        ChipParams {
            hct: HctParams::paper(adc_kind),
            area_budget: SquareMicrons::from_cm2(ISO_AREA_CM2),
        }
    }

    /// Number of HCTs that fit the area budget (§6: 1860 with SAR ADCs,
    /// 1660 with ramp ADCs).
    pub fn hct_count(&self) -> usize {
        (self.area_budget / self.hct.tile_area_with_front_end_share()) as usize
    }

    /// Total chip memory capacity in bytes (§6: 4.1 GB SAR / 3.7 GB ramp).
    pub fn capacity_bytes(&self) -> u64 {
        self.hct_count() as u64 * self.hct.capacity_bytes()
    }

    /// Number of front ends.
    pub fn front_end_count(&self) -> usize {
        self.hct_count().div_ceil(HCTS_PER_FRONT_END)
    }
}

impl Default for ChipParams {
    fn default() -> Self {
        ChipParams::paper(AdcKind::Sar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_hct_matches_table2() {
        let p = HctParams::paper(AdcKind::Sar);
        assert_eq!(p.dce_pipelines, 64);
        assert_eq!(p.dce_pipeline_depth, 64);
        assert_eq!(p.array_dim, 64);
        assert_eq!(p.ace_arrays, 64);
        assert_eq!((p.ace_rows, p.ace_cols), (64, 64));
        assert_eq!(p.adc_units(), 2);
        assert_eq!(HctParams::paper(AdcKind::Ramp).adc_units(), 1);
    }

    #[test]
    fn iso_area_hct_counts_match_section6() {
        // §6: "an iso-area DARTH-PUM chip contains 1860 HCTs" (SAR) and
        // 1660 (ramp). Our Table 3 reconstruction lands within 0.5% for
        // SAR and within 10% for ramp.
        let sar = ChipParams::paper(AdcKind::Sar).hct_count();
        let ramp = ChipParams::paper(AdcKind::Ramp).hct_count();
        assert!(
            (1790..=1910).contains(&sar),
            "SAR HCT count {sar} vs paper 1860"
        );
        assert!(
            (1580..=1910).contains(&ramp),
            "ramp HCT count {ramp} vs paper 1660"
        );
        assert!(ramp < sar, "ramp ADCs are bigger, so fewer tiles fit");
    }

    #[test]
    fn capacity_is_gigabytes() {
        // §6: 4.1 GB (SAR) / 3.7 GB (ramp) total capacity.
        let sar = ChipParams::paper(AdcKind::Sar).capacity_bytes() as f64 / 1e9;
        assert!((3.5..=4.5).contains(&sar), "SAR capacity {sar} GB");
        let ramp = ChipParams::paper(AdcKind::Ramp).capacity_bytes() as f64 / 1e9;
        assert!(ramp < sar);
    }

    #[test]
    fn dce_dominates_tile_area() {
        // Pipeline control dominates the ACE periphery — the reason the
        // Figure 7 naive-hybrid sweep is so nonlinear.
        let p = HctParams::paper(AdcKind::Sar);
        assert!(p.dce_area().get() > 2.0 * p.ace_area().get());
        assert!(p.auxiliary_area().get() < p.ace_area().get());
    }

    #[test]
    fn ace_area_responds_to_geometry_and_resolution() {
        let paper = HctParams::paper(AdcKind::Sar);
        // Bigger crossbars cost wordline-side periphery…
        let tall = HctParams {
            ace_rows: 128,
            ..paper
        };
        assert!(tall.ace_area() > paper.ace_area());
        // …wider ones cost bitline-side sample-and-hold…
        let wide = HctParams {
            ace_cols: 128,
            ..paper
        };
        assert!(wide.ace_area() > paper.ace_area());
        // …and lower-resolution converters are smaller.
        let coarse = HctParams {
            adc_bits: 6,
            ..paper
        };
        assert!(coarse.ace_area() < paper.ace_area());
        // The paper point reproduces Table 3 exactly: 64 arrays' input
        // buffers + row periphery, two 8-bit SAR units, one S&H.
        let expected = area::ACE_INPUT_BUFFERS
            + area::ACE_ROW_PERIPHERY
            + 2.0 * area::SAR_ADC
            + area::SAMPLE_HOLD;
        assert_eq!(paper.ace_area(), SquareMicrons::new(expected));
    }

    #[test]
    fn front_end_sharing() {
        let c = ChipParams::paper(AdcKind::Sar);
        assert_eq!(
            c.front_end_count(),
            c.hct_count().div_ceil(HCTS_PER_FRONT_END)
        );
    }

    #[test]
    fn capacity_per_tile() {
        let p = HctParams::paper(AdcKind::Sar);
        // (64*64 + 64) arrays x 64x64 bits = 2.13 MB per tile
        let expected_bits = (64 * 64 + 64) * 64 * 64;
        assert_eq!(p.capacity_bytes(), expected_bits as u64 / 8);
    }
}
