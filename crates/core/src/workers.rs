//! Worker-count selection shared by every parallel phase in the stack.
//!
//! Both the pricing engine (`darth_eval`) and the fast functional
//! executor (`darth_sim`) shard independent work across
//! `std::thread::scope` workers over disjoint output slices. They agree
//! on one override convention: the environment variable
//! `DARTH_EVAL_THREADS` forces a worker count, and unusable values fall
//! back (with a warning) rather than panicking. This module holds that
//! convention in one place.

/// Reads a forced worker count from the environment variable `var`
/// (conventionally `DARTH_EVAL_THREADS`).
///
/// Returns `None` — *fall back to the default worker count* — when the
/// variable is unset, and also, with a warning on stderr, when it is
/// empty, zero, or not a number. A forced count of zero workers can
/// price nothing, and silently saturating garbage to a count would hide
/// typos like `DARTH_EVAL_THREADS=4x`, so every unusable value is
/// reported and ignored instead of panicking or spawning zero workers.
pub fn forced_workers(var: &str) -> Option<usize> {
    let raw = std::env::var(var).ok()?;
    match parse_worker_count(&raw) {
        Ok(n) => Some(n),
        Err(why) => {
            eprintln!("warning: ignoring {var}={raw:?} ({why}); using the default worker count");
            None
        }
    }
}

/// The strict parser behind [`forced_workers`]: a positive integer,
/// surrounding whitespace tolerated.
///
/// # Errors
///
/// Returns a static description of why the value is unusable (empty,
/// zero, or not a positive integer).
pub fn parse_worker_count(raw: &str) -> Result<usize, &'static str> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("empty value");
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err("zero workers cannot price anything"),
        Ok(n) => Ok(n),
        Err(_) => Err("not a positive integer"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_parsing_accepts_positive_integers_only() {
        assert_eq!(parse_worker_count("4"), Ok(4));
        assert_eq!(parse_worker_count(" 16 "), Ok(16));
        assert_eq!(parse_worker_count("1"), Ok(1));
        assert!(parse_worker_count("0").is_err());
        assert!(parse_worker_count("").is_err());
        assert!(parse_worker_count("   ").is_err());
        assert!(parse_worker_count("four").is_err());
        assert!(parse_worker_count("4x").is_err());
        assert!(parse_worker_count("-2").is_err());
        assert!(parse_worker_count("1e3").is_err());
    }

    #[test]
    fn forced_workers_falls_back_on_unusable_values() {
        // Unset: quietly no override. (Set/garbage cases go through
        // `parse_worker_count`, covered above; the env read itself is
        // exercised with a uniquely-named variable to avoid races with
        // other tests' environments.)
        assert_eq!(forced_workers("DARTH_EVAL_THREADS_UNSET_FOR_TEST"), None);
    }
}
