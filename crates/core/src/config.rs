//! Config-driven construction of the analytical DARTH-PUM model.
//!
//! The paper evaluates a handful of fixed design points; the design-space
//! sweeps (`darth_eval::dse`) price hundreds. [`DarthConfig`] is the
//! parameter space those sweeps walk: an analog design point
//! ([`AceDesign`]: ADC kind × resolution, crossbar rows/cols,
//! bits-per-cell slicing, ACE array count), a digital design point
//! ([`DceDesign`]: pipelines × depth, logic family, clock), and the
//! schedule knobs (§4.1/§4.2). [`DarthConfig::build`] validates the point
//! against the analog and digital crate validators and constructs the
//! [`DarthModel`] — the paper constructors ([`DarthModel::paper`]) are
//! now just [`DarthConfig::paper`] points passed through this builder.

use crate::model::DarthModel;
use crate::params::{ChipParams, HctParams, ISO_AREA_CM2};
use darth_analog::adc::AdcKind;
use darth_analog::design::AceDesign;
use darth_digital::design::DceDesign;
use darth_reram::SquareMicrons;
use serde::{Deserialize, Serialize};

/// One point of the DARTH-PUM design space: everything needed to build a
/// priced [`DarthModel`], in validated, sweepable form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DarthConfig {
    /// Analog compute element design (ADC, crossbar geometry, slicing,
    /// array count).
    pub ace: AceDesign,
    /// Digital compute element design (pipelines, depth, logic family,
    /// clock).
    pub dce: DceDesign,
    /// Reductions injected by the IIU (§4.2).
    pub use_iiu: bool,
    /// Figure 10b overlapped schedule (§4.1).
    pub optimized_schedule: bool,
    /// Iso-area budget in cm² (the paper sizes against the i7-13700's
    /// 2.57 cm²).
    pub area_budget_cm2: f64,
}

impl DarthConfig {
    /// The paper's design point with the chosen ADC — building it yields
    /// exactly [`DarthModel::paper`].
    pub fn paper(adc_kind: AdcKind) -> Self {
        DarthConfig {
            ace: AceDesign::paper(adc_kind),
            dce: DceDesign::paper(),
            use_iiu: true,
            optimized_schedule: true,
            area_budget_cm2: ISO_AREA_CM2,
        }
    }

    /// Replaces the ADC kind (builder style).
    #[must_use]
    pub fn with_adc_kind(mut self, kind: AdcKind) -> Self {
        self.ace.adc_kind = kind;
        self
    }

    /// Replaces the ADC resolution (builder style).
    #[must_use]
    pub fn with_adc_bits(mut self, bits: u8) -> Self {
        self.ace.adc_bits = bits;
        self
    }

    /// Replaces the crossbar geometry (builder style).
    #[must_use]
    pub fn with_crossbar(mut self, rows: usize, cols: usize) -> Self {
        self.ace.crossbar_rows = rows;
        self.ace.crossbar_cols = cols;
        self
    }

    /// Replaces the weight-slicing policy (builder style).
    #[must_use]
    pub fn with_bits_per_cell(mut self, bits: u8) -> Self {
        self.ace.bits_per_cell = bits;
        self
    }

    /// Replaces the ACE array count (builder style).
    #[must_use]
    pub fn with_ace_arrays(mut self, arrays: usize) -> Self {
        self.ace.ace_arrays = arrays;
        self
    }

    /// Replaces the tile clock (builder style).
    #[must_use]
    pub fn with_clock_ghz(mut self, ghz: f64) -> Self {
        self.dce.clock_ghz = ghz;
        self
    }

    /// Validates the full design point through the analog and digital
    /// crate validators plus the chip-level checks.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::Analog`] / [`crate::Error::Digital`] for
    /// out-of-range component values and [`crate::Error::InvalidConfig`]
    /// for a non-positive area budget.
    pub fn validate(&self) -> crate::Result<()> {
        self.ace.validate()?;
        self.dce.validate()?;
        if !(self.area_budget_cm2.is_finite() && self.area_budget_cm2 > 0.0) {
            return Err(crate::Error::InvalidConfig(
                "area budget must be positive and finite".into(),
            ));
        }
        Ok(())
    }

    /// Builds the analytical cost model for this design point.
    ///
    /// # Errors
    ///
    /// Propagates [`DarthConfig::validate`] errors.
    pub fn build(&self) -> crate::Result<DarthModel> {
        self.validate()?;
        Ok(DarthModel {
            chip: ChipParams {
                hct: HctParams {
                    dce_pipelines: self.dce.pipelines,
                    dce_pipeline_depth: self.dce.pipeline_depth,
                    array_dim: self.dce.array_dim,
                    ace_arrays: self.ace.ace_arrays,
                    ace_rows: self.ace.crossbar_rows,
                    ace_cols: self.ace.crossbar_cols,
                    adc_kind: self.ace.adc_kind,
                    adc_bits: self.ace.adc_bits,
                },
                area_budget: SquareMicrons::from_cm2(self.area_budget_cm2),
            },
            family: self.dce.family,
            use_iiu: self.use_iiu,
            optimized_schedule: self.optimized_schedule,
            early_levels: None,
            bits_per_cell: self.ace.bits_per_cell,
            clock_hz: self.dce.clock_hz(),
        })
    }

    /// The design point as `(key, value)` pairs for JSON reports.
    pub fn params(&self) -> Vec<(String, String)> {
        let mut params = self.ace.params();
        params.extend(self.dce.params());
        params.push(("use_iiu".to_owned(), self.use_iiu.to_string()));
        params.push((
            "optimized_schedule".to_owned(),
            self.optimized_schedule.to_string(),
        ));
        params.push((
            "area_budget_cm2".to_owned(),
            format!("{}", self.area_budget_cm2),
        ));
        params
    }

    /// Die area of one HCT under this design (including its front-end
    /// share) — the area coordinate of the DSE Pareto frontier, in µm².
    ///
    /// # Errors
    ///
    /// Propagates [`DarthConfig::validate`] errors.
    pub fn tile_area_um2(&self) -> crate::Result<f64> {
        Ok(self
            .build()?
            .chip
            .hct
            .tile_area_with_front_end_share()
            .get())
    }
}

impl Default for DarthConfig {
    fn default() -> Self {
        DarthConfig::paper(AdcKind::Sar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_builds_the_paper_model() {
        for adc in [AdcKind::Sar, AdcKind::Ramp] {
            let built = DarthConfig::paper(adc).build().expect("paper is valid");
            assert_eq!(built, DarthModel::paper(adc));
        }
    }

    #[test]
    fn builder_knobs_land_in_the_model() {
        let model = DarthConfig::paper(AdcKind::Ramp)
            .with_adc_bits(6)
            .with_crossbar(128, 32)
            .with_bits_per_cell(2)
            .with_ace_arrays(16)
            .with_clock_ghz(1.5)
            .build()
            .expect("valid");
        assert_eq!(model.chip.hct.adc_bits, 6);
        assert_eq!(
            (model.chip.hct.ace_rows, model.chip.hct.ace_cols),
            (128, 32)
        );
        assert_eq!(model.bits_per_cell, 2);
        assert_eq!(model.chip.hct.ace_arrays, 16);
        assert!((model.clock_hz - 1.5e9).abs() < 1e-3);
    }

    #[test]
    fn invalid_points_fail_to_build() {
        assert!(matches!(
            DarthConfig::paper(AdcKind::Sar).with_adc_bits(0).build(),
            Err(crate::Error::Analog(_))
        ));
        assert!(matches!(
            DarthConfig::paper(AdcKind::Sar).with_clock_ghz(0.0).build(),
            Err(crate::Error::Digital(_))
        ));
        let mut bad_area = DarthConfig::paper(AdcKind::Sar);
        bad_area.area_budget_cm2 = 0.0;
        assert!(matches!(
            bad_area.build(),
            Err(crate::Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn params_distinguish_design_points() {
        // `params()` is what the sweep layer keys paper-point lookup on,
        // so every knob must be visible in it.
        let a = DarthConfig::paper(AdcKind::Sar);
        let b = a.with_adc_bits(6);
        let c = a.with_clock_ghz(1.25);
        assert_ne!(a.params(), b.params());
        assert_ne!(a.params(), c.params());
        let mut d = a;
        d.area_budget_cm2 = 5.0;
        assert_ne!(a.params(), d.params());
    }

    #[test]
    fn ramp_tiles_are_bigger_than_sar_tiles() {
        let sar = DarthConfig::paper(AdcKind::Sar).tile_area_um2().unwrap();
        let ramp = DarthConfig::paper(AdcKind::Ramp).tile_area_um2().unwrap();
        assert!(ramp > sar);
    }
}
