//! The paper's Baseline: a CPU paired with an analog-only PUM accelerator.
//!
//! MVM kernels run on a 1.5 GB ReRAM crossbar accelerator (whose area the
//! paper treats as free); everything else runs on the CPU. Every
//! MVM/non-MVM boundary crosses the host link, which — together with the
//! CPU's limited parallelism on the auxiliary kernels — is exactly the
//! bottleneck DARTH-PUM removes (Figure 14's DataMovement bar).

use crate::cpu::CpuModel;
use darth_analog::adc::{Adc, AdcKind};
use darth_pum::eval::CostAccumulator;
use darth_pum::trace::{CostReport, KernelOp, Trace, TraceMeta, TraceSink};

/// CPU + analog accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineModel {
    /// The host CPU.
    pub cpu: CpuModel,
    /// Accelerator clock in Hz.
    pub accel_freq_hz: f64,
    /// Crossbar array dimension.
    pub array_dim: u64,
    /// ADC architecture on the accelerator.
    pub adc_kind: AdcKind,
    /// Bits per cell for multi-bit weights.
    pub bits_per_cell: u8,
    /// Host↔accelerator link bandwidth in bytes/s (protocol-limited
    /// DDR/PCIe attachment).
    pub link_bw: f64,
    /// Per-offload round-trip latency in seconds (sync + doorbell).
    pub link_latency_s: f64,
    /// Independent items batched per offload (amortises the round trip).
    pub offload_batch: f64,
    /// Link energy per byte in joules.
    pub link_energy_per_byte: f64,
    /// Accelerator arrays available (1.5 GB of 64×64 SLC arrays).
    pub arrays: u64,
}

impl BaselineModel {
    /// The §6 Baseline: i7-13700 plus a 1.5 GB analog accelerator.
    pub fn paper(adc_kind: AdcKind) -> Self {
        let capacity_bits = 1.5e9 * 8.0;
        BaselineModel {
            cpu: CpuModel::i7_13700(),
            accel_freq_hz: 1.0e9,
            array_dim: 64,
            adc_kind,
            bits_per_cell: 2,
            link_bw: 4.0e9,
            link_latency_s: 500e-9,
            offload_batch: 128.0,
            link_energy_per_byte: 60e-12,
            arrays: (capacity_bits / (64.0 * 64.0)) as u64,
        }
    }

    /// (compute seconds, link seconds, joules) for one MVM op on the
    /// accelerator; the link time is reported as DataMovement.
    fn price_mvm(&self, op: &KernelOp) -> (f64, f64, f64) {
        let KernelOp::Mvm {
            rows,
            cols,
            input_bits,
            weight_bits,
            batch,
        } = *op
        else {
            unreachable!("price_mvm only handles Mvm ops");
        };
        let adc = Adc::new(self.adc_kind, 8, 1.0).expect("valid ADC parameters");
        let bpc = if weight_bits <= 1 {
            1
        } else {
            self.bits_per_cell.min(weight_bits)
        };
        let slices = u64::from(weight_bits.div_ceil(bpc));
        let row_tiles = rows.div_ceil(self.array_dim);
        let col_tiles = cols.div_ceil(self.array_dim);
        let bits = u64::from(input_bits.max(1));
        // The 1.5 GB accelerator replicates the matrix across its free
        // arrays, spreading the batch.
        let arrays_needed = (row_tiles * col_tiles * slices).max(1);
        let copies = (self.arrays / arrays_needed).max(1);
        let effective_batch = batch.div_ceil(copies).max(1);
        // Dedicated shift-and-add: one cycle per ADC batch, no DCE detour.
        let readout = adc
            .readout_cycles((self.array_dim * slices) as usize, None)
            .get();
        let per_input = bits * (1 + readout) + bits; // + shift-add pipeline
        let cycles = per_input + effective_batch.saturating_sub(1) * (bits * readout).max(1);
        let time = cycles as f64 / self.accel_freq_hz;
        // Host crossings: inputs down, outputs back, plus one offload
        // round trip per kernel-level MVM call.
        let bytes = (rows * u64::from(input_bits.div_ceil(8)) + cols * 4) as f64 * batch as f64;
        let link_time = bytes / self.link_bw + 2.0 * self.link_latency_s / self.offload_batch;
        // ADC energy dominates the accelerator side.
        let conversions =
            (self.array_dim * slices * bits * row_tiles * col_tiles) as f64 * batch as f64;
        let adc_energy = match self.adc_kind {
            AdcKind::Sar => 1.5e-12 * conversions,
            AdcKind::Ramp => 1.2e-12 * 256.0 * (bits * row_tiles * col_tiles * batch) as f64,
        };
        (
            time,
            link_time,
            adc_energy + self.link_energy_per_byte * bytes,
        )
    }

    /// Prices a trace — MVMs on the accelerator, the rest on the CPU —
    /// streamed through a [`BaselineAccumulator`].
    pub fn price(&self, trace: &Trace) -> CostReport {
        let mut acc = BaselineAccumulator::new(*self);
        trace.emit_to(&mut acc);
        acc.finish()
    }
}

/// The streaming accumulator behind [`BaselineModel::price`].
#[derive(Debug, Clone)]
pub struct BaselineAccumulator {
    model: BaselineModel,
    workload: String,
    parallel_items: u64,
    latency: f64,
    energy: f64,
    movement_time: f64,
    breakdown: Vec<(String, f64)>,
    current: Option<(String, f64)>,
}

impl BaselineAccumulator {
    /// A fresh accumulator for one work item on `model`.
    pub fn new(model: BaselineModel) -> Self {
        BaselineAccumulator {
            model,
            workload: String::new(),
            parallel_items: u64::MAX,
            latency: 0.0,
            energy: 0.0,
            movement_time: 0.0,
            breakdown: Vec::new(),
            current: None,
        }
    }

    fn flush_kernel(&mut self) {
        if let Some((name, kernel_time)) = self.current.take() {
            self.breakdown.push((name, kernel_time));
            self.latency += kernel_time;
        }
    }
}

impl TraceSink for BaselineAccumulator {
    fn begin_trace(&mut self, meta: &TraceMeta) {
        self.workload = meta.name.clone();
        self.parallel_items = meta.parallel_items;
    }

    fn begin_kernel(&mut self, name: &str) {
        self.flush_kernel();
        self.current = Some((name.to_owned(), 0.0));
    }

    fn op_run(&mut self, op: &KernelOp, repeat: u64) {
        let (t, link, e) = if op.is_mvm() {
            let (t, link, e) = self.model.price_mvm(op);
            // link time shows up as DataMovement, the paper's bar; the
            // host core blocks on the offload, burning package power the
            // whole time (synchronous library calls)
            let blocked = self.model.cpu.package_watts / self.model.cpu.cores * (t + link);
            (t, link, e + blocked)
        } else {
            let (t, e) = self.model.cpu.price_op(op);
            (t, 0.0, e)
        };
        let kernel = self.current.as_mut().expect("begin_kernel precedes ops");
        for _ in 0..repeat {
            self.movement_time += link;
            kernel.1 += t;
            self.energy += e;
        }
    }
}

impl CostAccumulator for BaselineAccumulator {
    fn finish(&mut self) -> CostReport {
        self.flush_kernel();
        let mut breakdown = std::mem::take(&mut self.breakdown);
        // Attribute host-link crossings to the DataMovement bucket.
        let latency = self.latency + self.movement_time;
        if let Some(entry) = breakdown.iter_mut().find(|(n, _)| n == "DataMovement") {
            entry.1 += self.movement_time;
        } else if self.movement_time > 0.0 {
            breakdown.insert(0, ("DataMovement".to_owned(), self.movement_time));
        }
        // Parallelism: the accelerator has many arrays, but the CPU side
        // caps concurrent items at its core count (§3's bottleneck).
        let parallel = (self.parallel_items as f64).min(self.model.cpu.cores);
        CostReport {
            architecture: format!("Baseline (CPU + analog, {:?})", self.model.adc_kind),
            workload: std::mem::take(&mut self.workload),
            latency_s: latency,
            throughput_items_per_s: parallel / latency.max(1e-15),
            energy_per_item_j: self.energy,
            kernel_latency_s: breakdown,
        }
    }
}

impl darth_pum::eval::ArchModel for BaselineModel {
    /// `"baseline-sar"` / `"baseline-ramp"`.
    fn name(&self) -> String {
        format!("baseline-{}", self.adc_kind.slug())
    }

    fn label(&self) -> String {
        "Baseline".into()
    }

    fn accumulator(&self) -> Box<dyn CostAccumulator + '_> {
        Box::new(BaselineAccumulator::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_apps::aes::workload::{block_trace, AesVariant};

    #[test]
    fn accelerator_beats_cpu_on_the_mvm_kernels() {
        // The accelerator's win is on the matrix work itself; host-link
        // crossings eat part of it back (that is the paper's point).
        let baseline = BaselineModel::paper(AdcKind::Sar);
        let cpu = CpuModel::i7_13700();
        let op = KernelOp::Mvm {
            rows: 576,
            cols: 64,
            input_bits: 8,
            weight_bits: 8,
            batch: 256,
        };
        let (accel_compute, _, _) = baseline.price_mvm(&op);
        let (cpu_time, _) = cpu.price_op(&op);
        assert!(
            accel_compute < cpu_time,
            "accel {accel_compute} !< cpu {cpu_time}"
        );
    }

    #[test]
    fn aes_on_baseline_is_cpu_bound() {
        // §3/§7.1: three of four AES kernels stay on the CPU, so the
        // accelerator barely helps.
        let baseline = BaselineModel::paper(AdcKind::Sar);
        let report = baseline.price(&block_trace(AesVariant::Aes128));
        let total: f64 = report.kernel_latency_s.iter().map(|(_, t)| t).sum();
        let non_mvm: f64 = report
            .kernel_latency_s
            .iter()
            .filter(|(n, _)| n != "MixColumns")
            .map(|(_, t)| t)
            .sum();
        assert!(non_mvm / total > 0.4, "non-MVM share {}", non_mvm / total);
    }

    #[test]
    fn link_crossings_cost_time() {
        let baseline = BaselineModel::paper(AdcKind::Sar);
        let op = KernelOp::Mvm {
            rows: 64,
            cols: 64,
            input_bits: 8,
            weight_bits: 8,
            batch: 1,
        };
        let (_, with_link, _) = baseline.price_mvm(&op);
        let mut free_link = baseline;
        free_link.link_bw = 1e18;
        free_link.link_latency_s = 0.0;
        free_link.offload_batch = 1.0;
        let (_, without_link, _) = free_link.price_mvm(&op);
        assert!(with_link > without_link);
        assert!(without_link < 1e-12);
    }
}
