//! Comparison architecture models for the DARTH-PUM evaluation.
//!
//! Each model prices the same op streams the DARTH-PUM model prices —
//! every model is a streaming [`darth_pum::eval::CostAccumulator`]
//! (materialized [`darth_pum::trace::Trace`]s replay through the same
//! accumulators, bit-identically) — producing
//! [`darth_pum::trace::CostReport`]s whose ratios are Figures 13–18:
//!
//! * [`cpu`] — an analytical out-of-order CPU (the i7-13700-class host and
//!   the §3 Arm core), roofline-style over vector lanes and DRAM.
//! * [`analog_only`] — the paper's **Baseline**: an analog PUM accelerator
//!   for MVMs with every non-MVM kernel on the CPU, paying host↔accelerator
//!   movement at each domain crossing.
//! * [`digital_only`] — **DigitalPUM**: an iso-area RACER chip (OSCAR
//!   family, two active pipelines per cluster for thermals).
//! * [`app_accel`] — **AppAccel**: AES-NI, a ramp-ADC CNN accelerator with
//!   dedicated shift-and-add, and an ISAAC-style transformer accelerator
//!   with SFUs.
//! * [`gpu`] — an RTX-4090-class GPU model for Figure 18.
//! * [`naive_hybrid`] — the §3 motivation sweep (Figure 7): nine D/A array
//!   splits with none of DARTH-PUM's coordination hardware.

pub mod analog_only;
pub mod app_accel;
pub mod cpu;
pub mod digital_only;
pub mod gpu;
pub mod naive_hybrid;

pub use analog_only::BaselineModel;
pub use app_accel::AppAccelModel;
pub use cpu::CpuModel;
pub use digital_only::DigitalPumModel;
pub use gpu::GpuModel;
pub use naive_hybrid::NaiveHybridConfig;
