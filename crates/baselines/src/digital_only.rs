//! DigitalPUM: an iso-area RACER chip (§6).
//!
//! 5.3 GB of OSCAR-family digital PUM with one front end per eight
//! clusters, limited to two active pipelines per cluster by thermals.
//! Everything — including matrix multiplies — runs as bit-serial Boolean
//! macros, which is precisely the gap hybrid PUM closes on MVM kernels
//! (11.5× on MixColumns, §7.1).

use darth_digital::logic::LogicFamily;
use darth_digital::macros::MacroOp;
use darth_digital::BoolOp;
use darth_pum::eval::CostAccumulator;
use darth_pum::params::{area, power, HCTS_PER_FRONT_END, ISO_AREA_CM2};
use darth_pum::trace::{CostReport, KernelOp, Trace, TraceMeta, TraceSink, VectorKind};
use darth_reram::units::CLOCK_HZ;
use serde::{Deserialize, Serialize};

/// The RACER chip model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DigitalPumModel {
    /// Logic family (OSCAR for the evaluation; Ideal for Figure 7).
    pub family: LogicFamily,
    /// Pipelines per cluster.
    pub pipelines_per_cluster: usize,
    /// Active pipelines per cluster (thermal limit, §6).
    pub active_pipelines_per_cluster: usize,
    /// Pipeline depth (bit width).
    pub depth: u64,
    /// Elements per vector register.
    pub elements: u64,
}

impl DigitalPumModel {
    /// The §6 configuration.
    pub fn paper(family: LogicFamily) -> Self {
        DigitalPumModel {
            family,
            pipelines_per_cluster: 64,
            active_pipelines_per_cluster: 2,
            depth: 64,
            elements: 64,
        }
    }

    /// Iso-area cluster count: a cluster is a DCE-only tile plus its
    /// front-end share.
    pub fn cluster_count(&self) -> usize {
        let cluster_area = area::DCE_PIPELINE_CONTROL
            + area::DCE_IO_CTRL
            + area::DCE_DECODE_DRIVE
            + area::DCE_PIPELINE_SELECT
            + area::FRONT_END / HCTS_PER_FRONT_END as f64;
        (ISO_AREA_CM2 * 1e8 / cluster_area) as usize
    }

    /// Seconds, joules for one kernel op on one active pipeline.
    fn price_op(&self, op: &KernelOp) -> (f64, f64) {
        let energy_per_prim = self.family.energy_per_primitive_pj() * 1e-12;
        match *op {
            KernelOp::Mvm {
                rows,
                cols,
                input_bits,
                weight_bits,
                batch,
            } => {
                // Bit-serial multiply-accumulate: one Mul + one Add macro
                // per matrix row, per 64-wide column group, per input.
                let width = input_bits.max(weight_bits).max(1);
                let mul = MacroOp::Mul(width).cost(self.family, self.depth, self.elements);
                let add = MacroOp::Add.cost(self.family, self.depth, self.elements);
                let col_groups = cols.div_ceil(self.elements);
                let macro_count = rows * col_groups * batch;
                let cycles =
                    mul.pipelined_batch(macro_count).get() + add.pipelined_batch(macro_count).get();
                let prims = (mul.primitives + add.primitives) * macro_count;
                (cycles as f64 / CLOCK_HZ, prims as f64 * energy_per_prim)
            }
            KernelOp::Vector {
                kind,
                elements,
                bits,
                count,
            } => {
                let macro_op = match kind {
                    VectorKind::Bool => MacroOp::Bool(BoolOp::Xor),
                    VectorKind::Add => MacroOp::Add,
                    VectorKind::Mul => MacroOp::Mul(bits),
                    VectorKind::Shift => MacroOp::ShiftBits(1),
                    VectorKind::Compare => MacroOp::CmpLt,
                    VectorKind::Copy => MacroOp::CopyVr,
                };
                let cost = macro_op.cost(self.family, u64::from(bits).max(1), self.elements);
                let instances = elements.div_ceil(self.elements) * count;
                let cycles = if cost.barrier {
                    cost.latency().get() * instances
                } else {
                    cost.pipelined_batch(instances).get()
                };
                (
                    cycles as f64 / CLOCK_HZ,
                    (cost.primitives * instances) as f64 * energy_per_prim,
                )
            }
            KernelOp::TableLookup { elements, .. } => {
                let cost = MacroOp::ElementLoad.cost(self.family, self.depth, self.elements);
                let instances = elements.div_ceil(self.elements);
                let cycles = cost.latency().get() * instances;
                (
                    cycles as f64 / CLOCK_HZ,
                    power::PIPELINE_CTRL * 1e-3 * cycles as f64 / CLOCK_HZ,
                )
            }
            KernelOp::HostMove { bytes } | KernelOp::OnChipMove { bytes } => {
                let cycles = bytes.div_ceil(8);
                (cycles as f64 / CLOCK_HZ, 1e-12 * bytes as f64)
            }
            KernelOp::WeightUpdate { rows, cols, .. } => {
                // digital arrays rewrite at SLC speed: a row per cycle
                let cycles = rows * cols.div_ceil(self.elements);
                (cycles as f64 / CLOCK_HZ, 1e-12 * (rows * cols) as f64)
            }
        }
    }

    /// Prices a trace (streamed through a [`DigitalPumAccumulator`]).
    pub fn price(&self, trace: &Trace) -> CostReport {
        let mut acc = DigitalPumAccumulator::new(*self);
        trace.emit_to(&mut acc);
        acc.finish()
    }
}

/// The streaming accumulator behind [`DigitalPumModel::price`].
#[derive(Debug, Clone)]
pub struct DigitalPumAccumulator {
    model: DigitalPumModel,
    workload: String,
    parallel_items: u64,
    pipelines_per_item: u64,
    spread: f64,
    latency: f64,
    energy: f64,
    breakdown: Vec<(String, f64)>,
    // (name, seconds, joules): per-kernel subtotals; the thermal spread
    // divides the kernel total once, as the materialized loop did.
    current: Option<(String, f64, f64)>,
}

impl DigitalPumAccumulator {
    /// A fresh accumulator for one work item on `model`.
    pub fn new(model: DigitalPumModel) -> Self {
        DigitalPumAccumulator {
            model,
            workload: String::new(),
            parallel_items: u64::MAX,
            pipelines_per_item: 1,
            spread: 1.0,
            latency: 0.0,
            energy: 0.0,
            breakdown: Vec::new(),
            current: None,
        }
    }

    fn flush_kernel(&mut self) {
        if let Some((name, t, e)) = self.current.take() {
            let t = t / self.spread;
            self.breakdown.push((name, t));
            self.latency += t;
            self.energy += e;
        }
    }
}

impl TraceSink for DigitalPumAccumulator {
    fn begin_trace(&mut self, meta: &TraceMeta) {
        self.workload = meta.name.clone();
        self.parallel_items = meta.parallel_items;
        self.pipelines_per_item = meta.pipelines_per_item;
        // an item's work spreads across the pipelines it occupies, up to
        // the thermal active limit
        self.spread = (meta.pipelines_per_item.max(1) as f64)
            .min(self.model.active_pipelines_per_cluster as f64);
    }

    fn begin_kernel(&mut self, name: &str) {
        self.flush_kernel();
        self.current = Some((name.to_owned(), 0.0, 0.0));
    }

    fn op_run(&mut self, op: &KernelOp, repeat: u64) {
        let (dt, de) = self.model.price_op(op);
        let kernel = self.current.as_mut().expect("begin_kernel precedes ops");
        for _ in 0..repeat {
            kernel.1 += dt;
            kernel.2 += de;
        }
    }
}

impl CostAccumulator for DigitalPumAccumulator {
    fn finish(&mut self) -> CostReport {
        self.flush_kernel();
        let model = &self.model;
        let active = (model.cluster_count() * model.active_pipelines_per_cluster) as f64;
        let parallel = (active / self.pipelines_per_item as f64)
            .max(1.0)
            .min(self.parallel_items as f64);
        CostReport {
            architecture: format!("DigitalPUM ({})", model.family),
            workload: std::mem::take(&mut self.workload),
            latency_s: self.latency,
            throughput_items_per_s: parallel / self.latency.max(1e-15),
            energy_per_item_j: self.energy,
            kernel_latency_s: std::mem::take(&mut self.breakdown),
        }
    }
}

impl darth_pum::eval::ArchModel for DigitalPumModel {
    /// `"digitalpum-oscar"` / `"digitalpum-ideal"`.
    fn name(&self) -> String {
        format!("digitalpum-{}", format!("{}", self.family).to_lowercase())
    }

    fn label(&self) -> String {
        "DigitalPUM".into()
    }

    fn accumulator(&self) -> Box<dyn CostAccumulator + '_> {
        Box::new(DigitalPumAccumulator::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_apps::aes::workload::{block_trace, AesVariant};
    use darth_apps::cnn::{resnet::ResNet, workload::inference_trace};
    use darth_pum::model::DarthModel;

    #[test]
    fn cluster_count_is_iso_area() {
        let model = DigitalPumModel::paper(LogicFamily::Oscar);
        let clusters = model.cluster_count();
        assert!((1500..4000).contains(&clusters), "cluster count {clusters}");
    }

    #[test]
    fn ideal_family_is_faster() {
        let oscar = DigitalPumModel::paper(LogicFamily::Oscar);
        let ideal = DigitalPumModel::paper(LogicFamily::Ideal);
        let t = block_trace(AesVariant::Aes128);
        assert!(ideal.price(&t).latency_s < oscar.price(&t).latency_s);
    }

    #[test]
    fn darth_crushes_digital_on_mvm_heavy_work() {
        // §7.1: DARTH-PUM improves MixColumns 11.5x over DigitalPUM and
        // dominates on ResNet.
        let digital = DigitalPumModel::paper(LogicFamily::Oscar);
        let darth = DarthModel::paper(darth_analog::adc::AdcKind::Sar);
        let net = ResNet::resnet20(1).expect("builds");
        let trace = inference_trace(&net).expect("builds");
        let d = digital.price(&trace);
        let h = darth.price(&trace);
        assert!(
            h.latency_s * 3.0 < d.latency_s,
            "darth {} vs digital {}",
            h.latency_s,
            d.latency_s
        );
    }

    #[test]
    fn mvm_dominates_digital_aes_time() {
        let digital = DigitalPumModel::paper(LogicFamily::Oscar);
        let report = digital.price(&block_trace(AesVariant::Aes128));
        let mix = report
            .kernel_latency_s
            .iter()
            .find(|(n, _)| n == "MixColumns")
            .map(|(_, t)| *t)
            .expect("present");
        assert!(mix / report.latency_s > 0.5, "{}", mix / report.latency_s);
    }
}
