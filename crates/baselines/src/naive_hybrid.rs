//! The §3 motivation study: naive hybrid PUM (Figure 7).
//!
//! Nine configurations trade digital arrays for analog arrays with *none*
//! of DARTH-PUM's coordination hardware: partial products serialize
//! through write–shift–add (Figure 10a), the front end issues every
//! reduction µop, and nothing rate-matches the ADCs to the DCE write
//! ports. A pure digital chip (D) and an analog accelerator driven by a
//! 4 GHz 8-core Arm CPU (A) bracket the sweep.
//!
//! The model is a two-resource bound: AES blocks consume *digital
//! pipeline-cycles* (SubBytes, ShiftRows, AddRoundKey — plus MixColumns
//! itself on the pure-digital chip) and *analog array-cycles* (the
//! uncoordinated MixColumns MVMs); throughput is the binding resource.
//! The per-block work constants are calibrated against the functional
//! simulator's per-kernel costs and the §3 observations; the calibration
//! targets are recorded in `EXPERIMENTS.md`.

use darth_digital::logic::LogicFamily;
use serde::{Deserialize, Serialize};

/// Digital pipeline-cycles per AES block for the non-MixColumns kernels
/// (OSCAR family; batches of four blocks share each 64-element register).
const DIGITAL_WORK_OSCAR: f64 = 1_000.0;
/// Extra digital pipeline-cycles per block to run MixColumns as a GF(2)
/// XOR network on the DCE (pure-digital configuration).
const MIX_DIGITAL_WORK_OSCAR: f64 = 6_855.0;
/// Analog array-cycles per block for MixColumns on a naive hybrid:
/// 36 column MVMs whose landing, shifting and adding serialize against
/// the analog side (no shift units, no IIU, no rate matching).
const MIX_ANALOG_WORK_NAIVE: f64 = 55_300.0;
/// Ideal-logic-family scale factors (element-wise loads and barriers do
/// not speed up; Boolean-dominated work does).
const IDEAL_DIGITAL_FACTOR: f64 = 0.55;
const IDEAL_MIX_FACTOR: f64 = 0.45;
/// The analog+CPU configuration: per-block time is dominated by one
/// offload round trip per MixColumns round (host sync + transfer).
const CPU_OFFLOAD_ROUNDTRIP_S: f64 = 470e-9;
const CPU_CORES: f64 = 8.0;
const MVM_ROUNDS: f64 = 9.0;
/// Chip clock.
const FREQ: f64 = 1.0e9;
/// Arrays per digital pipeline.
const ARRAYS_PER_PIPELINE: f64 = 64.0;

/// One point of the Figure 7 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NaiveHybridConfig {
    /// Label (`"D"`, `"H-1"`, …, `"A"`).
    pub label: &'static str,
    /// Digital arrays.
    pub digital_arrays: u64,
    /// Analog arrays (0 for pure digital).
    pub analog_arrays: u64,
    /// Whether this is the analog+CPU bracket configuration.
    pub analog_plus_cpu: bool,
}

impl NaiveHybridConfig {
    /// The paper's Figure 7 x-axis: D, H-1..H-9, A.
    pub fn figure7_sweep() -> Vec<NaiveHybridConfig> {
        let h = |label, d, a| NaiveHybridConfig {
            label,
            digital_arrays: d,
            analog_arrays: a,
            analog_plus_cpu: false,
        };
        vec![
            NaiveHybridConfig {
                label: "D",
                digital_arrays: 832,
                analog_arrays: 0,
                analog_plus_cpu: false,
            },
            h("H-1", 768, 128),
            h("H-2", 700, 162),
            h("H-3", 640, 192),
            h("H-4", 512, 256),
            h("H-5", 375, 324),
            h("H-6", 256, 384),
            h("H-7", 128, 448),
            h("H-8", 64, 480),
            NaiveHybridConfig {
                label: "A",
                digital_arrays: 32,
                analog_arrays: 496,
                analog_plus_cpu: false,
            },
            NaiveHybridConfig {
                label: "A+CPU",
                digital_arrays: 0,
                analog_arrays: u64::MAX,
                analog_plus_cpu: true,
            },
        ]
    }

    /// The paper's H-9 point (the figure labels the last hybrid H-9; our
    /// sweep folds it into the `"A"` hybrid label above and keeps the
    /// CPU-driven configuration separate as `"A+CPU"`).
    pub fn h9() -> NaiveHybridConfig {
        NaiveHybridConfig {
            label: "H-9",
            digital_arrays: 32,
            analog_arrays: 496,
            analog_plus_cpu: false,
        }
    }

    /// AES-128 throughput in blocks/s for this configuration.
    pub fn aes_throughput(&self, family: LogicFamily) -> f64 {
        if self.analog_plus_cpu {
            // Analog area is free; every block pays nine offload round
            // trips, pipelined across the CPU cores.
            return CPU_CORES / (MVM_ROUNDS * CPU_OFFLOAD_ROUNDTRIP_S);
        }
        let (digital_factor, mix_factor) = match family {
            LogicFamily::Oscar => (1.0, 1.0),
            LogicFamily::Ideal => (IDEAL_DIGITAL_FACTOR, IDEAL_MIX_FACTOR),
        };
        let pipelines = self.digital_arrays as f64 / ARRAYS_PER_PIPELINE;
        if self.analog_arrays == 0 {
            let work = DIGITAL_WORK_OSCAR * digital_factor + MIX_DIGITAL_WORK_OSCAR * mix_factor;
            return pipelines * FREQ / work;
        }
        let digital_rate = pipelines * FREQ / (DIGITAL_WORK_OSCAR * digital_factor);
        let analog_rate = self.analog_arrays as f64 * FREQ / MIX_ANALOG_WORK_NAIVE;
        digital_rate.min(analog_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(family: LogicFamily) -> Vec<(&'static str, f64)> {
        NaiveHybridConfig::figure7_sweep()
            .into_iter()
            .map(|c| (c.label, c.aes_throughput(family)))
            .collect()
    }

    fn rate(points: &[(&str, f64)], label: &str) -> f64 {
        points
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, r)| *r)
            .expect("label present")
    }

    #[test]
    fn hybrid_peaks_at_h5() {
        // Figure 7: throughput rises to H-5, then falls as digital
        // pipelines run out.
        let points = sweep(LogicFamily::Oscar);
        let peak = points
            .iter()
            .filter(|(l, _)| l.starts_with('H'))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("has hybrids");
        assert_eq!(peak.0, "H-5", "{points:?}");
    }

    #[test]
    fn peak_hybrid_beats_digital_by_about_3_5x() {
        let points = sweep(LogicFamily::Oscar);
        let ratio = rate(&points, "H-5") / rate(&points, "D");
        assert!(
            (3.0..=4.1).contains(&ratio),
            "H-5/D = {ratio}, paper reports 3.54"
        );
    }

    #[test]
    fn analog_cpu_is_slightly_better_than_digital() {
        // §3: "analog PUM performs only 18% better than digital PUM".
        let points = sweep(LogicFamily::Oscar);
        let ratio = rate(&points, "A+CPU") / rate(&points, "D");
        assert!(
            (1.0..=1.6).contains(&ratio),
            "A/D = {ratio}, paper reports 1.18"
        );
    }

    #[test]
    fn ideal_family_doubles_pure_digital() {
        // §3: the ideal family gives digital PUM a 2.1x improvement.
        let d_oscar = NaiveHybridConfig::figure7_sweep()[0].aes_throughput(LogicFamily::Oscar);
        let d_ideal = NaiveHybridConfig::figure7_sweep()[0].aes_throughput(LogicFamily::Ideal);
        let ratio = d_ideal / d_oscar;
        assert!((1.8..=2.6).contains(&ratio), "ideal/oscar D = {ratio}");
    }

    #[test]
    fn ideal_family_barely_moves_the_best_hybrid() {
        // §3: "an ideal logic family increases throughput over OSCAR by
        // only 3.2%" at the hybrid peak.
        let sweep_o = sweep(LogicFamily::Oscar);
        let sweep_i = sweep(LogicFamily::Ideal);
        let ratio = rate(&sweep_i, "H-5") / rate(&sweep_o, "H-5");
        assert!(
            (1.0..=1.15).contains(&ratio),
            "ideal/oscar at H-5 = {ratio}, paper reports 1.032"
        );
    }

    #[test]
    fn most_hybrids_beat_both_endpoints() {
        // §3 observation 2.
        let points = sweep(LogicFamily::Oscar);
        let d = rate(&points, "D");
        let a = rate(&points, "A+CPU");
        let better = points
            .iter()
            .filter(|(l, r)| l.starts_with('H') && *r > d && *r > a)
            .count();
        assert!(better >= 4, "only {better} hybrids beat both endpoints");
    }
}
