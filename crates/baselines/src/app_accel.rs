//! AppAccel: the per-application accelerators of §6.
//!
//! * **AES**: Intel AES-NI — one round per instruction, fully pipelined
//!   across the host's cores.
//! * **ResNet-20**: a ReRAM CNN accelerator in the style of Xiao et al. —
//!   ramp ADCs with current-integrator shift-and-add and peripheral ALUs.
//!   Fast per inference, but the SFU area cuts iso-area parallelism
//!   (§7.1's explanation for DARTH-PUM closing to within 26.2%).
//! * **LLM encoder**: an ISAAC-style accelerator with SAR ADCs and a
//!   transformer SFU (shift, add, sqrt, ReLU, layernorm).

use darth_analog::adc::{Adc, AdcKind};
use darth_pum::params::{area, ISO_AREA_CM2};
use darth_pum::trace::{CostReport, KernelOp, Trace};
use serde::{Deserialize, Serialize};

/// Which accelerator to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppAccelKind {
    /// AES-NI on the host CPU.
    AesNi,
    /// Ramp-ADC CNN accelerator with current integrators.
    CnnAccelerator,
    /// ISAAC-style transformer accelerator with SFUs.
    LlmAccelerator,
}

/// An application-specific accelerator model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppAccelModel {
    /// The accelerator flavour.
    pub kind: AppAccelKind,
    /// ADC used by the analog variants.
    pub adc_kind: AdcKind,
}

impl AppAccelModel {
    /// AES-NI.
    pub fn aes_ni() -> Self {
        AppAccelModel {
            kind: AppAccelKind::AesNi,
            adc_kind: AdcKind::Sar,
        }
    }

    /// The CNN accelerator (ramp ADC per the paper).
    pub fn cnn(adc_kind: AdcKind) -> Self {
        AppAccelModel {
            kind: AppAccelKind::CnnAccelerator,
            adc_kind,
        }
    }

    /// The LLM accelerator (SAR ADC per the paper).
    pub fn llm(adc_kind: AdcKind) -> Self {
        AppAccelModel {
            kind: AppAccelKind::LlmAccelerator,
            adc_kind,
        }
    }

    /// Analog tile area including the dedicated SFU/shift-add periphery
    /// that DARTH-PUM's HCT avoids (§7.1).
    fn tile_area_um2(&self) -> f64 {
        let adc = match self.adc_kind {
            AdcKind::Sar => area::SAR_ADC * 2.0,
            AdcKind::Ramp => area::RAMP_ADC,
        };
        // input buffers + row periphery + ADC + integrator/shift-add
        // network + application SFUs (activation / softmax / layernorm)
        let sfu = match self.kind {
            AppAccelKind::AesNi => 0.0,
            AppAccelKind::CnnAccelerator => 180_000.0,
            AppAccelKind::LlmAccelerator => 160_000.0,
        };
        area::ACE_INPUT_BUFFERS + area::ACE_ROW_PERIPHERY + adc + area::SAMPLE_HOLD + sfu
    }

    /// Iso-area tile count.
    pub fn tile_count(&self) -> usize {
        (ISO_AREA_CM2 * 1e8 / self.tile_area_um2()) as usize
    }

    fn price_op(&self, op: &KernelOp) -> (f64, f64) {
        const FREQ: f64 = 1.0e9;
        match *op {
            KernelOp::Mvm {
                rows,
                cols,
                input_bits,
                weight_bits,
                batch,
            } => {
                let adc = Adc::new(self.adc_kind, 8, 1.0).expect("valid");
                let bpc = if weight_bits <= 1 { 1 } else { 2u8 };
                let slices = u64::from(weight_bits.div_ceil(bpc));
                let tiles = rows.div_ceil(64) * cols.div_ceil(64);
                let bits = u64::from(input_bits.max(1));
                let readout = adc.readout_cycles((64 * slices) as usize, None).get();
                // current integrators accumulate all input bits in analog,
                // so the ADC converts once per input vector — not once per
                // bit (the Xiao-style design the paper cites)
                let per_input = bits + readout;
                let cycles = per_input + (batch.saturating_sub(1)) * per_input;
                let conversions = (64 * slices * bits * tiles) as f64 * batch as f64;
                let adc_energy = match self.adc_kind {
                    AdcKind::Sar => 1.5e-12 * conversions,
                    AdcKind::Ramp => 1.2e-12 * 256.0 * (bits * tiles * batch) as f64,
                };
                (cycles as f64 / FREQ, adc_energy)
            }
            KernelOp::Vector {
                elements, count, ..
            } => {
                // dedicated SFU datapaths; the transformer accelerator's
                // softmax/layernorm SFUs are much wider (its whole point)
                let lanes = match self.kind {
                    AppAccelKind::CnnAccelerator => 256.0,
                    AppAccelKind::LlmAccelerator => 2048.0,
                    AppAccelKind::AesNi => 64.0,
                };
                let ops = (elements * count) as f64;
                let time = ops / lanes / FREQ;
                // SFU ALU energy ~0.5 pJ/op
                (time, 0.5e-12 * ops)
            }
            KernelOp::TableLookup { elements, .. } => {
                let time = elements as f64 / 16.0 / FREQ;
                (time, 1e-12 * elements as f64)
            }
            KernelOp::HostMove { bytes } | KernelOp::OnChipMove { bytes } => {
                let time = bytes as f64 / 32.0e9;
                (time, 10e-12 * bytes as f64)
            }
            KernelOp::WeightUpdate { rows, .. } => {
                let cycles = rows * 1000;
                (cycles as f64 / FREQ, 0.7e-12 * cycles as f64)
            }
        }
    }

    /// Prices one trace.
    pub fn price(&self, trace: &Trace) -> CostReport {
        match self.kind {
            AppAccelKind::AesNi => self.price_aes_ni(trace),
            _ => self.price_analog(trace),
        }
    }

    fn price_aes_ni(&self, trace: &Trace) -> CostReport {
        // Single-stream AES-NI through a library interface (the paper
        // measures OpenSSL): AESENC has a 4-cycle latency with
        // round-to-round dependence, plus per-call overhead (load, key
        // whitening, store, EVP dispatch). Modelled as one accelerator
        // unit, matching the paper's AppAccel framing.
        let rounds = if trace.name.contains("256") {
            14.0
        } else if trace.name.contains("192") {
            12.0
        } else {
            10.0
        };
        let freq = 4.0e9;
        let units = 1.0;
        let overhead_cycles = 236.0;
        let latency = (rounds * 4.0 + overhead_cycles) / freq;
        let throughput = units / latency;
        let energy = 2.0e-9; // ~2 nJ/block at ~15 W across the AES units
        CostReport {
            architecture: "AppAccel (AES-NI)".to_owned(),
            workload: trace.name.clone(),
            latency_s: latency,
            throughput_items_per_s: throughput,
            energy_per_item_j: energy,
            kernel_latency_s: vec![("AES-NI".to_owned(), latency)],
        }
    }

    fn price_analog(&self, trace: &Trace) -> CostReport {
        let mut latency = 0.0;
        let mut energy = 0.0;
        let mut breakdown = Vec::new();
        let mut peak_arrays: f64 = 1.0;
        for kernel in &trace.kernels {
            let mut t_k = 0.0;
            for op in &kernel.ops {
                let (t, e) = self.price_op(op);
                t_k += t;
                energy += e;
                if let KernelOp::Mvm {
                    rows,
                    cols,
                    weight_bits,
                    ..
                } = *op
                {
                    let slices = f64::from(weight_bits.div_ceil(2).max(1));
                    peak_arrays =
                        peak_arrays.max((rows.div_ceil(64) * cols.div_ceil(64)) as f64 * slices);
                }
            }
            breakdown.push((kernel.name.clone(), t_k));
            latency += t_k;
        }
        // Iso-area parallelism: tiles hold 64 arrays each, like an ACE.
        let tiles_per_item = (peak_arrays / 64.0).ceil().max(1.0);
        let parallel = ((self.tile_count() as f64) / tiles_per_item)
            .max(1.0)
            .min(trace.parallel_items as f64);
        let label = match self.kind {
            AppAccelKind::CnnAccelerator => "AppAccel (CNN)",
            AppAccelKind::LlmAccelerator => "AppAccel (LLM)",
            AppAccelKind::AesNi => unreachable!(),
        };
        CostReport {
            architecture: label.to_owned(),
            workload: trace.name.clone(),
            latency_s: latency,
            throughput_items_per_s: parallel / latency.max(1e-15),
            energy_per_item_j: energy,
            kernel_latency_s: breakdown,
        }
    }
}

impl darth_pum::eval::ArchModel for AppAccelModel {
    /// `"appaccel-aesni"` / `"appaccel-cnn-ramp"` / `"appaccel-llm-sar"`.
    fn name(&self) -> String {
        let adc = self.adc_kind.slug();
        match self.kind {
            AppAccelKind::AesNi => "appaccel-aesni".into(),
            AppAccelKind::CnnAccelerator => format!("appaccel-cnn-{adc}"),
            AppAccelKind::LlmAccelerator => format!("appaccel-llm-{adc}"),
        }
    }

    fn label(&self) -> String {
        "AppAccel".into()
    }

    fn price(&self, trace: &Trace) -> CostReport {
        AppAccelModel::price(self, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_apps::aes::workload::{block_trace, AesVariant};
    use darth_apps::cnn::{resnet::ResNet, workload::inference_trace};
    use darth_apps::llm::encoder::EncoderConfig;
    use darth_apps::llm::workload::encoder_trace;

    #[test]
    fn aes_ni_is_very_fast_per_block() {
        let accel = AppAccelModel::aes_ni();
        let report = accel.price(&block_trace(AesVariant::Aes128));
        assert!(report.latency_s < 100e-9);
        assert!(report.throughput_items_per_s > 1e7);
    }

    #[test]
    fn sfu_area_reduces_tile_count() {
        let cnn = AppAccelModel::cnn(AdcKind::Ramp);
        let llm = AppAccelModel::llm(AdcKind::Sar);
        assert!(llm.tile_count() < cnn.tile_count() * 2);
        // both fit far fewer analog tiles than DARTH fits HCTs... per
        // analog area; the point is the SFU overhead exists.
        let no_sfu = AppAccelModel {
            kind: AppAccelKind::CnnAccelerator,
            adc_kind: AdcKind::Ramp,
        }
        .tile_area_um2()
            - 180_000.0;
        assert!(cnn.tile_area_um2() > 2.0 * no_sfu);
    }

    #[test]
    fn cnn_accel_latency_beats_darth_latency() {
        // §7.1: AppAccel's dedicated SFUs give better per-inference
        // latency; DARTH-PUM recovers on iso-area throughput.
        let accel = AppAccelModel::cnn(AdcKind::Ramp);
        let darth = darth_pum::model::DarthModel::paper(AdcKind::Sar);
        let net = ResNet::resnet20(1).expect("builds");
        let trace = inference_trace(&net).expect("builds");
        let a = accel.price(&trace);
        let d = darth.price(&trace);
        assert!(a.latency_s < d.latency_s);
    }

    #[test]
    fn llm_accel_prices_encoder() {
        let accel = AppAccelModel::llm(AdcKind::Sar);
        let report = accel.price(&encoder_trace(&EncoderConfig::bert_base()));
        assert!(report.latency_s > 0.0 && report.latency_s.is_finite());
        assert!(report.energy_per_item_j > 0.0);
    }
}
