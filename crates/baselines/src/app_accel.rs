//! AppAccel: the per-application accelerators of §6.
//!
//! * **AES**: Intel AES-NI — one round per instruction, fully pipelined
//!   across the host's cores.
//! * **ResNet-20**: a ReRAM CNN accelerator in the style of Xiao et al. —
//!   ramp ADCs with current-integrator shift-and-add and peripheral ALUs.
//!   Fast per inference, but the SFU area cuts iso-area parallelism
//!   (§7.1's explanation for DARTH-PUM closing to within 26.2%).
//! * **LLM encoder**: an ISAAC-style accelerator with SAR ADCs and a
//!   transformer SFU (shift, add, sqrt, ReLU, layernorm).

use darth_analog::adc::{Adc, AdcKind};
use darth_pum::eval::CostAccumulator;
use darth_pum::params::{area, ISO_AREA_CM2};
use darth_pum::trace::{CostReport, KernelOp, Trace, TraceMeta, TraceSink};
use serde::{Deserialize, Serialize};

/// Which accelerator to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppAccelKind {
    /// AES-NI on the host CPU.
    AesNi,
    /// Ramp-ADC CNN accelerator with current integrators.
    CnnAccelerator,
    /// ISAAC-style transformer accelerator with SFUs.
    LlmAccelerator,
}

/// An application-specific accelerator model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppAccelModel {
    /// The accelerator flavour.
    pub kind: AppAccelKind,
    /// ADC used by the analog variants.
    pub adc_kind: AdcKind,
}

impl AppAccelModel {
    /// AES-NI.
    pub fn aes_ni() -> Self {
        AppAccelModel {
            kind: AppAccelKind::AesNi,
            adc_kind: AdcKind::Sar,
        }
    }

    /// The CNN accelerator (ramp ADC per the paper).
    pub fn cnn(adc_kind: AdcKind) -> Self {
        AppAccelModel {
            kind: AppAccelKind::CnnAccelerator,
            adc_kind,
        }
    }

    /// The LLM accelerator (SAR ADC per the paper).
    pub fn llm(adc_kind: AdcKind) -> Self {
        AppAccelModel {
            kind: AppAccelKind::LlmAccelerator,
            adc_kind,
        }
    }

    /// Analog tile area including the dedicated SFU/shift-add periphery
    /// that DARTH-PUM's HCT avoids (§7.1).
    fn tile_area_um2(&self) -> f64 {
        let adc = match self.adc_kind {
            AdcKind::Sar => area::SAR_ADC * 2.0,
            AdcKind::Ramp => area::RAMP_ADC,
        };
        // input buffers + row periphery + ADC + integrator/shift-add
        // network + application SFUs (activation / softmax / layernorm)
        let sfu = match self.kind {
            AppAccelKind::AesNi => 0.0,
            AppAccelKind::CnnAccelerator => 180_000.0,
            AppAccelKind::LlmAccelerator => 160_000.0,
        };
        area::ACE_INPUT_BUFFERS + area::ACE_ROW_PERIPHERY + adc + area::SAMPLE_HOLD + sfu
    }

    /// Iso-area tile count.
    pub fn tile_count(&self) -> usize {
        (ISO_AREA_CM2 * 1e8 / self.tile_area_um2()) as usize
    }

    fn price_op(&self, op: &KernelOp) -> (f64, f64) {
        const FREQ: f64 = 1.0e9;
        match *op {
            KernelOp::Mvm {
                rows,
                cols,
                input_bits,
                weight_bits,
                batch,
            } => {
                let adc = Adc::new(self.adc_kind, 8, 1.0).expect("valid");
                let bpc = if weight_bits <= 1 { 1 } else { 2u8 };
                let slices = u64::from(weight_bits.div_ceil(bpc));
                let tiles = rows.div_ceil(64) * cols.div_ceil(64);
                let bits = u64::from(input_bits.max(1));
                let readout = adc.readout_cycles((64 * slices) as usize, None).get();
                // current integrators accumulate all input bits in analog,
                // so the ADC converts once per input vector — not once per
                // bit (the Xiao-style design the paper cites)
                let per_input = bits + readout;
                let cycles = per_input + (batch.saturating_sub(1)) * per_input;
                let conversions = (64 * slices * bits * tiles) as f64 * batch as f64;
                let adc_energy = match self.adc_kind {
                    AdcKind::Sar => 1.5e-12 * conversions,
                    AdcKind::Ramp => 1.2e-12 * 256.0 * (bits * tiles * batch) as f64,
                };
                (cycles as f64 / FREQ, adc_energy)
            }
            KernelOp::Vector {
                elements, count, ..
            } => {
                // dedicated SFU datapaths; the transformer accelerator's
                // softmax/layernorm SFUs are much wider (its whole point)
                let lanes = match self.kind {
                    AppAccelKind::CnnAccelerator => 256.0,
                    AppAccelKind::LlmAccelerator => 2048.0,
                    AppAccelKind::AesNi => 64.0,
                };
                let ops = (elements * count) as f64;
                let time = ops / lanes / FREQ;
                // SFU ALU energy ~0.5 pJ/op
                (time, 0.5e-12 * ops)
            }
            KernelOp::TableLookup { elements, .. } => {
                let time = elements as f64 / 16.0 / FREQ;
                (time, 1e-12 * elements as f64)
            }
            KernelOp::HostMove { bytes } | KernelOp::OnChipMove { bytes } => {
                let time = bytes as f64 / 32.0e9;
                (time, 10e-12 * bytes as f64)
            }
            KernelOp::WeightUpdate { rows, .. } => {
                let cycles = rows * 1000;
                (cycles as f64 / FREQ, 0.7e-12 * cycles as f64)
            }
        }
    }

    /// Prices one trace (streamed through an [`AppAccelAccumulator`]).
    pub fn price(&self, trace: &Trace) -> CostReport {
        let mut acc = AppAccelAccumulator::new(*self);
        trace.emit_to(&mut acc);
        acc.finish()
    }
}

/// The streaming accumulator behind [`AppAccelModel::price`].
///
/// The AES-NI flavour prices from the workload name alone (one
/// instruction per round, §6), so its op events are ignored; the analog
/// flavours fold per-op costs and track the peak MVM array footprint for
/// the iso-area parallelism cap.
#[derive(Debug, Clone)]
pub struct AppAccelAccumulator {
    model: AppAccelModel,
    workload: String,
    parallel_items: u64,
    latency: f64,
    energy: f64,
    peak_arrays: f64,
    // AES-NI prices per block; host moves count the blocks in the
    // stream (one 32-byte in/out move per block), so bulk scenarios
    // scale instead of being priced as a single block.
    host_moves: u64,
    breakdown: Vec<(String, f64)>,
    current: Option<(String, f64)>,
}

impl AppAccelAccumulator {
    /// A fresh accumulator for one work item on `model`.
    pub fn new(model: AppAccelModel) -> Self {
        AppAccelAccumulator {
            model,
            workload: String::new(),
            parallel_items: u64::MAX,
            latency: 0.0,
            energy: 0.0,
            peak_arrays: 1.0,
            host_moves: 0,
            breakdown: Vec::new(),
            current: None,
        }
    }

    fn flush_kernel(&mut self) {
        if let Some((name, t_k)) = self.current.take() {
            self.breakdown.push((name, t_k));
            self.latency += t_k;
        }
    }

    fn finish_aes_ni(&mut self) -> CostReport {
        // Single-stream AES-NI through a library interface (the paper
        // measures OpenSSL): AESENC has a 4-cycle latency with
        // round-to-round dependence, plus per-call overhead (load, key
        // whitening, store, EVP dispatch). Modelled as one accelerator
        // unit, matching the paper's AppAccel framing.
        // Key size by name *prefix* — a substring match would collide
        // with the block counts bulk scenarios embed in their names
        // (`aes-128-bulk256` is 10-round AES, not AES-256).
        let rounds = if self.workload.starts_with("aes-256") {
            14.0
        } else if self.workload.starts_with("aes-192") {
            12.0
        } else {
            10.0
        };
        let freq = 4.0e9;
        let units = 1.0;
        let overhead_cycles = 236.0;
        // One block per host move; the paper scenarios stream exactly
        // one block per item (`blocks == 1.0`, leaving their pricing
        // untouched), bulk scenarios scale linearly.
        let blocks = self.host_moves.max(1) as f64;
        let latency = (rounds * 4.0 + overhead_cycles) / freq * blocks;
        let throughput = units / latency;
        let energy = 2.0e-9 * blocks; // ~2 nJ/block at ~15 W across the AES units
        CostReport {
            architecture: "AppAccel (AES-NI)".to_owned(),
            workload: std::mem::take(&mut self.workload),
            latency_s: latency,
            throughput_items_per_s: throughput,
            energy_per_item_j: energy,
            kernel_latency_s: vec![("AES-NI".to_owned(), latency)],
        }
    }

    fn finish_analog(&mut self) -> CostReport {
        self.flush_kernel();
        // Iso-area parallelism: tiles hold 64 arrays each, like an ACE.
        let tiles_per_item = (self.peak_arrays / 64.0).ceil().max(1.0);
        let parallel = ((self.model.tile_count() as f64) / tiles_per_item)
            .max(1.0)
            .min(self.parallel_items as f64);
        let label = match self.model.kind {
            AppAccelKind::CnnAccelerator => "AppAccel (CNN)",
            AppAccelKind::LlmAccelerator => "AppAccel (LLM)",
            AppAccelKind::AesNi => unreachable!(),
        };
        CostReport {
            architecture: label.to_owned(),
            workload: std::mem::take(&mut self.workload),
            latency_s: self.latency,
            throughput_items_per_s: parallel / self.latency.max(1e-15),
            energy_per_item_j: self.energy,
            kernel_latency_s: std::mem::take(&mut self.breakdown),
        }
    }
}

impl TraceSink for AppAccelAccumulator {
    fn begin_trace(&mut self, meta: &TraceMeta) {
        self.workload = meta.name.clone();
        self.parallel_items = meta.parallel_items;
    }

    fn begin_kernel(&mut self, name: &str) {
        if self.model.kind == AppAccelKind::AesNi {
            return;
        }
        self.flush_kernel();
        self.current = Some((name.to_owned(), 0.0));
    }

    fn op_run(&mut self, op: &KernelOp, repeat: u64) {
        if self.model.kind == AppAccelKind::AesNi {
            if matches!(op, KernelOp::HostMove { .. }) {
                self.host_moves = self.host_moves.saturating_add(repeat);
            }
            return;
        }
        let (t, e) = self.model.price_op(op);
        let kernel = self.current.as_mut().expect("begin_kernel precedes ops");
        for _ in 0..repeat {
            kernel.1 += t;
            self.energy += e;
        }
        if let KernelOp::Mvm {
            rows,
            cols,
            weight_bits,
            ..
        } = *op
        {
            let slices = f64::from(weight_bits.div_ceil(2).max(1));
            self.peak_arrays = self
                .peak_arrays
                .max((rows.div_ceil(64) * cols.div_ceil(64)) as f64 * slices);
        }
    }
}

impl CostAccumulator for AppAccelAccumulator {
    fn finish(&mut self) -> CostReport {
        match self.model.kind {
            AppAccelKind::AesNi => self.finish_aes_ni(),
            _ => self.finish_analog(),
        }
    }
}

impl darth_pum::eval::ArchModel for AppAccelModel {
    /// `"appaccel-aesni"` / `"appaccel-cnn-ramp"` / `"appaccel-llm-sar"`.
    fn name(&self) -> String {
        let adc = self.adc_kind.slug();
        match self.kind {
            AppAccelKind::AesNi => "appaccel-aesni".into(),
            AppAccelKind::CnnAccelerator => format!("appaccel-cnn-{adc}"),
            AppAccelKind::LlmAccelerator => format!("appaccel-llm-{adc}"),
        }
    }

    fn label(&self) -> String {
        "AppAccel".into()
    }

    fn accumulator(&self) -> Box<dyn CostAccumulator + '_> {
        Box::new(AppAccelAccumulator::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_apps::aes::workload::{block_trace, AesVariant};
    use darth_apps::cnn::{resnet::ResNet, workload::inference_trace};
    use darth_apps::llm::encoder::EncoderConfig;
    use darth_apps::llm::workload::encoder_trace;

    #[test]
    fn aes_ni_is_very_fast_per_block() {
        let accel = AppAccelModel::aes_ni();
        let report = accel.price(&block_trace(AesVariant::Aes128));
        assert!(report.latency_s < 100e-9);
        assert!(report.throughput_items_per_s > 1e7);
    }

    fn price_bulk(accel: &AppAccelModel, variant: AesVariant, blocks: u64) -> CostReport {
        use darth_apps::aes::workload::BulkAesWorkload;
        use darth_pum::eval::{ArchModel, Workload};
        let mut acc = ArchModel::accumulator(accel);
        BulkAesWorkload { variant, blocks }.emit(&mut *acc);
        acc.finish()
    }

    #[test]
    fn aes_ni_round_count_ignores_block_count_suffixes() {
        // "aes-128-bulk256" must price as 10-round AES-128 — the block
        // count in the name is not a key size.
        let accel = AppAccelModel::aes_ni();
        let one = accel.price(&block_trace(AesVariant::Aes128));
        let bulk256 = price_bulk(&accel, AesVariant::Aes128, 256);
        assert!((bulk256.latency_s / one.latency_s - 256.0).abs() < 1e-9);
        // And a real AES-256 bulk stream still prices at 14 rounds.
        let one_256 = accel.price(&block_trace(AesVariant::Aes256));
        let bulk_aes256 = price_bulk(&accel, AesVariant::Aes256, 192);
        assert!((bulk_aes256.latency_s / one_256.latency_s - 192.0).abs() < 1e-9);
    }

    #[test]
    fn aes_ni_scales_with_streamed_block_count() {
        let accel = AppAccelModel::aes_ni();
        let one = accel.price(&block_trace(AesVariant::Aes128));
        let bulk_report = price_bulk(&accel, AesVariant::Aes128, 1000);
        assert!((bulk_report.latency_s / one.latency_s - 1000.0).abs() < 1e-9);
        assert!((bulk_report.energy_per_item_j / one.energy_per_item_j - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn sfu_area_reduces_tile_count() {
        let cnn = AppAccelModel::cnn(AdcKind::Ramp);
        let llm = AppAccelModel::llm(AdcKind::Sar);
        assert!(llm.tile_count() < cnn.tile_count() * 2);
        // both fit far fewer analog tiles than DARTH fits HCTs... per
        // analog area; the point is the SFU overhead exists.
        let no_sfu = AppAccelModel {
            kind: AppAccelKind::CnnAccelerator,
            adc_kind: AdcKind::Ramp,
        }
        .tile_area_um2()
            - 180_000.0;
        assert!(cnn.tile_area_um2() > 2.0 * no_sfu);
    }

    #[test]
    fn cnn_accel_latency_beats_darth_latency() {
        // §7.1: AppAccel's dedicated SFUs give better per-inference
        // latency; DARTH-PUM recovers on iso-area throughput.
        let accel = AppAccelModel::cnn(AdcKind::Ramp);
        let darth = darth_pum::model::DarthModel::paper(AdcKind::Sar);
        let net = ResNet::resnet20(1).expect("builds");
        let trace = inference_trace(&net).expect("builds");
        let a = accel.price(&trace);
        let d = darth.price(&trace);
        assert!(a.latency_s < d.latency_s);
    }

    #[test]
    fn llm_accel_prices_encoder() {
        let accel = AppAccelModel::llm(AdcKind::Sar);
        let report = accel.price(&encoder_trace(&EncoderConfig::bert_base()));
        assert!(report.latency_s > 0.0 && report.latency_s.is_finite());
        assert!(report.energy_per_item_j > 0.0);
    }
}
