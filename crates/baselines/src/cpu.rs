//! An analytical CPU model.
//!
//! Roofline-style: each kernel op costs the larger of its compute time
//! (vector lanes × cores × IPC) and its memory time (bytes over DRAM
//! bandwidth), with energy from sustained package power plus per-byte DRAM
//! energy. This reproduces the §3 observation that the non-MVM AES steps —
//! gathers and byte shuffles with little vector parallelism — dominate CPU
//! execution even before data-movement overheads.

use darth_pum::eval::CostAccumulator;
use darth_pum::trace::{CostReport, KernelOp, Trace, TraceMeta, TraceSink, VectorKind};

/// CPU parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Model label.
    pub name: &'static str,
    /// Clock in Hz.
    pub freq_hz: f64,
    /// Cores.
    pub cores: f64,
    /// SIMD width in bytes (256-bit = 32).
    pub vector_bytes: f64,
    /// Vector operations issued per core per cycle.
    pub vector_ipc: f64,
    /// Scalar/gather operations per core per cycle (table lookups).
    pub gather_ipc: f64,
    /// DRAM bandwidth in bytes/s.
    pub dram_bw: f64,
    /// DRAM energy per byte in joules.
    pub dram_energy_per_byte: f64,
    /// Package power in watts while active.
    pub package_watts: f64,
}

impl CpuModel {
    /// The evaluation host: an Intel i7-13700-class part (§6).
    pub fn i7_13700() -> Self {
        CpuModel {
            name: "i7-13700",
            freq_hz: 4.0e9,
            cores: 16.0,
            vector_bytes: 32.0,
            vector_ipc: 2.0,
            gather_ipc: 1.0,
            dram_bw: 70.0e9,
            dram_energy_per_byte: 20e-12,
            package_watts: 150.0,
        }
    }

    /// The §3 motivation CPU: a 4 GHz 8-core Arm with 256-bit vectors.
    pub fn arm_8core() -> Self {
        CpuModel {
            name: "arm-8core",
            freq_hz: 4.0e9,
            cores: 8.0,
            vector_bytes: 32.0,
            vector_ipc: 1.0,
            gather_ipc: 0.5,
            dram_bw: 50.0e9,
            dram_energy_per_byte: 20e-12,
            package_watts: 60.0,
        }
    }

    /// Seconds and joules for one kernel op on this CPU.
    pub fn price_op(&self, op: &KernelOp) -> (f64, f64) {
        match *op {
            KernelOp::Mvm {
                rows,
                cols,
                batch,
                input_bits,
                weight_bits,
                ..
            } => {
                if weight_bits <= 1 && input_bits <= 1 {
                    // A GF(2) linear map (AES MixColumns): CPUs run this
                    // as a short XOR/shift network, not a MAC loop.
                    let ops = (cols * batch) as f64 / self.vector_bytes;
                    let time = ops.max(1.0) / self.vector_ipc / self.freq_hz;
                    return (time, self.package_watts / self.cores * time);
                }
                // 8-bit MACs through the vector units; wider operands
                // scale lanes down.
                let width = f64::from(input_bits.max(weight_bits).max(8)) / 8.0;
                // Latency is single-core (items parallelise across cores
                // at the throughput level).
                let macs = (rows * cols * batch) as f64;
                let macs_per_cycle = self.vector_ipc * (self.vector_bytes / width);
                let compute = macs / macs_per_cycle / self.freq_hz;
                let bytes = (rows * cols) as f64 * width + (rows + cols) as f64 * batch as f64;
                let memory = bytes / self.dram_bw;
                let time = compute.max(memory);
                (
                    time,
                    self.package_watts / self.cores * time + self.dram_energy_per_byte * bytes,
                )
            }
            KernelOp::Vector {
                kind,
                elements,
                bits,
                count,
            } => {
                let width = f64::from(bits.max(8)) / 8.0;
                let lanes = (self.vector_bytes / width).max(1.0);
                let ipc = match kind {
                    // multiplies halve throughput; the rest issue full rate
                    VectorKind::Mul => self.vector_ipc / 2.0,
                    _ => self.vector_ipc,
                };
                let ops = (elements * count) as f64;
                let compute = ops / (ipc * lanes) / self.freq_hz;
                // register/cache-resident working sets skip DRAM; only
                // large sweeps pay memory bandwidth
                let working_set = elements as f64 * width;
                let (memory, dram_bytes) = if working_set > 65_536.0 {
                    let bytes = ops * width * 2.0;
                    (bytes / self.dram_bw, bytes)
                } else {
                    (0.0, 0.0)
                };
                let time = compute.max(memory);
                (
                    time,
                    self.package_watts / self.cores * time + self.dram_energy_per_byte * dram_bytes,
                )
            }
            KernelOp::TableLookup { elements, .. } => {
                // gathers serialize in one core's load units
                let time = elements as f64 / self.gather_ipc / self.freq_hz;
                let bytes = elements as f64 * 2.0;
                (
                    time,
                    self.package_watts / self.cores * time + self.dram_energy_per_byte * bytes,
                )
            }
            KernelOp::HostMove { bytes } | KernelOp::OnChipMove { bytes } => {
                let time = bytes as f64 / self.dram_bw;
                (
                    time,
                    self.package_watts * 0.2 * time + self.dram_energy_per_byte * bytes as f64,
                )
            }
            KernelOp::WeightUpdate { rows, cols, .. } => {
                // a plain memory write on a CPU
                let bytes = (rows * cols) as f64;
                let time = bytes / self.dram_bw;
                (time, self.dram_energy_per_byte * bytes)
            }
        }
    }

    /// Prices a whole trace with every op on the CPU (streamed through a
    /// [`CpuAccumulator`]).
    pub fn price(&self, trace: &Trace) -> CostReport {
        let mut acc = CpuAccumulator::new(*self);
        trace.emit_to(&mut acc);
        acc.finish()
    }
}

/// The streaming accumulator behind [`CpuModel::price`].
#[derive(Debug, Clone)]
pub struct CpuAccumulator {
    model: CpuModel,
    workload: String,
    parallel_items: u64,
    latency: f64,
    energy: f64,
    breakdown: Vec<(String, f64)>,
    // (name, seconds, joules): per-kernel subtotals, folded into the
    // trace totals only at kernel end so a kernel's rounding does not
    // depend on what preceded it.
    current: Option<(String, f64, f64)>,
}

impl CpuAccumulator {
    /// A fresh accumulator for one work item on `model`.
    pub fn new(model: CpuModel) -> Self {
        CpuAccumulator {
            model,
            workload: String::new(),
            parallel_items: u64::MAX,
            latency: 0.0,
            energy: 0.0,
            breakdown: Vec::new(),
            current: None,
        }
    }

    fn flush_kernel(&mut self) {
        if let Some((name, t, e)) = self.current.take() {
            self.breakdown.push((name, t));
            self.latency += t;
            self.energy += e;
        }
    }
}

impl TraceSink for CpuAccumulator {
    fn begin_trace(&mut self, meta: &TraceMeta) {
        self.workload = meta.name.clone();
        self.parallel_items = meta.parallel_items;
    }

    fn begin_kernel(&mut self, name: &str) {
        self.flush_kernel();
        self.current = Some((name.to_owned(), 0.0, 0.0));
    }

    fn op_run(&mut self, op: &KernelOp, repeat: u64) {
        let (dt, de) = self.model.price_op(op);
        let kernel = self.current.as_mut().expect("begin_kernel precedes ops");
        for _ in 0..repeat {
            kernel.1 += dt;
            kernel.2 += de;
        }
    }
}

impl CostAccumulator for CpuAccumulator {
    fn finish(&mut self) -> CostReport {
        self.flush_kernel();
        // the CPU batches items up to its core count
        let parallel = (self.parallel_items as f64).min(self.model.cores);
        CostReport {
            architecture: format!("CPU ({})", self.model.name),
            workload: std::mem::take(&mut self.workload),
            latency_s: self.latency,
            throughput_items_per_s: parallel / self.latency.max(1e-15),
            energy_per_item_j: self.energy,
            kernel_latency_s: std::mem::take(&mut self.breakdown),
        }
    }
}

impl darth_pum::eval::ArchModel for CpuModel {
    /// `"cpu-i7-13700"` / `"cpu-arm-8core"`.
    fn name(&self) -> String {
        format!("cpu-{}", self.name.to_lowercase())
    }

    fn label(&self) -> String {
        format!("CPU ({})", self.name)
    }

    fn accumulator(&self) -> Box<dyn CostAccumulator + '_> {
        Box::new(CpuAccumulator::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_apps::aes::workload::{block_trace, AesVariant};

    #[test]
    fn aes_cpu_latency_is_plausible() {
        // A table-based software AES block is some tens to thousands of ns.
        let cpu = CpuModel::i7_13700();
        let report = cpu.price(&block_trace(AesVariant::Aes128));
        assert!(report.latency_s > 1e-9, "{}", report.latency_s);
        assert!(report.latency_s < 1e-4, "{}", report.latency_s);
        assert!(report.energy_per_item_j > 0.0);
    }

    #[test]
    fn non_mvm_dominates_aes_on_cpu() {
        // §3: SubBytes/ShiftRows/AddRoundKey consume the majority of CPU
        // execution time.
        let cpu = CpuModel::arm_8core();
        let report = cpu.price(&block_trace(AesVariant::Aes128));
        let total: f64 = report.kernel_latency_s.iter().map(|(_, t)| t).sum();
        let mix = report
            .kernel_latency_s
            .iter()
            .find(|(n, _)| n == "MixColumns")
            .map(|(_, t)| *t)
            .expect("kernel present");
        assert!(
            mix / total < 0.6,
            "MixColumns fraction {} should not dominate",
            mix / total
        );
    }

    #[test]
    fn bigger_cpu_is_faster() {
        let big = CpuModel::i7_13700();
        let small = CpuModel::arm_8core();
        let t = block_trace(AesVariant::Aes128);
        assert!(big.price(&t).latency_s < small.price(&t).latency_s);
    }

    #[test]
    fn memory_bound_ops_hit_bandwidth() {
        let cpu = CpuModel::i7_13700();
        let (t, _) = cpu.price_op(&KernelOp::HostMove {
            bytes: 70_000_000_000,
        });
        assert!((t - 1.0).abs() < 0.05, "70 GB at 70 GB/s should be ~1 s");
    }
}
