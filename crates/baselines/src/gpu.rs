//! An RTX-4090-class GPU model (Figure 18).
//!
//! A throughput/power table with a roofline over int8 tensor throughput
//! and memory bandwidth, plus the cache-resident T-table path for AES the
//! paper calls out ("the AES lookup tables are small enough to be
//! cache-resident in the GPU, enabling it to achieve high throughput").

use darth_pum::eval::CostAccumulator;
use darth_pum::trace::{CostReport, KernelOp, Trace, TraceMeta, TraceSink, VectorKind};

/// GPU parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Marketing name.
    pub name: &'static str,
    /// INT8 tensor throughput in ops/s.
    pub int8_tops: f64,
    /// General INT32 vector throughput in ops/s (CUDA cores).
    pub int_ops: f64,
    /// Shared-memory table lookups per second (cache-resident gathers).
    pub gathers_per_s: f64,
    /// Memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Board power in watts.
    pub board_watts: f64,
    /// Achievable utilisation of the peak numbers.
    pub utilisation: f64,
    /// Die area in cm² (iso-area comparisons).
    pub die_area_cm2: f64,
    /// Minimum wall time of a dependent layer-style kernel (launch +
    /// occupancy ramp); tiny layers in a serial chain cannot amortise it.
    pub kernel_floor_s: f64,
}

impl GpuModel {
    /// GeForce RTX 4090.
    pub fn rtx_4090() -> Self {
        GpuModel {
            name: "RTX 4090",
            int8_tops: 660.0e12,
            int_ops: 41.0e12,
            gathers_per_s: 8.0e12,
            mem_bw: 1.0e12,
            board_watts: 450.0,
            utilisation: 0.25,
            die_area_cm2: 6.08,
            kernel_floor_s: 2.0e-6,
        }
    }

    fn price_op(&self, op: &KernelOp) -> (f64, f64) {
        let u = self.utilisation;
        match *op {
            KernelOp::Mvm {
                rows,
                cols,
                batch,
                input_bits,
                weight_bits,
                ..
            } => {
                let macs = (rows * cols * batch) as f64;
                let width = f64::from(input_bits.max(weight_bits).max(8)) / 8.0;
                let compute = macs * width / (self.int8_tops * u);
                let bytes = (rows * cols) as f64 * width;
                let memory = bytes / self.mem_bw;
                let mut time = compute.max(memory);
                // dependent layer kernels (large batch = one spatial layer)
                // pay the launch/occupancy floor; streaming kernels (AES
                // blocks) amortise it across millions of items
                if batch >= 256 {
                    time = time.max(self.kernel_floor_s);
                }
                // energy charges the compute, not the bubble
                (time, self.board_watts * compute.max(memory))
            }
            KernelOp::Vector {
                kind,
                elements,
                count,
                ..
            } => {
                let ops = (elements * count) as f64;
                let rate = match kind {
                    VectorKind::Mul => self.int_ops * 0.5,
                    _ => self.int_ops,
                };
                let time = ops / (rate * u);
                (time, self.board_watts * time)
            }
            KernelOp::TableLookup { elements, .. } => {
                // cache-resident tables: shared-memory gather rate
                let time = elements as f64 / (self.gathers_per_s * u);
                (time, self.board_watts * time)
            }
            KernelOp::HostMove { bytes } | KernelOp::OnChipMove { bytes } => {
                let time = bytes as f64 / self.mem_bw;
                (time, self.board_watts * 0.3 * time)
            }
            KernelOp::WeightUpdate { rows, cols, .. } => {
                let bytes = (rows * cols) as f64;
                let time = bytes / self.mem_bw;
                (time, self.board_watts * 0.3 * time)
            }
        }
    }

    /// Prices a trace (streamed through a [`GpuAccumulator`]). The GPU
    /// exploits parallelism across items natively (its throughput numbers
    /// already assume full occupancy), so item throughput is
    /// `1 / latency` with the latency computed at full device
    /// utilisation.
    pub fn price(&self, trace: &Trace) -> CostReport {
        let mut acc = GpuAccumulator::new(*self);
        trace.emit_to(&mut acc);
        acc.finish()
    }
}

/// The streaming accumulator behind [`GpuModel::price`].
#[derive(Debug, Clone)]
pub struct GpuAccumulator {
    model: GpuModel,
    workload: String,
    latency: f64,
    energy: f64,
    breakdown: Vec<(String, f64)>,
    current: Option<(String, f64, f64)>,
}

impl GpuAccumulator {
    /// A fresh accumulator for one work item on `model`.
    pub fn new(model: GpuModel) -> Self {
        GpuAccumulator {
            model,
            workload: String::new(),
            latency: 0.0,
            energy: 0.0,
            breakdown: Vec::new(),
            current: None,
        }
    }

    fn flush_kernel(&mut self) {
        if let Some((name, t, e)) = self.current.take() {
            self.breakdown.push((name, t));
            self.latency += t;
            self.energy += e;
        }
    }
}

impl TraceSink for GpuAccumulator {
    fn begin_trace(&mut self, meta: &TraceMeta) {
        self.workload = meta.name.clone();
    }

    fn begin_kernel(&mut self, name: &str) {
        self.flush_kernel();
        self.current = Some((name.to_owned(), 0.0, 0.0));
    }

    fn op_run(&mut self, op: &KernelOp, repeat: u64) {
        let (dt, de) = self.model.price_op(op);
        let kernel = self.current.as_mut().expect("begin_kernel precedes ops");
        for _ in 0..repeat {
            kernel.1 += dt;
            kernel.2 += de;
        }
    }
}

impl CostAccumulator for GpuAccumulator {
    fn finish(&mut self) -> CostReport {
        self.flush_kernel();
        CostReport {
            architecture: format!("GPU ({})", self.model.name),
            workload: std::mem::take(&mut self.workload),
            latency_s: self.latency,
            throughput_items_per_s: 1.0 / self.latency.max(1e-15),
            energy_per_item_j: self.energy,
            kernel_latency_s: std::mem::take(&mut self.breakdown),
        }
    }
}

impl darth_pum::eval::ArchModel for GpuModel {
    /// `"gpu-rtx-4090"` (the marketing name, slugged).
    fn name(&self) -> String {
        format!("gpu-{}", self.name.to_lowercase().replace(' ', "-"))
    }

    fn label(&self) -> String {
        format!("GPU ({})", self.name)
    }

    fn accumulator(&self) -> Box<dyn CostAccumulator + '_> {
        Box::new(GpuAccumulator::new(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_apps::aes::workload::{block_trace, AesVariant};
    use darth_apps::cnn::{resnet::ResNet, workload::inference_trace};

    #[test]
    fn gpu_resnet_inference_rate_is_plausible() {
        let gpu = GpuModel::rtx_4090();
        let net = ResNet::resnet20(1).expect("builds");
        let report = gpu.price(&inference_trace(&net).expect("builds"));
        // ResNet-20 is tiny; a 4090 should push > 10k inferences/s even
        // with conservative utilisation, but < 1e9 (it is not free).
        assert!(report.throughput_items_per_s > 1e4);
        assert!(report.throughput_items_per_s < 1e9);
    }

    #[test]
    fn gpu_aes_benefits_from_cache_resident_tables() {
        let gpu = GpuModel::rtx_4090();
        let report = gpu.price(&block_trace(AesVariant::Aes128));
        // §7.4: the GPU gets high AES throughput from cached lookups.
        assert!(report.throughput_items_per_s > 1e7);
    }

    #[test]
    fn energy_scales_with_time() {
        let gpu = GpuModel::rtx_4090();
        let net = ResNet::resnet20(1).expect("builds");
        let report = gpu.price(&inference_trace(&net).expect("builds"));
        // With the kernel-occupancy floor, average power sits below board
        // power (bubbles burn no modelled energy) but stays physical.
        let implied_power = report.energy_per_item_j / report.latency_s;
        assert!(implied_power <= 451.0);
        assert!(implied_power > 0.1);
    }
}
