//! The kernel IR: value handles, storage classes, and the three-stage
//! op lists ([`KernelIr::compile`] lowers them to a split program).
//!
//! A kernel is organized exactly like the split-program contract it
//! compiles to:
//!
//! * **setup** — vACore declarations (weight staging + programming) and
//!   constant/address-table initializers, all request-invariant and
//!   halt-free by construction;
//! * **inputs** — persistent registers a request's input stub writes;
//! * **body** — the compute ops; lowering appends the terminating
//!   `halt`.
//!
//! Values are SSA-ish handles: *temps* are defined by exactly one body
//! op and recycled after their last use, *slots* are persistent named
//! registers placed by the allocator, and *fixed slots* are persistent
//! registers pinned to an architectural number (self-addressing lookup
//! tables need their global `register × elements + element` addresses to
//! be data, not allocator output).

use darth_isa::instruction::IsaBoolOp;
use darth_pum::hct::HctConfig;

use crate::lower::CompiledKernel;

/// An IR value handle: an opaque reference to one vector register's
/// worth of data (MVM results additionally own their landing cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value(pub(crate) u32);

/// A virtual analog core declared in the IR (weights + operand widths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VaCore(pub(crate) u8);

/// Storage class of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Storage {
    /// SSA temporary: defined by exactly one body op, freed after its
    /// last use.
    Temp,
    /// Persistent named register, placed by the allocator.
    Slot,
    /// Persistent register pinned to an architectural number.
    Fixed(u8),
    /// Persistent register written by the per-request input stage.
    Input,
}

impl Storage {
    pub(crate) fn is_persistent(self) -> bool {
        !matches!(self, Storage::Temp)
    }
}

/// Everything the compiler tracks per value.
#[derive(Debug, Clone)]
pub(crate) struct ValueInfo {
    pub name: String,
    pub pipe: u16,
    pub storage: Storage,
    /// Registers the value occupies: 1, except MVM results which own
    /// their whole landing cluster (`terms + 2` registers: accumulator,
    /// partial products, IIU scratch).
    pub width: usize,
}

/// A vACore declaration: the weight matrix plus operand geometry.
#[derive(Debug, Clone)]
pub(crate) struct VaCoreSpec {
    pub matrix: Vec<Vec<i64>>,
    pub element_bits: u8,
    pub bits_per_cell: u8,
    pub input_bits: u8,
    pub input_signed: bool,
}

impl VaCoreSpec {
    /// MVM terms per reduction: weight slices × input bits. The landing
    /// cluster is `terms + 2` registers.
    pub fn terms(&self) -> usize {
        let slices =
            usize::from(self.element_bits).div_ceil(usize::from(self.bits_per_cell.max(1)));
        slices * usize::from(self.input_bits)
    }

    /// Input vector length (matrix rows = wordlines).
    pub fn rows(&self) -> usize {
        self.matrix.len()
    }
}

/// One element of an address table: element `element` of the table
/// register holds the global address of `slot[slot_element]`
/// (`register × elements + slot_element`, resolved after allocation).
#[derive(Debug, Clone)]
pub(crate) struct AddrEntry {
    pub element: u8,
    pub slot: Value,
    pub slot_element: u64,
}

/// One request-invariant initializer in the setup section.
#[derive(Debug, Clone)]
pub(crate) enum SetupItem {
    /// Unsigned immediate cells `(element, value)`.
    ConstU { dst: Value, cells: Vec<(u8, u64)> },
    /// Signed immediate cells, staged as two's-complement fields.
    ConstS { dst: Value, cells: Vec<(u8, i64)> },
    /// Gather-address cells resolved against allocated slot registers.
    AddrTable { dst: Value, entries: Vec<AddrEntry> },
}

impl SetupItem {
    pub(crate) fn dst(&self) -> Value {
        match self {
            SetupItem::ConstU { dst, .. }
            | SetupItem::ConstS { dst, .. }
            | SetupItem::AddrTable { dst, .. } => *dst,
        }
    }
}

/// A per-request input register: the request writes `elements` values
/// into it; `default` is the payload the monolithic job form carries.
#[derive(Debug, Clone)]
pub(crate) struct InputDecl {
    pub value: Value,
    pub elements: usize,
    pub signed: bool,
    pub default: Vec<i64>,
}

/// One compute op. Each lowers to exactly one ISA instruction.
#[derive(Debug, Clone)]
pub(crate) enum BodyOp {
    /// Element-wise DCE boolean gate.
    Bool {
        op: IsaBoolOp,
        dst: Value,
        a: Value,
        b: Value,
    },
    /// Element-wise add.
    Add { dst: Value, a: Value, b: Value },
    /// Element-wise subtract.
    Sub { dst: Value, a: Value, b: Value },
    /// Element-wise shift by an immediate.
    Shift {
        left: bool,
        dst: Value,
        src: Value,
        amount: u8,
    },
    /// Register copy, within or across pipelines.
    Mov { dst: Value, src: Value },
    /// `eload` gather: `dst[e] =` table pipeline's register file at
    /// global address `addr[e]`.
    Gather {
        dst: Value,
        addr: Value,
        table_pipe: u16,
    },
    /// Analog MVM: reduce `input` through the vACore into `dst`'s
    /// landing cluster.
    Mvm {
        vacore: VaCore,
        input: Value,
        dst: Value,
        early_levels: u16,
    },
}

impl BodyOp {
    /// Values the op reads, in operand order.
    pub(crate) fn operands(&self) -> Vec<Value> {
        match self {
            BodyOp::Bool { a, b, .. } | BodyOp::Add { a, b, .. } | BodyOp::Sub { a, b, .. } => {
                vec![*a, *b]
            }
            BodyOp::Shift { src, .. } | BodyOp::Mov { src, .. } => vec![*src],
            BodyOp::Gather { addr, .. } => vec![*addr],
            BodyOp::Mvm { input, .. } => vec![*input],
        }
    }

    /// The value the op writes.
    pub(crate) fn dst(&self) -> Value {
        match self {
            BodyOp::Bool { dst, .. }
            | BodyOp::Add { dst, .. }
            | BodyOp::Sub { dst, .. }
            | BodyOp::Shift { dst, .. }
            | BodyOp::Mov { dst, .. }
            | BodyOp::Gather { dst, .. }
            | BodyOp::Mvm { dst, .. } => *dst,
        }
    }

    /// Short op name for diagnostics.
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            BodyOp::Bool { .. } => "bool",
            BodyOp::Add { .. } => "add",
            BodyOp::Sub { .. } => "sub",
            BodyOp::Shift { .. } => "shift",
            BodyOp::Mov { .. } => "mov",
            BodyOp::Gather { .. } => "gather",
            BodyOp::Mvm { .. } => "mvm",
        }
    }
}

/// An output declaration: which persistent slot to read after the body
/// halts, and how to interpret it.
#[derive(Debug, Clone)]
pub(crate) struct ReadbackDecl {
    pub label: String,
    pub value: Value,
    pub elements: usize,
    pub signed: bool,
}

/// A complete kernel in IR form, as produced by
/// [`KirBuilder::finish`](crate::KirBuilder::finish).
#[derive(Debug, Clone)]
pub struct KernelIr {
    pub(crate) name: String,
    pub(crate) tile: HctConfig,
    pub(crate) values: Vec<ValueInfo>,
    pub(crate) vacores: Vec<VaCoreSpec>,
    pub(crate) setup: Vec<SetupItem>,
    pub(crate) inputs: Vec<InputDecl>,
    pub(crate) body: Vec<BodyOp>,
    pub(crate) readbacks: Vec<ReadbackDecl>,
}

impl KernelIr {
    /// Kernel name (becomes the job/class name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The functional tile the kernel targets.
    pub fn tile(&self) -> &HctConfig {
        &self.tile
    }

    /// Compute ops in the body (each lowers to one instruction).
    pub fn body_ops(&self) -> usize {
        self.body.len()
    }

    /// Values (temps + slots + inputs) the kernel defines.
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    pub(crate) fn info(&self, v: Value) -> &ValueInfo {
        &self.values[v.0 as usize]
    }

    /// Runs the verifier pass alone (compile runs it implicitly).
    ///
    /// # Errors
    ///
    /// Returns the first structural defect found; see [`CompileError`]
    /// for the full taxonomy.
    ///
    /// [`CompileError`]: crate::CompileError
    pub fn verify(&self) -> crate::Result<()> {
        crate::verify::verify(self)
    }

    /// Compiles the kernel: verify → allocate registers → lower to
    /// encoded split-program sections.
    ///
    /// # Errors
    ///
    /// Returns verifier diagnostics, [`RegisterPressure`] spills, or
    /// staging failures.
    ///
    /// [`RegisterPressure`]: crate::CompileError::RegisterPressure
    pub fn compile(&self) -> crate::Result<CompiledKernel> {
        crate::verify::verify(self)?;
        let alloc = crate::alloc::allocate(self)?;
        crate::lower::lower(self, &alloc)
    }
}
