//! The IR verifier: structural checks that make every later pass
//! infallible-by-construction (the allocator can still spill, and
//! staging can still reject values — both surface their own
//! diagnostics).
//!
//! Checks, in order: value/pipe bounds, fixed-slot placement, vACore
//! specs, setup-item element bounds and address-table targets, input
//! declarations, SSA discipline over the body (def-before-use,
//! single-definition temps, pipe agreement per op), gather/address-table
//! pipe consistency, and readback targets. Halt-freedom of the setup and
//! input sections and the halting body are structural (no `halt` op
//! exists in the IR); the round-trip tests re-pin them on the encoded
//! artifact.

use std::collections::HashMap;

use crate::ir::{BodyOp, KernelIr, SetupItem, Storage, Value};
use crate::CompileError;

/// The allocatable register file: the top architectural register is the
/// zero register and is never assigned.
pub(crate) fn usable_vrs(ir: &KernelIr) -> usize {
    ir.tile.functional_vrs.saturating_sub(1)
}

pub(crate) fn verify(ir: &KernelIr) -> crate::Result<()> {
    let pipelines = ir.tile.functional_pipelines;
    let elements = ir.tile.functional_elements;
    let depth = ir.tile.functional_depth;
    let usable = usable_vrs(ir);

    // Value-level bounds: pipes exist; fixed slots sit inside the
    // allocatable file and never collide.
    let mut fixed: HashMap<(u16, u8), ()> = HashMap::new();
    for info in &ir.values {
        if usize::from(info.pipe) >= pipelines {
            return Err(CompileError::BadPipe {
                pipe: info.pipe,
                pipelines,
            });
        }
        if let Storage::Fixed(vr) = info.storage {
            if usize::from(vr) >= usable {
                return Err(CompileError::FixedSlotOutOfRange {
                    pipe: info.pipe,
                    vr,
                    vrs: ir.tile.functional_vrs,
                });
            }
            if fixed.insert((info.pipe, vr), ()).is_some() {
                return Err(CompileError::FixedSlotOverlap {
                    pipe: info.pipe,
                    vr,
                });
            }
        }
    }

    // vACore specs: rectangular, register-sized matrices, sane widths.
    for (i, vc) in ir.vacores.iter().enumerate() {
        let vacore = i as u8;
        let rows = vc.matrix.len();
        if rows == 0 {
            return Err(CompileError::BadMatrix {
                vacore,
                reason: "empty matrix",
            });
        }
        let cols = vc.matrix[0].len();
        if cols == 0 {
            return Err(CompileError::BadMatrix {
                vacore,
                reason: "empty rows",
            });
        }
        if vc.matrix.iter().any(|r| r.len() != cols) {
            return Err(CompileError::BadMatrix {
                vacore,
                reason: "ragged rows",
            });
        }
        if rows > elements || cols > elements {
            return Err(CompileError::BadMatrix {
                vacore,
                reason: "matrix exceeds one register per dimension",
            });
        }
        if vc.element_bits == 0 || vc.bits_per_cell == 0 || vc.input_bits == 0 {
            return Err(CompileError::BadMatrix {
                vacore,
                reason: "operand widths must be nonzero",
            });
        }
    }

    // Setup items: element bounds, value widths, address-table targets.
    let mut tables: HashMap<Value, &[crate::ir::AddrEntry]> = HashMap::new();
    for item in &ir.setup {
        let dst = ir.info(item.dst());
        match item {
            SetupItem::ConstU { cells, .. } => {
                for &(element, value) in cells {
                    check_element(&dst.name, element, elements)?;
                    crate::lower::stage_field(value as i64, false, depth)?;
                }
            }
            SetupItem::ConstS { cells, .. } => {
                for &(element, value) in cells {
                    check_element(&dst.name, element, elements)?;
                    crate::lower::stage_field(value, true, depth)?;
                }
            }
            SetupItem::AddrTable { dst, entries } => {
                for entry in entries {
                    check_element(&ir.info(*dst).name, entry.element, elements)?;
                    let slot = ir.info(entry.slot);
                    if !slot.storage.is_persistent() {
                        return Err(CompileError::NotPersistent {
                            value: slot.name.clone(),
                        });
                    }
                    if entry.slot_element >= elements as u64 {
                        return Err(CompileError::BadElement {
                            value: slot.name.clone(),
                            element: entry.slot_element as usize,
                            elements,
                        });
                    }
                }
                tables.insert(*dst, entries);
            }
        }
    }

    // Input declarations: persistent targets, register-sized payloads
    // that fit the pipeline depth.
    for decl in &ir.inputs {
        let info = ir.info(decl.value);
        if decl.elements == 0 || decl.elements > elements {
            return Err(CompileError::BadElement {
                value: info.name.clone(),
                element: decl.elements,
                elements,
            });
        }
        debug_assert_eq!(decl.default.len(), decl.elements);
        for &v in &decl.default {
            crate::lower::stage_field(v, decl.signed, depth)?;
        }
    }

    // Body: SSA discipline and per-op pipe agreement.
    let mut defined: Vec<bool> = ir
        .values
        .iter()
        .map(|info| info.storage.is_persistent())
        .collect();
    for op in &ir.body {
        for operand in op.operands() {
            if !defined[operand.0 as usize] {
                return Err(CompileError::UseBeforeDef {
                    value: ir.info(operand).name.clone(),
                });
            }
        }
        let dst = op.dst();
        let dst_info = ir.info(dst);
        match op {
            BodyOp::Bool { a, b, .. } | BodyOp::Add { a, b, .. } | BodyOp::Sub { a, b, .. } => {
                same_pipe(ir, op.kind(), dst, *a)?;
                same_pipe(ir, op.kind(), dst, *b)?;
            }
            BodyOp::Shift { src, .. } => same_pipe(ir, op.kind(), dst, *src)?,
            BodyOp::Mov { .. } => {}
            BodyOp::Gather {
                addr, table_pipe, ..
            } => {
                same_pipe(ir, op.kind(), dst, *addr)?;
                if usize::from(*table_pipe) >= pipelines {
                    return Err(CompileError::BadPipe {
                        pipe: *table_pipe,
                        pipelines,
                    });
                }
                // Every address table gathered through `table_pipe`
                // must point at slots living there.
                if let Some(entries) = tables.get(addr) {
                    for entry in *entries {
                        let slot = ir.info(entry.slot);
                        if slot.pipe != *table_pipe {
                            return Err(CompileError::TablePipeMismatch {
                                table: ir.info(*addr).name.clone(),
                                slot: slot.name.clone(),
                                expected: *table_pipe,
                                found: slot.pipe,
                            });
                        }
                    }
                }
            }
            BodyOp::Mvm { vacore, input, .. } => {
                if usize::from(vacore.0) >= ir.vacores.len() {
                    return Err(CompileError::BadVaCore { vacore: vacore.0 });
                }
                let vc = &ir.vacores[vacore.0 as usize];
                let input_info = ir.info(*input);
                if vc.rows() > elements {
                    return Err(CompileError::BadElement {
                        value: input_info.name.clone(),
                        element: vc.rows(),
                        elements,
                    });
                }
            }
        }
        if dst_info.storage.is_persistent() {
            continue;
        }
        if defined[dst.0 as usize] {
            return Err(CompileError::Redefined {
                value: dst_info.name.clone(),
            });
        }
        defined[dst.0 as usize] = true;
    }

    // Readbacks: persistent, register-sized targets.
    for rb in &ir.readbacks {
        let info = ir.info(rb.value);
        if !info.storage.is_persistent() {
            return Err(CompileError::NotPersistent {
                value: info.name.clone(),
            });
        }
        if rb.elements == 0 || rb.elements > elements {
            return Err(CompileError::BadElement {
                value: info.name.clone(),
                element: rb.elements,
                elements,
            });
        }
    }

    Ok(())
}

fn check_element(value: &str, element: u8, elements: usize) -> crate::Result<()> {
    if usize::from(element) >= elements {
        return Err(CompileError::BadElement {
            value: value.to_string(),
            element: usize::from(element),
            elements,
        });
    }
    Ok(())
}

fn same_pipe(ir: &KernelIr, op: &'static str, dst: Value, operand: Value) -> crate::Result<()> {
    let expected = ir.info(dst).pipe;
    let found = ir.info(operand).pipe;
    if expected != found {
        return Err(CompileError::PipeMismatch {
            op,
            value: ir.info(operand).name.clone(),
            expected,
            found,
        });
    }
    Ok(())
}
