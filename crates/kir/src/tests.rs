//! In-crate compiler tests: one rejection case per verifier diagnostic,
//! allocator placement/reuse behavior, lowering spot checks against the
//! encoded artifact, and a miniature end-to-end kernel executed on the
//! functional chip. The cross-crate surface (app kernels, differential
//! registry, parity pins) lives in `darth_apps`/`darth_sim`; the
//! property-based round-trip suite is `tests/roundtrip.rs`.

use darth_isa::encode::decode_program;
use darth_isa::instruction::{Instruction, IsaBoolOp};
use darth_pum::hct::HctConfig;

use crate::ir::VaCore;
use crate::{stage_field, CompileError, KirBuilder};

/// A small two-pipe tile: 8 elements, 16-bit depth, 8 registers per
/// pipeline (7 allocatable, the top one is the zero register).
fn tile() -> HctConfig {
    tile_with_vrs(8)
}

fn tile_with_vrs(vrs: usize) -> HctConfig {
    HctConfig {
        functional_pipelines: 2,
        functional_depth: 16,
        functional_elements: 8,
        functional_vrs: vrs,
        functional_ace_arrays: 1,
        ..HctConfig::small_test()
    }
}

// ---------------------------------------------------------------------
// Verifier: every diagnostic is reachable and structured.
// ---------------------------------------------------------------------

#[test]
fn use_before_def_is_rejected() {
    let mut b = KirBuilder::new("t", tile());
    let x = b.input(0, "x", false, &[1]);
    let out = b.slot(0, "out");
    let t = b.shl(x, 1);
    b.mov(out, t);
    let mut ir = b.finish();
    // Reorder the body so the mov reads the temp before its definition.
    ir.body.swap(0, 1);
    assert!(matches!(
        ir.verify(),
        Err(CompileError::UseBeforeDef { .. })
    ));
}

#[test]
fn redefined_temp_is_rejected() {
    let mut b = KirBuilder::new("t", tile());
    let x = b.input(0, "x", false, &[1]);
    let t = b.shl(x, 1);
    let out = b.slot(0, "out");
    b.mov(out, t);
    let mut ir = b.finish();
    // Duplicate the defining shift: temps are SSA.
    ir.body.push(ir.body[0].clone());
    assert!(matches!(ir.verify(), Err(CompileError::Redefined { .. })));
}

#[test]
fn cross_pipe_operands_are_rejected() {
    let mut b = KirBuilder::new("t", tile());
    let a = b.input(0, "a", false, &[1]);
    let c = b.input(1, "c", false, &[1]);
    let t = b.bool_op(IsaBoolOp::Xor, a, c);
    let out = b.slot(0, "out");
    b.mov(out, t);
    let err = b.finish().verify().unwrap_err();
    assert_eq!(
        err,
        CompileError::PipeMismatch {
            op: "bool",
            value: "c".into(),
            expected: 0,
            found: 1,
        }
    );
}

#[test]
fn out_of_range_pipes_are_rejected() {
    let mut b = KirBuilder::new("t", tile());
    b.slot(9, "nowhere");
    assert_eq!(
        b.finish().verify(),
        Err(CompileError::BadPipe {
            pipe: 9,
            pipelines: 2
        })
    );

    // A gather's table pipeline is checked too.
    let mut b = KirBuilder::new("t", tile());
    let addr = b.input(0, "addr", false, &[0]);
    let out = b.slot(0, "out");
    b.gather_into(out, addr, 7);
    assert_eq!(
        b.finish().verify(),
        Err(CompileError::BadPipe {
            pipe: 7,
            pipelines: 2
        })
    );
}

#[test]
fn colliding_fixed_slots_are_rejected() {
    let mut b = KirBuilder::new("t", tile());
    b.fixed_slot(0, 2, "first");
    b.fixed_slot(0, 2, "second");
    assert_eq!(
        b.finish().verify(),
        Err(CompileError::FixedSlotOverlap { pipe: 0, vr: 2 })
    );

    // Same pin in *different* pipelines is fine.
    let mut b = KirBuilder::new("t", tile());
    b.fixed_slot(0, 2, "first");
    b.fixed_slot(1, 2, "second");
    b.finish().verify().expect("distinct pipelines");
}

#[test]
fn fixed_slot_on_the_zero_register_is_rejected() {
    // vrs = 8 → registers 0..=6 allocatable, 7 is the zero register.
    let mut b = KirBuilder::new("t", tile());
    b.fixed_slot(0, 7, "zero");
    assert_eq!(
        b.finish().verify(),
        Err(CompileError::FixedSlotOutOfRange {
            pipe: 0,
            vr: 7,
            vrs: 8
        })
    );
}

#[test]
fn out_of_range_elements_are_rejected() {
    // Constant cell past the register (8 elements).
    let mut b = KirBuilder::new("t", tile());
    b.const_u(0, "c", &[(8, 1)]);
    assert!(matches!(
        b.finish().verify(),
        Err(CompileError::BadElement { element: 8, .. })
    ));

    // Oversized input payload.
    let mut b = KirBuilder::new("t", tile());
    b.input(0, "x", false, &[0; 9]);
    assert!(matches!(
        b.finish().verify(),
        Err(CompileError::BadElement { element: 9, .. })
    ));

    // Oversized readback.
    let mut b = KirBuilder::new("t", tile());
    let out = b.slot(0, "out");
    b.readback("out", out, 9, false);
    assert!(matches!(
        b.finish().verify(),
        Err(CompileError::BadElement { element: 9, .. })
    ));
}

#[test]
fn malformed_vacore_matrices_are_rejected() {
    let ragged = vec![vec![1, 2], vec![3]];
    let mut b = KirBuilder::new("t", tile());
    b.vacore(ragged, 2, 2, 8, true);
    assert_eq!(
        b.finish().verify(),
        Err(CompileError::BadMatrix {
            vacore: 0,
            reason: "ragged rows"
        })
    );

    let mut b = KirBuilder::new("t", tile());
    b.vacore(Vec::new(), 2, 2, 8, true);
    assert!(matches!(
        b.finish().verify(),
        Err(CompileError::BadMatrix { .. })
    ));

    // Taller than one register (8 elements).
    let mut b = KirBuilder::new("t", tile());
    b.vacore(vec![vec![1]; 9], 2, 2, 8, true);
    assert!(matches!(
        b.finish().verify(),
        Err(CompileError::BadMatrix { .. })
    ));
}

#[test]
fn undeclared_vacores_are_rejected() {
    let mut b = KirBuilder::new("t", tile());
    let x = b.input(0, "x", true, &[1, 2]);
    let out = b.slot(1, "out");
    let acc = b.mvm(VaCore(3), x, 1);
    b.mov(out, acc);
    assert_eq!(
        b.finish().verify(),
        Err(CompileError::BadVaCore { vacore: 3 })
    );
}

#[test]
fn address_tables_must_target_persistent_slots_in_the_gather_pipe() {
    // Temp target: no stable address.
    let mut b = KirBuilder::new("t", tile());
    let x = b.input(0, "x", false, &[1]);
    let t = b.shl(x, 1);
    b.addr_table(0, "tab", &[(0, t, 0)]);
    assert!(matches!(
        b.finish().verify(),
        Err(CompileError::NotPersistent { .. })
    ));

    // Slot in pipe 0, gathered as if resident in pipe 1.
    let mut b = KirBuilder::new("t", tile());
    let data = b.const_u(0, "data", &[(0, 5)]);
    let tab = b.addr_table(0, "tab", &[(0, data, 0)]);
    let out = b.slot(0, "out");
    b.gather_into(out, tab, 1);
    assert_eq!(
        b.finish().verify(),
        Err(CompileError::TablePipeMismatch {
            table: "tab".into(),
            slot: "data".into(),
            expected: 1,
            found: 0,
        })
    );
}

#[test]
fn readback_of_a_temp_is_rejected() {
    let mut b = KirBuilder::new("t", tile());
    let x = b.input(0, "x", false, &[1]);
    let t = b.shl(x, 1);
    b.readback("t", t, 1, false);
    assert!(matches!(
        b.finish().verify(),
        Err(CompileError::NotPersistent { .. })
    ));
}

#[test]
fn oversized_immediates_are_rejected_at_verify_time() {
    let mut b = KirBuilder::new("t", tile());
    b.const_u(0, "wide", &[(0, 1 << 16)]);
    assert_eq!(
        b.finish().verify(),
        Err(CompileError::ValueTooWide {
            value: 1 << 16,
            signed: false,
            depth: 16,
        })
    );

    let mut b = KirBuilder::new("t", tile());
    b.input(0, "x", true, &[-40_000]);
    assert!(matches!(
        b.finish().verify(),
        Err(CompileError::ValueTooWide { signed: true, .. })
    ));
}

#[test]
fn stage_field_covers_both_signednesses() {
    assert_eq!(stage_field(65_535, false, 16), Ok(65_535));
    assert_eq!(stage_field(-1, true, 16), Ok(0xFFFF));
    assert_eq!(stage_field(-32_768, true, 16), Ok(0x8000));
    assert!(stage_field(65_536, false, 16).is_err());
    assert!(stage_field(-32_769, true, 16).is_err());
    assert!(stage_field(-1, false, 16).is_err());
    // Full-width fields never overflow the bounds check.
    assert_eq!(stage_field(i64::MAX, false, 64), Ok(i64::MAX as u64));
}

// ---------------------------------------------------------------------
// Allocator: placement, reuse, pressure diagnostics.
// ---------------------------------------------------------------------

#[test]
fn register_pressure_is_a_diagnostic_not_a_panic() {
    // 4 vrs → 3 allocatable; the MVM landing cluster needs
    // ⌈1/1⌉ × 4 + 2 = 6 contiguous registers.
    let mut b = KirBuilder::new("t", tile_with_vrs(4));
    let w = b.vacore(vec![vec![1]; 2], 1, 1, 4, false);
    let x = b.input(0, "x", false, &[1, 2]);
    let out = b.slot(1, "out");
    let acc = b.mvm(w, x, 1);
    b.mov(out, acc);
    let err = b.finish().compile().unwrap_err();
    assert_eq!(
        err,
        CompileError::RegisterPressure {
            pipe: 1,
            needed: 6,
            available: 2,
        }
    );
}

#[test]
fn dead_temps_recycle_their_registers() {
    let mut b = KirBuilder::new("t", tile());
    let x = b.input(0, "x", false, &[1]);
    let out1 = b.slot(0, "out1");
    let out2 = b.slot(0, "out2");
    let t1 = b.shl(x, 1);
    b.mov(out1, t1);
    let t2 = b.shl(x, 2);
    b.mov(out2, t2);
    let ir = b.finish();
    ir.verify().expect("well-formed");
    let alloc = crate::alloc::allocate(&ir).expect("fits");
    // Persistents first-fit in declaration order...
    assert_eq!(alloc.vr[x.0 as usize], 0);
    assert_eq!(alloc.vr[out1.0 as usize], 1);
    assert_eq!(alloc.vr[out2.0 as usize], 2);
    // ...and t2 reuses t1's register once the first mov retires it.
    assert_eq!(alloc.vr[t1.0 as usize], 3);
    assert_eq!(alloc.vr[t2.0 as usize], alloc.vr[t1.0 as usize]);
}

#[test]
fn fixed_slots_pin_allocation_around_them() {
    let mut b = KirBuilder::new("t", tile());
    // Pin a table at register 1; the next persistent must skip it.
    let tab = b.const_u_at(0, 1, "tab", &[(0, 9)]);
    let out = b.slot(0, "out");
    b.gather_into(out, tab, 0);
    b.readback("out", out, 1, false);
    let ir = b.finish();
    let alloc = crate::alloc::allocate(&ir).expect("fits");
    assert_eq!(alloc.vr[tab.0 as usize], 1);
    assert_eq!(alloc.vr[out.0 as usize], 0);

    // The pin is visible in the lowered artifact: the table's setup
    // immediate writes register 1.
    let compiled = ir.compile().expect("compiles");
    let setup = decode_program(compiled.split().setup.as_slice()).expect("decodes");
    assert!(setup.iter().any(|i| matches!(
        i,
        Instruction::WriteImm { vr, value: 9, .. } if vr.0 == 1
    )));
}

// ---------------------------------------------------------------------
// Lowering: the split contract and the input-stub surface.
// ---------------------------------------------------------------------

/// A tiny valid kernel: `out[e] = a[e] + bias[e]` over three elements.
fn mini_kernel() -> crate::KernelIr {
    let mut b = KirBuilder::new("mini-add", tile());
    let a = b.input(0, "a", true, &[3, -2, 5]);
    let bias = b.const_s(0, "bias", &[(0, 1), (1, 1), (2, 1)]);
    let out = b.slot(0, "out");
    b.add_into(out, a, bias);
    b.readback("out", out, 3, true);
    b.finish()
}

#[test]
fn compiled_sections_honor_the_split_contract() {
    let compiled = mini_kernel().compile().expect("compiles");
    let split = compiled.split();
    split.check_invariants().expect("invariants hold");
    assert!(decode_program(&split.setup).expect("setup").is_halt_free());
    assert!(decode_program(compiled.default_input_program())
        .expect("input")
        .is_halt_free());
    assert!(decode_program(&split.body).expect("body").ends_with_halt());
    // Section instruction counts match the IR: 3 bias immediates, 3
    // default-payload immediates, add + halt.
    assert_eq!(compiled.setup_instructions(), 3);
    assert_eq!(compiled.input_instructions(), 3);
    assert_eq!(compiled.body_instructions(), 2);
}

#[test]
fn the_monolithic_job_is_the_byte_concatenation_of_the_sections() {
    let compiled = mini_kernel().compile().expect("compiles");
    let job = compiled.exec_job();
    let mut expected = compiled.split().setup.clone();
    expected.extend_from_slice(compiled.default_input_program());
    expected.extend_from_slice(&compiled.split().body);
    assert_eq!(job.program, expected);
    assert_eq!(job.name, "mini-add");
}

#[test]
fn input_programs_reject_malformed_requests() {
    let compiled = mini_kernel().compile().expect("compiles");
    assert_eq!(compiled.input_slots().len(), 1);
    assert_eq!(compiled.input_slots()[0].elements, 3);
    assert!(compiled.input_slots()[0].signed);

    assert_eq!(
        compiled.input_program(&[]),
        Err(CompileError::InputCount {
            expected: 1,
            found: 0
        })
    );
    assert_eq!(
        compiled.input_program(&[vec![1, 2]]),
        Err(CompileError::InputShape {
            slot: "a".into(),
            expected: 3,
            found: 2
        })
    );
    assert!(matches!(
        compiled.input_program(&[vec![1 << 20, 0, 0]]),
        Err(CompileError::ValueTooWide { .. })
    ));
    // A well-formed request encodes to exactly one wimm per element.
    let stub = compiled
        .input_program(&[vec![7, -7, 0]])
        .expect("well-formed");
    assert_eq!(decode_program(&stub).expect("decodes").len(), 3);
}

#[test]
fn a_compiled_kernel_executes_end_to_end_on_the_chip() {
    use darth_pum::chip::DarthPumChip;
    use darth_pum::params::ChipParams;

    let compiled = mini_kernel().compile().expect("compiles");
    let run = |input: &[u8]| -> Vec<i64> {
        let job = compiled.split().full_job(input);
        let program = job.decoded_program().expect("decodes");
        let mut chip = DarthPumChip::new(ChipParams::default(), job.tile.clone()).expect("builds");
        chip.execute(&program, &job.data).expect("executes");
        let rb = &job.readbacks[0];
        let pipe = chip
            .tile_mut()
            .pipeline_mut(usize::from(rb.pipe))
            .expect("exists");
        (0..rb.elements)
            .map(|e| {
                pipe.read_value_signed(usize::from(rb.vr), e)
                    .expect("reads")
            })
            .collect()
    };
    // Default payload: [3, -2, 5] + bias 1.
    assert_eq!(run(compiled.default_input_program()), vec![4, -1, 6]);
    // A restaged request reuses the same resident sections.
    let stub = compiled
        .input_program(&[vec![-8, 0, 100]])
        .expect("encodes");
    assert_eq!(run(&stub), vec![-7, 1, 101]);
}
