//! Linear-scan register allocation: values onto DCE vector registers.
//!
//! Placement policy, per pipeline:
//!
//! * the top architectural register is the zero register and is never
//!   assigned (the chip enforces the same ceiling on MVM clusters);
//! * fixed slots claim their pinned registers first;
//! * persistent values (slots, constants, inputs) are placed
//!   first-fit in declaration order and live for the whole program;
//! * SSA temps are placed first-fit at their defining op and freed
//!   after their last use — MVM results claim `terms + 2` *contiguous*
//!   registers (accumulator, partial products, IIU scratch), everything
//!   else one.
//!
//! Exhaustion returns [`CompileError::RegisterPressure`] with the
//! requested width and remaining free count — a diagnostic, not a
//! panic, so oversized kernels fail with an actionable message.

use crate::ir::{KernelIr, Storage};
use crate::{verify, CompileError};

/// The allocator's output: the first register of every value (clusters
/// extend upward from it).
#[derive(Debug, Clone)]
pub(crate) struct Allocation {
    /// Indexed by value id.
    pub vr: Vec<u8>,
}

/// Per-pipeline occupancy map.
struct PipeFile {
    free: Vec<bool>,
}

impl PipeFile {
    fn new(usable: usize) -> Self {
        PipeFile {
            free: vec![true; usable],
        }
    }

    fn claim(&mut self, vr: usize, width: usize) -> bool {
        if vr + width > self.free.len() || !self.free[vr..vr + width].iter().all(|&f| f) {
            return false;
        }
        self.free[vr..vr + width]
            .iter_mut()
            .for_each(|f| *f = false);
        true
    }

    fn first_fit(&mut self, pipe: u16, width: usize) -> crate::Result<u8> {
        let slots = self.free.len().saturating_sub(width.saturating_sub(1));
        for vr in 0..slots {
            if self.claim(vr, width) {
                return Ok(vr as u8);
            }
        }
        Err(CompileError::RegisterPressure {
            pipe,
            needed: width,
            available: self.free.iter().filter(|&&f| f).count(),
        })
    }

    fn release(&mut self, vr: usize, width: usize) {
        self.free[vr..vr + width].iter_mut().for_each(|f| *f = true);
    }
}

pub(crate) fn allocate(ir: &KernelIr) -> crate::Result<Allocation> {
    let usable = verify::usable_vrs(ir);
    let mut files: Vec<PipeFile> = (0..ir.tile.functional_pipelines)
        .map(|_| PipeFile::new(usable))
        .collect();
    let mut vr = vec![0u8; ir.values.len()];

    // Fixed slots claim their pinned registers first (the verifier has
    // already ruled out collisions and out-of-range pins).
    for (id, info) in ir.values.iter().enumerate() {
        if let Storage::Fixed(pin) = info.storage {
            files[usize::from(info.pipe)].claim(usize::from(pin), info.width);
            vr[id] = pin;
        }
    }

    // Persistent values, first-fit in declaration order.
    for (id, info) in ir.values.iter().enumerate() {
        if matches!(info.storage, Storage::Slot | Storage::Input) {
            vr[id] = files[usize::from(info.pipe)].first_fit(info.pipe, info.width)?;
        }
    }

    // Temps: linear scan over the body. A temp's register(s) become
    // free again after the op that reads it last.
    let mut last_use = vec![usize::MAX; ir.values.len()];
    for (i, op) in ir.body.iter().enumerate() {
        for operand in op.operands() {
            if ir.info(operand).storage == Storage::Temp {
                last_use[operand.0 as usize] = i;
            }
        }
    }
    for (i, op) in ir.body.iter().enumerate() {
        // Free operands dying here before placing the destination: the
        // datapath reads operands before writing results, so the
        // destination may legally reuse a dying operand's register.
        for operand in op.operands() {
            let id = operand.0 as usize;
            let info = ir.info(operand);
            if info.storage == Storage::Temp && last_use[id] == i {
                files[usize::from(info.pipe)].release(usize::from(vr[id]), info.width);
            }
        }
        let dst = op.dst();
        let info = ir.info(dst);
        if info.storage == Storage::Temp {
            let id = dst.0 as usize;
            vr[id] = files[usize::from(info.pipe)].first_fit(info.pipe, info.width)?;
            if last_use[id] == usize::MAX {
                // Defined but never read: the write still happens, the
                // registers are immediately recyclable.
                files[usize::from(info.pipe)].release(usize::from(vr[id]), info.width);
            }
        }
    }

    Ok(Allocation { vr })
}
