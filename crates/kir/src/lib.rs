//! `darth_kir`: the kernel-IR compiler pipeline.
//!
//! The three DARTH-PUM applications used to carry ~1.7k lines of
//! hand-scheduled `darth_isa` emission each; this crate replaces that
//! with a small layered compiler, so a new workload costs an IR builder
//! instead of a bespoke program:
//!
//! 1. **Build** ([`KirBuilder`], [`ir`]) — a kernel IR with SSA-ish
//!    value handles covering the DARTH-PUM repertoire: tiled analog MVM,
//!    bit-plane pack/unpack, DCE gate/macro programs, `eload` gathers,
//!    side-channel staging, and readbacks. Values come in three storage
//!    classes: SSA *temps* (defined once, recycled after last use),
//!    named *slots* (persistent registers, placed by the allocator), and
//!    *fixed slots* (pinned registers for self-addressing tables).
//! 2. **Verify** — def-before-use, storage-class and register/handle
//!    bounds, pipe agreement, address-table targets. Structural
//!    invariants (halt-free setup, halting body) hold by construction
//!    and are re-pinned on the encoded artifact.
//! 3. **Allocate** — a linear-scan register allocator mapping values
//!    onto DCE vector registers (first-fit, contiguous clusters for MVM
//!    landing areas, the top register reserved as the architectural
//!    zero). Exhaustion is a [`CompileError::RegisterPressure`]
//!    *diagnostic*, never a panic.
//! 4. **Lower** ([`CompiledKernel`]) — emit encoded [`darth_isa`]
//!    streams honoring the split-program contract: halt-free setup ‖
//!    per-request input stub ‖ halting body. Compiled kernels drop
//!    straight into [`darth_pum::eval::SplitJob`], the resident program
//!    cache, and the serving engine unchanged.
//!
//! The compiled path is pinned bit-exact against software goldens by the
//! `darth_sim` differential registry, and against the retired
//! hand-written lowerings by the `kir_parity` regression test.

pub mod build;
pub mod ir;

mod alloc;
mod lower;
mod verify;

#[cfg(test)]
mod tests;

pub use build::{pack_bit_planes, unpack_bit_planes, KirBuilder};
pub use ir::{KernelIr, VaCore, Value};
pub use lower::{stage_field, CompiledKernel, InputSlot};

/// Structured compiler diagnostics: every failure mode names the value,
/// pipe, or bound involved so the IR author can fix the kernel without
/// spelunking through emitted programs. Spills surface here as
/// [`CompileError::RegisterPressure`] — the compiler never panics on a
/// kernel that does not fit.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// Register allocation ran out of vector registers in a pipeline:
    /// `needed` contiguous registers were requested while only
    /// `available` (possibly fragmented) registers remain free.
    RegisterPressure {
        /// Pipeline that spilled.
        pipe: u16,
        /// Contiguous registers the failing value needs.
        needed: usize,
        /// Free registers remaining in the pipeline.
        available: usize,
    },
    /// A temp is used before the op that defines it.
    UseBeforeDef {
        /// Name of the offending value.
        value: String,
    },
    /// A temp is defined more than once (temps are SSA).
    Redefined {
        /// Name of the offending value.
        value: String,
    },
    /// An op mixes operands from different pipelines.
    PipeMismatch {
        /// The op kind.
        op: &'static str,
        /// Name of the offending value.
        value: String,
        /// Pipeline the op executes in.
        expected: u16,
        /// Pipeline the value lives in.
        found: u16,
    },
    /// A value or op names a pipeline outside the tile.
    BadPipe {
        /// The out-of-range pipeline.
        pipe: u16,
        /// Pipelines the tile has.
        pipelines: usize,
    },
    /// A constant, address-table, or readback element index is outside
    /// the register.
    BadElement {
        /// Name of the offending value.
        value: String,
        /// The out-of-range element.
        element: usize,
        /// Elements per register.
        elements: usize,
    },
    /// Two fixed slots (or a fixed slot and the zero register) collide.
    FixedSlotOverlap {
        /// Pipeline of the collision.
        pipe: u16,
        /// The doubly-claimed register.
        vr: u8,
    },
    /// A fixed slot is pinned outside the allocatable register file.
    FixedSlotOutOfRange {
        /// Pipeline of the slot.
        pipe: u16,
        /// The pinned register.
        vr: u8,
        /// Architectural registers per pipeline (the top one is the
        /// zero register).
        vrs: usize,
    },
    /// An address table, readback, or input declaration references an
    /// SSA temp; only persistent slots have stable addresses.
    NotPersistent {
        /// Name of the offending value.
        value: String,
    },
    /// An address table points at a slot outside the pipeline a gather
    /// reads it through.
    TablePipeMismatch {
        /// Name of the address table.
        table: String,
        /// Name of the referenced slot.
        slot: String,
        /// The gather's table pipeline.
        expected: u16,
        /// The slot's pipeline.
        found: u16,
    },
    /// A vACore matrix is empty, ragged, or larger than a register.
    BadMatrix {
        /// The vACore index.
        vacore: u8,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// An MVM names an undeclared vACore.
    BadVaCore {
        /// The undeclared index.
        vacore: u8,
    },
    /// A constant or input value does not fit the pipeline depth.
    ValueTooWide {
        /// The offending value.
        value: i64,
        /// Whether it was staged as two's-complement.
        signed: bool,
        /// Pipeline depth in bits.
        depth: usize,
    },
    /// An input payload's element count does not match its slot.
    InputShape {
        /// Name of the input slot.
        slot: String,
        /// Elements the slot was declared with.
        expected: usize,
        /// Elements the payload supplied.
        found: usize,
    },
    /// A request supplied the wrong number of input payloads.
    InputCount {
        /// Declared input slots.
        expected: usize,
        /// Payloads supplied.
        found: usize,
    },
    /// Side-channel staging failed (weight matrix rejected).
    Staging(String),
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompileError::RegisterPressure {
                pipe,
                needed,
                available,
            } => write!(
                f,
                "register pressure in pipeline {pipe}: need {needed} contiguous vector \
                 register(s), {available} free"
            ),
            CompileError::UseBeforeDef { value } => {
                write!(f, "value `{value}` is used before it is defined")
            }
            CompileError::Redefined { value } => {
                write!(f, "SSA temp `{value}` is defined more than once")
            }
            CompileError::PipeMismatch {
                op,
                value,
                expected,
                found,
            } => write!(
                f,
                "{op}: value `{value}` lives in pipeline {found}, op executes in pipeline \
                 {expected}"
            ),
            CompileError::BadPipe { pipe, pipelines } => {
                write!(f, "pipeline {pipe} out of range (tile has {pipelines})")
            }
            CompileError::BadElement {
                value,
                element,
                elements,
            } => write!(
                f,
                "value `{value}`: element {element} out of range (registers hold {elements})"
            ),
            CompileError::FixedSlotOverlap { pipe, vr } => {
                write!(f, "fixed slots collide at pipeline {pipe} register {vr}")
            }
            CompileError::FixedSlotOutOfRange { pipe, vr, vrs } => write!(
                f,
                "fixed slot at pipeline {pipe} register {vr} outside the allocatable file \
                 (vrs {vrs}, top register is the zero register)"
            ),
            CompileError::NotPersistent { value } => write!(
                f,
                "value `{value}` is an SSA temp; only persistent slots can be addressed here"
            ),
            CompileError::TablePipeMismatch {
                table,
                slot,
                expected,
                found,
            } => write!(
                f,
                "address table `{table}` points at `{slot}` in pipeline {found}, but the \
                 gather reads through pipeline {expected}"
            ),
            CompileError::BadMatrix { vacore, reason } => {
                write!(f, "vACore {vacore} matrix: {reason}")
            }
            CompileError::BadVaCore { vacore } => {
                write!(f, "MVM names undeclared vACore {vacore}")
            }
            CompileError::ValueTooWide {
                value,
                signed,
                depth,
            } => write!(
                f,
                "value {value} does not fit a {depth}-bit {} field",
                if *signed {
                    "two's-complement"
                } else {
                    "unsigned"
                }
            ),
            CompileError::InputShape {
                slot,
                expected,
                found,
            } => write!(
                f,
                "input slot `{slot}` takes {expected} element(s), payload has {found}"
            ),
            CompileError::InputCount { expected, found } => {
                write!(
                    f,
                    "kernel has {expected} input slot(s), request supplied {found}"
                )
            }
            CompileError::Staging(msg) => write!(f, "side-channel staging failed: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<CompileError> for darth_pum::Error {
    fn from(e: CompileError) -> Self {
        darth_pum::Error::Shape(format!("kir: {e}"))
    }
}

/// Compiler result alias.
pub type Result<T> = core::result::Result<T, CompileError>;
