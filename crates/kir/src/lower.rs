//! Lowering: a verified, allocated kernel → encoded split-program
//! sections honoring the serving contract (halt-free setup ‖ halt-free
//! per-request input stub ‖ body ending in `halt`).
//!
//! Every body op emits exactly one instruction, so compiled programs
//! track the retired hand-written lowerings instruction-for-instruction
//! (the `kir_parity` regression pins the histograms). Section order is
//! the split contract itself: vACore allocation + weight programming,
//! constants and address tables, then the input stub, then the body —
//! byte-concatenation of the three sections is the monolithic program
//! by construction.

use darth_digital::pipeline::twos_complement_field;
use darth_isa::encode::{encode_program, RECORD_SIZE};
use darth_isa::instruction::{Instruction, PipelineId, Program, VaCoreId, Vr};
use darth_pum::chip::SideChannel;
use darth_pum::eval::{ExecJob, JobSignature, Readback, SplitJob};

use crate::alloc::Allocation;
use crate::ir::{BodyOp, KernelIr, SetupItem};
use crate::CompileError;

/// Stages one immediate for a `wimm`: signed values become
/// two's-complement fields at the pipeline depth, unsigned values are
/// bounds-checked against it. The single shared staging site the app
/// kernels used to duplicate.
///
/// # Errors
///
/// Returns [`CompileError::ValueTooWide`] when the value does not fit.
pub fn stage_field(value: i64, signed: bool, depth: usize) -> crate::Result<u64> {
    if signed {
        return twos_complement_field(value, depth).map_err(|_| CompileError::ValueTooWide {
            value,
            signed,
            depth,
        });
    }
    let fits = value >= 0 && (depth >= 64 || (value as u64) >> depth == 0);
    if !fits {
        return Err(CompileError::ValueTooWide {
            value,
            signed,
            depth,
        });
    }
    Ok(value as u64)
}

/// One per-request input register of a compiled kernel: where the
/// payload lands and how it is staged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSlot {
    /// The input's declared name.
    pub name: String,
    /// Pipeline the payload is written into.
    pub pipe: u16,
    /// Allocated register.
    pub vr: u8,
    /// Payload length in elements.
    pub elements: usize,
    /// Whether payload values are staged as two's-complement fields.
    pub signed: bool,
}

/// A compiled kernel: the encoded split program plus everything needed
/// to synthesize per-request input stubs without recompiling — drop-in
/// for [`SplitJob`] consumers (resident program caches, the serving
/// engine) and for monolithic [`ExecJob`] consumers alike.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    split: SplitJob,
    input_slots: Vec<InputSlot>,
    default_input: Vec<u8>,
    depth: usize,
}

impl CompiledKernel {
    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.split.name
    }

    /// The split program (setup ‖ body, with readbacks and staged data).
    pub fn split(&self) -> &SplitJob {
        &self.split
    }

    /// Consumes the kernel into its [`SplitJob`].
    pub fn into_split_job(self) -> SplitJob {
        self.split
    }

    /// The split program's stable signature (program-cache key).
    pub fn signature(&self) -> JobSignature {
        self.split.signature()
    }

    /// The per-request input registers, in declaration order.
    pub fn input_slots(&self) -> &[InputSlot] {
        &self.input_slots
    }

    /// The encoded input stub carrying the kernel's declared default
    /// payloads (what the monolithic job form runs).
    pub fn default_input_program(&self) -> &[u8] {
        &self.default_input
    }

    /// Encodes a halt-free input stub for one request: one payload per
    /// input slot, in declaration order. Cheap enough for per-request
    /// serving use — no recompilation, just `wimm` staging.
    ///
    /// # Errors
    ///
    /// Returns shape diagnostics on payload count/length mismatches and
    /// range diagnostics for values that do not fit the tile depth.
    pub fn input_program(&self, payloads: &[Vec<i64>]) -> crate::Result<Vec<u8>> {
        if payloads.len() != self.input_slots.len() {
            return Err(CompileError::InputCount {
                expected: self.input_slots.len(),
                found: payloads.len(),
            });
        }
        let mut p = Program::new();
        for (slot, payload) in self.input_slots.iter().zip(payloads) {
            if payload.len() != slot.elements {
                return Err(CompileError::InputShape {
                    slot: slot.name.clone(),
                    expected: slot.elements,
                    found: payload.len(),
                });
            }
            for (e, &v) in payload.iter().enumerate() {
                p.push(Instruction::WriteImm {
                    pipe: PipelineId(slot.pipe),
                    vr: Vr(slot.vr),
                    element: e as u8,
                    value: stage_field(v, slot.signed, self.depth)?,
                });
            }
        }
        Ok(encode_program(&p))
    }

    /// The monolithic [`ExecJob`] for the default payloads: setup ‖
    /// default input ‖ body, byte-concatenated.
    pub fn exec_job(&self) -> ExecJob {
        self.split.full_job(&self.default_input)
    }

    /// Instructions in the encoded setup section.
    pub fn setup_instructions(&self) -> usize {
        self.split.setup.len() / RECORD_SIZE
    }

    /// Instructions in the default input stub.
    pub fn input_instructions(&self) -> usize {
        self.default_input.len() / RECORD_SIZE
    }

    /// Instructions in the encoded body (including the `halt`).
    pub fn body_instructions(&self) -> usize {
        self.split.body.len() / RECORD_SIZE
    }
}

pub(crate) fn lower(ir: &KernelIr, alloc: &Allocation) -> crate::Result<CompiledKernel> {
    let depth = ir.tile.functional_depth;
    let elements = ir.tile.functional_elements as u64;
    let reg = |v: crate::ir::Value| Vr(alloc.vr[v.0 as usize]);
    let pipe = |v: crate::ir::Value| PipelineId(ir.info(v).pipe);

    // Setup: vACores (stage + allocate + program), then initializers in
    // declaration order.
    let mut data = SideChannel::new();
    let mut setup = Program::new();
    for (i, vc) in ir.vacores.iter().enumerate() {
        let matrix_handle = data
            .stage_matrix(vc.matrix.clone())
            .map_err(|e| CompileError::Staging(e.to_string()))?;
        setup.push(Instruction::AllocVaCore {
            vacore: VaCoreId(i as u8),
            element_bits: vc.element_bits,
            bits_per_cell: vc.bits_per_cell,
            input_bits: vc.input_bits,
            input_signed: vc.input_signed,
        });
        setup.push(Instruction::ProgMatrix {
            vacore: VaCoreId(i as u8),
            matrix_handle,
        });
    }
    for item in &ir.setup {
        let dst = item.dst();
        match item {
            SetupItem::ConstU { cells, .. } => {
                for &(element, value) in cells {
                    setup.push(Instruction::WriteImm {
                        pipe: pipe(dst),
                        vr: reg(dst),
                        element,
                        value: stage_field(value as i64, false, depth)?,
                    });
                }
            }
            SetupItem::ConstS { cells, .. } => {
                for &(element, value) in cells {
                    setup.push(Instruction::WriteImm {
                        pipe: pipe(dst),
                        vr: reg(dst),
                        element,
                        value: stage_field(value, true, depth)?,
                    });
                }
            }
            SetupItem::AddrTable { entries, .. } => {
                for entry in entries {
                    let address =
                        u64::from(alloc.vr[entry.slot.0 as usize]) * elements + entry.slot_element;
                    setup.push(Instruction::WriteImm {
                        pipe: pipe(dst),
                        vr: reg(dst),
                        element: entry.element,
                        value: stage_field(address as i64, false, depth)?,
                    });
                }
            }
        }
    }

    // Input stub: the declared defaults, recorded per slot so requests
    // can restage without recompiling.
    let mut input_slots = Vec::with_capacity(ir.inputs.len());
    let mut input = Program::new();
    for decl in &ir.inputs {
        let info = ir.info(decl.value);
        input_slots.push(InputSlot {
            name: info.name.clone(),
            pipe: info.pipe,
            vr: alloc.vr[decl.value.0 as usize],
            elements: decl.elements,
            signed: decl.signed,
        });
        for (e, &v) in decl.default.iter().enumerate() {
            input.push(Instruction::WriteImm {
                pipe: pipe(decl.value),
                vr: reg(decl.value),
                element: e as u8,
                value: stage_field(v, decl.signed, depth)?,
            });
        }
    }

    // Body: one instruction per op, then the terminating halt.
    let mut body = Program::new();
    for op in &ir.body {
        body.push(match *op {
            BodyOp::Bool { op, dst, a, b } => Instruction::Bool {
                op,
                pipe: pipe(dst),
                dst: reg(dst),
                a: reg(a),
                b: reg(b),
            },
            BodyOp::Add { dst, a, b } => Instruction::Add {
                pipe: pipe(dst),
                dst: reg(dst),
                a: reg(a),
                b: reg(b),
            },
            BodyOp::Sub { dst, a, b } => Instruction::Sub {
                pipe: pipe(dst),
                dst: reg(dst),
                a: reg(a),
                b: reg(b),
            },
            BodyOp::Shift {
                left: true,
                dst,
                src,
                amount,
            } => Instruction::ShiftLeft {
                pipe: pipe(dst),
                dst: reg(dst),
                src: reg(src),
                amount,
            },
            BodyOp::Shift {
                left: false,
                dst,
                src,
                amount,
            } => Instruction::ShiftRight {
                pipe: pipe(dst),
                dst: reg(dst),
                src: reg(src),
                amount,
            },
            BodyOp::Mov { dst, src } if ir.info(dst).pipe == ir.info(src).pipe => {
                Instruction::CopyVr {
                    pipe: pipe(dst),
                    dst: reg(dst),
                    src: reg(src),
                }
            }
            BodyOp::Mov { dst, src } => Instruction::CopyAcross {
                src_pipe: pipe(src),
                src: reg(src),
                dst_pipe: pipe(dst),
                dst: reg(dst),
            },
            BodyOp::Gather {
                dst,
                addr,
                table_pipe,
            } => Instruction::ElementLoad {
                pipe: pipe(dst),
                addr: reg(addr),
                table_pipe: PipelineId(table_pipe),
                dst: reg(dst),
            },
            BodyOp::Mvm {
                vacore,
                input,
                dst,
                early_levels,
            } => Instruction::Mvm {
                vacore: VaCoreId(vacore.0),
                input_pipe: pipe(input),
                input_vr: reg(input),
                dst_pipe: pipe(dst),
                dst_vr: reg(dst),
                early_levels,
            },
        });
    }
    body.push(Instruction::Halt);

    let readbacks = ir
        .readbacks
        .iter()
        .map(|rb| Readback {
            label: rb.label.clone(),
            pipe: ir.info(rb.value).pipe,
            vr: alloc.vr[rb.value.0 as usize],
            elements: rb.elements,
            signed: rb.signed,
        })
        .collect();

    Ok(CompiledKernel {
        split: SplitJob {
            name: ir.name.clone(),
            tile: ir.tile.clone(),
            setup: encode_program(&setup),
            body: encode_program(&body),
            data,
            readbacks,
        },
        input_slots,
        default_input: encode_program(&input),
        depth,
    })
}
