//! The IR builder: the only way to construct a [`KernelIr`], plus the
//! shared bit-plane emission primitives the app kernels used to
//! copy-adapt by hand.
//!
//! The builder is deliberately permissive — it records what it is told
//! and returns handles — and the verifier pass is the gatekeeper: a
//! malformed kernel builds fine and then fails
//! [`KernelIr::verify`]/[`KernelIr::compile`] with a structured
//! diagnostic instead of panicking mid-emission.

use darth_isa::instruction::IsaBoolOp;
use darth_pum::hct::HctConfig;

use crate::ir::{
    AddrEntry, BodyOp, InputDecl, KernelIr, ReadbackDecl, SetupItem, Storage, VaCore, VaCoreSpec,
    Value, ValueInfo,
};

/// Builds a [`KernelIr`] incrementally: declare vACores, constants,
/// slots and inputs, append compute ops (each op method returns the SSA
/// temp it defines), then [`finish`](KirBuilder::finish).
#[derive(Debug, Clone)]
pub struct KirBuilder {
    ir: KernelIr,
}

impl KirBuilder {
    /// Starts a kernel targeting `tile`.
    pub fn new(name: impl Into<String>, tile: HctConfig) -> Self {
        KirBuilder {
            ir: KernelIr {
                name: name.into(),
                tile,
                values: Vec::new(),
                vacores: Vec::new(),
                setup: Vec::new(),
                inputs: Vec::new(),
                body: Vec::new(),
                readbacks: Vec::new(),
            },
        }
    }

    fn value(&mut self, name: String, pipe: u16, storage: Storage, width: usize) -> Value {
        let id = self.ir.values.len() as u32;
        self.ir.values.push(ValueInfo {
            name,
            pipe,
            storage,
            width,
        });
        Value(id)
    }

    /// The pipeline a value lives in.
    pub fn value_pipe(&self, v: Value) -> u16 {
        self.ir.info(v).pipe
    }

    /// Declares a vACore: stages `matrix` through the side channel and
    /// programs it at setup time. `terms = ⌈element_bits /
    /// bits_per_cell⌉ × input_bits` sizes every MVM landing cluster.
    pub fn vacore(
        &mut self,
        matrix: Vec<Vec<i64>>,
        element_bits: u8,
        bits_per_cell: u8,
        input_bits: u8,
        input_signed: bool,
    ) -> VaCore {
        let id = self.ir.vacores.len() as u8;
        self.ir.vacores.push(VaCoreSpec {
            matrix,
            element_bits,
            bits_per_cell,
            input_bits,
            input_signed,
        });
        VaCore(id)
    }

    /// Declares a persistent slot: a named register placed by the
    /// allocator, alive for the whole program, writable by body ops.
    pub fn slot(&mut self, pipe: u16, name: impl Into<String>) -> Value {
        self.value(name.into(), pipe, Storage::Slot, 1)
    }

    /// Declares a persistent slot pinned to architectural register
    /// `vr` — for self-addressing tables whose global addresses
    /// (`register × elements + element`) are program data.
    pub fn fixed_slot(&mut self, pipe: u16, vr: u8, name: impl Into<String>) -> Value {
        self.value(name.into(), pipe, Storage::Fixed(vr), 1)
    }

    /// Declares an unsigned constant register initialized at setup time
    /// with `cells` of `(element, value)`.
    pub fn const_u(&mut self, pipe: u16, name: impl Into<String>, cells: &[(u8, u64)]) -> Value {
        let dst = self.slot(pipe, name);
        self.ir.setup.push(SetupItem::ConstU {
            dst,
            cells: cells.to_vec(),
        });
        dst
    }

    /// [`const_u`](KirBuilder::const_u) pinned to register `vr`.
    pub fn const_u_at(
        &mut self,
        pipe: u16,
        vr: u8,
        name: impl Into<String>,
        cells: &[(u8, u64)],
    ) -> Value {
        let dst = self.fixed_slot(pipe, vr, name);
        self.ir.setup.push(SetupItem::ConstU {
            dst,
            cells: cells.to_vec(),
        });
        dst
    }

    /// Declares a signed constant register; cells are staged as
    /// two's-complement fields at the tile depth.
    pub fn const_s(&mut self, pipe: u16, name: impl Into<String>, cells: &[(u8, i64)]) -> Value {
        let dst = self.slot(pipe, name);
        self.ir.setup.push(SetupItem::ConstS {
            dst,
            cells: cells.to_vec(),
        });
        dst
    }

    /// Declares a gather-address table: element `element` holds the
    /// global address of `slot[slot_element]`, resolved against the
    /// allocator's placement at lowering time.
    pub fn addr_table(
        &mut self,
        pipe: u16,
        name: impl Into<String>,
        entries: &[(u8, Value, u64)],
    ) -> Value {
        let dst = self.slot(pipe, name);
        self.ir.setup.push(SetupItem::AddrTable {
            dst,
            entries: entries
                .iter()
                .map(|&(element, slot, slot_element)| AddrEntry {
                    element,
                    slot,
                    slot_element,
                })
                .collect(),
        });
        dst
    }

    /// Declares a per-request input register: requests write `default.len()`
    /// values into it ([`CompiledKernel::input_program`]); the monolithic
    /// job form carries `default`.
    ///
    /// [`CompiledKernel::input_program`]: crate::CompiledKernel::input_program
    pub fn input(
        &mut self,
        pipe: u16,
        name: impl Into<String>,
        signed: bool,
        default: &[i64],
    ) -> Value {
        let value = self.value(name.into(), pipe, Storage::Input, 1);
        self.ir.inputs.push(InputDecl {
            value,
            elements: default.len(),
            signed,
            default: default.to_vec(),
        });
        value
    }

    fn temp(&mut self, pipe: u16, kind: &str) -> Value {
        let n = self.ir.values.len();
        self.value(format!("%{n}.{kind}"), pipe, Storage::Temp, 1)
    }

    /// Element-wise boolean gate into a fresh temp.
    pub fn bool_op(&mut self, op: IsaBoolOp, a: Value, b: Value) -> Value {
        let dst = self.temp(self.value_pipe(a), op.mnemonic());
        self.ir.body.push(BodyOp::Bool { op, dst, a, b });
        dst
    }

    /// Element-wise boolean gate into an existing persistent slot.
    pub fn bool_into(&mut self, dst: Value, op: IsaBoolOp, a: Value, b: Value) {
        self.ir.body.push(BodyOp::Bool { op, dst, a, b });
    }

    /// Element-wise add into a fresh temp.
    pub fn add(&mut self, a: Value, b: Value) -> Value {
        let dst = self.temp(self.value_pipe(a), "add");
        self.ir.body.push(BodyOp::Add { dst, a, b });
        dst
    }

    /// Element-wise add into an existing persistent slot.
    pub fn add_into(&mut self, dst: Value, a: Value, b: Value) {
        self.ir.body.push(BodyOp::Add { dst, a, b });
    }

    /// Element-wise subtract into a fresh temp.
    pub fn sub(&mut self, a: Value, b: Value) -> Value {
        let dst = self.temp(self.value_pipe(a), "sub");
        self.ir.body.push(BodyOp::Sub { dst, a, b });
        dst
    }

    /// Left shift by an immediate into a fresh temp.
    pub fn shl(&mut self, src: Value, amount: u8) -> Value {
        let dst = self.temp(self.value_pipe(src), "shl");
        self.ir.body.push(BodyOp::Shift {
            left: true,
            dst,
            src,
            amount,
        });
        dst
    }

    /// Right shift by an immediate into a fresh temp.
    pub fn shr(&mut self, src: Value, amount: u8) -> Value {
        let dst = self.temp(self.value_pipe(src), "shr");
        self.ir.body.push(BodyOp::Shift {
            left: false,
            dst,
            src,
            amount,
        });
        dst
    }

    /// Copies `src` into a fresh temp in `pipe` (`copy` within a
    /// pipeline, `copyx` across).
    pub fn copy_to(&mut self, pipe: u16, src: Value) -> Value {
        let dst = self.temp(pipe, "copy");
        self.ir.body.push(BodyOp::Mov { dst, src });
        dst
    }

    /// Copies `src` into an existing persistent slot.
    pub fn mov(&mut self, dst: Value, src: Value) {
        self.ir.body.push(BodyOp::Mov { dst, src });
    }

    /// `eload` gather into a fresh temp alongside `addr`: `dst[e] =`
    /// the table pipeline's register file at global address `addr[e]`.
    pub fn gather(&mut self, addr: Value, table_pipe: u16) -> Value {
        let dst = self.temp(self.value_pipe(addr), "eload");
        self.ir.body.push(BodyOp::Gather {
            dst,
            addr,
            table_pipe,
        });
        dst
    }

    /// `eload` gather into an existing persistent slot (the address
    /// register may be the destination itself — the datapath reads
    /// addresses before writing).
    pub fn gather_into(&mut self, dst: Value, addr: Value, table_pipe: u16) {
        self.ir.body.push(BodyOp::Gather {
            dst,
            addr,
            table_pipe,
        });
    }

    /// Analog MVM: reduces `input` through `vacore`, landing in a fresh
    /// cluster temp in `land_pipe` (`terms + 2` contiguous registers;
    /// reading the temp reads the accumulator).
    pub fn mvm(&mut self, vacore: VaCore, input: Value, land_pipe: u16) -> Value {
        let width = self
            .ir
            .vacores
            .get(vacore.0 as usize)
            .map_or(1, |vc| vc.terms() + 2);
        let n = self.ir.values.len();
        let dst = self.value(format!("%{n}.mvm"), land_pipe, Storage::Temp, width);
        self.ir.body.push(BodyOp::Mvm {
            vacore,
            input,
            dst,
            early_levels: 0,
        });
        dst
    }

    /// Declares an output: read `elements` cells of persistent slot
    /// `value` after the body halts.
    pub fn readback(
        &mut self,
        label: impl Into<String>,
        value: Value,
        elements: usize,
        signed: bool,
    ) {
        self.ir.readbacks.push(ReadbackDecl {
            label: label.into(),
            value,
            elements,
            signed,
        });
    }

    /// Finishes the kernel. Run [`KernelIr::verify`] or
    /// [`KernelIr::compile`] next.
    pub fn finish(self) -> KernelIr {
        self.ir
    }
}

/// Unpacks the bit planes of `src`: for each plane `k`, shift right by
/// `k`, mask with `ones` (a 1 in every live element), and store into
/// `planes[k]` — the canonical DARTH-PUM staging pattern feeding
/// bit-serial gathers. Three instructions per plane.
pub fn unpack_bit_planes(b: &mut KirBuilder, src: Value, ones: Value, planes: &[Value]) {
    for (k, &plane) in planes.iter().enumerate() {
        let shifted = b.shr(src, k as u8);
        let bit = b.bool_op(IsaBoolOp::And, shifted, ones);
        b.mov(plane, bit);
    }
}

/// Repacks gathered bit planes into packed words: gathers plane `k`
/// through address table `addrs[k]`, shifts it to position, ORs the
/// planes together, and masks the result with `mask` into `dst` (the
/// mask keeps dead elements inside downstream address spaces). One
/// gather per plane plus a copy/shift/or reduction and the final mask.
pub fn pack_bit_planes(
    b: &mut KirBuilder,
    addrs: &[Value],
    table_pipe: u16,
    mask: Value,
    dst: Value,
) {
    let planes: Vec<Value> = addrs.iter().map(|&a| b.gather(a, table_pipe)).collect();
    let Some((&first, rest)) = planes.split_first() else {
        return;
    };
    let mut acc = b.copy_to(b.value_pipe(first), first);
    for (k, &plane) in rest.iter().enumerate() {
        let shifted = b.shl(plane, (k + 1) as u8);
        acc = b.bool_op(IsaBoolOp::Or, acc, shifted);
    }
    b.bool_into(dst, IsaBoolOp::And, acc, mask);
}
