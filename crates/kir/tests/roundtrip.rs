//! Property suite for the compiler's structural guarantees: random
//! well-formed kernels must compile to split programs whose encoded
//! sections survive encode → decode → re-encode byte-identically, whose
//! setup/input sections are halt-free with a halting body, and whose
//! monolithic job is exactly the byte concatenation of the three
//! sections ([`SplitJob::full_job`]'s contract). A second property pins
//! the allocator's failure mode: kernels that cannot fit the register
//! file return [`CompileError::RegisterPressure`], never a panic.
//!
//! [`SplitJob::full_job`]: darth_pum::eval::SplitJob::full_job
//! [`CompileError::RegisterPressure`]: darth_kir::CompileError::RegisterPressure

use darth_isa::encode::{decode_program, encode_program};
use darth_isa::instruction::IsaBoolOp;
use darth_kir::{CompileError, KernelIr, KirBuilder};
use darth_pum::hct::HctConfig;
use proptest::prelude::*;

fn tile(pipes: usize, vrs: usize) -> HctConfig {
    HctConfig {
        functional_pipelines: pipes,
        functional_depth: 16,
        functional_elements: 8,
        functional_vrs: vrs,
        functional_ace_arrays: 1,
        ..HctConfig::small_test()
    }
}

/// Builds a random well-formed kernel: a deterministic chain of
/// `n_ops` DCE ops (shifts, gates, adds/subs against per-pipe
/// constants, cross-pipe copies) threaded from one input register into
/// a readback slot. The builder API cannot express ill-formed chains
/// here, so every sampled kernel must verify and compile.
fn random_kernel(seed: u64, pipes: usize, n_ops: usize) -> KernelIr {
    let mut rng = TestRng::seed_from(seed);
    let mut b = KirBuilder::new(format!("prop-{seed:x}"), tile(pipes, 12));
    let consts: Vec<_> = (0..pipes)
        .map(|p| b.const_u(p as u16, format!("c{p}"), &[(0, 3), (1, 5), (2, 1)]))
        .collect();
    let mut cur = b.input(0, "x", true, &[1, -2, 3, 4]);
    for _ in 0..n_ops {
        let pipe = b.value_pipe(cur) as usize;
        cur = match rng.next_u64() % 6 {
            0 => b.shl(cur, (rng.next_u64() % 4) as u8),
            1 => b.shr(cur, (rng.next_u64() % 4) as u8),
            2 => b.bool_op(IsaBoolOp::Xor, cur, consts[pipe]),
            3 => b.add(cur, consts[pipe]),
            4 => b.sub(cur, consts[pipe]),
            _ => b.copy_to(((pipe + 1) % pipes) as u16, cur),
        };
    }
    let out = b.slot(b.value_pipe(cur), "out");
    b.mov(out, cur);
    b.readback("out", out, 4, false);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn random_kernels_compile_to_round_trip_clean_split_programs(
        seed in 0u64..u64::MAX,
        pipes in 1usize..4,
        n_ops in 0usize..25,
    ) {
        let ir = random_kernel(seed, pipes, n_ops);
        prop_assert!(ir.verify().is_ok());
        let compiled = ir.compile().expect("well-formed kernels compile");
        let split = compiled.split();
        prop_assert!(split.check_invariants().is_ok());

        // Section structure: halt-free setup and input stub, halting
        // body — the serving engine's resident-program contract.
        let setup = decode_program(&split.setup).expect("setup decodes");
        let input = decode_program(compiled.default_input_program()).expect("input decodes");
        let body = decode_program(&split.body).expect("body decodes");
        prop_assert!(setup.is_halt_free());
        prop_assert!(input.is_halt_free());
        prop_assert!(body.ends_with_halt());
        // One instruction per body op plus the halt.
        prop_assert_eq!(body.len(), ir.body_ops() + 1);

        // Encode → decode → re-encode is the identity on every section.
        prop_assert_eq!(encode_program(&setup), split.setup.clone());
        prop_assert_eq!(
            encode_program(&input),
            compiled.default_input_program().to_vec()
        );
        prop_assert_eq!(encode_program(&body), split.body.clone());

        // The monolithic job is exactly setup ‖ input ‖ body, and the
        // concatenation still decodes as one halting program.
        let job = compiled.exec_job();
        let mut concat = split.setup.clone();
        concat.extend_from_slice(compiled.default_input_program());
        concat.extend_from_slice(&split.body);
        prop_assert_eq!(job.program.clone(), concat);
        prop_assert!(job.decoded_program().expect("job decodes").ends_with_halt());

        // Compilation is deterministic: an identical IR yields the same
        // bytes and the same cache signature.
        let again = random_kernel(seed, pipes, n_ops)
            .compile()
            .expect("recompiles");
        prop_assert_eq!(again.split().setup.clone(), split.setup.clone());
        prop_assert_eq!(again.split().body.clone(), split.body.clone());
        prop_assert_eq!(again.signature(), compiled.signature());
    }

    #[test]
    fn oversized_kernels_spill_gracefully(n_slots in 0usize..48) {
        // 6 vrs → 5 allocatable; each kernel wants `n_slots` persistent
        // slots plus the input register.
        let mut b = KirBuilder::new("pressure", tile(1, 6));
        let x = b.input(0, "x", false, &[1]);
        let mut last = x;
        for i in 0..n_slots {
            let s = b.slot(0, format!("s{i}"));
            b.mov(s, x);
            last = s;
        }
        b.readback("last", last, 1, false);
        match b.finish().compile() {
            Ok(_) => prop_assert!(n_slots < 5, "{n_slots} slots cannot fit"),
            Err(CompileError::RegisterPressure { pipe, needed, available }) => {
                prop_assert!(n_slots >= 5, "{n_slots} slots should fit");
                prop_assert_eq!(pipe, 0);
                prop_assert_eq!(needed, 1);
                prop_assert_eq!(available, 0);
            }
            Err(other) => prop_assert!(false, "unexpected diagnostic: {other}"),
        }
    }
}
