//! Analog-to-digital converters: SAR and ramp.
//!
//! Section 2.2.1 and §7.3 of the paper: SAR ADCs binary-search one bitline
//! at a time (1-cycle conversions in Table 2, multiplexed across bitlines),
//! while a ramp ADC sweeps a shared reference over all `2^bits` levels and
//! digitizes *every* bitline in parallel (256 cycles at 8 bits), with the
//! option to terminate early when only a few levels matter — the AES
//! MixColumns trick of §5.3.

use crate::{Error, Result};
use darth_reram::{Cycles, PicoJoules};
use serde::{Deserialize, Serialize};

/// The converter architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdcKind {
    /// Successive-approximation register: `1` cycle per conversion,
    /// multiplexed across bitlines, 1.5 mW (Tables 2 and 3).
    Sar,
    /// Ramp: `2^bits` cycles per full conversion, all bitlines in
    /// parallel, 1.2 mW, early-terminable.
    Ramp,
}

impl AdcKind {
    /// Registry slug fragment (`"sar"` / `"ramp"`) — the single source
    /// for the `-sar`/`-ramp` suffixes in evaluation model names.
    pub fn slug(self) -> &'static str {
        match self {
            AdcKind::Sar => "sar",
            AdcKind::Ramp => "ramp",
        }
    }

    /// ADC units provisioned per analog compute element (Table 2).
    pub fn units_per_ace(self) -> usize {
        match self {
            AdcKind::Sar => 2,
            AdcKind::Ramp => 1,
        }
    }

    /// Power draw of one ADC unit in mW (Table 3).
    pub fn power_mw(self) -> f64 {
        match self {
            AdcKind::Sar => 1.5,
            AdcKind::Ramp => 1.2,
        }
    }
}

/// A quantizer with the latency/energy behaviour of its [`AdcKind`].
///
/// Codes are signed (differential-pair bitlines produce signed net
/// currents); the LSB is expressed in *weight units* — the current of one
/// fully-on device under a full input — so a `lsb_units` of 1.0 digitizes
/// exact dot-product integers as long as analog error stays below half a
/// unit, which is precisely the §4.3 compensation target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adc {
    kind: AdcKind,
    bits: u8,
    lsb_units: f64,
}

impl Adc {
    /// Creates an ADC.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero resolution, a resolution
    /// above 16 bits, or a non-positive LSB.
    pub fn new(kind: AdcKind, bits: u8, lsb_units: f64) -> Result<Self> {
        if bits == 0 || bits > 16 {
            return Err(Error::InvalidConfig("ADC resolution must be in 1..=16"));
        }
        if lsb_units <= 0.0 {
            return Err(Error::InvalidConfig("ADC LSB must be positive"));
        }
        Ok(Adc {
            kind,
            bits,
            lsb_units,
        })
    }

    /// The converter architecture.
    pub fn kind(&self) -> AdcKind {
        self.kind
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// LSB size in weight units.
    pub fn lsb_units(&self) -> f64 {
        self.lsb_units
    }

    /// Largest positive code.
    pub fn code_max(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    /// Most negative code.
    pub fn code_min(&self) -> i64 {
        -(1i64 << (self.bits - 1))
    }

    /// Quantizes a bitline value (in weight units) to the nearest code,
    /// saturating at the rails.
    pub fn quantize_units(&self, units: f64) -> i64 {
        let code = (units / self.lsb_units).round() as i64;
        code.clamp(self.code_min(), self.code_max())
    }

    /// Converts a code back to weight units.
    pub fn code_to_units(&self, code: i64) -> f64 {
        code as f64 * self.lsb_units
    }

    /// Cycles to digitize `bitlines` outputs.
    ///
    /// * SAR: `ceil(bitlines / units)` one-cycle conversions through the
    ///   analog multiplexer.
    /// * Ramp: one shared sweep covers every bitline; `early_levels` caps
    ///   the sweep when the application needs only the first few levels
    ///   (AES terminates after 4 of 256).
    pub fn readout_cycles(&self, bitlines: usize, early_levels: Option<u16>) -> Cycles {
        match self.kind {
            AdcKind::Sar => {
                let units = self.kind.units_per_ace();
                Cycles::new(bitlines.div_ceil(units) as u64)
            }
            AdcKind::Ramp => {
                let full = 1u64 << self.bits;
                let levels = early_levels.map_or(full, |l| u64::from(l).min(full));
                Cycles::new(levels.max(1))
            }
        }
    }

    /// Energy to digitize `bitlines` outputs over the given readout.
    ///
    /// SAR units burn power only while converting; the ramp converter's
    /// shared reference generator burns power for the whole sweep.
    pub fn readout_energy(&self, bitlines: usize, cycles: Cycles) -> PicoJoules {
        match self.kind {
            AdcKind::Sar => {
                // one pJ-scale conversion per bitline
                PicoJoules::new(self.kind.power_mw() * bitlines as f64)
            }
            AdcKind::Ramp => PicoJoules::from_power(self.kind.power_mw(), cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sar() -> Adc {
        Adc::new(AdcKind::Sar, 8, 1.0).expect("valid")
    }

    fn ramp() -> Adc {
        Adc::new(AdcKind::Ramp, 8, 1.0).expect("valid")
    }

    #[test]
    fn construction_validation() {
        assert!(Adc::new(AdcKind::Sar, 0, 1.0).is_err());
        assert!(Adc::new(AdcKind::Sar, 17, 1.0).is_err());
        assert!(Adc::new(AdcKind::Sar, 8, 0.0).is_err());
        assert!(Adc::new(AdcKind::Sar, 8, -1.0).is_err());
    }

    #[test]
    fn quantization_rounds_and_saturates() {
        let adc = sar();
        assert_eq!(adc.quantize_units(3.2), 3);
        assert_eq!(adc.quantize_units(3.6), 4);
        assert_eq!(adc.quantize_units(-3.6), -4);
        assert_eq!(adc.quantize_units(0.49), 0);
        assert_eq!(adc.quantize_units(1e9), 127);
        assert_eq!(adc.quantize_units(-1e9), -128);
    }

    #[test]
    fn sub_unit_lsb() {
        let adc = Adc::new(AdcKind::Sar, 8, 0.5).expect("valid");
        assert_eq!(adc.quantize_units(3.2), 6);
        assert!((adc.code_to_units(6) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sar_readout_is_muxed() {
        let adc = sar();
        // 64 bitlines through 2 SAR units at 1 cycle each = 32 cycles
        assert_eq!(adc.readout_cycles(64, None).get(), 32);
        assert_eq!(adc.readout_cycles(1, None).get(), 1);
        // early termination does not apply to SAR
        assert_eq!(adc.readout_cycles(64, Some(4)).get(), 32);
    }

    #[test]
    fn ramp_readout_is_parallel_but_slow() {
        let adc = ramp();
        assert_eq!(adc.readout_cycles(64, None).get(), 256);
        assert_eq!(adc.readout_cycles(1, None).get(), 256);
    }

    #[test]
    fn ramp_early_termination() {
        let adc = ramp();
        // AES MixColumns: 4 levels suffice (§7.3), 256 -> 4 cycles
        assert_eq!(adc.readout_cycles(64, Some(4)).get(), 4);
        // cannot exceed the full sweep
        assert_eq!(adc.readout_cycles(64, Some(10_000)).get(), 256);
    }

    #[test]
    fn energy_sar_scales_with_bitlines() {
        let adc = sar();
        let e64 = adc.readout_energy(64, adc.readout_cycles(64, None));
        let e8 = adc.readout_energy(8, adc.readout_cycles(8, None));
        assert!((e64.get() - 1.5 * 64.0).abs() < 1e-9);
        assert!(e8 < e64);
    }

    #[test]
    fn energy_ramp_scales_with_sweep() {
        let adc = ramp();
        let full = adc.readout_energy(64, adc.readout_cycles(64, None));
        let early = adc.readout_energy(64, adc.readout_cycles(64, Some(4)));
        assert!((full.get() - 1.2 * 256.0).abs() < 1e-9);
        assert!(early.get() < full.get() / 10.0);
    }

    #[test]
    fn units_per_ace_match_table2() {
        assert_eq!(AdcKind::Sar.units_per_ace(), 2);
        assert_eq!(AdcKind::Ramp.units_per_ace(), 1);
    }
}
