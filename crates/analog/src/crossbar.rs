//! The analog crossbar: conductance-programmed MVM with non-idealities.
//!
//! Figure 1 of the paper: matrix values are programmed as conductances; an
//! input voltage vector applied to the wordlines produces, per bitline, a
//! current equal to the dot product of the inputs with that column's
//! conductances. This module models the crossbar with:
//!
//! * **Number representations** (Figure 3): differential cell pairs (two
//!   physical devices per logical weight, opposite-polarity contributions)
//!   or offset subtraction (a single device per weight, with the zero point
//!   shifted to mid-range and subtracted after the ADC).
//! * **Programming noise** from the ReRAM substrate's write–verify model.
//! * **Read noise** per device per MVM.
//! * **IR drop** (parasitic resistance): current flowing down a bitline
//!   sees distributed wire resistance, attenuating large accumulated
//!   currents quadratically — the effect the §4.3 remapping suppresses.

use crate::{Error, Result};
use darth_reram::{DeviceParams, NoiseRng, ReramArray};
use serde::{Deserialize, Serialize};

/// How signed weights map onto strictly positive conductances (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Representation {
    /// Two devices per weight; the bitline pair is subtracted in analog.
    /// More resilient to parasitics (§2.2.1); DARTH-PUM's default.
    DifferentialPair,
    /// One device per weight, programmed to `weight + offset`; the offset
    /// is subtracted digitally after the ADC.
    OffsetSubtraction,
}

/// Crossbar geometry, device configuration and parasitic coefficients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossbarConfig {
    /// Wordlines (matrix rows).
    pub rows: usize,
    /// Logical bitlines (matrix columns).
    pub cols: usize,
    /// Bits per cell for weight storage (1 = SLC).
    pub bits_per_cell: u8,
    /// Signed-weight representation.
    pub representation: Representation,
    /// Device population parameters (noise sigmas live here).
    pub device: DeviceParams,
    /// IR-drop coefficient: fractional current loss per unit of
    /// accumulated line current (normalised to `g_on`), applied
    /// quadratically. Zero disables the parasitic model.
    pub ir_drop_alpha: f64,
    /// Conductance range scale factor in `(0, 1]`; the §4.3 scheme halves
    /// the range (0.5) to shrink noise magnitude.
    pub range_scale: f64,
}

impl CrossbarConfig {
    /// A noise-free configuration for functional verification.
    pub fn ideal(rows: usize, cols: usize) -> Self {
        CrossbarConfig {
            rows,
            cols,
            bits_per_cell: 4,
            representation: Representation::DifferentialPair,
            device: DeviceParams::ideal(4).expect("4 bits per cell is valid"),
            ir_drop_alpha: 0.0,
            range_scale: 1.0,
        }
    }

    /// The paper's evaluation configuration: 64×64, MILO-style noise,
    /// differential pairs, IR drop enabled.
    pub fn evaluation(bits_per_cell: u8) -> Result<Self> {
        let mut device = DeviceParams::mlc(bits_per_cell).map_err(Error::Reram)?;
        device.program_sigma = 0.02;
        device.read_sigma = 0.005;
        Ok(CrossbarConfig {
            rows: 64,
            cols: 64,
            bits_per_cell,
            representation: Representation::DifferentialPair,
            device,
            ir_drop_alpha: 0.0008,
            range_scale: 1.0,
        })
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for unusable values.
    pub fn validate(&self) -> Result<()> {
        if self.rows == 0 || self.cols == 0 {
            return Err(Error::InvalidConfig("crossbar dimensions must be nonzero"));
        }
        if self.bits_per_cell == 0 || self.bits_per_cell > 8 {
            return Err(Error::InvalidConfig("bits per cell must be in 1..=8"));
        }
        if !(self.range_scale > 0.0 && self.range_scale <= 1.0) {
            return Err(Error::InvalidConfig("range_scale must be in (0, 1]"));
        }
        if self.ir_drop_alpha < 0.0 {
            return Err(Error::InvalidConfig("ir_drop_alpha must be non-negative"));
        }
        Ok(())
    }

    /// Largest representable weight magnitude.
    pub fn max_magnitude(&self) -> i64 {
        let levels = (1i64 << self.bits_per_cell) - 1;
        match self.representation {
            Representation::DifferentialPair => levels,
            // offset subtraction splits the level range into +/- halves
            Representation::OffsetSubtraction => levels / 2,
        }
    }

    /// The digital offset added before programming under offset
    /// subtraction (zero for differential pairs).
    pub fn offset(&self) -> i64 {
        match self.representation {
            Representation::DifferentialPair => 0,
            Representation::OffsetSubtraction => ((1i64 << self.bits_per_cell) - 1) / 2,
        }
    }
}

/// A conductance-programmed crossbar.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Crossbar {
    config: CrossbarConfig,
    /// Positive-polarity devices (the only plane under offset subtraction).
    positive: ReramArray,
    /// Negative-polarity devices (differential pairs only).
    negative: Option<ReramArray>,
    /// The logical weights as programmed (for verification / re-slicing).
    weights: Vec<Vec<i64>>,
    programmed: bool,
}

impl Crossbar {
    /// Creates an erased crossbar.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for invalid configuration.
    pub fn new(config: CrossbarConfig) -> Result<Self> {
        config.validate()?;
        let mut device = config.device.clone();
        // Bits per cell of the device population must match the config.
        if device.bits_per_cell() != config.bits_per_cell {
            device = if device.program_sigma == 0.0 && device.read_sigma == 0.0 {
                DeviceParams::ideal(config.bits_per_cell).map_err(Error::Reram)?
            } else {
                let mut d = DeviceParams::mlc(config.bits_per_cell).map_err(Error::Reram)?;
                d.program_sigma = device.program_sigma;
                d.read_sigma = device.read_sigma;
                d.drift_nu = device.drift_nu;
                d.stuck_at_rate = device.stuck_at_rate;
                d
            };
        }
        let positive = ReramArray::new(config.rows, config.cols, device.clone())?;
        let negative = match config.representation {
            Representation::DifferentialPair => {
                Some(ReramArray::new(config.rows, config.cols, device)?)
            }
            Representation::OffsetSubtraction => None,
        };
        Ok(Crossbar {
            config,
            positive,
            negative,
            weights: Vec::new(),
            programmed: false,
        })
    }

    /// The crossbar's configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Whether a matrix has been programmed.
    pub fn is_programmed(&self) -> bool {
        self.programmed
    }

    /// The logical weights as last programmed (empty before programming).
    pub fn weights(&self) -> &[Vec<i64>] {
        &self.weights
    }

    /// The bitline current of one weight unit at *full* conductance range —
    /// the fixed reference an ADC's LSB is designed against. Deliberately
    /// excludes [`CrossbarConfig::range_scale`]: when the §4.3 scheme halves
    /// the range, measured values shrink relative to this unit, and the
    /// digital compensation factor restores them.
    pub fn unit_current(&self) -> f64 {
        let p = self.positive.params();
        (p.g_on - p.g_off) / ((p.levels() - 1) as f64).max(1.0)
    }

    /// Programs a signed weight matrix.
    ///
    /// Under differential pairs, `w >= 0` programs the positive device to
    /// level `w` and the negative device to 0, and vice versa. Under offset
    /// subtraction, `w + offset` is programmed into the single plane.
    ///
    /// # Errors
    ///
    /// * [`Error::ShapeMismatch`] for wrong matrix dimensions.
    /// * [`Error::WeightOutOfRange`] for unrepresentable weights.
    pub fn program(&mut self, matrix: &[Vec<i64>], rng: &mut NoiseRng) -> Result<()> {
        if matrix.len() != self.config.rows || matrix.iter().any(|r| r.len() != self.config.cols) {
            return Err(Error::ShapeMismatch {
                expected_rows: self.config.rows,
                expected_cols: self.config.cols,
                got_rows: matrix.len(),
                got_cols: matrix.first().map_or(0, |r| r.len()),
            });
        }
        let max = self.config.max_magnitude();
        for row in matrix {
            for &w in row {
                // `unsigned_abs`, not `abs`: `abs(i64::MIN)` overflows
                // (debug panic / release wrap) instead of rejecting.
                if w.unsigned_abs() > max as u64 {
                    return Err(Error::WeightOutOfRange {
                        weight: w,
                        max_magnitude: max,
                    });
                }
            }
        }
        for (r, row) in matrix.iter().enumerate() {
            for (c, &w) in row.iter().enumerate() {
                self.program_cell(r, c, w, rng)?;
            }
        }
        self.weights = matrix.to_vec();
        self.programmed = true;
        Ok(())
    }

    /// The checked device level(s) for one signed weight: `(positive
    /// plane, negative plane)` under differential pairs, the single
    /// offset-shifted plane level otherwise.
    ///
    /// The conversions are `try_from`, not `as`: a weight whose level
    /// leaves `u16` — in particular a negative post-offset level under
    /// offset subtraction — returns [`Error::WeightOutOfRange`] instead
    /// of wrapping into a huge device level. The public entry points'
    /// magnitude checks make such weights unreachable today; this keeps
    /// them errors rather than silent corruption if those checks drift.
    fn weight_levels(&self, w: i64) -> Result<(u16, Option<u16>)> {
        let out_of_range = || Error::WeightOutOfRange {
            weight: w,
            max_magnitude: self.config.max_magnitude(),
        };
        match self.config.representation {
            Representation::DifferentialPair => {
                let magnitude = u16::try_from(w.unsigned_abs()).map_err(|_| out_of_range())?;
                Ok(if w >= 0 {
                    (magnitude, Some(0))
                } else {
                    (0, Some(magnitude))
                })
            }
            Representation::OffsetSubtraction => {
                let level = w
                    .checked_add(self.config.offset())
                    .and_then(|level| u16::try_from(level).ok())
                    .ok_or_else(out_of_range)?;
                Ok((level, None))
            }
        }
    }

    /// Programs one logical weight into the device plane(s).
    fn program_cell(&mut self, row: usize, col: usize, w: i64, rng: &mut NoiseRng) -> Result<()> {
        let (positive_level, negative_level) = self.weight_levels(w)?;
        self.positive
            .program_level(row, col, positive_level, rng)
            .map_err(Error::Reram)?;
        if let Some(level) = negative_level {
            self.negative
                .as_mut()
                .expect("differential pairs have a negative plane")
                .program_level(row, col, level, rng)
                .map_err(Error::Reram)?;
        }
        Ok(())
    }

    /// Updates a single row of the programmed matrix (the `updateRow`
    /// library call).
    ///
    /// # Errors
    ///
    /// Returns shape/range errors as in [`Crossbar::program`].
    pub fn update_row(&mut self, row: usize, values: &[i64], rng: &mut NoiseRng) -> Result<()> {
        if row >= self.config.rows || values.len() != self.config.cols {
            return Err(Error::ShapeMismatch {
                expected_rows: self.config.rows,
                expected_cols: self.config.cols,
                got_rows: row + 1,
                got_cols: values.len(),
            });
        }
        let mut matrix = self.weights.clone();
        if matrix.is_empty() {
            matrix = vec![vec![0; self.config.cols]; self.config.rows];
        }
        matrix[row] = values.to_vec();
        // Reprogram only the affected row's devices.
        let max = self.config.max_magnitude();
        for (c, &w) in values.iter().enumerate() {
            // `unsigned_abs`, not `abs`: see `Crossbar::program`.
            if w.unsigned_abs() > max as u64 {
                return Err(Error::WeightOutOfRange {
                    weight: w,
                    max_magnitude: max,
                });
            }
            self.program_cell(row, c, w, rng)?;
        }
        self.weights = matrix;
        Ok(())
    }

    /// One analog MVM cycle: applies a Boolean wordline vector (the 1-bit
    /// DAC output of input bit-slicing) and returns the net bitline
    /// currents in amperes.
    ///
    /// Under offset subtraction the returned current still contains the
    /// offset term; the ADC-side post-processing removes it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InputLengthMismatch`] for a wrong-sized input.
    pub fn mvm_currents(&self, input: &[bool], rng: &mut NoiseRng) -> Result<Vec<f64>> {
        if input.len() != self.config.rows {
            return Err(Error::InputLengthMismatch {
                expected: self.config.rows,
                got: input.len(),
            });
        }
        let params = self.positive.params().clone();
        let g_off = params.g_off;
        let scale = self.config.range_scale;
        // Deterministic fast path: with zero read noise the per-device
        // noise model is an identity that consumes no RNG, so one
        // row-major pass per plane produces bit-identical line currents
        // without the per-column conductance gathers.
        if params.read_sigma == 0.0 {
            let pos = self
                .positive
                .masked_col_signals(input, g_off, scale)
                .map_err(Error::Reram)?;
            let neg = match &self.negative {
                Some(plane) => Some(
                    plane
                        .masked_col_signals(input, g_off, scale)
                        .map_err(Error::Reram)?,
                ),
                None => None,
            };
            return Ok(pos
                .iter()
                .enumerate()
                .map(|(c, &p)| {
                    let n = neg.as_ref().map_or(0.0, |v| v[c]);
                    self.apply_ir_drop(p) - self.apply_ir_drop(n)
                })
                .collect());
        }
        let mut currents = Vec::with_capacity(self.config.cols);
        for c in 0..self.config.cols {
            let pos_line = self.line_current(&self.positive, c, input, g_off, scale, rng)?;
            let neg_line = match &self.negative {
                Some(neg) => self.line_current(neg, c, input, g_off, scale, rng)?,
                None => 0.0,
            };
            currents.push(pos_line - neg_line);
        }
        Ok(currents)
    }

    /// Attenuates one accumulated line current by the distributed-wire
    /// IR-drop model (quadratic loss in line units); shared by the noisy
    /// and deterministic bitline paths so they cannot diverge.
    fn apply_ir_drop(&self, line: f64) -> f64 {
        if self.config.ir_drop_alpha > 0.0 {
            let unit = self.unit_current();
            if unit > 0.0 {
                let line_units = line / unit;
                let loss = self.config.ir_drop_alpha * line_units * line_units * unit;
                return (line - loss).max(0.0);
            }
        }
        line
    }

    /// Accumulates one physical bitline, applying read noise per device and
    /// the IR-drop attenuation on the accumulated line current.
    fn line_current(
        &self,
        plane: &ReramArray,
        col: usize,
        input: &[bool],
        g_off: f64,
        scale: f64,
        rng: &mut NoiseRng,
    ) -> Result<f64> {
        let conductances = plane.col_conductances(col, rng).map_err(Error::Reram)?;
        let mut line = 0.0;
        for (r, g) in conductances.iter().enumerate() {
            if input[r] {
                // Subtract g_off so a level-0 device contributes no signal;
                // physical designs null this with a reference column.
                line += (g - g_off).max(0.0) * scale;
            }
        }
        // IR drop: distributed wire resistance attenuates in proportion to
        // the accumulated current itself (quadratic loss in line units).
        line = self.apply_ir_drop(line);
        Ok(line)
    }

    /// The exact (noise-free, parasitic-free) MVM result in weight units,
    /// for verification: `result[c] = Σ_r input[r] · weight[r][c]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InputLengthMismatch`] for a wrong-sized input.
    pub fn mvm_exact(&self, input: &[bool]) -> Result<Vec<i64>> {
        if input.len() != self.config.rows {
            return Err(Error::InputLengthMismatch {
                expected: self.config.rows,
                got: input.len(),
            });
        }
        let mut out = vec![0i64; self.config.cols];
        for (r, &active) in input.iter().enumerate() {
            if !active {
                continue;
            }
            if let Some(row) = self.weights.get(r) {
                for (c, &w) in row.iter().enumerate() {
                    out[c] += w;
                }
            }
        }
        Ok(out)
    }

    /// Injects stuck-at faults into both device planes, returning the
    /// number of faulted devices.
    pub fn inject_stuck_at_faults(&mut self, rng: &mut NoiseRng) -> usize {
        let mut n = self.positive.inject_stuck_at_faults(rng);
        if let Some(neg) = &mut self.negative {
            n += neg.inject_stuck_at_faults(rng);
        }
        n
    }

    /// Total writes across both device planes that railed outside the
    /// conductance window and were clamped to an endpoint (the Monte-Carlo
    /// saturation counter; see `darth_reram::device::Cell::program`).
    pub fn saturated_writes(&self) -> u64 {
        self.positive.saturated_writes()
            + self
                .negative
                .as_ref()
                .map_or(0, darth_reram::ReramArray::saturated_writes)
    }

    /// Applies retention drift to both planes.
    pub fn drift(&mut self, decades: f64) {
        self.positive.drift_all(decades);
        if let Some(neg) = &mut self.negative {
            neg.drift_all(decades);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> NoiseRng {
        NoiseRng::seed_from(2024)
    }

    fn ideal_xbar(rows: usize, cols: usize, bits: u8) -> Crossbar {
        let config = CrossbarConfig {
            bits_per_cell: bits,
            device: DeviceParams::ideal(bits).expect("valid"),
            ..CrossbarConfig::ideal(rows, cols)
        };
        Crossbar::new(CrossbarConfig {
            rows,
            cols,
            ..config
        })
        .expect("valid config")
    }

    #[test]
    fn config_validation() {
        assert!(CrossbarConfig {
            rows: 0,
            ..CrossbarConfig::ideal(2, 2)
        }
        .validate()
        .is_err());
        assert!(CrossbarConfig {
            bits_per_cell: 0,
            ..CrossbarConfig::ideal(2, 2)
        }
        .validate()
        .is_err());
        assert!(CrossbarConfig {
            range_scale: 0.0,
            ..CrossbarConfig::ideal(2, 2)
        }
        .validate()
        .is_err());
        assert!(CrossbarConfig::ideal(2, 2).validate().is_ok());
    }

    #[test]
    fn paper_figure1_example_exact() {
        // Figure 1: [[2,9],[7,5]]^T style 2x2 with input [2,7] — here we
        // check the per-bit building block: binary inputs, exact weights.
        let mut xbar = ideal_xbar(2, 2, 4);
        xbar.program(&[vec![5, 9], vec![8, 7]], &mut rng())
            .expect("programs");
        let exact = xbar.mvm_exact(&[true, true]).expect("shape ok");
        assert_eq!(exact, vec![13, 16]);
        let one_row = xbar.mvm_exact(&[false, true]).expect("shape ok");
        assert_eq!(one_row, vec![8, 7]);
    }

    #[test]
    fn ideal_currents_match_exact_in_weight_units() {
        let mut xbar = ideal_xbar(4, 3, 4);
        let m = vec![
            vec![1, -2, 3],
            vec![4, 5, -6],
            vec![0, 7, 1],
            vec![-1, -1, -1],
        ];
        xbar.program(&m, &mut rng()).expect("programs");
        for input in [
            vec![true, true, true, true],
            vec![true, false, true, false],
            vec![false, false, false, false],
        ] {
            let exact = xbar.mvm_exact(&input).expect("shape ok");
            let currents = xbar.mvm_currents(&input, &mut rng()).expect("shape ok");
            for (c, &e) in exact.iter().enumerate() {
                let units = currents[c] / xbar.unit_current();
                assert!((units - e as f64).abs() < 1e-9, "col {c}: {units} vs {e}");
            }
        }
    }

    #[test]
    fn weight_out_of_range_is_rejected() {
        let mut xbar = ideal_xbar(2, 2, 2); // max magnitude 3
        let err = xbar
            .program(&[vec![4, 0], vec![0, 0]], &mut rng())
            .unwrap_err();
        assert!(matches!(
            err,
            Error::WeightOutOfRange {
                max_magnitude: 3,
                ..
            }
        ));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut xbar = ideal_xbar(2, 2, 4);
        assert!(matches!(
            xbar.program(&[vec![1, 2]], &mut rng()),
            Err(Error::ShapeMismatch { .. })
        ));
        assert!(matches!(
            xbar.mvm_currents(&[true], &mut rng()),
            Err(Error::InputLengthMismatch { .. })
        ));
    }

    #[test]
    fn offset_subtraction_range_is_halved() {
        let config = CrossbarConfig {
            representation: Representation::OffsetSubtraction,
            ..CrossbarConfig::ideal(2, 2)
        };
        // 4 bits per cell: levels 0..15, offset 7, magnitude limit 7
        assert_eq!(config.max_magnitude(), 7);
        assert_eq!(config.offset(), 7);
        let mut xbar = Crossbar::new(config).expect("valid");
        xbar.program(&[vec![-7, 7], vec![0, 1]], &mut rng())
            .expect("programs");
        // net current includes the offset: col0 = (-7+7) + (0+7) = 7 offsets
        let currents = xbar
            .mvm_currents(&[true, true], &mut rng())
            .expect("shape ok");
        let units0 = currents[0] / xbar.unit_current();
        // raw = (0) + (7)  [levels] = weights + 2*offset = -7+0 + 14
        assert!((units0 - 7.0).abs() < 1e-9, "units0 = {units0}");
    }

    #[test]
    fn extreme_weights_error_through_the_public_api() {
        // i64::MIN has no i64 absolute value; the magnitude pre-checks
        // must reject it as out-of-range, not overflow-panic (debug) or
        // wrap past the check (release).
        let mut xbar = ideal_xbar(1, 1, 4);
        assert!(matches!(
            xbar.program(&[vec![i64::MIN]], &mut rng()),
            Err(Error::WeightOutOfRange { .. })
        ));
        xbar.program(&[vec![1]], &mut rng()).expect("programs");
        assert!(matches!(
            xbar.update_row(0, &[i64::MIN], &mut rng()),
            Err(Error::WeightOutOfRange { .. })
        ));
        assert_eq!(xbar.weights(), &[vec![1]], "failed update left state");
    }

    #[test]
    fn weight_levels_boundary_values() {
        // Differential pairs: ±max map to (max, 0) / (0, max); levels
        // past u16 (unreachable through the range-checked public API)
        // error instead of wrapping.
        let xbar = ideal_xbar(2, 2, 4);
        assert_eq!(xbar.weight_levels(15).unwrap(), (15, Some(0)));
        assert_eq!(xbar.weight_levels(-15).unwrap(), (0, Some(15)));
        assert_eq!(xbar.weight_levels(0).unwrap(), (0, Some(0)));
        assert!(matches!(
            xbar.weight_levels(i64::from(u16::MAX) + 1),
            Err(Error::WeightOutOfRange { .. })
        ));
        assert!(matches!(
            xbar.weight_levels(i64::MIN),
            Err(Error::WeightOutOfRange { .. })
        ));

        // Offset subtraction (4-bit: offset 7): the boundary weights
        // map to levels 0 and 14; a weight below -offset would be a
        // negative post-offset level and errors instead of wrapping to
        // a huge u16.
        let config = CrossbarConfig {
            representation: Representation::OffsetSubtraction,
            ..CrossbarConfig::ideal(2, 2)
        };
        let xbar = Crossbar::new(config).expect("valid");
        assert_eq!(xbar.weight_levels(-7).unwrap(), (0, None));
        assert_eq!(xbar.weight_levels(7).unwrap(), (14, None));
        assert!(matches!(
            xbar.weight_levels(-8),
            Err(Error::WeightOutOfRange { .. })
        ));
        assert!(matches!(
            xbar.weight_levels(i64::MIN),
            Err(Error::WeightOutOfRange { .. })
        ));
    }

    #[test]
    fn update_row_changes_only_that_row() {
        let mut xbar = ideal_xbar(3, 2, 4);
        xbar.program(&[vec![1, 1], vec![2, 2], vec![3, 3]], &mut rng())
            .expect("programs");
        xbar.update_row(1, &[9, -9], &mut rng()).expect("updates");
        let exact = xbar.mvm_exact(&[true, true, true]).expect("shape ok");
        assert_eq!(exact, vec![1 + 9 + 3, 1 - 9 + 3]);
    }

    #[test]
    fn ir_drop_attenuates_large_currents() {
        let mut noisy = CrossbarConfig::ideal(32, 1);
        noisy.bits_per_cell = 1;
        noisy.device = DeviceParams::ideal(1).expect("valid");
        noisy.ir_drop_alpha = 0.002;
        let mut xbar = Crossbar::new(noisy).expect("valid");
        let matrix: Vec<Vec<i64>> = (0..32).map(|_| vec![1]).collect();
        xbar.program(&matrix, &mut rng()).expect("programs");
        let all_on = vec![true; 32];
        let currents = xbar.mvm_currents(&all_on, &mut rng()).expect("shape ok");
        let units = currents[0] / xbar.unit_current();
        // ideal would be 32; IR drop pulls it below
        assert!(units < 32.0, "units {units}");
        assert!(units > 28.0, "drop too severe: {units}");
        // a small current is barely affected
        let one_on: Vec<bool> = (0..32).map(|i| i == 0).collect();
        let small = xbar.mvm_currents(&one_on, &mut rng()).expect("shape ok");
        assert!((small[0] / xbar.unit_current() - 1.0).abs() < 0.01);
    }

    #[test]
    fn differential_balances_ir_drop() {
        // The §4.3 story: an all-positive SLC matrix suffers more IR drop
        // than the same matrix remapped to ±1, because the remap splits the
        // current between the two lines of the pair.
        let alpha = 0.002;
        let mk = |weights: Vec<Vec<i64>>| {
            let mut cfg = CrossbarConfig::ideal(32, 1);
            cfg.bits_per_cell = 1;
            cfg.device = DeviceParams::ideal(1).expect("valid");
            cfg.ir_drop_alpha = alpha;
            let mut xb = Crossbar::new(cfg).expect("valid");
            xb.program(&weights, &mut rng()).expect("programs");
            xb
        };
        // half the rows hold 1, half hold 0; all inputs active
        let plain: Vec<Vec<i64>> = (0..32).map(|r| vec![i64::from(r % 2 == 0)]).collect();
        let remapped: Vec<Vec<i64>> = (0..32)
            .map(|r| vec![if r % 2 == 0 { 1 } else { -1 }])
            .collect();
        let xb_plain = mk(plain);
        let xb_remap = mk(remapped);
        let input = vec![true; 32];
        let exact_plain = 16.0;
        let exact_remap = 0.0;
        let got_plain =
            xb_plain.mvm_currents(&input, &mut rng()).expect("ok")[0] / xb_plain.unit_current();
        let got_remap =
            xb_remap.mvm_currents(&input, &mut rng()).expect("ok")[0] / xb_remap.unit_current();
        let err_plain = (got_plain - exact_plain).abs();
        let err_remap = (got_remap - exact_remap).abs();
        assert!(
            err_remap < err_plain,
            "remap error {err_remap} !< plain error {err_plain}"
        );
    }

    #[test]
    fn noisy_mvm_stays_near_exact() {
        let cfg = CrossbarConfig::evaluation(2).expect("valid");
        let mut xbar = Crossbar::new(CrossbarConfig {
            rows: 16,
            cols: 4,
            ..cfg
        })
        .expect("valid");
        let matrix: Vec<Vec<i64>> = (0..16)
            .map(|r| (0..4).map(|c| ((r + c) % 7) as i64 - 3).collect())
            .collect();
        xbar.program(&matrix, &mut rng()).expect("programs");
        let input: Vec<bool> = (0..16).map(|i| i % 3 != 0).collect();
        let exact = xbar.mvm_exact(&input).expect("ok");
        let currents = xbar.mvm_currents(&input, &mut rng()).expect("ok");
        for (c, &e) in exact.iter().enumerate() {
            let units = currents[c] / xbar.unit_current();
            assert!((units - e as f64).abs() < 1.5, "col {c}: {units} vs {e}");
        }
    }

    #[test]
    fn pathological_sigma_keeps_bitline_currents_finite() {
        // A lognormal programming sigma large enough to overflow `exp`
        // yields +inf draws; the write–verify loop must clamp them to the
        // device window (counting the saturations) so MVM line currents
        // stay finite instead of poisoning every downstream sum.
        let mut cfg = CrossbarConfig::evaluation(4).expect("valid");
        cfg.rows = 8;
        cfg.cols = 4;
        cfg.device.program_sigma = 1e6;
        let mut xbar = Crossbar::new(cfg).expect("valid");
        let matrix: Vec<Vec<i64>> = (0..8)
            .map(|r| (0..4).map(|c| ((r * 4 + c) % 15) as i64 - 7).collect())
            .collect();
        xbar.program(&matrix, &mut rng()).expect("clamped writes");
        assert!(xbar.saturated_writes() > 0, "sigma 1e6 must rail writes");
        let input = vec![true; 8];
        let currents = xbar.mvm_currents(&input, &mut rng()).expect("shape ok");
        for (c, i) in currents.iter().enumerate() {
            assert!(i.is_finite(), "col {c} current {i} is not finite");
        }
    }

    #[test]
    fn stuck_at_faults_perturb_results() {
        let mut cfg = CrossbarConfig::ideal(16, 2);
        cfg.bits_per_cell = 1;
        let mut device = DeviceParams::ideal(1).expect("valid");
        device.stuck_at_rate = 0.3;
        cfg.device = device;
        let mut xbar = Crossbar::new(cfg).expect("valid");
        let matrix: Vec<Vec<i64>> = (0..16).map(|_| vec![1, 0]).collect();
        xbar.program(&matrix, &mut rng()).expect("programs");
        let faults = xbar.inject_stuck_at_faults(&mut rng());
        assert!(faults > 0);
    }
}
