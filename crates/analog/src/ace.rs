//! The analog compute element (ACE): a bank of crossbars with shared
//! peripherals.
//!
//! Table 2: each hybrid compute tile's ACE holds 64 ReRAM arrays of 64×64
//! devices, input buffers, row periphery, sample-and-hold, and an ADC group
//! (two SAR units or one ramp unit). An MVM proceeds as in the Figure 9
//! walkthrough: the input vector is bit-sliced, one bit per cycle is applied
//! to the wordlines, and each cycle's bitline currents are digitized into a
//! *partial-product vector* that is handed to the digital side for
//! shift-and-add reduction.

use crate::adc::{Adc, AdcKind};
use crate::crossbar::{Crossbar, CrossbarConfig};
use crate::dac::InputDriver;
use crate::{Error, Result};
use darth_reram::{Cycles, EnergyMeter, NoiseRng, PicoJoules};
use serde::{Deserialize, Serialize};

/// Row-periphery power in mW (Table 3).
const ROW_PERIPHERY_POWER_MW: f64 = 0.7;
/// Sample-and-hold power in mW (Table 3).
const SAMPLE_HOLD_POWER_MW: f64 = 2.1e-5;

/// Configuration of an analog compute element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AceConfig {
    /// Number of crossbar arrays (Table 2: 64).
    pub arrays: usize,
    /// Per-array crossbar configuration.
    pub crossbar: CrossbarConfig,
    /// Converter architecture for the shared ADC group.
    pub adc_kind: AdcKind,
    /// ADC resolution in bits.
    pub adc_bits: u8,
    /// ADC LSB in weight units (1.0 digitizes exact integers).
    pub adc_lsb_units: f64,
    /// Cycles to drive one input bit onto the wordlines and settle.
    pub dac_apply_cycles: u64,
    /// Write–verify programming cost per matrix row (devices on a wordline
    /// program in parallel; the verify loop dominates).
    pub program_cycles_per_row: u64,
}

impl AceConfig {
    /// The paper's evaluation ACE: 64 arrays, noisy devices, chosen ADC.
    ///
    /// # Errors
    ///
    /// Propagates crossbar configuration errors.
    pub fn evaluation(adc_kind: AdcKind, bits_per_cell: u8) -> Result<Self> {
        Ok(AceConfig {
            arrays: 64,
            crossbar: CrossbarConfig::evaluation(bits_per_cell)?,
            adc_kind,
            adc_bits: 8,
            adc_lsb_units: 1.0,
            dac_apply_cycles: 1,
            program_cycles_per_row: 1000,
        })
    }

    /// A small noise-free ACE for functional tests.
    pub fn ideal(arrays: usize, rows: usize, cols: usize) -> Self {
        AceConfig {
            arrays,
            crossbar: CrossbarConfig::ideal(rows, cols),
            adc_kind: AdcKind::Sar,
            adc_bits: 10,
            adc_lsb_units: 1.0,
            dac_apply_cycles: 1,
            program_cycles_per_row: 1000,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero arrays plus any crossbar
    /// or ADC validation failure.
    pub fn validate(&self) -> Result<()> {
        if self.arrays == 0 {
            return Err(Error::InvalidConfig("ACE needs at least one array"));
        }
        self.crossbar.validate()?;
        Adc::new(self.adc_kind, self.adc_bits, self.adc_lsb_units)?;
        Ok(())
    }
}

/// The result of one bit-sliced analog MVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MvmOutput {
    /// Quantized partial products: `partial_products[input_bit][column]`,
    /// in ADC codes (multiply by the ADC LSB for weight units).
    pub partial_products: Vec<Vec<i64>>,
    /// Total ACE-side latency (input application + conversions).
    pub cycles: Cycles,
    /// Total ACE-side energy.
    pub energy: PicoJoules,
}

/// A bank of crossbars sharing input buffers and an ADC group.
#[derive(Debug, Clone)]
pub struct AnalogComputeElement {
    config: AceConfig,
    crossbars: Vec<Crossbar>,
    adc: Adc,
    rng: NoiseRng,
    meter: EnergyMeter,
}

impl AnalogComputeElement {
    /// Creates an ACE with erased arrays.
    ///
    /// # Errors
    ///
    /// Returns configuration validation errors.
    pub fn new(config: AceConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        let crossbars = (0..config.arrays)
            .map(|_| Crossbar::new(config.crossbar.clone()))
            .collect::<Result<Vec<_>>>()?;
        let adc = Adc::new(config.adc_kind, config.adc_bits, config.adc_lsb_units)?;
        Ok(AnalogComputeElement {
            config,
            crossbars,
            adc,
            rng: NoiseRng::seed_from(seed),
            meter: EnergyMeter::new(),
        })
    }

    /// The ACE's configuration.
    pub fn config(&self) -> &AceConfig {
        &self.config
    }

    /// Number of crossbar arrays.
    pub fn array_count(&self) -> usize {
        self.crossbars.len()
    }

    /// The shared ADC.
    pub fn adc(&self) -> &Adc {
        &self.adc
    }

    /// Cumulative energy by component.
    pub fn energy_meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// The ACE's noise RNG state. A noise-free ACE never forks it, so after
    /// any amount of noise-off execution this still equals
    /// `NoiseRng::seed_from(seed)` — the "zero draws" contract the
    /// Monte-Carlo engine's tests pin.
    pub fn rng(&self) -> &NoiseRng {
        &self.rng
    }

    /// Total conductance writes across every array that railed outside the
    /// device window and were clamped (see `Crossbar::saturated_writes`).
    pub fn saturated_writes(&self) -> u64 {
        self.crossbars.iter().map(Crossbar::saturated_writes).sum()
    }

    /// Whether the configured device population has any stochastic noise
    /// source. When false, programming and MVM consume zero RNG draws —
    /// they don't even fork the ACE stream — so noise-off execution is
    /// bit-identical to the pre-noise-plumbing behaviour.
    fn stochastic(&self) -> bool {
        let d = &self.config.crossbar.device;
        d.program_sigma > 0.0 || d.read_sigma > 0.0 || d.stuck_at_rate > 0.0
    }

    /// The per-operation RNG: a fork of the ACE stream when any noise
    /// source is live, an inert fixed stream (never actually consumed by
    /// the zero-sigma models) otherwise.
    fn op_rng(&mut self) -> NoiseRng {
        if self.stochastic() {
            self.rng.fork()
        } else {
            NoiseRng::seed_from(0)
        }
    }

    /// Borrows one crossbar.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArray`] for a bad index.
    pub fn crossbar(&self, array: usize) -> Result<&Crossbar> {
        self.crossbars.get(array).ok_or(Error::InvalidArray {
            index: array,
            count: self.crossbars.len(),
        })
    }

    fn crossbar_mut(&mut self, array: usize) -> Result<&mut Crossbar> {
        let count = self.crossbars.len();
        self.crossbars.get_mut(array).ok_or(Error::InvalidArray {
            index: array,
            count,
        })
    }

    /// Programs a signed matrix into one array, returning the programming
    /// latency (§4.1 notes this is expensive enough that matrices should be
    /// resident before compute begins).
    ///
    /// # Errors
    ///
    /// Propagates shape/range/programming errors.
    pub fn program_matrix(&mut self, array: usize, matrix: &[Vec<i64>]) -> Result<Cycles> {
        let rows = matrix.len() as u64;
        let cycles = Cycles::new(rows * self.config.program_cycles_per_row);
        let mut rng = self.op_rng();
        self.crossbar_mut(array)?.program(matrix, &mut rng)?;
        self.meter.add(
            "ace.program",
            PicoJoules::from_power(ROW_PERIPHERY_POWER_MW, cycles),
        );
        Ok(cycles)
    }

    /// Updates one row of a programmed matrix (the `updateRow` call).
    ///
    /// # Errors
    ///
    /// Propagates shape/range/programming errors.
    pub fn update_row(&mut self, array: usize, row: usize, values: &[i64]) -> Result<Cycles> {
        let cycles = Cycles::new(self.config.program_cycles_per_row);
        let mut rng = self.op_rng();
        self.crossbar_mut(array)?
            .update_row(row, values, &mut rng)?;
        self.meter.add(
            "ace.program",
            PicoJoules::from_power(ROW_PERIPHERY_POWER_MW, cycles),
        );
        Ok(cycles)
    }

    /// Executes a bit-sliced MVM on one array.
    ///
    /// `early_levels` enables ramp-ADC early termination (ignored by SAR).
    ///
    /// # Errors
    ///
    /// Propagates input slicing and shape errors.
    pub fn mvm(
        &mut self,
        array: usize,
        input: &[i64],
        driver: InputDriver,
        early_levels: Option<u16>,
    ) -> Result<MvmOutput> {
        self.mvm_group(&[array], input, driver, early_levels)
    }

    /// Executes a bit-sliced MVM on several arrays in lockstep (a vACore's
    /// weight slices), with the shared ADC group muxed across the active
    /// arrays' bitlines.
    ///
    /// Returns one partial-product grid per input bit, with the arrays'
    /// columns concatenated in `arrays` order.
    ///
    /// # Errors
    ///
    /// Propagates index, slicing and shape errors.
    pub fn mvm_group(
        &mut self,
        arrays: &[usize],
        input: &[i64],
        driver: InputDriver,
        early_levels: Option<u16>,
    ) -> Result<MvmOutput> {
        for &a in arrays {
            self.crossbar(a)?;
        }
        let bit_slices = driver.slice(input)?;
        let mut partial_products = Vec::with_capacity(bit_slices.len());
        let mut cycles = Cycles::ZERO;
        let mut energy = PicoJoules::ZERO;
        let mut rng = self.op_rng();
        let cols_per_array = self.config.crossbar.cols;
        let total_bitlines = cols_per_array * arrays.len();
        for bits in &bit_slices {
            // 1. Drive the wordlines (all active arrays share the input).
            let apply = Cycles::new(self.config.dac_apply_cycles);
            cycles += apply;
            let row_energy =
                PicoJoules::from_power(ROW_PERIPHERY_POWER_MW * arrays.len() as f64, apply);
            energy += row_energy;
            self.meter.add("ace.row_periphery", row_energy);

            // 2. Sample the bitline currents and digitize.
            let mut codes = Vec::with_capacity(total_bitlines);
            for &a in arrays {
                let xbar = &self.crossbars[a];
                let unit = xbar.unit_current();
                let currents = xbar.mvm_currents(bits, &mut rng)?;
                for c in currents {
                    codes.push(self.adc.quantize_units(c / unit));
                }
            }
            let readout = self.adc.readout_cycles(total_bitlines, early_levels);
            cycles += readout;
            let adc_energy = self.adc.readout_energy(total_bitlines, readout);
            energy += adc_energy;
            self.meter.add("ace.adc", adc_energy);
            let sh_energy =
                PicoJoules::from_power(SAMPLE_HOLD_POWER_MW * total_bitlines as f64, readout);
            energy += sh_energy;
            self.meter.add("ace.sample_hold", sh_energy);

            partial_products.push(codes);
        }
        Ok(MvmOutput {
            partial_products,
            cycles,
            energy,
        })
    }

    /// Noise-free oracle for [`AnalogComputeElement::mvm`]: the exact
    /// per-input-bit partial products in weight units.
    ///
    /// # Errors
    ///
    /// Propagates index and slicing errors.
    pub fn mvm_exact(
        &self,
        array: usize,
        input: &[i64],
        driver: InputDriver,
    ) -> Result<Vec<Vec<i64>>> {
        let xbar = self.crossbar(array)?;
        driver
            .slice(input)?
            .iter()
            .map(|bits| xbar.mvm_exact(bits))
            .collect()
    }

    /// Injects stuck-at faults into every array (§7.5), returning the
    /// total faulted device count.
    pub fn inject_stuck_at_faults(&mut self) -> usize {
        let mut rng = self.rng.fork();
        self.crossbars
            .iter_mut()
            .map(|x| x.inject_stuck_at_faults(&mut rng))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::Representation;
    use darth_reram::DeviceParams;

    fn ideal_ace() -> AnalogComputeElement {
        let mut config = AceConfig::ideal(2, 4, 4);
        config.crossbar.bits_per_cell = 4;
        config.crossbar.device = DeviceParams::ideal(4).expect("valid");
        AnalogComputeElement::new(config, 7).expect("valid")
    }

    #[test]
    fn config_validation() {
        let mut c = AceConfig::ideal(1, 4, 4);
        c.arrays = 0;
        assert!(c.validate().is_err());
        assert!(AceConfig::ideal(64, 64, 64).validate().is_ok());
        assert!(AceConfig::evaluation(AdcKind::Sar, 2)
            .expect("valid")
            .validate()
            .is_ok());
    }

    #[test]
    fn invalid_array_index() {
        let ace = ideal_ace();
        assert!(matches!(
            ace.crossbar(5),
            Err(Error::InvalidArray { index: 5, count: 2 })
        ));
    }

    #[test]
    fn program_and_exact_mvm() {
        let mut ace = ideal_ace();
        let m = vec![
            vec![1, 2, 3, 4],
            vec![5, 6, 7, -8],
            vec![0, 0, 0, 0],
            vec![-1, -2, -3, -4],
        ];
        let cycles = ace.program_matrix(0, &m).expect("programs");
        assert_eq!(cycles.get(), 4 * 1000);
        let driver = InputDriver::new(1, false).expect("valid");
        let exact = ace.mvm_exact(0, &[1, 1, 0, 1], driver).expect("shape ok");
        assert_eq!(exact, vec![vec![5, 6, 7, -8]]);
    }

    #[test]
    fn mvm_matches_exact_for_ideal_devices() {
        let mut ace = ideal_ace();
        let m = vec![
            vec![1, 2, 3, 4],
            vec![5, 6, 7, -8],
            vec![2, 2, 2, 2],
            vec![-1, -2, -3, -4],
        ];
        ace.program_matrix(0, &m).expect("programs");
        let driver = InputDriver::new(3, false).expect("valid");
        let input = vec![5, 3, 0, 7];
        let out = ace.mvm(0, &input, driver, None).expect("runs");
        let exact = ace.mvm_exact(0, &input, driver).expect("shape ok");
        assert_eq!(out.partial_products, exact);
        assert!(out.cycles > Cycles::ZERO);
        assert!(out.energy > PicoJoules::ZERO);
    }

    #[test]
    fn mvm_group_concatenates_columns() {
        let mut ace = ideal_ace();
        let m0 = vec![vec![1; 4]; 4];
        let m1 = vec![vec![2; 4]; 4];
        ace.program_matrix(0, &m0).expect("programs");
        ace.program_matrix(1, &m1).expect("programs");
        let driver = InputDriver::new(1, false).expect("valid");
        let out = ace
            .mvm_group(&[0, 1], &[1, 1, 1, 1], driver, None)
            .expect("runs");
        assert_eq!(out.partial_products.len(), 1);
        assert_eq!(out.partial_products[0].len(), 8);
        assert_eq!(&out.partial_products[0][..4], &[4, 4, 4, 4]);
        assert_eq!(&out.partial_products[0][4..], &[8, 8, 8, 8]);
    }

    #[test]
    fn sar_vs_ramp_latency() {
        let mk = |kind| {
            let mut config = AceConfig::ideal(1, 4, 4);
            config.adc_kind = kind;
            config.adc_bits = 8;
            config.crossbar.device = DeviceParams::ideal(4).expect("valid");
            AnalogComputeElement::new(config, 9).expect("valid")
        };
        let driver = InputDriver::new(1, false).expect("valid");
        let m = vec![vec![1; 4]; 4];

        let mut sar = mk(AdcKind::Sar);
        sar.program_matrix(0, &m).expect("programs");
        let sar_out = sar.mvm(0, &[1, 0, 0, 0], driver, None).expect("runs");

        let mut ramp = mk(AdcKind::Ramp);
        ramp.program_matrix(0, &m).expect("programs");
        let ramp_out = ramp.mvm(0, &[1, 0, 0, 0], driver, None).expect("runs");
        // ramp full sweep is much slower than 2 muxed SAR conversions
        assert!(ramp_out.cycles.get() > 10 * sar_out.cycles.get());

        // early termination rescues ramp (AES's 4-level trick)
        let ramp_early = ramp.mvm(0, &[1, 0, 0, 0], driver, Some(4)).expect("runs");
        assert!(ramp_early.cycles < sar_out.cycles.max(ramp_early.cycles) + Cycles::new(100));
        assert!(ramp_early.cycles < ramp_out.cycles);
    }

    #[test]
    fn adc_saturates_large_outputs() {
        let mut config = AceConfig::ideal(1, 16, 2);
        config.adc_bits = 4; // codes in [-8, 7]
        config.crossbar.bits_per_cell = 4;
        config.crossbar.device = DeviceParams::ideal(4).expect("valid");
        let mut ace = AnalogComputeElement::new(config, 11).expect("valid");
        let m: Vec<Vec<i64>> = (0..16).map(|_| vec![15, 1]).collect();
        ace.program_matrix(0, &m).expect("programs");
        let driver = InputDriver::new(1, false).expect("valid");
        let out = ace.mvm(0, &[1; 16], driver, None).expect("runs");
        assert_eq!(out.partial_products[0][0], 7); // saturated
        assert_eq!(out.partial_products[0][1], 7); // 16 > 7, saturated too
    }

    #[test]
    fn noisy_slc_differential_is_exact_with_compensation_margin() {
        // AES-like configuration: SLC, ±1 weights, few active inputs.
        let mut config = AceConfig::evaluation(AdcKind::Sar, 1).expect("valid");
        config.arrays = 1;
        config.crossbar.rows = 16;
        config.crossbar.cols = 8;
        config.crossbar.representation = Representation::DifferentialPair;
        config.crossbar.range_scale = 0.5;
        let mut ace = AnalogComputeElement::new(config, 13).expect("valid");
        let matrix: Vec<Vec<i64>> = (0..16)
            .map(|r| {
                (0..8)
                    .map(|c| if (r + c) % 2 == 0 { 1 } else { -1 })
                    .collect()
            })
            .collect();
        ace.program_matrix(0, &matrix).expect("programs");
        let driver = InputDriver::new(1, false).expect("valid");
        let input: Vec<i64> = (0..16).map(|i| i64::from(i % 4 == 0)).collect();
        let out = ace.mvm(0, &input, driver, None).expect("runs");
        let exact = ace.mvm_exact(0, &input, driver).expect("shape ok");
        // measured = exact * range_scale; with 4 active inputs the noise
        // must stay below half an LSB for the compensation to decode
        for (c, &e) in exact[0].iter().enumerate() {
            let measured = out.partial_products[0][c] as f64;
            assert!(
                (measured - e as f64 * 0.5).abs() <= 0.5,
                "col {c}: measured {measured}, exact {e}"
            );
        }
    }

    #[test]
    fn noise_off_execution_consumes_zero_rng_draws() {
        // The full noise-free path — programming, row update, grouped MVM —
        // must never fork the ACE stream, leaving it exactly at its seeded
        // state (the property the eval-layer Monte-Carlo tests extend to
        // whole workload executions).
        let mut ace = ideal_ace();
        let m = vec![vec![1; 4]; 4];
        ace.program_matrix(0, &m).expect("programs");
        ace.update_row(0, 0, &[2, 2, 2, 2]).expect("updates");
        let driver = InputDriver::new(2, false).expect("valid");
        ace.mvm(0, &[1, 2, 3, 0], driver, None).expect("runs");
        ace.mvm_group(&[0, 1], &[1, 0, 1, 0], driver, None)
            .expect("runs");
        assert_eq!(ace.rng(), &NoiseRng::seed_from(7));
        assert_eq!(ace.saturated_writes(), 0);
    }

    #[test]
    fn noisy_execution_advances_the_rng() {
        let mut config = AceConfig::evaluation(AdcKind::Sar, 1).expect("valid");
        config.arrays = 1;
        config.crossbar.rows = 4;
        config.crossbar.cols = 4;
        let mut ace = AnalogComputeElement::new(config, 7).expect("valid");
        ace.program_matrix(0, &vec![vec![1; 4]; 4])
            .expect("programs");
        assert_ne!(ace.rng(), &NoiseRng::seed_from(7));
    }

    #[test]
    fn energy_meter_components() {
        let mut ace = ideal_ace();
        ace.program_matrix(0, &vec![vec![1; 4]; 4])
            .expect("programs");
        let driver = InputDriver::new(2, false).expect("valid");
        ace.mvm(0, &[1, 2, 3, 0], driver, None).expect("runs");
        let meter = ace.energy_meter();
        assert!(meter.component("ace.program").get() > 0.0);
        assert!(meter.component("ace.row_periphery").get() > 0.0);
        assert!(meter.component("ace.adc").get() > 0.0);
    }
}
