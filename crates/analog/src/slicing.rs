//! Weight bit-slicing and shift-and-add recombination plans.
//!
//! Figure 2 of the paper: an `N`-bit matrix value is split into `N/M`-bit
//! slices stored in separate arrays (`M` = bits per cell); each array's
//! partial product is shifted by its slice's bit position and summed. The
//! same long-multiplication structure applies to input bit-slicing, so a
//! full MVM produces a `slices × input_bits` grid of partial products whose
//! reduction sequence (Figure 9c) DARTH-PUM's instruction injection unit
//! replays in the digital compute element.
//!
//! Signed weights slice *by magnitude*: `w = sign(w) · Σ_s m_s · 2^(s·M)`,
//! and each slice stores the signed value `sign(w) · m_s`, which
//! differential pairs represent natively. Signed inputs are two's
//! complement, with the top input bit carrying negative weight.

use crate::{Error, Result};
use serde::{Deserialize, Serialize};

/// Splits signed weight matrices into per-array slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightSlicer {
    total_bits: u8,
    bits_per_cell: u8,
}

impl WeightSlicer {
    /// Creates a slicer for `total_bits`-bit weight magnitudes stored in
    /// `bits_per_cell`-bit devices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero widths or a cell width
    /// above the total.
    pub fn new(total_bits: u8, bits_per_cell: u8) -> Result<Self> {
        if total_bits == 0 || total_bits > 32 {
            return Err(Error::InvalidConfig("weight bits must be in 1..=32"));
        }
        if bits_per_cell == 0 || bits_per_cell > total_bits {
            return Err(Error::InvalidConfig(
                "bits per cell must be in 1..=total_bits",
            ));
        }
        Ok(WeightSlicer {
            total_bits,
            bits_per_cell,
        })
    }

    /// Number of slices (arrays) needed: `ceil(total / per_cell)`.
    pub fn slice_count(&self) -> usize {
        usize::from(self.total_bits).div_ceil(usize::from(self.bits_per_cell))
    }

    /// Weight magnitude capacity.
    pub fn max_magnitude(&self) -> i64 {
        (1i64 << self.total_bits) - 1
    }

    /// Bit shift applied to slice `s` during recombination.
    ///
    /// # Panics
    ///
    /// Panics when `slice` is not below [`WeightSlicer::slice_count`] —
    /// an out-of-range slice index is a caller bug whose shift would
    /// otherwise silently wrap through the old `as u32` cast.
    pub fn slice_shift(&self, slice: usize) -> u32 {
        assert!(
            slice < self.slice_count(),
            "slice {slice} out of range (have {})",
            self.slice_count()
        );
        let shift = slice
            .checked_mul(usize::from(self.bits_per_cell))
            .expect("slice shift fits: slice < slice_count <= 32");
        u32::try_from(shift).expect("slice shift fits u32: bounded by total_bits <= 32")
    }

    /// Slices a signed matrix into [`WeightSlicer::slice_count`] signed
    /// sub-matrices, least-significant slice first. Slice `s` of weight `w`
    /// is `sign(w) · ((|w| >> s·M) & (2^M − 1))`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WeightOutOfRange`] when `|w|` exceeds the capacity.
    pub fn slice(&self, matrix: &[Vec<i64>]) -> Result<Vec<Vec<Vec<i64>>>> {
        let cell_mask = (1i64 << self.bits_per_cell) - 1;
        let max = self.max_magnitude();
        for row in matrix {
            for &w in row {
                // `unsigned_abs`, not `abs`: `abs(i64::MIN)` overflows
                // (debug panic / release wrap) instead of rejecting.
                if w.unsigned_abs() > max as u64 {
                    return Err(Error::WeightOutOfRange {
                        weight: w,
                        max_magnitude: max,
                    });
                }
            }
        }
        let slices = (0..self.slice_count())
            .map(|s| {
                let shift = self.slice_shift(s);
                matrix
                    .iter()
                    .map(|row| {
                        row.iter()
                            .map(|&w| {
                                let magnitude = (w.abs() >> shift) & cell_mask;
                                if w < 0 {
                                    -magnitude
                                } else {
                                    magnitude
                                }
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Ok(slices)
    }

    /// Software recombination of per-slice results (the check oracle for
    /// the DCE's shift-and-add): `Σ_s part_s << (s·M)`.
    pub fn recombine(&self, per_slice: &[Vec<i64>]) -> Vec<i64> {
        if per_slice.is_empty() {
            return Vec::new();
        }
        let cols = per_slice[0].len();
        let mut out = vec![0i64; cols];
        for (s, part) in per_slice.iter().enumerate() {
            let shift = self.slice_shift(s);
            for (c, &v) in part.iter().enumerate() {
                out[c] += v << shift;
            }
        }
        out
    }
}

/// The full shift-and-add recombination plan for a bit-sliced MVM —
/// the program the instruction injection unit replays (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecombinationPlan {
    /// Input bit width (input slices applied LSB-first).
    pub input_bits: u8,
    /// Whether inputs are two's complement (top bit weighs `-2^(n-1)`).
    pub input_signed: bool,
    /// Number of weight slices.
    pub weight_slices: u8,
    /// Bits per cell (weight slice stride).
    pub bits_per_cell: u8,
}

impl RecombinationPlan {
    /// Shift for input bit `b`.
    pub fn input_shift(&self, bit: usize) -> u32 {
        bit as u32
    }

    /// Whether input bit `b`'s partial product is subtracted.
    pub fn input_negative(&self, bit: usize) -> bool {
        self.input_signed && bit as u8 == self.input_bits - 1
    }

    /// Shift for weight slice `s`.
    ///
    /// # Panics
    ///
    /// Panics when `slice` is not below
    /// [`RecombinationPlan::weight_slices`] — the old `as u32` cast
    /// would silently truncate a (nonsensical) 2³²-slice index instead.
    pub fn weight_shift(&self, slice: usize) -> u32 {
        assert!(
            slice < usize::from(self.weight_slices),
            "weight slice {slice} out of range (have {})",
            self.weight_slices
        );
        u32::try_from(slice).expect("slice fits u32: bounded by weight_slices (u8)")
            * u32::from(self.bits_per_cell)
    }

    /// Total number of partial-product terms (`slices × input_bits`).
    pub fn term_count(&self) -> usize {
        usize::from(self.weight_slices) * usize::from(self.input_bits)
    }

    /// Number of shift+add µop pairs in the reduction sequence of
    /// Figure 9c: one per term after the first.
    pub fn reduction_steps(&self) -> usize {
        self.term_count().saturating_sub(1)
    }

    /// Software recombination: `parts[s][b][col]` are the ADC outputs of
    /// weight slice `s` under input bit `b`. Returns the recombined output
    /// vector — the oracle for the DCE reduction.
    pub fn recombine(&self, parts: &[Vec<Vec<i64>>]) -> Vec<i64> {
        let cols = parts
            .first()
            .and_then(|s| s.first())
            .map_or(0, |bits| bits.len());
        let mut out = vec![0i64; cols];
        for (s, per_bit) in parts.iter().enumerate() {
            let wshift = self.weight_shift(s);
            for (b, part) in per_bit.iter().enumerate() {
                let shift = wshift + self.input_shift(b);
                let negative = self.input_negative(b);
                for (c, &v) in part.iter().enumerate() {
                    let term = v << shift;
                    if negative {
                        out[c] -= term;
                    } else {
                        out[c] += term;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(WeightSlicer::new(0, 1).is_err());
        assert!(WeightSlicer::new(8, 0).is_err());
        assert!(WeightSlicer::new(4, 8).is_err());
        assert!(WeightSlicer::new(8, 2).is_ok());
    }

    #[test]
    fn figure2_example() {
        // Figure 2: 4-bit values sliced into two 2-bit arrays.
        // Matrix [[5, 9], [8, 7]]: array 1 holds bits [3:2], array 0 bits [1:0].
        let slicer = WeightSlicer::new(4, 2).expect("valid");
        assert_eq!(slicer.slice_count(), 2);
        let m = vec![vec![5, 9], vec![8, 7]];
        let slices = slicer.slice(&m).expect("in range");
        assert_eq!(slices[0], vec![vec![1, 1], vec![0, 3]]); // low bits
        assert_eq!(slices[1], vec![vec![1, 2], vec![2, 1]]); // high bits
    }

    #[test]
    fn slice_then_recombine_identity() {
        let slicer = WeightSlicer::new(8, 3).expect("valid");
        assert_eq!(slicer.slice_count(), 3);
        let m = vec![vec![255, -255, 0], vec![1, -1, 100]];
        let slices = slicer.slice(&m).expect("in range");
        // recombining per-element slices (1x identity "MVM": input = e_r)
        for r in 0..2 {
            for c in 0..3 {
                let parts: Vec<Vec<i64>> = slices.iter().map(|s| vec![s[r][c]]).collect();
                let rec = slicer.recombine(&parts);
                assert_eq!(rec[0], m[r][c], "({r},{c})");
            }
        }
    }

    #[test]
    fn out_of_range_weight_rejected() {
        let slicer = WeightSlicer::new(4, 2).expect("valid");
        assert!(matches!(
            slicer.slice(&[vec![16]]),
            Err(Error::WeightOutOfRange { .. })
        ));
        assert!(slicer.slice(&[vec![15], vec![-15]]).is_ok());
        // i64::MIN has no i64 absolute value; it must reject, not
        // overflow in the magnitude check.
        assert!(matches!(
            slicer.slice(&[vec![i64::MIN]]),
            Err(Error::WeightOutOfRange { .. })
        ));
    }

    #[test]
    fn plan_shifts_and_signs() {
        let plan = RecombinationPlan {
            input_bits: 8,
            input_signed: true,
            weight_slices: 2,
            bits_per_cell: 4,
        };
        assert_eq!(plan.input_shift(3), 3);
        assert_eq!(plan.weight_shift(1), 4);
        assert!(plan.input_negative(7));
        assert!(!plan.input_negative(6));
        assert_eq!(plan.term_count(), 16);
        assert_eq!(plan.reduction_steps(), 15);
    }

    #[test]
    fn full_recombination_matches_direct_mvm() {
        // Exhaustive small case: 3-bit signed inputs, 4-bit weights in
        // 2-bit cells, 2x2 matrix.
        let slicer = WeightSlicer::new(4, 2).expect("valid");
        let matrix = vec![vec![5, -9], vec![-8, 7]];
        let slices = slicer.slice(&matrix).expect("in range");
        let plan = RecombinationPlan {
            input_bits: 3,
            input_signed: true,
            weight_slices: 2,
            bits_per_cell: 2,
        };
        let driver = crate::dac::InputDriver::new(3, true).expect("valid");
        for x0 in -4..4i64 {
            for x1 in -4..4i64 {
                let input = vec![x0, x1];
                let bit_slices = driver.slice(&input).expect("in range");
                // parts[s][b][col]: exact per-slice per-bit dot products
                let parts: Vec<Vec<Vec<i64>>> = slices
                    .iter()
                    .map(|sm| {
                        bit_slices
                            .iter()
                            .map(|bits| {
                                (0..2)
                                    .map(|c| {
                                        (0..2).map(|r| if bits[r] { sm[r][c] } else { 0 }).sum()
                                    })
                                    .collect()
                            })
                            .collect()
                    })
                    .collect();
                let recombined = plan.recombine(&parts);
                let expected: Vec<i64> = (0..2)
                    .map(|c| (0..2).map(|r| input[r] * matrix[r][c]).sum())
                    .collect();
                assert_eq!(recombined, expected, "input {input:?}");
            }
        }
    }

    #[test]
    fn slice_shift_boundary_values() {
        // 32-bit weights in 1-bit cells: 32 slices, the largest legal
        // configuration. The last slice shifts by 31; one past panics
        // instead of wrapping.
        let slicer = WeightSlicer::new(32, 1).expect("valid");
        assert_eq!(slicer.slice_count(), 32);
        assert_eq!(slicer.slice_shift(31), 31);
        assert_eq!(slicer.slice_shift(0), 0);
    }

    #[test]
    #[should_panic(expected = "slice 32 out of range")]
    fn slice_shift_rejects_oversized_slice_index() {
        WeightSlicer::new(32, 1).expect("valid").slice_shift(32);
    }

    #[test]
    #[should_panic(expected = "slice 3 out of range")]
    fn slice_shift_rejects_index_just_past_count() {
        // 8-bit weights in 3-bit cells: ceil(8/3) = 3 slices (0..=2).
        WeightSlicer::new(8, 3).expect("valid").slice_shift(3);
    }

    #[test]
    fn weight_shift_boundary_values() {
        let plan = RecombinationPlan {
            input_bits: 8,
            input_signed: false,
            weight_slices: u8::MAX,
            bits_per_cell: 8,
        };
        // The largest representable plan still recombines without
        // overflow: 254 * 8 = 2032 fits comfortably in u32.
        assert_eq!(plan.weight_shift(254), 2032);
    }

    #[test]
    #[should_panic(expected = "weight slice 2 out of range")]
    fn weight_shift_rejects_oversized_slice_index() {
        let plan = RecombinationPlan {
            input_bits: 3,
            input_signed: true,
            weight_slices: 2,
            bits_per_cell: 2,
        };
        plan.weight_shift(2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn weight_shift_rejects_would_be_truncating_index() {
        // Before the checked conversion, an index past u32::MAX would
        // silently truncate (`slice as u32`); now it panics like any
        // other out-of-range index.
        let plan = RecombinationPlan {
            input_bits: 1,
            input_signed: false,
            weight_slices: 1,
            bits_per_cell: 1,
        };
        plan.weight_shift(u32::MAX as usize + 1);
    }

    #[test]
    fn empty_parts_recombine_to_empty() {
        let plan = RecombinationPlan {
            input_bits: 1,
            input_signed: false,
            weight_slices: 1,
            bits_per_cell: 1,
        };
        assert!(plan.recombine(&[]).is_empty());
    }
}
