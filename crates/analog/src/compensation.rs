//! The §4.3 parasitic compensation scheme.
//!
//! Accuracy-critical kernels (AES above all) cannot tolerate a single bit
//! of analog error. DARTH-PUM's compensation scheme combines:
//!
//! 1. **±1 remapping** — a strictly positive 0/1 matrix stored in
//!    differential pairs leaves every negative device at 0, concentrating
//!    current in the positive bitline and maximising IR drop. Remapping
//!    bits to −1/+1 splits the current between the pair's two lines, and
//!    the droop largely cancels in the analog subtraction.
//! 2. **Range scaling** — shrinking the conductance range to half scales
//!    every error source down with the signal.
//! 3. **A compensation factor** — both transforms are affine in the true
//!    dot product, so the digital side recovers the exact result with one
//!    vector addition (and, without range scaling, a halving shift), using
//!    the known number of active input bits.
//!
//! Derivation: with `k` active inputs and 0/1 weights, the true dot product
//! `r` becomes `r' = 2r − k` after ±1 remapping. Halving the range gives
//! the measured `m = r − k/2`, so `r = m + k/2` — for AES (`k = 4`) the
//! factor is 2, matching §4.3.

use serde::{Deserialize, Serialize};

/// Configuration of the compensation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompensationScheme {
    /// Remap 0/1 weights to −1/+1 in differential pairs.
    pub remap: bool,
    /// Scale the conductance range from `[-1, 1]` to `[-0.5, +0.5]`.
    pub scale_half: bool,
    /// Calibrated IR-drop coefficient of the target crossbar (§4.3:
    /// "the parasitic compensation factor can be extrapolated by knowing
    /// the relative sparsity of the input vector"). With `k` active
    /// inputs on a ±1 SLC matrix, every pair conducts on exactly one
    /// line, so the quadratic wire droop attenuates the *net* bitline
    /// value by `(1 − α·k)`; [`CompensationScheme::correct_ir`] divides
    /// it back out digitally.
    pub ir_drop_alpha: f64,
}

impl CompensationScheme {
    /// The full scheme as used for AES MixColumns.
    pub fn aes() -> Self {
        CompensationScheme {
            remap: true,
            scale_half: true,
            ir_drop_alpha: 0.0,
        }
    }

    /// No compensation (the naive mapping).
    pub fn disabled() -> Self {
        CompensationScheme {
            remap: false,
            scale_half: false,
            ir_drop_alpha: 0.0,
        }
    }

    /// Calibrates the IR-drop correction for a crossbar with the given
    /// parasitic coefficient (builder style).
    pub fn with_ir_alpha(mut self, alpha: f64) -> Self {
        self.ir_drop_alpha = alpha.max(0.0);
        self
    }

    /// Undoes the first-order IR-drop attenuation on a measured net
    /// bitline value, given the number of active inputs `k`.
    pub fn correct_ir(&self, measured: f64, active_inputs: i64) -> f64 {
        let attenuation = 1.0 - self.ir_drop_alpha * active_inputs as f64;
        if attenuation <= 0.1 {
            return measured; // out of the correction's validity range
        }
        measured / attenuation
    }

    /// Transforms a strictly 0/1 matrix according to the remapping.
    ///
    /// Non-binary matrices pass through unchanged when remapping is off;
    /// with remapping on, every 0 becomes −1 and every 1 stays +1.
    ///
    /// # Panics
    ///
    /// Panics if remapping is enabled and the matrix contains values other
    /// than 0 and 1 — the scheme is defined only for binary matrices.
    pub fn remap_matrix(&self, matrix: &[Vec<i64>]) -> Vec<Vec<i64>> {
        if !self.remap {
            return matrix.to_vec();
        }
        matrix
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&w| {
                        assert!(
                            w == 0 || w == 1,
                            "±1 remapping requires a binary matrix, found {w}"
                        );
                        if w == 0 {
                            -1
                        } else {
                            1
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// The conductance range scale to configure on the crossbar.
    pub fn range_scale(&self) -> f64 {
        if self.scale_half {
            0.5
        } else {
            1.0
        }
    }

    /// Recovers the true 0/1-matrix dot product from the measured analog
    /// value, given the number of active inputs `k`.
    ///
    /// `measured` is in weight units as read from the ADC (possibly already
    /// scaled by the crossbar's range setting).
    pub fn decode(&self, measured: f64, active_inputs: i64) -> i64 {
        let k = active_inputs as f64;
        let value = match (self.remap, self.scale_half) {
            (false, false) => measured,
            (false, true) => measured * 2.0,
            (true, false) => (measured + k) / 2.0,
            // measured = (2r - k)/2 = r - k/2  =>  r = measured + k/2
            (true, true) => measured + k / 2.0,
        };
        value.round() as i64
    }

    /// The additive compensation factor the DCE applies after the MVM
    /// (§4.3: "a scale factor of 2 is applied as an addition" for AES).
    ///
    /// Only defined for the fully enabled scheme, where decoding is a pure
    /// addition; other configurations need the multiply in
    /// [`CompensationScheme::decode`].
    pub fn additive_factor(&self, active_inputs: i64) -> Option<f64> {
        if self.remap && self.scale_half {
            Some(active_inputs as f64 / 2.0)
        } else {
            None
        }
    }
}

impl Default for CompensationScheme {
    fn default() -> Self {
        CompensationScheme::aes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes_scheme_is_fully_enabled() {
        let s = CompensationScheme::aes();
        assert!(s.remap && s.scale_half);
        assert_eq!(s.range_scale(), 0.5);
        assert_eq!(s.ir_drop_alpha, 0.0);
    }

    #[test]
    fn ir_correction_inverts_the_droop_model() {
        let s = CompensationScheme::aes().with_ir_alpha(0.0008);
        for k in [0i64, 4, 16, 32] {
            for true_value in [-20.0f64, -3.0, 0.0, 7.0, 20.0] {
                let measured = true_value * (1.0 - 0.0008 * k as f64);
                let corrected = s.correct_ir(measured, k);
                assert!(
                    (corrected - true_value).abs() < 1e-9,
                    "k={k} v={true_value}: {corrected}"
                );
            }
        }
        // disabled scheme is the identity
        assert_eq!(CompensationScheme::disabled().correct_ir(5.0, 32), 5.0);
    }

    #[test]
    fn remap_binary_matrix() {
        let s = CompensationScheme::aes();
        let m = vec![vec![0, 1], vec![1, 0]];
        assert_eq!(s.remap_matrix(&m), vec![vec![-1, 1], vec![1, -1]]);
    }

    #[test]
    fn disabled_scheme_passes_through() {
        let s = CompensationScheme::disabled();
        let m = vec![vec![0, 5], vec![1, -3]];
        assert_eq!(s.remap_matrix(&m), m);
        assert_eq!(s.range_scale(), 1.0);
        assert_eq!(s.decode(7.0, 4), 7);
    }

    #[test]
    #[should_panic(expected = "binary matrix")]
    fn remap_rejects_non_binary() {
        CompensationScheme::aes().remap_matrix(&[vec![2]]);
    }

    #[test]
    fn decode_round_trips_all_small_cases() {
        // every (r, k) with 0 <= r <= k <= 8: r ones among k active inputs
        for k in 0..=8i64 {
            for r in 0..=k {
                // forward model: remap makes r' = 2r - k; halving gives m
                let s = CompensationScheme::aes();
                let measured = (2 * r - k) as f64 / 2.0;
                assert_eq!(s.decode(measured, k), r, "r={r} k={k}");

                let s_remap_only = CompensationScheme {
                    remap: true,
                    scale_half: false,
                    ir_drop_alpha: 0.0,
                };
                let measured = (2 * r - k) as f64;
                assert_eq!(s_remap_only.decode(measured, k), r);

                let s_scale_only = CompensationScheme {
                    remap: false,
                    scale_half: true,
                    ir_drop_alpha: 0.0,
                };
                let measured = r as f64 / 2.0;
                assert_eq!(s_scale_only.decode(measured, k), r);
            }
        }
    }

    #[test]
    fn aes_factor_is_two_for_four_inputs() {
        // §4.3: AES has four 1s in the input vector, factor 4 x 0.5 = 2.
        let s = CompensationScheme::aes();
        assert_eq!(s.additive_factor(4), Some(2.0));
        assert_eq!(s.additive_factor(2), Some(1.0)); // Figure 11's factor 1
        assert_eq!(CompensationScheme::disabled().additive_factor(4), None);
    }

    #[test]
    fn decode_tolerates_sub_half_unit_noise() {
        // the whole point: analog error below half an LSB decodes exactly
        let s = CompensationScheme::aes();
        for noise in [-0.33, -0.1, 0.0, 0.2, 0.4] {
            let (r, k) = (3i64, 4i64);
            let measured = (2 * r - k) as f64 / 2.0 + noise;
            assert_eq!(s.decode(measured, k), r, "noise {noise}");
        }
    }
}
