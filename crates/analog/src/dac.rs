//! Input drivers and input bit-slicing.
//!
//! High-resolution digital-to-analog converters are expensive, so analog
//! PUM applies multi-bit inputs one bit at a time (Section 2.2.1,
//! "bit-slicing can also be applied to input values"): an `N`-bit input
//! vector becomes `N` sequential Boolean wordline vectors, each driven by a
//! trivial 1-bit DAC. The partial products are recombined downstream by the
//! shift-and-add plan ([`crate::slicing::RecombinationPlan`]).

use crate::{Error, Result};
use serde::{Deserialize, Serialize};

/// A bank of 1-bit wordline drivers with input bit-slicing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputDriver {
    bits: u8,
    signed: bool,
}

impl InputDriver {
    /// Creates a driver for `bits`-bit inputs.
    ///
    /// Signed drivers interpret inputs as two's complement; the top bit
    /// slice then carries negative weight in the recombination
    /// (`-2^(bits-1)`), which the reduction applies as a subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `bits` is zero or above 32.
    pub fn new(bits: u8, signed: bool) -> Result<Self> {
        if bits == 0 || bits > 32 {
            return Err(Error::InvalidConfig("input bits must be in 1..=32"));
        }
        Ok(InputDriver { bits, signed })
    }

    /// Input width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Whether inputs are two's complement.
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Smallest representable input.
    pub fn min_value(&self) -> i64 {
        if self.signed {
            -(1i64 << (self.bits - 1))
        } else {
            0
        }
    }

    /// Largest representable input.
    pub fn max_value(&self) -> i64 {
        if self.signed {
            (1i64 << (self.bits - 1)) - 1
        } else {
            (1i64 << self.bits) - 1
        }
    }

    /// Slices an input vector into `bits` Boolean wordline vectors,
    /// least-significant bit first.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InputOutOfRange`] if any value does not fit.
    pub fn slice(&self, values: &[i64]) -> Result<Vec<Vec<bool>>> {
        for &v in values {
            if v < self.min_value() || v > self.max_value() {
                return Err(Error::InputOutOfRange {
                    value: v,
                    bits: self.bits,
                });
            }
        }
        let mask = if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        };
        let slices = (0..self.bits)
            .map(|b| {
                values
                    .iter()
                    .map(|&v| ((v as u64) & mask) >> b & 1 == 1)
                    .collect()
            })
            .collect();
        Ok(slices)
    }

    /// Reconstructs values from bit slices — the software inverse of
    /// [`InputDriver::slice`], used in tests and recombination checks.
    pub fn unslice(&self, slices: &[Vec<bool>]) -> Vec<i64> {
        if slices.is_empty() {
            return Vec::new();
        }
        let n = slices[0].len();
        let mut out = vec![0i64; n];
        for (b, slice) in slices.iter().enumerate() {
            let weight = if self.signed && b as u8 == self.bits - 1 {
                -(1i64 << b)
            } else {
                1i64 << b
            };
            for (i, &bit) in slice.iter().enumerate() {
                if bit {
                    out[i] += weight;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(InputDriver::new(0, false).is_err());
        assert!(InputDriver::new(33, false).is_err());
        assert!(InputDriver::new(8, true).is_ok());
    }

    #[test]
    fn unsigned_ranges() {
        let d = InputDriver::new(8, false).expect("valid");
        assert_eq!(d.min_value(), 0);
        assert_eq!(d.max_value(), 255);
    }

    #[test]
    fn signed_ranges() {
        let d = InputDriver::new(8, true).expect("valid");
        assert_eq!(d.min_value(), -128);
        assert_eq!(d.max_value(), 127);
    }

    #[test]
    fn slice_unsigned_round_trip() {
        let d = InputDriver::new(4, false).expect("valid");
        let values = vec![0, 1, 7, 15, 8, 5];
        let slices = d.slice(&values).expect("in range");
        assert_eq!(slices.len(), 4);
        assert_eq!(d.unslice(&slices), values);
    }

    #[test]
    fn slice_signed_round_trip() {
        let d = InputDriver::new(8, true).expect("valid");
        let values = vec![-128, -1, 0, 1, 127, -37];
        let slices = d.slice(&values).expect("in range");
        assert_eq!(d.unslice(&slices), values);
    }

    #[test]
    fn slice_is_lsb_first() {
        let d = InputDriver::new(3, false).expect("valid");
        let slices = d.slice(&[0b110]).expect("in range");
        assert_eq!(slices[0], vec![false]);
        assert_eq!(slices[1], vec![true]);
        assert_eq!(slices[2], vec![true]);
    }

    #[test]
    fn out_of_range_is_rejected() {
        let d = InputDriver::new(4, false).expect("valid");
        assert!(matches!(
            d.slice(&[16]),
            Err(Error::InputOutOfRange { value: 16, bits: 4 })
        ));
        let s = InputDriver::new(4, true).expect("valid");
        assert!(s.slice(&[-9]).is_err());
        assert!(s.slice(&[8]).is_err());
        assert!(s.slice(&[-8, 7]).is_ok());
    }

    #[test]
    fn one_bit_driver() {
        let d = InputDriver::new(1, false).expect("valid");
        let slices = d.slice(&[1, 0, 1]).expect("in range");
        assert_eq!(slices, vec![vec![true, false, true]]);
    }
}
