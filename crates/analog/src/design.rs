//! Analog-side design points for design-space exploration.
//!
//! The functional simulators in this crate are built from fine-grained
//! configurations ([`crate::crossbar::CrossbarConfig`], [`crate::Adc`],
//! [`crate::WeightSlicer`]). Design-space sweeps need one coarser object:
//! a validated *design point* naming the analog knobs the DARTH-PUM cost
//! model exposes — ADC kind and resolution, crossbar geometry, weight
//! slicing, and the ACE's array count. [`AceDesign`] is that object; the
//! `darth_pum::config::DarthConfig` builder composes it with the
//! digital-side `darth_digital::design::DceDesign` into a full chip
//! configuration.

use crate::adc::{Adc, AdcKind};
use crate::{Error, Result};
use serde::{Deserialize, Serialize};

/// Largest crossbar dimension and ACE array count a design may request.
/// Sized well past anything physical so sweeps are unconstrained, while
/// still catching nonsense (and keeping downstream `u64` tile math far
/// from overflow).
pub const MAX_DESIGN_DIM: usize = 4096;

/// One analog compute element design point: the knobs of §2.2.1/Table 2
/// that the analytical cost model prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AceDesign {
    /// Converter architecture (Table 2: SAR or ramp).
    pub adc_kind: AdcKind,
    /// ADC resolution in bits (the paper evaluates 8).
    pub adc_bits: u8,
    /// Crossbar wordlines (matrix rows per array).
    pub crossbar_rows: usize,
    /// Crossbar bitlines (matrix columns per array).
    pub crossbar_cols: usize,
    /// Weight bits stored per device (slicing policy; paper: 4-bit MLC).
    pub bits_per_cell: u8,
    /// Analog arrays per ACE (Table 2: 64).
    pub ace_arrays: usize,
}

impl AceDesign {
    /// The paper's Table 2 analog configuration with the chosen ADC:
    /// 8-bit conversion, 64×64 crossbars, 4-bit cells, 64 arrays.
    pub fn paper(adc_kind: AdcKind) -> Self {
        AceDesign {
            adc_kind,
            adc_bits: 8,
            crossbar_rows: 64,
            crossbar_cols: 64,
            bits_per_cell: 4,
            ace_arrays: 64,
        }
    }

    /// Validates the design point.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the ADC resolution is outside
    /// [`Adc::new`]'s 1..=16 range, a crossbar dimension or the array
    /// count is zero or exceeds [`MAX_DESIGN_DIM`], or the cell stores
    /// zero or more than 8 bits (the crossbar's MLC ceiling).
    pub fn validate(&self) -> Result<()> {
        // Reuse the ADC constructor as the resolution validator.
        Adc::new(self.adc_kind, self.adc_bits, 1.0)?;
        if self.crossbar_rows == 0 || self.crossbar_rows > MAX_DESIGN_DIM {
            return Err(Error::InvalidConfig("crossbar rows must be in 1..=4096"));
        }
        if self.crossbar_cols == 0 || self.crossbar_cols > MAX_DESIGN_DIM {
            return Err(Error::InvalidConfig("crossbar cols must be in 1..=4096"));
        }
        if self.bits_per_cell == 0 || self.bits_per_cell > 8 {
            return Err(Error::InvalidConfig("bits per cell must be in 1..=8"));
        }
        if self.ace_arrays == 0 || self.ace_arrays > MAX_DESIGN_DIM {
            return Err(Error::InvalidConfig("ACE array count must be in 1..=4096"));
        }
        Ok(())
    }

    /// The design point as `(key, value)` pairs for JSON reports.
    /// (Design-point *names* come from the sweep layer's axis slugs —
    /// `darth_eval::dse` — so there is exactly one naming scheme.)
    pub fn params(&self) -> Vec<(String, String)> {
        vec![
            ("adc_kind".to_owned(), self.adc_kind.slug().to_owned()),
            ("adc_bits".to_owned(), self.adc_bits.to_string()),
            ("crossbar_rows".to_owned(), self.crossbar_rows.to_string()),
            ("crossbar_cols".to_owned(), self.crossbar_cols.to_string()),
            ("bits_per_cell".to_owned(), self.bits_per_cell.to_string()),
            ("ace_arrays".to_owned(), self.ace_arrays.to_string()),
        ]
    }
}

impl Default for AceDesign {
    fn default() -> Self {
        AceDesign::paper(AdcKind::Sar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_designs_validate() {
        for kind in [AdcKind::Sar, AdcKind::Ramp] {
            let d = AceDesign::paper(kind);
            assert!(d.validate().is_ok());
            assert_eq!(d.adc_bits, 8);
            assert_eq!((d.crossbar_rows, d.crossbar_cols), (64, 64));
        }
    }

    #[test]
    fn invalid_designs_are_rejected() {
        let paper = AceDesign::paper(AdcKind::Sar);
        for bad in [
            AceDesign {
                adc_bits: 0,
                ..paper
            },
            AceDesign {
                adc_bits: 17,
                ..paper
            },
            AceDesign {
                crossbar_rows: 0,
                ..paper
            },
            AceDesign {
                crossbar_cols: MAX_DESIGN_DIM + 1,
                ..paper
            },
            AceDesign {
                bits_per_cell: 0,
                ..paper
            },
            AceDesign {
                bits_per_cell: 9,
                ..paper
            },
            AceDesign {
                ace_arrays: 0,
                ..paper
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn params_name_every_axis() {
        let d = AceDesign {
            adc_kind: AdcKind::Ramp,
            adc_bits: 6,
            crossbar_rows: 128,
            crossbar_cols: 64,
            bits_per_cell: 2,
            ace_arrays: 32,
        };
        let params = d.params();
        assert_eq!(params.len(), 6);
        assert!(params.contains(&("adc_kind".to_owned(), "ramp".to_owned())));
        assert!(params.contains(&("crossbar_rows".to_owned(), "128".to_owned())));
    }
}
