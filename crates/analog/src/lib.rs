//! Analog crossbar processing-using-memory: matrix–vector multiplication in
//! ReRAM with faithful peripheral and non-ideality models.
//!
//! Analog PUM (Section 2.2.1 of the DARTH-PUM paper) programs a matrix into
//! crossbar conductances and performs a multiply–accumulate per bitline via
//! Ohm's law and Kirchhoff's current law. This crate models that pipeline
//! end to end:
//!
//! * [`crossbar`] — a conductance-programmed crossbar with differential-pair
//!   or offset-subtraction number representations, programming noise, read
//!   noise and an IR-drop parasitic model.
//! * [`adc`] — SAR and ramp analog-to-digital converters with the latency,
//!   multiplexing and early-termination behaviours of Table 2 / §7.3.
//! * [`dac`] — input drivers with input bit-slicing (an N-bit input is
//!   applied as N sequential 1-bit wordline vectors).
//! * [`slicing`] — weight bit-slicing across arrays and the shift-and-add
//!   recombination plans that DARTH-PUM's instruction injection unit
//!   replays.
//! * [`compensation`] — the §4.3 parasitic compensation scheme: 0/1 → ±1
//!   differential remapping, range scaling, and the post-MVM compensation
//!   factor.
//! * [`ace`] — the analog compute element: a bank of crossbars plus input
//!   buffers, sample-and-hold and an ADC group, producing the per-input-bit
//!   partial-product vectors that the digital side reduces.
//! * [`design`] — validated coarse design points ([`AceDesign`]) for the
//!   design-space sweeps: ADC kind × resolution, crossbar geometry,
//!   slicing policy and array count in one object.
//!
//! # Example: a noisy 2×2 MVM
//!
//! ```
//! use darth_analog::crossbar::{Crossbar, CrossbarConfig, Representation};
//! use darth_reram::NoiseRng;
//!
//! # fn main() -> Result<(), darth_analog::Error> {
//! let mut rng = NoiseRng::seed_from(1);
//! let config = CrossbarConfig {
//!     rows: 2,
//!     cols: 2,
//!     bits_per_cell: 2,
//!     representation: Representation::DifferentialPair,
//!     ..CrossbarConfig::ideal(2, 2)
//! };
//! let mut xbar = Crossbar::new(config)?;
//! xbar.program(&[vec![2, 3], vec![-1, 0]], &mut rng)?;
//! let currents = xbar.mvm_currents(&[true, true], &mut rng)?;
//! // column 0: 2 + (-1) = 1; column 1: 3 + 0 = 3 (in units of one level)
//! assert!((currents[0] / xbar.unit_current() - 1.0).abs() < 0.2);
//! assert!((currents[1] / xbar.unit_current() - 3.0).abs() < 0.2);
//! # Ok(())
//! # }
//! ```

pub mod ace;
pub mod adc;
pub mod compensation;
pub mod crossbar;
pub mod dac;
pub mod design;
pub mod slicing;

pub use ace::{AnalogComputeElement, MvmOutput};
pub use adc::{Adc, AdcKind};
pub use compensation::CompensationScheme;
pub use crossbar::{Crossbar, CrossbarConfig, Representation};
pub use dac::InputDriver;
pub use design::AceDesign;
pub use slicing::{RecombinationPlan, WeightSlicer};

use std::fmt;

/// Errors produced by the analog PUM simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Matrix dimensions do not match the crossbar.
    ShapeMismatch {
        /// Expected rows.
        expected_rows: usize,
        /// Expected columns.
        expected_cols: usize,
        /// Provided rows.
        got_rows: usize,
        /// Provided columns.
        got_cols: usize,
    },
    /// A weight value exceeds the representable range for the configured
    /// bits per cell and representation.
    WeightOutOfRange {
        /// The offending weight.
        weight: i64,
        /// Largest representable magnitude.
        max_magnitude: i64,
    },
    /// An input vector had the wrong length.
    InputLengthMismatch {
        /// Expected length (crossbar rows).
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// Configuration is invalid.
    InvalidConfig(&'static str),
    /// An input value does not fit the configured input bit width.
    InputOutOfRange {
        /// The offending input value.
        value: i64,
        /// Input bit width.
        bits: u8,
    },
    /// An array index exceeded the ACE's array count.
    InvalidArray {
        /// Requested index.
        index: usize,
        /// Available arrays.
        count: usize,
    },
    /// An underlying ReRAM substrate error.
    Reram(darth_reram::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch {
                expected_rows,
                expected_cols,
                got_rows,
                got_cols,
            } => write!(
                f,
                "matrix shape {got_rows}x{got_cols} does not match crossbar \
                 {expected_rows}x{expected_cols}"
            ),
            Error::WeightOutOfRange {
                weight,
                max_magnitude,
            } => write!(
                f,
                "weight {weight} exceeds representable magnitude {max_magnitude}"
            ),
            Error::InputLengthMismatch { expected, got } => {
                write!(f, "input length {got} does not match {expected} wordlines")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid analog configuration: {msg}"),
            Error::InputOutOfRange { value, bits } => {
                write!(f, "input {value} does not fit in {bits} bits")
            }
            Error::InvalidArray { index, count } => {
                write!(f, "array {index} out of range (have {count})")
            }
            Error::Reram(e) => write!(f, "reram substrate: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Reram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<darth_reram::Error> for Error {
    fn from(e: darth_reram::Error) -> Self {
        Error::Reram(e)
    }
}

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, Error>;
