//! Design-space exploration: parameterized config sweeps over the
//! DARTH-PUM design space.
//!
//! The paper's figures price a handful of fixed design points (8-bit
//! SAR/ramp ADCs, 64×64 crossbars, 4-bit cells at 1 GHz). This module
//! turns those points into a *space*: a [`ConfigSweep`] walks named axes
//! (ADC kind and resolution, crossbar geometry, bits-per-cell slicing,
//! ACE array count, clock — plus arbitrary [`SweepAxis::custom`] axes)
//! over a base [`DarthConfig`], producing one validated [`DesignPoint`]
//! per grid cell, and [`price_sweep`] prices every point on every
//! workload through the streaming [`Engine`]:
//!
//! * each workload's op stream is recorded once into the engine's
//!   summary cache (sharded across `std::thread::scope` workers);
//! * each row then replays once into a `Fanout` over *all* design
//!   points ([`Engine::run_fanout`]) — one emission pass prices every
//!   config cell, and serial/parallel results are bit-identical;
//! * every design point is wrapped in the paper's evaluation policy
//!   ([`crate::registry::PaperDarthModel`]), so ramp-ADC points apply
//!   the §7.3 AES early termination and the paper's own design points
//!   reproduce the figure numbers byte-for-byte inside the sweep.
//!
//! The result is a [`SweepMatrix`]: the priced workload × config matrix
//! plus per-point area/sizing, Pareto-frontier extraction over
//! (latency, energy, tile area), and per-workload best-config tables.

use crate::engine::{Engine, EvalMatrix, Threading};
use crate::json::JsonValue;
use crate::mc::PointAccuracy;
use crate::registry::PaperDarthModel;
use darth_analog::adc::AdcKind;
use darth_pum::config::DarthConfig;
use darth_pum::eval::{ArchModel, CostAccumulator, Workload};
use darth_pum::trace::{geomean, CostReport};
use std::collections::HashSet;
use std::sync::Arc;

/// How one axis point edits a config (the closed set of named knobs,
/// plus an open escape hatch for user-defined axes).
#[derive(Clone)]
enum AxisApply {
    AdcKind(AdcKind),
    AdcBits(u8),
    Crossbar(usize, usize),
    BitsPerCell(u8),
    AceArrays(usize),
    ClockGhz(f64),
    Custom(Arc<dyn Fn(&mut DarthConfig) + Send + Sync>),
}

/// One value of a sweep axis: a slug for the design-point name, a
/// human-readable value for reports, and the config edit itself.
#[derive(Clone)]
pub struct AxisPoint {
    slug: String,
    value: String,
    apply: AxisApply,
}

impl AxisPoint {
    /// A user-defined axis point: `slug` names the point inside design
    /// names, `value` is the report form, and `apply` edits the config.
    pub fn custom(
        slug: impl Into<String>,
        value: impl Into<String>,
        apply: impl Fn(&mut DarthConfig) + Send + Sync + 'static,
    ) -> Self {
        AxisPoint {
            slug: slug.into(),
            value: value.into(),
            apply: AxisApply::Custom(Arc::new(apply)),
        }
    }

    fn apply_to(&self, config: &mut DarthConfig) {
        match &self.apply {
            AxisApply::AdcKind(kind) => config.ace.adc_kind = *kind,
            AxisApply::AdcBits(bits) => config.ace.adc_bits = *bits,
            AxisApply::Crossbar(rows, cols) => {
                config.ace.crossbar_rows = *rows;
                config.ace.crossbar_cols = *cols;
            }
            AxisApply::BitsPerCell(bits) => config.ace.bits_per_cell = *bits,
            AxisApply::AceArrays(arrays) => config.ace.ace_arrays = *arrays,
            AxisApply::ClockGhz(ghz) => config.dce.clock_ghz = *ghz,
            AxisApply::Custom(f) => f(config),
        }
    }
}

/// One named sweep axis: an ordered set of [`AxisPoint`]s.
#[derive(Clone)]
pub struct SweepAxis {
    name: String,
    points: Vec<AxisPoint>,
}

impl SweepAxis {
    /// The ADC architecture axis.
    pub fn adc_kinds(kinds: &[AdcKind]) -> Self {
        SweepAxis {
            name: "adc".into(),
            points: kinds
                .iter()
                .map(|&k| AxisPoint {
                    slug: k.slug().to_owned(),
                    value: k.slug().to_owned(),
                    apply: AxisApply::AdcKind(k),
                })
                .collect(),
        }
    }

    /// The ADC resolution axis (bits).
    pub fn adc_bits(bits: &[u8]) -> Self {
        SweepAxis {
            name: "adc_bits".into(),
            points: bits
                .iter()
                .map(|&b| AxisPoint {
                    slug: format!("b{b}"),
                    value: b.to_string(),
                    apply: AxisApply::AdcBits(b),
                })
                .collect(),
        }
    }

    /// The crossbar geometry axis (`(rows, cols)` pairs).
    pub fn crossbars(shapes: &[(usize, usize)]) -> Self {
        SweepAxis {
            name: "crossbar".into(),
            points: shapes
                .iter()
                .map(|&(r, c)| AxisPoint {
                    slug: format!("xb{r}x{c}"),
                    value: format!("{r}x{c}"),
                    apply: AxisApply::Crossbar(r, c),
                })
                .collect(),
        }
    }

    /// The weight-slicing axis (bits stored per device).
    pub fn bits_per_cell(bits: &[u8]) -> Self {
        SweepAxis {
            name: "bits_per_cell".into(),
            points: bits
                .iter()
                .map(|&b| AxisPoint {
                    slug: format!("bpc{b}"),
                    value: b.to_string(),
                    apply: AxisApply::BitsPerCell(b),
                })
                .collect(),
        }
    }

    /// The ACE array count axis.
    pub fn ace_arrays(counts: &[usize]) -> Self {
        SweepAxis {
            name: "ace_arrays".into(),
            points: counts
                .iter()
                .map(|&n| AxisPoint {
                    slug: format!("ace{n}"),
                    value: n.to_string(),
                    apply: AxisApply::AceArrays(n),
                })
                .collect(),
        }
    }

    /// The tile clock axis (GHz). Slugs use the full `{}` rendering of
    /// the value (`clk1`, `clk1.25`, `clk1.011`), not a rounded form —
    /// two distinct clocks must never collide into one design-point
    /// name.
    pub fn clock_ghz(clocks: &[f64]) -> Self {
        SweepAxis {
            name: "clock_ghz".into(),
            points: clocks
                .iter()
                .map(|&g| AxisPoint {
                    slug: format!("clk{g}"),
                    value: format!("{g}"),
                    apply: AxisApply::ClockGhz(g),
                })
                .collect(),
        }
    }

    /// A user-defined axis from explicit [`AxisPoint::custom`] points —
    /// the extension hook for knobs this module does not name (schedule
    /// flags, area budgets, combined edits, …). See the README's
    /// "custom sweep axis" example.
    pub fn custom(name: impl Into<String>, points: Vec<AxisPoint>) -> Self {
        SweepAxis {
            name: name.into(),
            points,
        }
    }

    /// The axis name as it appears in reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of points on this axis.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the axis has no points (an empty axis empties the grid).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// One generated design point: a unique name, the axis coordinates that
/// produced it, and the validated config.
#[derive(Clone)]
pub struct DesignPoint {
    /// Unique sweep-registry name (`"darth-sar-b8-xb64x64-bpc4-clk1"`).
    pub name: String,
    /// `(axis name, value)` coordinates, in axis order.
    pub axis_values: Vec<(String, String)>,
    /// The validated configuration.
    pub config: DarthConfig,
}

/// A grid generator: a base config crossed with named axes.
#[derive(Clone, Default)]
pub struct ConfigSweep {
    base: DarthConfig,
    axes: Vec<SweepAxis>,
}

impl ConfigSweep {
    /// A sweep around `base` with no axes yet (generates just the base).
    pub fn new(base: DarthConfig) -> Self {
        ConfigSweep {
            base,
            axes: Vec::new(),
        }
    }

    /// Adds an axis (builder style); the grid is the cartesian product
    /// of all axes, in registration order.
    #[must_use]
    pub fn axis(mut self, axis: SweepAxis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Number of grid cells the sweep will generate.
    pub fn cell_count(&self) -> usize {
        self.axes.iter().map(SweepAxis::len).product()
    }

    /// Generates and validates every design point of the grid.
    ///
    /// # Errors
    ///
    /// Returns the underlying config error for any invalid grid cell,
    /// and [`darth_pum::Error::InvalidConfig`] when two cells collide on
    /// the same name (e.g. a custom axis with duplicate slugs).
    pub fn generate(&self) -> darth_pum::Result<Vec<DesignPoint>> {
        let mut points = vec![DesignPoint {
            name: "darth".to_owned(),
            axis_values: Vec::new(),
            config: self.base,
        }];
        for axis in &self.axes {
            let mut next = Vec::with_capacity(points.len() * axis.points.len());
            for partial in &points {
                for point in &axis.points {
                    let mut config = partial.config;
                    point.apply_to(&mut config);
                    let mut axis_values = partial.axis_values.clone();
                    axis_values.push((axis.name.clone(), point.value.clone()));
                    next.push(DesignPoint {
                        name: format!("{}-{}", partial.name, point.slug),
                        axis_values,
                        config,
                    });
                }
            }
            points = next;
        }
        let mut names = HashSet::new();
        for point in &points {
            point.config.validate()?;
            if !names.insert(point.name.as_str()) {
                return Err(darth_pum::Error::InvalidConfig(format!(
                    "duplicate design-point name '{}' (axis slugs must be unique)",
                    point.name
                )));
            }
        }
        Ok(points)
    }
}

/// The default design-space grid: 48 configurations spanning both ADC
/// kinds, two resolutions, two crossbar geometries, two slicing
/// policies and three clocks — with the paper's SAR and ramp design
/// points among the cells (`sar-b8-xb64x64-bpc4-clk1` and its ramp
/// twin).
pub fn default_sweep() -> ConfigSweep {
    ConfigSweep::new(DarthConfig::paper(AdcKind::Sar))
        .axis(SweepAxis::adc_kinds(&[AdcKind::Sar, AdcKind::Ramp]))
        .axis(SweepAxis::adc_bits(&[6, 8]))
        .axis(SweepAxis::crossbars(&[(64, 64), (128, 128)]))
        .axis(SweepAxis::bits_per_cell(&[2, 4]))
        .axis(SweepAxis::clock_ghz(&[1.0, 1.25, 1.5]))
}

/// The `make verify` smoke grid: both ADC kinds × both slicing policies
/// (4 configs), which still contains both paper design points.
pub fn smoke_sweep() -> ConfigSweep {
    ConfigSweep::new(DarthConfig::paper(AdcKind::Sar))
        .axis(SweepAxis::adc_kinds(&[AdcKind::Sar, AdcKind::Ramp]))
        .axis(SweepAxis::bits_per_cell(&[2, 4]))
}

/// The architecture column a design point registers as: the built
/// [`darth_pum::model::DarthModel`] under the paper's evaluation policy
/// (ramp-ADC AES early termination), renamed to the design point's
/// unique sweep name.
struct SweepModel {
    name: String,
    label: String,
    inner: PaperDarthModel,
}

impl ArchModel for SweepModel {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn label(&self) -> String {
        self.label.clone()
    }

    fn accumulator(&self) -> Box<dyn CostAccumulator + '_> {
        self.inner.accumulator()
    }
}

/// Per-point sizing facts carried next to the priced matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSummary {
    /// Design-point name (matrix column name).
    pub name: String,
    /// `(axis name, value)` coordinates.
    pub axis_values: Vec<(String, String)>,
    /// Full config parameters (`(key, value)` pairs).
    pub config_params: Vec<(String, String)>,
    /// Die area of one HCT including its front-end share, in µm² — the
    /// area coordinate of the Pareto frontier.
    pub tile_area_um2: f64,
    /// Iso-area tile count under the config's area budget.
    pub hct_count: usize,
    /// Measured Monte-Carlo accuracy at this design point
    /// ([`crate::mc::attach_accuracy`] fills it; `None` until trials
    /// have run). Its aggregate mean error is the fourth Pareto
    /// coordinate — an unattached point contributes `0.0` (perfect), so
    /// pricing-only sweeps keep their pre-accuracy frontiers.
    pub accuracy: Option<PointAccuracy>,
}

/// Selection metric for [`SweepMatrix::best_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Minimize single-item latency.
    Latency,
    /// Minimize energy per item.
    Energy,
    /// Maximize chip throughput.
    Throughput,
}

/// The priced design space: one matrix column per design point, plus
/// per-point sizing, Pareto extraction and best-config selection.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepMatrix {
    /// Per-point sizing facts, in matrix column order.
    pub points: Vec<DesignSummary>,
    /// The priced workload × design-point matrix (design points are the
    /// model columns).
    pub matrix: EvalMatrix,
}

impl SweepMatrix {
    /// Index of a design point by name.
    pub fn point_index(&self, name: &str) -> Option<usize> {
        self.points.iter().position(|p| p.name == name)
    }

    /// The cell for `(workload, design point)` names.
    pub fn cell(&self, workload: &str, point: &str) -> Option<&CostReport> {
        self.matrix.cell(workload, point)
    }

    /// The measured-error Pareto coordinate of design point `p`: the
    /// Monte-Carlo aggregate mean error, or `0.0` before trials attach.
    fn error_coord(&self, point_index: usize) -> f64 {
        self.points[point_index]
            .accuracy
            .as_ref()
            .map_or(0.0, |a| a.mean_error)
    }

    /// The per-workload cost coordinates of design point `p`, joined
    /// with its area and measured error:
    /// `(latency_s, energy_per_item_j, tile_area_um2, mean_error)`.
    fn coords(&self, workload_index: usize, point_index: usize) -> (f64, f64, f64, f64) {
        let report = self.matrix.cell_at(workload_index, point_index);
        (
            report.latency_s,
            report.energy_per_item_j,
            self.points[point_index].tile_area_um2,
            self.error_coord(point_index),
        )
    }

    /// Geometric-mean latency and energy of one design point across all
    /// workload rows (the aggregate Pareto coordinates). Non-finite and
    /// non-positive cells are skipped — an empty or fully-skipped column
    /// aggregates to `(0.0, 0.0)`, never NaN (see
    /// [`darth_pum::trace::geomean`]).
    pub fn aggregate(&self, point_index: usize) -> (f64, f64) {
        let rows = self.matrix.workloads.len();
        let latencies: Vec<f64> = (0..rows)
            .map(|w| self.matrix.cell_at(w, point_index).latency_s)
            .collect();
        let energies: Vec<f64> = (0..rows)
            .map(|w| self.matrix.cell_at(w, point_index).energy_per_item_j)
            .collect();
        (geomean(&latencies), geomean(&energies))
    }

    /// Indices of the design points on one workload's Pareto frontier
    /// over (latency, energy, tile area, measured error), all minimized.
    /// Points with a non-finite coordinate are never on the frontier;
    /// ties survive (two identical points both stay).
    pub fn pareto_frontier(&self, workload: &str) -> Vec<usize> {
        let Some(w) = self.matrix.workload_index(workload) else {
            return Vec::new();
        };
        let coords: Vec<(f64, f64, f64, f64)> =
            (0..self.points.len()).map(|p| self.coords(w, p)).collect();
        pareto_indices(&coords)
    }

    /// Indices of the design points on the aggregate (geomean across
    /// workloads) Pareto frontier over (latency, energy, tile area,
    /// measured error). A degenerate aggregate (no priceable cells,
    /// geomean 0.0) is excluded from the frontier.
    pub fn pareto_frontier_aggregate(&self) -> Vec<usize> {
        let coords: Vec<(f64, f64, f64, f64)> = (0..self.points.len())
            .map(|p| {
                let (latency, energy) = self.aggregate(p);
                let area = self.points[p].tile_area_um2;
                if latency > 0.0 && energy > 0.0 {
                    (latency, energy, area, self.error_coord(p))
                } else {
                    (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY)
                }
            })
            .collect();
        pareto_indices(&coords)
    }

    /// The best design point for one workload under a metric, skipping
    /// non-finite cells; `None` for an unknown workload or when no cell
    /// is finite. Ties resolve to the lowest index (registration order),
    /// deterministically.
    pub fn best_for(&self, workload: &str, metric: Metric) -> Option<usize> {
        let w = self.matrix.workload_index(workload)?;
        let mut best: Option<(usize, f64)> = None;
        for p in 0..self.points.len() {
            let report = self.matrix.cell_at(w, p);
            let value = match metric {
                Metric::Latency => report.latency_s,
                Metric::Energy => report.energy_per_item_j,
                Metric::Throughput => report.throughput_items_per_s,
            };
            if !value.is_finite() {
                continue;
            }
            let better = match (metric, best) {
                (_, None) => true,
                (Metric::Throughput, Some((_, incumbent))) => value > incumbent,
                (_, Some((_, incumbent))) => value < incumbent,
            };
            if better {
                best = Some((p, value));
            }
        }
        best.map(|(p, _)| p)
    }

    /// The per-workload best-config table: for every workload row, the
    /// winning design point under each metric (`None` entries for rows
    /// with no finite cells).
    pub fn best_table(&self) -> Vec<(String, [Option<usize>; 3])> {
        self.matrix
            .workloads
            .iter()
            .map(|w| {
                (
                    w.name.clone(),
                    [
                        self.best_for(&w.name, Metric::Latency),
                        self.best_for(&w.name, Metric::Energy),
                        self.best_for(&w.name, Metric::Throughput),
                    ],
                )
            })
            .collect()
    }

    /// The whole sweep as a JSON document (`darth-dse-sweep/v2`):
    /// per-point sizing and axis coordinates, the full priced matrix,
    /// per-workload and aggregate Pareto frontiers, the best-config
    /// table, and — v2 — each point's measured Monte-Carlo accuracy
    /// (`null` until [`crate::mc::attach_accuracy`] runs trials).
    pub fn to_json(&self) -> JsonValue<'_> {
        let points = self
            .points
            .iter()
            .map(|p| {
                let accuracy = match &p.accuracy {
                    None => JsonValue::Null,
                    Some(a) => a.to_json(),
                };
                JsonValue::object(vec![
                    ("name", JsonValue::from(&p.name)),
                    (
                        "axes",
                        JsonValue::Object(
                            p.axis_values
                                .iter()
                                .map(|(k, v)| (k.as_str().into(), JsonValue::from(v)))
                                .collect(),
                        ),
                    ),
                    (
                        "config",
                        JsonValue::Object(
                            p.config_params
                                .iter()
                                .map(|(k, v)| (k.as_str().into(), JsonValue::from(v)))
                                .collect(),
                        ),
                    ),
                    ("tile_area_um2", JsonValue::from(p.tile_area_um2)),
                    ("hct_count", JsonValue::from(p.hct_count)),
                    ("accuracy", accuracy),
                ])
            })
            .collect();
        let frontier_names = |indices: Vec<usize>| {
            JsonValue::array(
                indices
                    .into_iter()
                    .map(|p| JsonValue::from(&self.points[p].name))
                    .collect(),
            )
        };
        let per_workload = self
            .matrix
            .workloads
            .iter()
            .map(|w| {
                JsonValue::object(vec![
                    ("workload", JsonValue::from(&w.name)),
                    ("frontier", frontier_names(self.pareto_frontier(&w.name))),
                ])
            })
            .collect();
        let best = self
            .best_table()
            .into_iter()
            .map(|(workload, [latency, energy, throughput])| {
                let name = |p: Option<usize>| match p {
                    Some(p) => JsonValue::from(self.points[p].name.clone()),
                    None => JsonValue::Null,
                };
                JsonValue::object(vec![
                    ("workload", JsonValue::from(workload)),
                    ("by_latency", name(latency)),
                    ("by_energy", name(energy)),
                    ("by_throughput", name(throughput)),
                ])
            })
            .collect();
        JsonValue::object(vec![
            ("schema", JsonValue::from("darth-dse-sweep/v2")),
            ("config_count", JsonValue::from(self.points.len())),
            (
                "workload_count",
                JsonValue::from(self.matrix.workloads.len()),
            ),
            ("points", JsonValue::Array(points)),
            (
                "pareto",
                JsonValue::object(vec![
                    (
                        "aggregate",
                        frontier_names(self.pareto_frontier_aggregate()),
                    ),
                    ("per_workload", JsonValue::Array(per_workload)),
                ]),
            ),
            ("best", JsonValue::Array(best)),
            ("matrix", self.matrix.to_json()),
        ])
    }
}

/// Indices not dominated by any other point (all coordinates minimized;
/// non-finite coordinates exclude a point outright).
fn pareto_indices(coords: &[(f64, f64, f64, f64)]) -> Vec<usize> {
    let finite = |&(l, e, a, x): &(f64, f64, f64, f64)| {
        l.is_finite() && e.is_finite() && a.is_finite() && x.is_finite()
    };
    let dominates = |a: &(f64, f64, f64, f64), b: &(f64, f64, f64, f64)| {
        a.0 <= b.0
            && a.1 <= b.1
            && a.2 <= b.2
            && a.3 <= b.3
            && (a.0 < b.0 || a.1 < b.1 || a.2 < b.2 || a.3 < b.3)
    };
    (0..coords.len())
        .filter(|&i| {
            finite(&coords[i])
                && !coords
                    .iter()
                    .enumerate()
                    .any(|(j, other)| j != i && finite(other) && dominates(other, &coords[i]))
        })
        .collect()
}

/// Prices every design point on every workload through the streaming
/// engine: summaries recorded once per workload (sharded across scoped
/// workers), then one `Fanout` replay pass per workload row prices all
/// config columns at once. Serial and parallel runs are bit-identical.
///
/// # Errors
///
/// Propagates config build errors (the points of a
/// [`ConfigSweep::generate`] grid are already validated, so this only
/// fires for hand-made invalid points).
pub fn price_sweep(
    points: &[DesignPoint],
    workloads: Vec<Box<dyn Workload>>,
    threading: Threading,
) -> darth_pum::Result<SweepMatrix> {
    let mut engine = Engine::new();
    engine.set_threading(threading);
    for workload in workloads {
        engine.register_workload(workload);
    }
    let mut summaries = Vec::with_capacity(points.len());
    for point in points {
        let model = point.config.build()?;
        summaries.push(DesignSummary {
            name: point.name.clone(),
            axis_values: point.axis_values.clone(),
            config_params: point.config.params(),
            tile_area_um2: model.chip.hct.tile_area_with_front_end_share().get(),
            hct_count: model.chip.hct_count(),
            accuracy: None,
        });
        engine.register_model(Box::new(SweepModel {
            name: point.name.clone(),
            label: format!("DARTH-PUM [{}]", point.name),
            inner: PaperDarthModel { model },
        }));
    }
    Ok(SweepMatrix {
        points: summaries,
        matrix: engine.run_fanout(),
    })
}

/// One serving chip drawn from the DSE frontier: the design point's
/// name, its clock (the serving timeline's cycle→seconds conversion),
/// and the full validated config. The serving layer (`darth_serve`)
/// replicates these into a heterogeneous fleet.
#[derive(Debug, Clone)]
pub struct FleetPoint {
    /// Design-point name (`"darth-sar-b8-xb64x64-bpc4-clk1"`).
    pub name: String,
    /// DCE clock in GHz.
    pub clock_ghz: f64,
    /// The validated configuration.
    pub config: DarthConfig,
}

/// Extracts a priced sweep's aggregate-Pareto-frontier design points as
/// serving-fleet configs, matching the matrix columns back to the
/// generator's [`DesignPoint`]s by name. Frontier order is registration
/// order ([`SweepMatrix::pareto_frontier_aggregate`] returns ascending
/// indices), so the fleet is deterministic for a given sweep. Frontier
/// entries whose name is missing from `points` are skipped — passing the
/// same grid that was priced never drops any.
pub fn frontier_fleet(points: &[DesignPoint], matrix: &SweepMatrix) -> Vec<FleetPoint> {
    matrix
        .pareto_frontier_aggregate()
        .into_iter()
        .filter_map(|i| {
            let summary = &matrix.points[i];
            points
                .iter()
                .find(|p| p.name == summary.name)
                .map(|p| FleetPoint {
                    name: p.name.clone(),
                    clock_ghz: p.config.dce.clock_ghz,
                    config: p.config,
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_is_48_unique_configs_with_paper_points() {
        let sweep = default_sweep();
        assert_eq!(sweep.cell_count(), 48);
        let points = sweep.generate().expect("grid is valid");
        assert_eq!(points.len(), 48);
        for adc in [AdcKind::Sar, AdcKind::Ramp] {
            let paper = DarthConfig::paper(adc);
            assert!(
                points.iter().any(|p| p.config == paper),
                "paper {adc:?} point missing from the default grid"
            );
        }
    }

    #[test]
    fn smoke_grid_contains_both_paper_points() {
        let points = smoke_sweep().generate().expect("grid is valid");
        assert_eq!(points.len(), 4);
        for adc in [AdcKind::Sar, AdcKind::Ramp] {
            assert!(points.iter().any(|p| p.config == DarthConfig::paper(adc)));
        }
    }

    #[test]
    fn fine_grained_clock_sweeps_do_not_collide() {
        // Clocks 11 ms-decimals apart must keep distinct names — a
        // rounded slug (`{:.2}`) would collapse them into a spurious
        // duplicate-name error.
        let sweep = ConfigSweep::new(DarthConfig::paper(AdcKind::Sar))
            .axis(SweepAxis::clock_ghz(&[1.011, 1.014]));
        let points = sweep.generate().expect("fine-grained clocks are valid");
        assert_eq!(points.len(), 2);
        assert_ne!(points[0].name, points[1].name);
        assert!(points[0].name.ends_with("clk1.011"), "{}", points[0].name);
    }

    #[test]
    fn invalid_grid_cells_fail_generation() {
        let sweep =
            ConfigSweep::new(DarthConfig::paper(AdcKind::Sar)).axis(SweepAxis::adc_bits(&[8, 0]));
        assert!(sweep.generate().is_err());
    }

    #[test]
    fn duplicate_point_names_are_rejected() {
        let sweep = ConfigSweep::new(DarthConfig::paper(AdcKind::Sar)).axis(SweepAxis::custom(
            "dup",
            vec![
                AxisPoint::custom("same", "1", |_| {}),
                AxisPoint::custom("same", "2", |_| {}),
            ],
        ));
        assert!(matches!(
            sweep.generate(),
            Err(darth_pum::Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn custom_axes_edit_the_config() {
        let sweep = ConfigSweep::new(DarthConfig::paper(AdcKind::Sar)).axis(SweepAxis::custom(
            "schedule",
            vec![
                AxisPoint::custom("opt", "figure-10b", |c| c.optimized_schedule = true),
                AxisPoint::custom("serial", "figure-10a", |c| c.optimized_schedule = false),
            ],
        ));
        let points = sweep.generate().expect("valid");
        assert_eq!(points.len(), 2);
        assert!(points[0].config.optimized_schedule);
        assert!(!points[1].config.optimized_schedule);
        assert_eq!(
            points[1].axis_values,
            vec![("schedule".to_owned(), "figure-10a".to_owned())]
        );
    }

    #[test]
    fn pareto_indices_drop_dominated_and_nonfinite_points() {
        let coords = [
            (1.0, 1.0, 1.0, 0.0),           // frontier
            (2.0, 2.0, 2.0, 0.0),           // dominated by 0
            (0.5, 3.0, 1.0, 0.0),           // frontier (best latency)
            (1.0, 1.0, 1.0, 0.0),           // tie with 0: both stay
            (f64::NAN, 0.1, 0.1, 0.0),      // excluded
            (0.1, f64::INFINITY, 0.1, 0.0), // excluded
            (2.0, 2.0, 2.0, f64::NAN),      // excluded (bad error coord)
        ];
        assert_eq!(pareto_indices(&coords), vec![0, 2, 3]);
        assert!(pareto_indices(&[]).is_empty());
    }

    #[test]
    fn accuracy_coordinate_rescues_slower_but_exact_points() {
        // A point dominated on (latency, energy, area) survives on the
        // 4-D frontier when its measured error is strictly lower — the
        // precision/accuracy trade-off the Monte-Carlo axis adds.
        let coords = [
            (1.0, 1.0, 1.0, 0.25), // fast but errorful: frontier
            (2.0, 2.0, 2.0, 0.0),  // slower but exact: frontier too
            (3.0, 3.0, 3.0, 0.25), // dominated by 0 on every axis
        ];
        assert_eq!(pareto_indices(&coords), vec![0, 1]);
    }
}
