//! Standard registries: the paper's evaluation points and the extended
//! scenario sweeps.
//!
//! Two model wrappers live here because the paper's evaluation applies
//! per-workload policy that no single architecture struct owns:
//!
//! * [`PaperDarthModel`] — DARTH-PUM with the §7.3 ramp-ADC early
//!   termination applied to AES traces (MixColumns' GF(2) sums never
//!   exceed 4 of the 256 ramp levels);
//! * [`PaperAppAccel`] — "AppAccel" is a *category*, not one chip: the
//!   paper compares each workload against its own dedicated accelerator
//!   (AES-NI, a ramp-ADC CNN accelerator, an ISAAC-style transformer
//!   accelerator). This composite picks the accelerator by workload
//!   family, so the matrix gets one honest AppAccel column.

use darth_analog::adc::AdcKind;
use darth_apps::aes::workload::{AesWorkload, BulkAesWorkload};
use darth_apps::cnn::workload::ResNetWorkload;
use darth_apps::gemm::GemmWorkload;
use darth_apps::llm::workload::EncoderWorkload;
use darth_apps::reduce::ReduceWorkload;
use darth_baselines::app_accel::AppAccelAccumulator;
use darth_baselines::{AppAccelModel, BaselineModel, CpuModel, DigitalPumModel, GpuModel};
use darth_digital::logic::LogicFamily;
use darth_pum::eval::{ArchModel, CostAccumulator, Workload};
use darth_pum::model::{DarthAccumulator, DarthModel};
use darth_pum::trace::{CostReport, KernelOp, TraceMeta, TraceSink};

/// DARTH-PUM under the paper's evaluation policy: with a ramp ADC, AES
/// traces terminate the sweep after 4 levels (§7.3). Other traces and the
/// SAR configuration price exactly like the wrapped [`DarthModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperDarthModel {
    /// The underlying chip model.
    pub model: DarthModel,
}

impl PaperDarthModel {
    /// The paper configuration with the chosen ADC.
    pub fn paper(adc_kind: AdcKind) -> Self {
        PaperDarthModel {
            model: DarthModel::paper(adc_kind),
        }
    }
}

impl ArchModel for PaperDarthModel {
    fn name(&self) -> String {
        self.model.name()
    }

    fn label(&self) -> String {
        "DARTH-PUM".into()
    }

    fn accumulator(&self) -> Box<dyn CostAccumulator + '_> {
        Box::new(PaperDarthAccumulator {
            model: self.model,
            inner: None,
        })
    }
}

/// The streaming accumulator behind [`PaperDarthModel`]: the workload
/// name arrives with [`TraceSink::begin_trace`], so that is where the
/// §7.3 early-termination policy configures the wrapped model.
struct PaperDarthAccumulator {
    model: DarthModel,
    inner: Option<DarthAccumulator>,
}

impl PaperDarthAccumulator {
    fn inner(&mut self) -> &mut DarthAccumulator {
        self.inner.as_mut().expect("begin_trace precedes events")
    }
}

impl TraceSink for PaperDarthAccumulator {
    fn begin_trace(&mut self, meta: &TraceMeta) {
        let mut model = self.model;
        if model.chip.hct.adc_kind == AdcKind::Ramp && meta.name.starts_with("aes") {
            model.early_levels = Some(4);
        }
        let mut inner = DarthAccumulator::new(model);
        inner.begin_trace(meta);
        self.inner = Some(inner);
    }

    fn begin_kernel(&mut self, name: &str) {
        self.inner().begin_kernel(name);
    }

    fn op_run(&mut self, op: &KernelOp, repeat: u64) {
        self.inner().op_run(op, repeat);
    }
}

impl CostAccumulator for PaperDarthAccumulator {
    fn finish(&mut self) -> CostReport {
        self.inner().finish()
    }
}

/// The per-application accelerator column: dispatches each trace to its
/// dedicated accelerator by workload family (`aes*` → AES-NI, `llm*` →
/// the transformer accelerator, anything else — `resnet*`, `gemm*` — →
/// the ramp-ADC CNN/MVM accelerator).
///
/// The dispatch is by trace-name prefix, so a workload outside these
/// families lands on the generic MVM accelerator; a scenario with a
/// genuinely different dedicated chip should register its own
/// [`ArchModel`] column instead of relying on this composite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PaperAppAccel;

impl PaperAppAccel {
    /// The accelerator a trace of this name is compared against.
    pub fn dispatch(trace_name: &str) -> AppAccelModel {
        if trace_name.starts_with("aes") {
            AppAccelModel::aes_ni()
        } else if trace_name.starts_with("llm") {
            AppAccelModel::llm(AdcKind::Sar)
        } else {
            AppAccelModel::cnn(AdcKind::Ramp)
        }
    }
}

impl ArchModel for PaperAppAccel {
    fn name(&self) -> String {
        "appaccel".into()
    }

    fn label(&self) -> String {
        "AppAccel".into()
    }

    fn accumulator(&self) -> Box<dyn CostAccumulator + '_> {
        Box::new(PaperAppAccelAccumulator { inner: None })
    }
}

/// The streaming accumulator behind [`PaperAppAccel`]: dispatches to the
/// per-family accelerator once the workload name arrives.
struct PaperAppAccelAccumulator {
    inner: Option<AppAccelAccumulator>,
}

impl PaperAppAccelAccumulator {
    fn inner(&mut self) -> &mut AppAccelAccumulator {
        self.inner.as_mut().expect("begin_trace precedes events")
    }
}

impl TraceSink for PaperAppAccelAccumulator {
    fn begin_trace(&mut self, meta: &TraceMeta) {
        let mut inner = AppAccelAccumulator::new(PaperAppAccel::dispatch(&meta.name));
        inner.begin_trace(meta);
        self.inner = Some(inner);
    }

    fn begin_kernel(&mut self, name: &str) {
        self.inner().begin_kernel(name);
    }

    fn op_run(&mut self, op: &KernelOp, repeat: u64) {
        self.inner().op_run(op, repeat);
    }
}

impl CostAccumulator for PaperAppAccelAccumulator {
    fn finish(&mut self) -> CostReport {
        self.inner().finish()
    }
}

/// The paper's three evaluation workloads, in figure order.
pub fn paper_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(AesWorkload::paper()),
        Box::new(ResNetWorkload::paper()),
        Box::new(EncoderWorkload::paper()),
    ]
}

/// The extended scenario matrix: the AES key-size sweep, the CIFAR
/// ResNet depth sweep, the encoder shape sweep, the standalone GEMM
/// size sweep and the PrIM-style reduction sweep (the paper's three
/// points are the respective sweep heads).
pub fn extended_workloads() -> Vec<Box<dyn Workload>> {
    let mut workloads: Vec<Box<dyn Workload>> = Vec::new();
    for aes in AesWorkload::sweep() {
        workloads.push(Box::new(aes));
    }
    for resnet in ResNetWorkload::depth_sweep() {
        workloads.push(Box::new(resnet));
    }
    for encoder in EncoderWorkload::sweep() {
        workloads.push(Box::new(encoder));
    }
    for gemm in GemmWorkload::sweep() {
        workloads.push(Box::new(gemm));
    }
    for reduce in ReduceWorkload::sweep() {
        workloads.push(Box::new(reduce));
    }
    workloads
}

/// The `make eval-large` registry: scenarios whose op streams are far
/// too large to materialize — the streaming pipeline's headroom proof.
///
/// * [`BulkAesWorkload::million_blocks`] — 2²⁰ AES-128 blocks as one
///   work item (a ~71M-op stream; materialized, ~3 GB of `KernelOp`s);
/// * a BERT-large encoder at a 4096-token context and a GPT-2-XL-scale
///   48-layer stack ([`EncoderWorkload::large_scale`]);
/// * ResNet-110 ([`ResNetWorkload::resnet110`]).
pub fn large_workloads() -> Vec<Box<dyn Workload>> {
    let mut workloads: Vec<Box<dyn Workload>> = vec![Box::new(BulkAesWorkload::million_blocks())];
    for encoder in EncoderWorkload::large_scale() {
        workloads.push(Box::new(encoder));
    }
    workloads.push(Box::new(ResNetWorkload::resnet110()));
    workloads
}

/// The five figure columns for one ADC choice: Baseline, DigitalPUM,
/// DARTH-PUM, AppAccel, GPU.
pub fn paper_models(adc_kind: AdcKind) -> Vec<Box<dyn ArchModel>> {
    vec![
        Box::new(BaselineModel::paper(adc_kind)),
        Box::new(DigitalPumModel::paper(LogicFamily::Oscar)),
        Box::new(PaperDarthModel::paper(adc_kind)),
        Box::new(PaperAppAccel),
        Box::new(GpuModel::rtx_4090()),
    ]
}

/// Every distinct architecture column: both ADC flavours of Baseline and
/// DARTH-PUM, DigitalPUM, AppAccel, the GPU and the host CPU.
pub fn all_models() -> Vec<Box<dyn ArchModel>> {
    vec![
        Box::new(BaselineModel::paper(AdcKind::Sar)),
        Box::new(BaselineModel::paper(AdcKind::Ramp)),
        Box::new(DigitalPumModel::paper(LogicFamily::Oscar)),
        Box::new(PaperDarthModel::paper(AdcKind::Sar)),
        Box::new(PaperDarthModel::paper(AdcKind::Ramp)),
        Box::new(PaperAppAccel),
        Box::new(GpuModel::rtx_4090()),
        Box::new(CpuModel::i7_13700()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_apps::aes::workload::block_trace;
    use darth_apps::aes::workload::AesVariant;
    use darth_baselines::app_accel::AppAccelKind;

    #[test]
    fn paper_darth_applies_early_termination_to_ramp_aes_only() {
        let aes = block_trace(AesVariant::Aes128);
        let ramp = PaperDarthModel::paper(AdcKind::Ramp);
        let mut tuned = ramp.model;
        tuned.early_levels = Some(4);
        assert_eq!(ArchModel::price(&ramp, &aes), tuned.price(&aes));
        // SAR pricing is untouched by the wrapper.
        let sar = PaperDarthModel::paper(AdcKind::Sar);
        assert_eq!(ArchModel::price(&sar, &aes), sar.model.price(&aes));
    }

    #[test]
    fn app_accel_dispatch_by_family() {
        assert_eq!(PaperAppAccel::dispatch("aes-256").kind, AppAccelKind::AesNi);
        assert_eq!(
            PaperAppAccel::dispatch("llm-seq512").kind,
            AppAccelKind::LlmAccelerator
        );
        assert_eq!(
            PaperAppAccel::dispatch("resnet-56").kind,
            AppAccelKind::CnnAccelerator
        );
        assert_eq!(
            PaperAppAccel::dispatch("gemm-256x256x256").kind,
            AppAccelKind::CnnAccelerator
        );
    }

    #[test]
    fn registries_have_unique_names() {
        let workloads = extended_workloads();
        let mut names: Vec<String> = workloads.iter().map(|w| w.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), workloads.len());
        assert!(names.iter().any(|n| n == "aes-128"));
        assert!(names.iter().any(|n| n == "resnet-20"));
        assert!(names.iter().any(|n| n == "llm-encoder"));

        let models = all_models();
        let mut model_names: Vec<String> = models.iter().map(|m| m.name()).collect();
        model_names.sort();
        model_names.dedup();
        assert_eq!(model_names.len(), models.len());
    }
}
