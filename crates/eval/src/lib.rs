//! The DARTH-PUM evaluation engine: pluggable workloads × architecture
//! models, priced as op streams in parallel.
//!
//! The paper's evaluation (Figures 13–18) is a cross product: every
//! workload priced on every architecture. This crate makes that matrix
//! *open*, *fast*, and *O(1)-memory per cell*:
//!
//! * [`engine::Engine`] holds registries of `Box<dyn Workload>` and
//!   `Box<dyn ArchModel>` (the traits live in [`darth_pum::eval`], next
//!   to [`darth_pum::trace::Trace`]), memoizes each workload's emission
//!   as a compressed run-length [`darth_pum::trace::TraceSummary`], and
//!   prices the full matrix by replaying summaries into streaming
//!   accumulators, with `std::thread::scope` workers over disjoint
//!   output slices — serial and parallel runs are bit-identical, and no
//!   trace is ever materialized. [`engine::Engine::price_streamed`] fans
//!   one emission into *all* registered models in a single pass.
//! * [`engine::EvalMatrix`] is the structured result: addressable cells,
//!   ratio/geomean helpers for the figure summaries, and a JSON report
//!   ([`engine::EvalMatrix::to_json`]) so every run can drop a
//!   machine-readable `BENCH_*.json`.
//! * [`registry`] provides the standard registries — the paper's three
//!   workloads and five architecture columns, the extended scenario
//!   sweeps (AES key sizes, ResNet depths, encoder shapes, GEMM sizes),
//!   and the `eval-large` bulk scenarios
//!   ([`registry::large_workloads`]: ≥1M-block AES, seq-4096 and
//!   GPT-2-XL encoders, ResNet-110) — plus the two paper-policy wrappers
//!   ([`registry::PaperDarthModel`], [`registry::PaperAppAccel`]).
//! * [`dse`] is the design-space exploration layer: [`dse::ConfigSweep`]
//!   grids over `darth_pum::config::DarthConfig` (named axes: ADC kind ×
//!   resolution, crossbar geometry, slicing, array count, clock, plus
//!   custom axes), priced into a [`dse::SweepMatrix`] with
//!   Pareto-frontier extraction and best-config tables — one `Fanout`
//!   replay pass per workload prices every design point
//!   ([`engine::Engine::run_fanout`]).
//! * [`json`] is the tiny offline JSON writer behind the reports
//!   (borrowing: `JsonValue<'a>` keys and names are `Cow`s, so report
//!   trees reference the matrix instead of cloning it).
//!
//! # Example: price a custom streaming workload on the paper's
//! architectures
//!
//! ```
//! use darth_eval::{Engine, registry};
//! use darth_pum::eval::Workload;
//! use darth_pum::trace::{KernelOp, TraceMeta, TraceSink};
//!
//! /// A gigabyte-scale on-chip copy, streamed in 4 KiB chunks — note
//! /// there is no `Vec` of ops anywhere, just run-length op events.
//! struct MemCopy;
//!
//! impl Workload for MemCopy {
//!     fn name(&self) -> String {
//!         "memcopy-1g".into()
//!     }
//!     fn emit(&self, sink: &mut dyn TraceSink) {
//!         sink.begin_trace(&TraceMeta::new(self.name()));
//!         sink.begin_kernel("copy");
//!         sink.op_run(&KernelOp::OnChipMove { bytes: 4096 }, 1 << 18);
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! engine.register_workload(Box::new(MemCopy));
//! for model in registry::all_models() {
//!     engine.register_model(model);
//! }
//! let matrix = engine.run();
//! let cell = matrix.cell("memcopy-1g", "darth-sar").expect("priced");
//! assert!(cell.latency_s > 0.0);
//! ```

pub mod dse;
pub mod engine;
pub mod json;
pub mod mc;
pub mod registry;

pub use dse::{frontier_fleet, ConfigSweep, DesignPoint, FleetPoint, SweepAxis, SweepMatrix};
pub use engine::{Engine, EvalMatrix, ModelSummary, Threading, WorkloadSummary};
pub use json::JsonValue;
pub use mc::{attach_accuracy, measure_accuracy, McConfig, PointAccuracy, WorkloadAccuracy};
pub use registry::{PaperAppAccel, PaperDarthModel};
