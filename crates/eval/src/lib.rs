//! The DARTH-PUM evaluation engine: pluggable workloads × architecture
//! models, priced in parallel.
//!
//! The paper's evaluation (Figures 13–18) is a cross product: every
//! workload priced on every architecture. This crate makes that matrix
//! *open* and *fast*:
//!
//! * [`engine::Engine`] holds registries of `Box<dyn Workload>` and
//!   `Box<dyn ArchModel>` (the traits live in [`darth_pum::eval`], next
//!   to [`darth_pum::trace::Trace`]), memoizes trace construction, and
//!   prices the full matrix with `std::thread::scope` workers over
//!   disjoint output slices — serial and parallel runs are bit-identical.
//! * [`engine::EvalMatrix`] is the structured result: addressable cells,
//!   ratio/geomean helpers for the figure summaries, and a JSON report
//!   ([`engine::EvalMatrix::to_json`]) so every run can drop a
//!   machine-readable `BENCH_*.json`.
//! * [`registry`] provides the standard registries — the paper's three
//!   workloads and five architecture columns, the extended scenario
//!   sweeps (AES key sizes, ResNet depths, encoder shapes, GEMM sizes) —
//!   plus the two paper-policy wrappers ([`registry::PaperDarthModel`],
//!   [`registry::PaperAppAccel`]).
//! * [`json`] is the tiny offline JSON writer behind the reports.
//!
//! # Example: price a custom workload on the paper's architectures
//!
//! ```
//! use darth_eval::{Engine, registry};
//! use darth_pum::eval::Workload;
//! use darth_pum::trace::{Kernel, KernelOp, Trace};
//!
//! struct MemCopy;
//!
//! impl Workload for MemCopy {
//!     fn name(&self) -> String {
//!         "memcopy-1k".into()
//!     }
//!     fn build_trace(&self) -> Trace {
//!         Trace::new(
//!             self.name(),
//!             vec![Kernel::new("copy", vec![KernelOp::OnChipMove { bytes: 1024 }])],
//!         )
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! engine.register_workload(Box::new(MemCopy));
//! for model in registry::all_models() {
//!     engine.register_model(model);
//! }
//! let matrix = engine.run();
//! let cell = matrix.cell("memcopy-1k", "darth-sar").expect("priced");
//! assert!(cell.latency_s > 0.0);
//! ```

pub mod engine;
pub mod json;
pub mod registry;

pub use engine::{Engine, EvalMatrix, ModelSummary, Threading, WorkloadSummary};
pub use json::JsonValue;
pub use registry::{PaperAppAccel, PaperDarthModel};
