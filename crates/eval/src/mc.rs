//! Noise-aware Monte-Carlo accuracy engine for the DSE sweep.
//!
//! Each design point is evaluated by *executing* the standard functional
//! workloads (AES-128, GEMM, conv, reduce) on a noise-injected
//! [`FastMachine`](darth_sim::FastMachine) tile N times and comparing every
//! trial against the workload's golden output. The resulting per-workload
//! error statistics attach to the sweep's [`SweepMatrix`] rows, giving the
//! Pareto frontier a fourth (accuracy) axis next to latency, energy and
//! area.
//!
//! # Seed derivation
//!
//! Trial seeds come from a deterministic fork tree rooted at
//! [`McConfig::root_seed`]:
//!
//! ```text
//! root ──fork(point_index)──► point ──fork(workload_index)──► workload
//!      ──fork(trial_index)──► leaf ──next_u64()──► tile.seed
//! ```
//!
//! where `fork(i)` clones the parent stream and takes the `i+1`-th fork.
//! The seed for trial `(p, w, t)` therefore depends only on the root seed
//! and the three indices — never on scheduling order or worker count — so
//! the whole Monte-Carlo run is bit-reproducible under any parallelism,
//! the same contract the serving engine pins in
//! `crates/serve/tests/determinism.rs`.
//!
//! # Error metrics
//!
//! * `aes*` workloads report **bit-error rate**: XOR popcount between the
//!   trial's ciphertext bytes and the FIPS-197 golden, over total bits.
//! * `reduce*` workloads report **mean absolute error** (outputs are small
//!   counts where relative error degenerates).
//! * Everything else (GEMM, conv) reports **mean relative error**
//!   `|got − gold| / max(1, |gold|)`.

use crate::dse::{DesignPoint, SweepMatrix};
use crate::json::JsonValue;
use darth_apps::aes::program::AesExec;
use darth_apps::cnn::program::ConvExec;
use darth_apps::gemm::GemmExec;
use darth_apps::reduce::ReduceExec;
use darth_pum::hct::HctConfig;
use darth_pum::{ExecOutput, Executable};
use darth_reram::NoiseRng;
use darth_sim::FastExecutor;

/// Monte-Carlo campaign parameters: trial count, root seed, the injected
/// device-noise magnitudes, and the worker pool size.
#[derive(Debug, Clone, PartialEq)]
pub struct McConfig {
    /// Trials per (design point, workload) pair.
    pub trials: usize,
    /// Root of the deterministic seed fork tree.
    pub root_seed: u64,
    /// Per-write lognormal conductance sigma injected into trial tiles.
    pub program_sigma: f64,
    /// Per-read Gaussian conductance sigma injected into trial tiles.
    pub read_sigma: f64,
    /// IR-drop attenuation coefficient injected into trial tiles.
    pub ir_drop_alpha: f64,
    /// Worker threads for the trial fan-out (`None` = executor default).
    pub workers: Option<usize>,
}

impl McConfig {
    /// Paper-evaluation noise magnitudes (§6 device model) at a modest
    /// default trial count.
    #[must_use]
    pub fn evaluation() -> Self {
        Self {
            trials: 8,
            root_seed: 0xDA27_ACC0,
            program_sigma: 0.02,
            read_sigma: 0.005,
            ir_drop_alpha: 0.0008,
            workers: None,
        }
    }

    /// All noise sources zeroed. Trials still run through the full noisy
    /// code path (`noisy = true` tiles), which must reproduce the ideal
    /// golden outputs bit-exactly — pinned by `tests/mc_smoke.rs`.
    #[must_use]
    pub fn zero_sigma() -> Self {
        Self {
            program_sigma: 0.0,
            read_sigma: 0.0,
            ir_drop_alpha: 0.0,
            ..Self::evaluation()
        }
    }

    /// Sets the trial count per (point, workload) pair.
    #[must_use]
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the fan-out worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the root seed of the fork tree.
    #[must_use]
    pub fn with_root_seed(mut self, root_seed: u64) -> Self {
        self.root_seed = root_seed;
        self
    }
}

/// Error statistics for one workload at one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadAccuracy {
    /// Workload name (the executable's `exec_name`).
    pub workload: String,
    /// Trials executed.
    pub trials: usize,
    /// Mean per-trial error under the workload's metric.
    pub mean_error: f64,
    /// Worst single-trial error.
    pub worst_error: f64,
    /// Trials whose outputs matched the golden bit-exactly.
    pub exact_trials: usize,
}

impl WorkloadAccuracy {
    /// JSON object for the sweep report.
    #[must_use]
    pub fn to_json(&self) -> JsonValue<'_> {
        JsonValue::object(vec![
            ("workload", JsonValue::from(&self.workload)),
            ("trials", JsonValue::from(self.trials)),
            ("mean_error", JsonValue::from(self.mean_error)),
            ("worst_error", JsonValue::from(self.worst_error)),
            ("exact_trials", JsonValue::from(self.exact_trials)),
        ])
    }
}

/// Aggregated Monte-Carlo accuracy for one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointAccuracy {
    /// Trials per workload.
    pub trials: usize,
    /// Per-workload error statistics.
    pub workloads: Vec<WorkloadAccuracy>,
    /// Mean of the per-workload mean errors — the point's accuracy
    /// coordinate on the 4-D Pareto frontier (lower is better).
    pub mean_error: f64,
}

impl PointAccuracy {
    /// JSON object for the sweep report.
    #[must_use]
    pub fn to_json(&self) -> JsonValue<'_> {
        JsonValue::object(vec![
            ("trials", JsonValue::from(self.trials)),
            ("mean_error", JsonValue::from(self.mean_error)),
            (
                "workloads",
                JsonValue::array(
                    self.workloads
                        .iter()
                        .map(WorkloadAccuracy::to_json)
                        .collect(),
                ),
            ),
        ])
    }
}

/// The standard functional workload set every design point is scored on.
#[must_use]
pub fn standard_workloads() -> Vec<Box<dyn Executable>> {
    vec![
        Box::new(AesExec::fips197_appendix_b()),
        Box::new(GemmExec::standard()),
        Box::new(ConvExec::standard()),
        Box::new(ReduceExec::standard()),
    ]
}

/// Clones `parent` and takes its `index + 1`-th fork, giving each child a
/// statistically independent stream at a position determined only by
/// `index`.
fn fork_child(parent: &NoiseRng, index: usize) -> NoiseRng {
    let mut stream = parent.clone();
    let mut child = stream.fork();
    for _ in 0..index {
        child = stream.fork();
    }
    child
}

/// The tile seed for trial `(point_index, workload_index, trial_index)`
/// under `root_seed`. Depends only on the four arguments.
#[must_use]
pub fn trial_seed(
    root_seed: u64,
    point_index: usize,
    workload_index: usize,
    trial_index: usize,
) -> u64 {
    let root = NoiseRng::seed_from(root_seed);
    let point = fork_child(&root, point_index);
    let workload = fork_child(&point, workload_index);
    let mut leaf = fork_child(&workload, trial_index);
    leaf.next_u64()
}

/// A noise-injected copy of `base` carrying the design point's ADC choice
/// and the campaign's noise magnitudes.
fn trial_tile(base: &HctConfig, point: &DesignPoint, mc: &McConfig, seed: u64) -> HctConfig {
    let mut tile = base.clone();
    tile.noisy = true;
    tile.seed = seed;
    tile.program_sigma = mc.program_sigma;
    tile.read_sigma = mc.read_sigma;
    tile.ir_drop_alpha = mc.ir_drop_alpha;
    // Couple the point's ADC design axes into the functional tile: a
    // narrower ADC clips larger bit-plane sums, so resolution shows up as
    // accuracy loss even at zero sigma. Cell density is deliberately NOT
    // coupled — workload weight ranges are part of the app mapping, not
    // the sweep.
    tile.params.adc_kind = point.config.ace.adc_kind;
    tile.functional_adc_bits = point.config.ace.adc_bits;
    tile
}

/// Error metric families, keyed off the executable name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ErrorMetric {
    /// XOR popcount over total output bits (AES).
    BitError,
    /// Mean `|got − gold|` (reduce counts).
    Absolute,
    /// Mean `|got − gold| / max(1, |gold|)` (GEMM, conv).
    Relative,
}

fn metric_for(exec_name: &str) -> ErrorMetric {
    if exec_name.starts_with("aes") {
        ErrorMetric::BitError
    } else if exec_name.starts_with("reduce") {
        ErrorMetric::Absolute
    } else {
        ErrorMetric::Relative
    }
}

/// One trial's error versus the golden outputs.
fn trial_error(metric: ErrorMetric, golden: &[ExecOutput], got: &[ExecOutput]) -> f64 {
    let gold_cells = golden.iter().flat_map(|o| o.cells.iter().copied());
    let got_cells = got.iter().flat_map(|o| o.cells.iter().copied());
    let mut cells = 0_usize;
    let mut accum = 0.0_f64;
    for (gold, got) in gold_cells.zip(got_cells) {
        cells += 1;
        accum += match metric {
            ErrorMetric::BitError => f64::from((gold ^ got).count_ones()),
            ErrorMetric::Absolute => (got - gold).abs() as f64,
            ErrorMetric::Relative => (got - gold).abs() as f64 / (gold.abs().max(1)) as f64,
        };
    }
    if cells == 0 {
        return 0.0;
    }
    match metric {
        // Cells are bytes for AES readbacks: normalise popcount to bits.
        ErrorMetric::BitError => accum / (8.0 * cells as f64),
        ErrorMetric::Absolute | ErrorMetric::Relative => accum / cells as f64,
    }
}

/// Runs the full Monte-Carlo campaign: `points × workloads × trials`
/// noise-injected executions fanned out over the fast executor's scoped
/// worker pool, folded into one [`PointAccuracy`] per design point.
///
/// # Errors
///
/// Returns job-construction or execution errors from the functional
/// machine (e.g. an invalid tile geometry in a design point).
pub fn measure_accuracy(
    points: &[DesignPoint],
    workloads: &[Box<dyn Executable>],
    mc: &McConfig,
) -> darth_pum::Result<Vec<PointAccuracy>> {
    // Stage the per-workload base job + golden once; trials only vary the
    // tile's seed and noise knobs.
    let mut staged = Vec::with_capacity(workloads.len());
    for workload in workloads {
        staged.push((workload.exec_name(), workload.job()?, workload.golden()?));
    }

    // Flatten the whole campaign into one batch so the executor's sharding
    // spans every (point, workload, trial) triple.
    let mut jobs = Vec::with_capacity(points.len() * staged.len() * mc.trials);
    for (p, point) in points.iter().enumerate() {
        for (w, (_, base, _)) in staged.iter().enumerate() {
            for t in 0..mc.trials {
                let mut job = base.clone();
                job.tile = trial_tile(&base.tile, point, mc, trial_seed(mc.root_seed, p, w, t));
                jobs.push(job);
            }
        }
    }

    let executor = match mc.workers {
        Some(n) => FastExecutor::new().with_workers(n),
        None => FastExecutor::new(),
    };
    let outputs = executor.execute_batch(&jobs)?;

    let mut accuracies = Vec::with_capacity(points.len());
    let mut cursor = outputs.chunks_exact(mc.trials.max(1));
    for _ in points {
        let mut per_workload = Vec::with_capacity(staged.len());
        for (name, _, golden) in &staged {
            let metric = metric_for(name);
            let trials = cursor.next().map_or(&[][..], |c| c);
            let mut mean_error = 0.0_f64;
            let mut worst_error = 0.0_f64;
            let mut exact_trials = 0_usize;
            for run in trials {
                let err = trial_error(metric, golden, &run.outputs);
                mean_error += err;
                worst_error = worst_error.max(err);
                if run.outputs == *golden {
                    exact_trials += 1;
                }
            }
            if !trials.is_empty() {
                mean_error /= trials.len() as f64;
            }
            per_workload.push(WorkloadAccuracy {
                workload: name.clone(),
                trials: trials.len(),
                mean_error,
                worst_error,
                exact_trials,
            });
        }
        let mean_error = if per_workload.is_empty() {
            0.0
        } else {
            per_workload.iter().map(|w| w.mean_error).sum::<f64>() / per_workload.len() as f64
        };
        accuracies.push(PointAccuracy {
            trials: mc.trials,
            workloads: per_workload,
            mean_error,
        });
    }
    Ok(accuracies)
}

/// Measures Monte-Carlo accuracy for `points` on the standard workload
/// set and attaches the results to the matching [`SweepMatrix`] rows
/// (matched by point name).
///
/// # Errors
///
/// Propagates [`measure_accuracy`] failures.
pub fn attach_accuracy(
    matrix: &mut SweepMatrix,
    points: &[DesignPoint],
    mc: &McConfig,
) -> darth_pum::Result<()> {
    let workloads = standard_workloads();
    let accuracies = measure_accuracy(points, &workloads, mc)?;
    for (point, accuracy) in points.iter().zip(accuracies) {
        if let Some(row) = matrix.points.iter_mut().find(|r| r.name == point.name) {
            row.accuracy = Some(accuracy);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_unique_and_order_independent() {
        let mut seen = std::collections::HashSet::new();
        for p in 0..3 {
            for w in 0..4 {
                for t in 0..5 {
                    assert!(
                        seen.insert(trial_seed(7, p, w, t)),
                        "seed collision at ({p},{w},{t})"
                    );
                }
            }
        }
        // Pure function of the indices: recomputing any leaf out of order
        // gives the same seed.
        assert_eq!(trial_seed(7, 2, 3, 4), trial_seed(7, 2, 3, 4));
        assert_ne!(trial_seed(7, 0, 0, 0), trial_seed(8, 0, 0, 0));
    }

    #[test]
    fn metric_families_key_off_the_workload_name() {
        assert_eq!(metric_for("aes128_fips197"), ErrorMetric::BitError);
        assert_eq!(metric_for("reduce_sum"), ErrorMetric::Absolute);
        assert_eq!(metric_for("gemm_standard"), ErrorMetric::Relative);
        assert_eq!(metric_for("conv3x3"), ErrorMetric::Relative);
    }

    #[test]
    fn bit_error_rate_counts_flipped_bits_over_total_bits() {
        let gold = vec![ExecOutput {
            label: "ct".into(),
            cells: vec![0x00, 0xFF, 0x0F, 0xF0],
        }];
        let got = vec![ExecOutput {
            label: "ct".into(),
            cells: vec![0x01, 0xFF, 0x0F, 0xF0],
        }];
        let ber = trial_error(ErrorMetric::BitError, &gold, &got);
        assert!((ber - 1.0 / 32.0).abs() < 1e-12, "ber = {ber}");
        assert_eq!(trial_error(ErrorMetric::BitError, &gold, &gold), 0.0);
    }

    #[test]
    fn relative_error_floors_the_denominator_at_one() {
        let gold = vec![ExecOutput {
            label: "y".into(),
            cells: vec![0, 100],
        }];
        let got = vec![ExecOutput {
            label: "y".into(),
            cells: vec![3, 90],
        }];
        let err = trial_error(ErrorMetric::Relative, &gold, &got);
        // (|3-0|/1 + |90-100|/100) / 2 = (3 + 0.1) / 2
        assert!((err - 1.55).abs() < 1e-12, "err = {err}");
    }

    #[test]
    fn absolute_error_averages_magnitudes() {
        let gold = vec![ExecOutput {
            label: "y".into(),
            cells: vec![10, -4],
        }];
        let got = vec![ExecOutput {
            label: "y".into(),
            cells: vec![12, -4],
        }];
        let err = trial_error(ErrorMetric::Absolute, &gold, &got);
        assert!((err - 1.0).abs() < 1e-12, "err = {err}");
    }

    #[test]
    fn zero_sigma_config_zeroes_every_noise_source() {
        let mc = McConfig::zero_sigma();
        assert_eq!(mc.program_sigma, 0.0);
        assert_eq!(mc.read_sigma, 0.0);
        assert_eq!(mc.ir_drop_alpha, 0.0);
        assert_eq!(mc.trials, McConfig::evaluation().trials);
    }
}
