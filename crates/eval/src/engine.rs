//! The evaluation engine: registries crossed into a priced matrix,
//! streamed end to end.
//!
//! An [`Engine`] owns two registries — `Box<dyn Workload>` scenarios and
//! `Box<dyn ArchModel>` architectures — and prices the full cross product
//! into an [`EvalMatrix`] without ever materializing a trace. Work is
//! split in two phases, both parallelized with `std::thread::scope` over
//! disjoint output slices (no locks, no shared mutable state, and
//! therefore bit-identical results in serial and parallel mode):
//!
//! 1. **Stream recording**, once per workload: each emission is
//!    compressed into a run-length [`TraceSummary`] and memoized, so
//!    repeated `run()` calls (e.g. after registering more models) only
//!    record the scenarios they have not seen. The summary is compact —
//!    a million-block bulk scenario collapses to a handful of op runs —
//!    where the old `Trace` cache held every op on the heap.
//! 2. **Pricing**, once per `(workload, model)` cell: the cached summary
//!    replays into a fresh streaming accumulator
//!    ([`ArchModel::accumulator`]), reproducing the exact original op
//!    sequence, so cells are bit-identical to pricing the materialized
//!    trace.
//!
//! For one-off scenarios there is also [`Engine::price_streamed`]: a
//! single emission fanned into every registered model's accumulator at
//! once — one pass over the op stream, no cache entry, no materialized
//! anything.

use crate::json::JsonValue;
use darth_pum::eval::{ArchModel, Fanout, Workload};
use darth_pum::trace::{geomean, CostReport, SummaryRecorder, TraceSummary};
use std::collections::HashMap;
use std::thread;

/// How [`Engine::run`] schedules its work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threading {
    /// Everything on the calling thread (reference mode).
    Serial,
    /// One `std::thread::scope` worker per available core (capped by the
    /// number of work items).
    #[default]
    Parallel,
    /// A fixed worker count, independent of the host's core count
    /// (`Workers(0)` behaves like `Workers(1)`).
    Workers(usize),
}

impl Threading {
    fn worker_count(self) -> usize {
        match self {
            Threading::Serial => 1,
            Threading::Parallel => thread::available_parallelism().map_or(1, usize::from),
            Threading::Workers(n) => n.max(1),
        }
    }
}

// The worker-count convention moved into the core crate so the fast
// functional executor can share it; re-exported here for existing users.
pub use darth_pum::workers::{forced_workers, parse_worker_count};

/// One workload row of the matrix: identity plus trace statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSummary {
    /// Registry name (`Workload::name`).
    pub name: String,
    /// Figure label (`Workload::label`).
    pub label: String,
    /// Scenario parameters (`Workload::params`).
    pub params: Vec<(String, String)>,
    /// Total multiply–accumulates in the trace.
    pub macs: u64,
    /// Total element-ops in the trace.
    pub element_ops: u64,
    /// MVM share of the work (see
    /// [`darth_pum::trace::Trace::mvm_fraction`]).
    pub mvm_fraction: f64,
}

/// One model column of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSummary {
    /// Registry name (`ArchModel::name`).
    pub name: String,
    /// Figure label (`ArchModel::label`).
    pub label: String,
}

/// The priced workload × architecture matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalMatrix {
    /// Row descriptors, in registration order.
    pub workloads: Vec<WorkloadSummary>,
    /// Column descriptors, in registration order.
    pub models: Vec<ModelSummary>,
    /// Priced cells, row-major (`cells[w * models.len() + m]`).
    pub cells: Vec<CostReport>,
}

impl EvalMatrix {
    /// Index of a workload row by registry name.
    pub fn workload_index(&self, workload: &str) -> Option<usize> {
        self.workloads.iter().position(|w| w.name == workload)
    }

    /// Index of a model column by registry name.
    pub fn model_index(&self, model: &str) -> Option<usize> {
        self.models.iter().position(|m| m.name == model)
    }

    /// The cell at `(row, column)` indices.
    pub fn cell_at(&self, workload: usize, model: usize) -> &CostReport {
        &self.cells[workload * self.models.len() + model]
    }

    /// The cell for `(workload, model)` registry names.
    pub fn cell(&self, workload: &str, model: &str) -> Option<&CostReport> {
        let w = self.workload_index(workload)?;
        let m = self.model_index(model)?;
        Some(self.cell_at(w, m))
    }

    /// All cells of one workload row, in model order.
    pub fn row(&self, workload: &str) -> Option<&[CostReport]> {
        let w = self.workload_index(workload)?;
        let m = self.models.len();
        Some(&self.cells[w * m..(w + 1) * m])
    }

    /// Per-workload throughput ratios `model / baseline`, in row order.
    pub fn speedups(&self, model: &str, baseline: &str) -> Vec<f64> {
        self.ratios(model, baseline, CostReport::speedup_over)
    }

    /// Per-workload energy-savings ratios `baseline energy / model
    /// energy`, in row order.
    pub fn energy_savings(&self, model: &str, baseline: &str) -> Vec<f64> {
        self.ratios(model, baseline, CostReport::energy_savings_over)
    }

    /// Geometric mean of [`EvalMatrix::speedups`] — the summary row under
    /// the figures.
    pub fn geomean_speedup(&self, model: &str, baseline: &str) -> f64 {
        geomean(&self.speedups(model, baseline))
    }

    /// Geometric mean of [`EvalMatrix::energy_savings`].
    pub fn geomean_energy_savings(&self, model: &str, baseline: &str) -> f64 {
        geomean(&self.energy_savings(model, baseline))
    }

    fn ratios(
        &self,
        model: &str,
        baseline: &str,
        ratio: impl Fn(&CostReport, &CostReport) -> f64,
    ) -> Vec<f64> {
        let (Some(m), Some(b)) = (self.model_index(model), self.model_index(baseline)) else {
            return Vec::new();
        };
        (0..self.workloads.len())
            .map(|w| ratio(self.cell_at(w, m), self.cell_at(w, b)))
            .collect()
    }

    /// The whole matrix as a JSON document (`darth-eval-matrix/v1`).
    ///
    /// Every workload, model, architecture and kernel name is *borrowed*
    /// into the tree (`JsonValue<'_>`), so serializing even a large
    /// matrix allocates no string copies — only the tree nodes
    /// themselves.
    pub fn to_json(&self) -> JsonValue<'_> {
        let workloads = self
            .workloads
            .iter()
            .map(|w| {
                JsonValue::object(vec![
                    ("name", JsonValue::from(&w.name)),
                    ("label", JsonValue::from(&w.label)),
                    (
                        "params",
                        JsonValue::Object(
                            w.params
                                .iter()
                                .map(|(k, v)| (k.as_str().into(), JsonValue::from(v)))
                                .collect(),
                        ),
                    ),
                    ("macs", JsonValue::from(w.macs)),
                    ("element_ops", JsonValue::from(w.element_ops)),
                    ("mvm_fraction", JsonValue::from(w.mvm_fraction)),
                ])
            })
            .collect();
        let models = self
            .models
            .iter()
            .map(|m| {
                JsonValue::object(vec![
                    ("name", JsonValue::from(&m.name)),
                    ("label", JsonValue::from(&m.label)),
                ])
            })
            .collect();
        let cells = self
            .workloads
            .iter()
            .enumerate()
            .flat_map(|(w, workload)| {
                self.models.iter().enumerate().map(move |(m, model)| {
                    let report = self.cell_at(w, m);
                    JsonValue::object(vec![
                        ("workload", JsonValue::from(&workload.name)),
                        ("model", JsonValue::from(&model.name)),
                        ("architecture", JsonValue::from(&report.architecture)),
                        ("latency_s", JsonValue::from(report.latency_s)),
                        (
                            "throughput_items_per_s",
                            JsonValue::from(report.throughput_items_per_s),
                        ),
                        (
                            "energy_per_item_j",
                            JsonValue::from(report.energy_per_item_j),
                        ),
                        (
                            "kernels",
                            JsonValue::array(
                                report
                                    .kernel_latency_s
                                    .iter()
                                    .map(|(name, latency)| {
                                        JsonValue::object(vec![
                                            ("name", JsonValue::from(name)),
                                            ("latency_s", JsonValue::from(*latency)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
            })
            .collect();
        JsonValue::object(vec![
            ("schema", JsonValue::from("darth-eval-matrix/v1")),
            ("workloads", JsonValue::Array(workloads)),
            ("models", JsonValue::Array(models)),
            ("cells", JsonValue::Array(cells)),
        ])
    }
}

/// The evaluation engine. See the [module docs](self) for the phases.
#[derive(Default)]
pub struct Engine {
    workloads: Vec<Box<dyn Workload>>,
    models: Vec<Box<dyn ArchModel>>,
    threading: Threading,
    summary_cache: HashMap<String, TraceSummary>,
}

impl Engine {
    /// An empty engine (parallel by default).
    pub fn new() -> Self {
        Engine::default()
    }

    /// Sets the scheduling mode for subsequent [`Engine::run`] calls.
    pub fn set_threading(&mut self, threading: Threading) {
        self.threading = threading;
    }

    /// Registers a workload scenario (builder style).
    ///
    /// # Panics
    ///
    /// Panics when a workload with the same [`Workload::name`] is already
    /// registered — every row of the matrix must be addressable by name.
    pub fn register_workload(&mut self, workload: Box<dyn Workload>) -> &mut Self {
        let name = workload.name();
        assert!(
            !self.workloads.iter().any(|w| w.name() == name),
            "duplicate workload '{name}'"
        );
        self.workloads.push(workload);
        self
    }

    /// Registers an architecture model (builder style).
    ///
    /// # Panics
    ///
    /// Panics when a model with the same [`ArchModel::name`] is already
    /// registered.
    pub fn register_model(&mut self, model: Box<dyn ArchModel>) -> &mut Self {
        let name = model.name();
        assert!(
            !self.models.iter().any(|m| m.name() == name),
            "duplicate model '{name}'"
        );
        self.models.push(model);
        self
    }

    /// Registered workload count.
    pub fn workload_count(&self) -> usize {
        self.workloads.len()
    }

    /// Registered model count.
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    /// Prices the full workload × model matrix.
    ///
    /// Streams recorded by earlier runs are reused (memoized by workload
    /// name); rows and columns appear in registration order.
    pub fn run(&mut self) -> EvalMatrix {
        let threads = self.threading.worker_count();
        self.record_missing_summaries(threads);
        let summaries: Vec<&TraceSummary> = self
            .workloads
            .iter()
            .map(|w| &self.summary_cache[&w.name()])
            .collect();

        let cells = price_cells(&self.models, &summaries, threads);
        let (workloads, models) = self.descriptors(&summaries);
        EvalMatrix {
            workloads,
            models,
            cells,
        }
    }

    /// Prices the full matrix row-by-row: each workload's cached summary
    /// replays **once** into a [`Fanout`] over every registered model, so
    /// a row costs one emission pass instead of one per cell. Rows are
    /// sharded across `std::thread::scope` workers over disjoint output
    /// slices, and every accumulator still observes the exact recorded
    /// event sequence — the result is bit-identical to [`Engine::run`]
    /// in both serial and parallel mode.
    ///
    /// This is the sweep-friendly schedule: with hundreds of model
    /// columns (one per design point) and compressed summaries, the
    /// replay walk itself starts to matter, and fanning out amortizes it
    /// across all columns.
    pub fn run_fanout(&mut self) -> EvalMatrix {
        let threads = self.threading.worker_count();
        self.record_missing_summaries(threads);
        let summaries: Vec<&TraceSummary> = self
            .workloads
            .iter()
            .map(|w| &self.summary_cache[&w.name()])
            .collect();

        let models = &self.models;
        let cols = models.len();
        let mut cells: Vec<Option<CostReport>> =
            (0..summaries.len() * cols).map(|_| None).collect();
        if cols > 0 {
            let row_chunk = summaries.len().div_ceil(threads.max(1)).max(1);
            thread::scope(|scope| {
                for (summary_chunk, out_chunk) in summaries
                    .chunks(row_chunk)
                    .zip(cells.chunks_mut(row_chunk * cols))
                {
                    scope.spawn(move || {
                        for (summary, row_out) in
                            summary_chunk.iter().zip(out_chunk.chunks_mut(cols))
                        {
                            let mut fanout = Fanout::new(models.iter().map(AsRef::as_ref));
                            summary.replay_into(&mut fanout);
                            for (slot, report) in row_out.iter_mut().zip(fanout.finish()) {
                                *slot = Some(report);
                            }
                        }
                    });
                }
            });
        }
        let cells = cells
            .into_iter()
            .map(|cell| cell.expect("every row chunk was priced"))
            .collect();
        let (workloads, models) = self.descriptors(&summaries);
        EvalMatrix {
            workloads,
            models,
            cells,
        }
    }

    /// Row and column descriptors for a matrix over the current
    /// registries, in registration order.
    fn descriptors(
        &self,
        summaries: &[&TraceSummary],
    ) -> (Vec<WorkloadSummary>, Vec<ModelSummary>) {
        let workloads = self
            .workloads
            .iter()
            .zip(summaries)
            .map(|(w, summary)| WorkloadSummary {
                name: w.name(),
                label: w.label(),
                params: w.params(),
                macs: summary.macs(),
                element_ops: summary.element_ops(),
                mvm_fraction: summary.mvm_fraction(),
            })
            .collect();
        let models = self
            .models
            .iter()
            .map(|m| ModelSummary {
                name: m.name(),
                label: m.label(),
            })
            .collect();
        (workloads, models)
    }

    /// The cached run-length summary of a workload's recorded stream —
    /// present after an [`Engine::run`] that included the workload.
    /// Useful for stream statistics (op counts, materialization
    /// estimates) without re-emitting.
    pub fn summary(&self, workload: &str) -> Option<&TraceSummary> {
        self.summary_cache.get(workload)
    }

    /// Prices one workload on every registered model in a single
    /// streaming pass: the emission is fanned into all accumulators at
    /// once and never stored — not even as a run-length summary. Reports
    /// come back in model registration order and are bit-identical to
    /// the corresponding [`Engine::run`] cells.
    pub fn price_streamed(&self, workload: &dyn Workload) -> Vec<CostReport> {
        let mut fanout = Fanout::new(self.models.iter().map(AsRef::as_ref));
        workload.emit(&mut fanout);
        fanout.finish()
    }

    /// Records (in parallel) every registered workload's op stream not
    /// yet in the summary cache.
    fn record_missing_summaries(&mut self, threads: usize) {
        let missing: Vec<&dyn Workload> = self
            .workloads
            .iter()
            .map(AsRef::as_ref)
            .filter(|w| !self.summary_cache.contains_key(&w.name()))
            .collect();
        if missing.is_empty() {
            return;
        }
        let mut recorded: Vec<Option<TraceSummary>> = missing.iter().map(|_| None).collect();
        let chunk = missing.len().div_ceil(threads.max(1));
        thread::scope(|scope| {
            for (out_chunk, work_chunk) in recorded.chunks_mut(chunk).zip(missing.chunks(chunk)) {
                scope.spawn(move || {
                    for (slot, workload) in out_chunk.iter_mut().zip(work_chunk) {
                        let mut recorder = SummaryRecorder::new();
                        workload.emit(&mut recorder);
                        *slot = Some(recorder.finish());
                    }
                });
            }
        });
        for (workload, summary) in missing.iter().zip(recorded) {
            let summary = summary.expect("every spawned chunk fills its slots");
            self.summary_cache.insert(workload.name(), summary);
        }
    }
}

/// Prices every `(workload, model)` cell, row-major, splitting the cell
/// range across `threads` scoped workers over disjoint output chunks.
/// Each cell replays the workload's recorded stream into a fresh
/// accumulator from its model.
fn price_cells(
    models: &[Box<dyn ArchModel>],
    summaries: &[&TraceSummary],
    threads: usize,
) -> Vec<CostReport> {
    let total = summaries.len() * models.len();
    let mut cells: Vec<Option<CostReport>> = (0..total).map(|_| None).collect();
    if total == 0 {
        return Vec::new();
    }
    let chunk = total.div_ceil(threads.max(1));
    thread::scope(|scope| {
        for (chunk_index, out_chunk) in cells.chunks_mut(chunk).enumerate() {
            let start = chunk_index * chunk;
            scope.spawn(move || {
                for (offset, slot) in out_chunk.iter_mut().enumerate() {
                    let index = start + offset;
                    let (w, m) = (index / models.len(), index % models.len());
                    let mut acc = models[m].accumulator();
                    summaries[w].replay_into(&mut *acc);
                    *slot = Some(acc.finish());
                }
            });
        }
    });
    cells
        .into_iter()
        .map(|cell| cell.expect("every cell chunk was priced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use darth_pum::eval::CostAccumulator;
    use darth_pum::trace::{KernelOp, TraceMeta, TraceSink};

    struct Moves(u64);

    impl Workload for Moves {
        fn name(&self) -> String {
            format!("moves-{}", self.0)
        }
        fn emit(&self, sink: &mut dyn TraceSink) {
            sink.begin_trace(&TraceMeta::new(self.name()));
            sink.begin_kernel("mv");
            sink.op(&KernelOp::HostMove { bytes: self.0 });
        }
    }

    struct PerByte(f64);

    struct PerByteAccumulator {
        architecture: String,
        rate: f64,
        workload: String,
        bytes: u64,
    }

    impl TraceSink for PerByteAccumulator {
        fn begin_trace(&mut self, meta: &TraceMeta) {
            self.workload = meta.name.clone();
        }
        fn begin_kernel(&mut self, _name: &str) {}
        fn op_run(&mut self, op: &KernelOp, repeat: u64) {
            if let KernelOp::HostMove { bytes } = *op {
                self.bytes += bytes * repeat;
            }
        }
    }

    impl CostAccumulator for PerByteAccumulator {
        fn finish(&mut self) -> CostReport {
            let latency_s = self.rate * self.bytes as f64;
            CostReport {
                architecture: self.architecture.clone(),
                workload: std::mem::take(&mut self.workload),
                latency_s,
                throughput_items_per_s: 1.0 / latency_s,
                energy_per_item_j: latency_s,
                kernel_latency_s: vec![("mv".into(), latency_s)],
            }
        }
    }

    impl ArchModel for PerByte {
        fn name(&self) -> String {
            format!("per-byte-{}", self.0)
        }
        fn accumulator(&self) -> Box<dyn CostAccumulator + '_> {
            Box::new(PerByteAccumulator {
                architecture: self.name(),
                rate: self.0,
                workload: String::new(),
                bytes: 0,
            })
        }
    }

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.register_workload(Box::new(Moves(8)))
            .register_workload(Box::new(Moves(64)))
            .register_model(Box::new(PerByte(1.0)))
            .register_model(Box::new(PerByte(4.0)));
        e
    }

    #[test]
    fn matrix_is_row_major_and_addressable() {
        let matrix = engine().run();
        assert_eq!(matrix.workloads.len(), 2);
        assert_eq!(matrix.models.len(), 2);
        assert_eq!(matrix.cells.len(), 4);
        let cell = matrix.cell("moves-64", "per-byte-4").expect("exists");
        assert_eq!(cell.latency_s, 256.0);
        assert_eq!(matrix.cell("moves-64", "nope"), None);
        let row = matrix.row("moves-8").expect("exists");
        assert_eq!(row.len(), 2);
        assert_eq!(row[1].latency_s, 32.0);
    }

    #[test]
    fn ratios_and_geomeans() {
        let matrix = engine().run();
        let speedups = matrix.speedups("per-byte-1", "per-byte-4");
        assert_eq!(speedups, vec![4.0, 4.0]);
        assert!((matrix.geomean_speedup("per-byte-1", "per-byte-4") - 4.0).abs() < 1e-12);
        assert!((matrix.geomean_energy_savings("per-byte-1", "per-byte-4") - 4.0).abs() < 1e-12);
        assert!(matrix.speedups("per-byte-1", "nope").is_empty());
    }

    #[test]
    fn summary_cache_survives_reruns() {
        let mut e = engine();
        let first = e.run();
        e.register_model(Box::new(PerByte(2.0)));
        let second = e.run();
        assert_eq!(second.models.len(), 3);
        // The first two columns are unchanged by the wider rerun.
        for w in ["moves-8", "moves-64"] {
            for m in ["per-byte-1", "per-byte-4"] {
                assert_eq!(first.cell(w, m), second.cell(w, m));
            }
        }
    }

    #[test]
    fn price_streamed_matches_matrix_cells() {
        let mut e = engine();
        let matrix = e.run();
        for workload in [Moves(8), Moves(64)] {
            let streamed = e.price_streamed(&workload);
            assert_eq!(streamed.len(), 2);
            for (report, model) in streamed.iter().zip(["per-byte-1", "per-byte-4"]) {
                assert_eq!(Some(report), matrix.cell(&workload.name(), model));
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate workload")]
    fn duplicate_workload_names_are_rejected() {
        let mut e = Engine::new();
        e.register_workload(Box::new(Moves(8)))
            .register_workload(Box::new(Moves(8)));
    }

    #[test]
    fn json_report_names_every_cell() {
        let matrix = engine().run();
        let text = matrix.to_json().pretty();
        assert!(text.contains("darth-eval-matrix/v1"));
        for name in ["moves-8", "moves-64", "per-byte-1", "per-byte-4"] {
            assert!(text.contains(name), "missing {name}");
        }
    }

    #[test]
    fn empty_engine_prices_an_empty_matrix() {
        let matrix = Engine::new().run();
        assert!(matrix.cells.is_empty());
        assert!(matrix.workloads.is_empty());
    }

    #[test]
    fn run_fanout_is_bit_identical_to_run() {
        let mut per_cell = engine();
        let reference = per_cell.run();
        for threading in [
            Threading::Serial,
            Threading::Parallel,
            Threading::Workers(3),
        ] {
            let mut fanned = engine();
            fanned.set_threading(threading);
            assert_eq!(fanned.run_fanout(), reference, "{threading:?}");
        }
    }

    #[test]
    fn run_fanout_handles_degenerate_registries() {
        assert!(Engine::new().run_fanout().cells.is_empty());
        // Workloads but no models: rows exist, zero columns.
        let mut rows_only = Engine::new();
        rows_only.register_workload(Box::new(Moves(8)));
        let matrix = rows_only.run_fanout();
        assert_eq!(matrix.workloads.len(), 1);
        assert!(matrix.models.is_empty());
        assert!(matrix.cells.is_empty());
    }

    #[test]
    fn worker_count_helpers_are_reexported() {
        // The implementations (and their unit tests) live in
        // `darth_pum::workers`; this pins the re-export path downstream
        // binaries compile against.
        assert_eq!(parse_worker_count("4"), Ok(4));
        assert_eq!(forced_workers("DARTH_EVAL_THREADS_UNSET_FOR_TEST"), None);
    }
}
