//! A minimal JSON value and writer.
//!
//! The workspace builds offline against a stub `serde` (see
//! `vendor/serde`), so machine-readable reports are emitted through this
//! small tree-builder instead of a serialization framework. It covers
//! exactly what the evaluation reports need: objects with ordered keys,
//! arrays, strings with escaping, and numbers (non-finite floats become
//! `null`, which keeps the output valid JSON).
//!
//! Strings and keys are [`Cow`]s over a lifetime parameter, so builders
//! can *borrow* into the tree instead of cloning: every `&'static str`
//! key is free, and `EvalMatrix::to_json` borrows all of its workload,
//! model and kernel names from the matrix (`JsonValue<'_>`). Owned
//! `String`s still convert when a value genuinely has to be built on the
//! fly.

use std::borrow::Cow;
use std::fmt;

/// A JSON document fragment, borrowing strings with lifetime `'a` where
/// possible (`JsonValue<'static>` for fully owned trees).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue<'a> {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(Cow<'a, str>),
    /// An ordered array.
    Array(Vec<JsonValue<'a>>),
    /// An object with insertion-ordered keys.
    Object(Vec<(Cow<'a, str>, JsonValue<'a>)>),
}

impl<'a> JsonValue<'a> {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<Cow<'a, str>>>(pairs: Vec<(K, JsonValue<'a>)>) -> JsonValue<'a> {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn array(items: Vec<JsonValue<'a>>) -> JsonValue<'a> {
        JsonValue::Array(items)
    }

    /// Renders with two-space indentation and a trailing newline, ready
    /// to write to a `BENCH_*.json` file.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 is the shortest round-tripping decimal.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for JsonValue<'_> {
    fn from(n: f64) -> Self {
        JsonValue::Num(n)
    }
}

impl From<u64> for JsonValue<'_> {
    fn from(n: u64) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<usize> for JsonValue<'_> {
    fn from(n: usize) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<bool> for JsonValue<'_> {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl<'a> From<&'a str> for JsonValue<'a> {
    fn from(s: &'a str) -> Self {
        JsonValue::Str(Cow::Borrowed(s))
    }
}

impl<'a> From<&'a String> for JsonValue<'a> {
    fn from(s: &'a String) -> Self {
        JsonValue::Str(Cow::Borrowed(s.as_str()))
    }
}

impl From<String> for JsonValue<'_> {
    fn from(s: String) -> Self {
        JsonValue::Str(Cow::Owned(s))
    }
}

impl fmt::Display for JsonValue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = JsonValue::object(vec![
            ("name", JsonValue::from("aes-128")),
            ("speedup", JsonValue::from(59.4)),
            ("tags", JsonValue::array(vec![JsonValue::from("crypto")])),
            ("empty", JsonValue::array(vec![])),
        ]);
        let text = v.pretty();
        assert!(text.contains("\"name\": \"aes-128\""));
        assert!(text.contains("\"speedup\": 59.4"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn escapes_strings_and_maps_nonfinite_to_null() {
        let v = JsonValue::object(vec![
            ("q", JsonValue::from("say \"hi\"\n\\end\u{1}")),
            ("nan", JsonValue::Num(f64::NAN)),
            ("inf", JsonValue::Num(f64::INFINITY)),
        ]);
        let text = v.pretty();
        assert!(text.contains("\"say \\\"hi\\\"\\n\\\\end\\u0001\""));
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("\"inf\": null"));
    }

    #[test]
    fn numbers_round_trip_shortest() {
        assert_eq!(JsonValue::Num(0.1).pretty(), "0.1\n");
        assert_eq!(JsonValue::from(42u64).pretty(), "42\n");
    }

    #[test]
    fn borrowed_and_owned_strings_render_identically() {
        let owned = JsonValue::from("label".to_owned());
        let borrowed = JsonValue::from("label");
        assert_eq!(owned, borrowed);
        assert_eq!(owned.pretty(), borrowed.pretty());
        // Borrowing really borrows: no allocation behind the Cow.
        let s = String::from("hello");
        match JsonValue::from(&s) {
            JsonValue::Str(Cow::Borrowed(b)) => assert_eq!(b, "hello"),
            other => panic!("expected a borrowed string, got {other:?}"),
        }
    }
}
