//! A minimal JSON value and writer.
//!
//! The workspace builds offline against a stub `serde` (see
//! `vendor/serde`), so machine-readable reports are emitted through this
//! small tree-builder instead of a serialization framework. It covers
//! exactly what the evaluation reports need: objects with ordered keys,
//! arrays, strings with escaping, and numbers (non-finite floats become
//! `null`, which keeps the output valid JSON).
//!
//! Strings and keys are [`Cow`]s over a lifetime parameter, so builders
//! can *borrow* into the tree instead of cloning: every `&'static str`
//! key is free, and `EvalMatrix::to_json` borrows all of its workload,
//! model and kernel names from the matrix (`JsonValue<'_>`). Owned
//! `String`s still convert when a value genuinely has to be built on the
//! fly.

use std::borrow::Cow;
use std::fmt;

/// A JSON document fragment, borrowing strings with lifetime `'a` where
/// possible (`JsonValue<'static>` for fully owned trees).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue<'a> {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(Cow<'a, str>),
    /// An ordered array.
    Array(Vec<JsonValue<'a>>),
    /// An object with insertion-ordered keys.
    Object(Vec<(Cow<'a, str>, JsonValue<'a>)>),
}

impl<'a> JsonValue<'a> {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<K: Into<Cow<'a, str>>>(pairs: Vec<(K, JsonValue<'a>)>) -> JsonValue<'a> {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn array(items: Vec<JsonValue<'a>>) -> JsonValue<'a> {
        JsonValue::Array(items)
    }

    /// Renders with two-space indentation and a trailing newline, ready
    /// to write to a `BENCH_*.json` file.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 is the shortest round-tripping decimal.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes `s` as an RFC 8259 string literal.
///
/// Audit notes against §7 of the RFC:
///
/// * `"` and `\` are matched *before* the generic control-character arm,
///   so a quote is always `\"` (never a spurious `"`) and a
///   backslash is never double-processed.
/// * All controls below U+0020 are escaped — the two-character forms
///   (`\n`, `\r`, `\t`, `\b`, `\f`) where they exist, `\u00XX`
///   otherwise. The RFC requires nothing else, but DEL (U+007F) is also
///   `\u`-escaped: it is invisible in most terminals and some parsers
///   reject it raw.
/// * Everything else — including astral (non-BMP) characters — is
///   emitted as raw UTF-8, which the RFC explicitly permits; no
///   surrogate-pair `\uD8xx\uDCxx` encoding is needed.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 || c == '\u{7f}' => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for JsonValue<'_> {
    fn from(n: f64) -> Self {
        JsonValue::Num(n)
    }
}

impl From<u64> for JsonValue<'_> {
    fn from(n: u64) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<usize> for JsonValue<'_> {
    fn from(n: usize) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<bool> for JsonValue<'_> {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl<'a> From<&'a str> for JsonValue<'a> {
    fn from(s: &'a str) -> Self {
        JsonValue::Str(Cow::Borrowed(s))
    }
}

impl<'a> From<&'a String> for JsonValue<'a> {
    fn from(s: &'a String) -> Self {
        JsonValue::Str(Cow::Borrowed(s.as_str()))
    }
}

impl From<String> for JsonValue<'_> {
    fn from(s: String) -> Self {
        JsonValue::Str(Cow::Owned(s))
    }
}

impl fmt::Display for JsonValue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = JsonValue::object(vec![
            ("name", JsonValue::from("aes-128")),
            ("speedup", JsonValue::from(59.4)),
            ("tags", JsonValue::array(vec![JsonValue::from("crypto")])),
            ("empty", JsonValue::array(vec![])),
        ]);
        let text = v.pretty();
        assert!(text.contains("\"name\": \"aes-128\""));
        assert!(text.contains("\"speedup\": 59.4"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn escapes_strings_and_maps_nonfinite_to_null() {
        let v = JsonValue::object(vec![
            ("q", JsonValue::from("say \"hi\"\n\\end\u{1}")),
            ("nan", JsonValue::Num(f64::NAN)),
            ("inf", JsonValue::Num(f64::INFINITY)),
        ]);
        let text = v.pretty();
        assert!(text.contains("\"say \\\"hi\\\"\\n\\\\end\\u0001\""));
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("\"inf\": null"));
    }

    /// A strict RFC 8259 string-literal parser (test oracle for the
    /// writer): rejects raw controls, bad escapes and truncated input.
    fn unescape(literal: &str) -> Result<String, String> {
        let inner = literal
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or("not quoted")?;
        let mut out = String::new();
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if (c as u32) < 0x20 {
                return Err(format!("raw control U+{:04X}", c as u32));
            }
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next().ok_or("truncated escape")? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{08}'),
                'f' => out.push('\u{0c}'),
                'u' => {
                    let hex: String = (0..4)
                        .map(|_| chars.next().ok_or("truncated \\u"))
                        .collect::<Result<_, _>>()?;
                    let code = u32::from_str_radix(&hex, 16).map_err(|e| e.to_string())?;
                    out.push(char::from_u32(code).ok_or("surrogate half")?);
                }
                other => return Err(format!("bad escape \\{other}")),
            }
        }
        Ok(out)
    }

    #[test]
    fn adversarial_scenario_names_round_trip() {
        // Names a hostile workload registry could carry: every escape
        // class of RFC 8259, DEL, raw astral (non-BMP) characters, CJK,
        // and backslash/quote pile-ups in both orders.
        let adversarial = [
            "plain-ascii",
            "quote\"inside",
            "back\\slash",
            "\\\"both-orders\"\\",
            "\\\\\\", // odd backslash run
            "newline\nand\rreturn\tand tab",
            "bell\u{07}-backspace\u{08}-formfeed\u{0c}-esc\u{1b}",
            "nul\u{0}start",
            "\u{1f}edge-of-controls",
            "del\u{7f}char",
            "emoji-😀-astral-𝕊-flag-🇦🇺",
            "漢字とカナ",
            "mixed \"q\" \\ \n \u{1} 😀 end",
            "", // empty name
        ];
        for name in adversarial {
            let mut escaped = String::new();
            write_escaped(&mut escaped, name);
            let parsed = unescape(&escaped)
                .unwrap_or_else(|e| panic!("{name:?} escaped to unparseable {escaped:?}: {e}"));
            assert_eq!(parsed, name, "round trip failed via {escaped:?}");
            // The literal itself contains no raw controls and no raw
            // DEL — what the escaping exists to guarantee.
            assert!(
                escaped.chars().all(|c| (c as u32) >= 0x20 && c != '\u{7f}'),
                "raw control leaked into {escaped:?}"
            );
        }
    }

    #[test]
    fn two_character_escapes_are_used_where_defined() {
        let mut out = String::new();
        write_escaped(&mut out, "\u{08}\u{0c}\u{07}\u{7f}");
        assert_eq!(out, "\"\\b\\f\\u0007\\u007f\"");
    }

    #[test]
    fn numbers_round_trip_shortest() {
        assert_eq!(JsonValue::Num(0.1).pretty(), "0.1\n");
        assert_eq!(JsonValue::from(42u64).pretty(), "42\n");
    }

    #[test]
    fn borrowed_and_owned_strings_render_identically() {
        let owned = JsonValue::from("label".to_owned());
        let borrowed = JsonValue::from("label");
        assert_eq!(owned, borrowed);
        assert_eq!(owned.pretty(), borrowed.pretty());
        // Borrowing really borrows: no allocation behind the Cow.
        let s = String::from("hello");
        match JsonValue::from(&s) {
            JsonValue::Str(Cow::Borrowed(b)) => assert_eq!(b, "hello"),
            other => panic!("expected a borrowed string, got {other:?}"),
        }
    }
}
