//! The DSE smoke sweep (`make dse-smoke`, part of `make verify`): a
//! small grid over the paper's workloads, asserting
//!
//! 1. serial and parallel sweep execution are bit-identical;
//! 2. the paper's SAR and ramp design points appear in the sweep and
//!    reproduce the paper-registry engine pricing — the pricing behind
//!    `BENCH_fig13.json` — byte-for-byte, including the rendered
//!    Figure 13 throughput-vs-Baseline numbers;
//! 3. Pareto-frontier extraction and best-config selection are sane on
//!    a real sweep.

use darth_analog::adc::AdcKind;
use darth_eval::dse::{frontier_fleet, price_sweep, smoke_sweep, Metric, SweepMatrix};
use darth_eval::registry::{paper_models, paper_workloads};
use darth_eval::{Engine, Threading};
use darth_pum::config::DarthConfig;

fn smoke_matrix(threading: Threading) -> SweepMatrix {
    let points = smoke_sweep().generate().expect("smoke grid is valid");
    price_sweep(&points, paper_workloads(), threading).expect("smoke grid builds")
}

#[test]
fn serial_and_parallel_sweeps_are_bit_identical() {
    let serial = smoke_matrix(Threading::Serial);
    for threading in [Threading::Parallel, Threading::Workers(3)] {
        assert_eq!(smoke_matrix(threading), serial, "{threading:?}");
    }
}

#[test]
fn paper_design_points_reproduce_figure_pricing_byte_identically() {
    let sweep = smoke_matrix(Threading::Serial);
    for adc in [AdcKind::Sar, AdcKind::Ramp] {
        // The engine configuration behind the paper figures
        // (BENCH_fig13.json renders these cells as ratios vs Baseline).
        let mut engine = Engine::new();
        for workload in paper_workloads() {
            engine.register_workload(workload);
        }
        for model in paper_models(adc) {
            engine.register_model(model);
        }
        let figures = engine.run();
        let darth_column = format!("darth-{}", adc.slug());
        let baseline_column = format!("baseline-{}", adc.slug());

        let paper = DarthConfig::paper(adc);
        let point = sweep
            .points
            .iter()
            .find(|p| p.config_params == paper.params())
            .unwrap_or_else(|| panic!("paper {adc:?} point missing from the smoke sweep"));

        for workload in &figures.workloads {
            let figure_cell = figures
                .cell(&workload.name, &darth_column)
                .expect("paper column");
            let sweep_cell = sweep
                .cell(&workload.name, &point.name)
                .expect("sweep cell exists");
            assert_eq!(
                sweep_cell, figure_cell,
                "{}: {adc:?} sweep cell diverged from the figure pricing",
                workload.name
            );
            // Rendered figure numbers, byte for byte: the same `{}`
            // formatting the JSON reports use.
            let baseline = figures
                .cell(&workload.name, &baseline_column)
                .expect("baseline column");
            assert_eq!(
                format!("{}", figure_cell.speedup_over(baseline)),
                format!("{}", sweep_cell.speedup_over(baseline)),
                "{}",
                workload.name
            );
        }
    }
}

#[test]
fn frontier_and_best_configs_are_sane() {
    let sweep = smoke_matrix(Threading::Serial);
    assert_eq!(sweep.points.len(), 4);
    assert_eq!(sweep.matrix.workloads.len(), 3);

    let frontier = sweep.pareto_frontier_aggregate();
    assert!(!frontier.is_empty(), "a priced sweep has a frontier");
    assert!(frontier.iter().all(|&p| p < sweep.points.len()));

    for workload in &sweep.matrix.workloads {
        let per_workload = sweep.pareto_frontier(&workload.name);
        assert!(!per_workload.is_empty(), "{}", workload.name);
        for metric in [Metric::Latency, Metric::Energy, Metric::Throughput] {
            let best = sweep
                .best_for(&workload.name, metric)
                .unwrap_or_else(|| panic!("{}: no winner under {metric:?}", workload.name));
            assert!(best < sweep.points.len());
        }
        // The latency winner is at least as fast as every frontier
        // point (it may tie off the frontier, but never lose).
        let best_latency = sweep.best_for(&workload.name, Metric::Latency).unwrap();
        let winner_latency = sweep
            .cell(&workload.name, &sweep.points[best_latency].name)
            .unwrap()
            .latency_s;
        for &p in &per_workload {
            let frontier_latency = sweep
                .cell(&workload.name, &sweep.points[p].name)
                .unwrap()
                .latency_s;
            assert!(
                winner_latency <= frontier_latency,
                "{}: latency winner slower than a frontier point",
                workload.name
            );
        }
    }

    // The serving layer draws its chip fleet from the aggregate
    // frontier: every fleet point matches a frontier entry by name, in
    // frontier order, with a live clock and the point's own config.
    let points = smoke_sweep().generate().expect("smoke grid is valid");
    let fleet = frontier_fleet(&points, &sweep);
    assert_eq!(fleet.len(), frontier.len());
    for (fleet_point, &idx) in fleet.iter().zip(&frontier) {
        assert_eq!(fleet_point.name, sweep.points[idx].name);
        let source = points
            .iter()
            .find(|p| p.name == fleet_point.name)
            .expect("fleet names come from the generated grid");
        assert_eq!(fleet_point.config, source.config);
        assert!(fleet_point.clock_ghz > 0.0);
        assert_eq!(fleet_point.clock_ghz, source.config.dce.clock_ghz);
    }
    // Points the generator never produced are skipped, not fabricated.
    assert!(frontier_fleet(&[], &sweep).is_empty());

    // Unknown names degrade to empty/None, not panics.
    assert!(sweep.pareto_frontier("nope").is_empty());
    assert!(sweep.best_for("nope", Metric::Latency).is_none());

    // The JSON report names every design point and carries the schema.
    let json = sweep.to_json().pretty();
    assert!(json.contains("darth-dse-sweep/v2"));
    for point in &sweep.points {
        assert!(json.contains(&point.name), "missing {}", point.name);
    }
}
