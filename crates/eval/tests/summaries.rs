//! Degenerate-input coverage for `geomean` and the sweep summaries:
//! empty cell sets, single-cell sets and all-skipped (non-finite /
//! non-positive) sets must produce *defined* values — never NaN, never
//! a panic.

use darth_eval::dse::{DesignSummary, Metric, SweepMatrix};
use darth_eval::{EvalMatrix, ModelSummary, WorkloadSummary};
use darth_pum::trace::{geomean, CostReport};

#[test]
fn geomean_is_defined_on_every_degenerate_input() {
    // (case, input, expected)
    let nan = f64::NAN;
    let inf = f64::INFINITY;
    let cases: Vec<(&str, Vec<f64>, f64)> = vec![
        ("empty", vec![], 0.0),
        ("single", vec![8.0], 8.0),
        ("single sub-unit", vec![0.25], 0.25),
        ("pair", vec![4.0, 1.0], 2.0),
        ("all zero", vec![0.0, 0.0], 0.0),
        ("all negative", vec![-1.0, -2.0], 0.0),
        ("all nan", vec![nan, nan, nan], 0.0),
        ("all infinite", vec![inf, -inf], 0.0),
        ("all skipped, mixed kinds", vec![0.0, -3.0, nan, inf], 0.0),
        ("valid among skipped", vec![0.0, 4.0, nan, 1.0, inf], 2.0),
        ("huge without overflow", vec![1e300, 1e300], 1e300),
        ("tiny without underflow", vec![1e-300, 1e-300], 1e-300),
    ];
    for (case, input, expected) in cases {
        let got = geomean(&input);
        assert!(got.is_finite(), "{case}: geomean returned {got}");
        let tolerance = expected.abs() * 1e-12 + 1e-300;
        assert!(
            (got - expected).abs() <= tolerance,
            "{case}: geomean({input:?}) = {got}, expected {expected}"
        );
    }
}

/// A synthetic one-point sweep whose single column holds the given
/// per-workload (latency, energy) cells.
fn sweep_of(cells: &[(f64, f64)]) -> SweepMatrix {
    let workloads = (0..cells.len())
        .map(|w| WorkloadSummary {
            name: format!("w{w}"),
            label: format!("w{w}"),
            params: Vec::new(),
            macs: 1,
            element_ops: 1,
            mvm_fraction: 0.5,
        })
        .collect();
    let reports = cells
        .iter()
        .enumerate()
        .map(|(w, &(latency_s, energy_per_item_j))| CostReport {
            architecture: "synthetic".into(),
            workload: format!("w{w}"),
            latency_s,
            throughput_items_per_s: 1.0 / latency_s,
            energy_per_item_j,
            kernel_latency_s: Vec::new(),
        })
        .collect();
    SweepMatrix {
        points: vec![DesignSummary {
            name: "p0".into(),
            axis_values: Vec::new(),
            config_params: Vec::new(),
            tile_area_um2: 100.0,
            hct_count: 10,
            accuracy: None,
        }],
        matrix: EvalMatrix {
            workloads,
            models: vec![ModelSummary {
                name: "p0".into(),
                label: "p0".into(),
            }],
            cells: reports,
        },
    }
}

#[test]
fn sweep_aggregates_are_defined_on_every_degenerate_column() {
    let nan = f64::NAN;
    let inf = f64::INFINITY;
    /// One row of the table: case name, the column's per-workload
    /// `(latency, energy)` cells, and the expected aggregate.
    type Case = (&'static str, Vec<(f64, f64)>, (f64, f64));
    let cases: Vec<Case> = vec![
        ("empty workload set", vec![], (0.0, 0.0)),
        ("single cell", vec![(2.0, 8.0)], (2.0, 8.0)),
        ("two cells", vec![(1.0, 2.0), (4.0, 8.0)], (2.0, 4.0)),
        ("all skipped: nan", vec![(nan, nan), (nan, nan)], (0.0, 0.0)),
        ("all skipped: infinite", vec![(inf, inf)], (0.0, 0.0)),
        ("all skipped: zero", vec![(0.0, 0.0)], (0.0, 0.0)),
        (
            "skipped cells do not poison the rest",
            vec![(1.0, 2.0), (nan, inf), (4.0, 8.0)],
            (2.0, 4.0),
        ),
    ];
    for (case, cells, (latency, energy)) in cases {
        let sweep = sweep_of(&cells);
        let (got_latency, got_energy) = sweep.aggregate(0);
        assert!(
            got_latency.is_finite() && got_energy.is_finite(),
            "{case}: aggregate returned ({got_latency}, {got_energy})"
        );
        assert!(
            (got_latency - latency).abs() < 1e-12 && (got_energy - energy).abs() < 1e-12,
            "{case}: aggregate = ({got_latency}, {got_energy}), expected ({latency}, {energy})"
        );
    }
}

#[test]
fn frontier_and_best_handle_unpriceable_sweeps() {
    // All-skipped column: no Pareto point, no best config — and no NaN
    // anywhere.
    let broken = sweep_of(&[(f64::NAN, f64::NAN), (f64::INFINITY, f64::NAN)]);
    assert!(broken.pareto_frontier_aggregate().is_empty());
    for workload in ["w0", "w1"] {
        assert!(broken.pareto_frontier(workload).is_empty());
        for metric in [Metric::Latency, Metric::Energy] {
            assert_eq!(broken.best_for(workload, metric), None, "{metric:?}");
        }
    }
    // w0's throughput (1/NaN) is NaN → no winner; w1's (1/∞ = 0) is a
    // finite, defined value, so it *is* selectable — skipping only what
    // is genuinely unpriceable.
    assert_eq!(broken.best_for("w0", Metric::Throughput), None);
    assert_eq!(broken.best_for("w1", Metric::Throughput), Some(0));
    // The JSON report of a degenerate sweep still renders (nulls for
    // non-finite numbers, not NaN tokens).
    let json = broken.to_json().pretty();
    assert!(!json.contains("NaN") && !json.contains("inf"));

    // Empty workload set: every summary degrades to empty/None.
    let empty = sweep_of(&[]);
    assert!(empty.pareto_frontier_aggregate().is_empty());
    assert!(empty.best_table().is_empty());
    assert_eq!(empty.aggregate(0), (0.0, 0.0));

    // Single finite cell: the lone config is the frontier and the
    // winner under every metric.
    let single = sweep_of(&[(2.0, 8.0)]);
    assert_eq!(single.pareto_frontier_aggregate(), vec![0]);
    assert_eq!(single.pareto_frontier("w0"), vec![0]);
    for metric in [Metric::Latency, Metric::Energy, Metric::Throughput] {
        assert_eq!(single.best_for("w0", metric), Some(0), "{metric:?}");
    }
}
