//! The streaming/materialized equivalence regression: for every
//! `(workload, model)` cell of the extended registry (plus small bulk
//! scenarios), pricing the live op stream, pricing the materialized
//! `Trace`, replaying the engine's run-length summary, and the engine's
//! own serial and parallel runs must all be **bit-identical**.
//!
//! This is the guarantee the whole streaming refactor rests on: the
//! figure pipeline materializes nothing anymore, so any divergence
//! between the paths would silently change published numbers.

use darth_apps::aes::workload::{AesVariant, BulkAesWorkload};
use darth_eval::registry::{all_models, extended_workloads, large_workloads};
use darth_eval::{Engine, Threading};
use darth_pum::eval::{price_on_all, ArchModel, Workload};
use darth_pum::trace::{SummaryRecorder, Trace};

/// The equivalence corpus: every extended-registry scenario plus bulk
/// AES at sizes small enough to materialize in a test.
fn workloads() -> Vec<Box<dyn Workload>> {
    let mut workloads = extended_workloads();
    workloads.push(Box::new(BulkAesWorkload {
        variant: AesVariant::Aes128,
        blocks: 64,
    }));
    workloads.push(Box::new(BulkAesWorkload {
        variant: AesVariant::Aes256,
        blocks: 1000,
    }));
    workloads
}

/// `price(stream)` == `price(&Trace)` == summary replay, for every cell.
#[test]
fn streamed_materialized_and_replayed_pricing_are_bit_identical() {
    let models = all_models();
    for workload in workloads() {
        let trace = Trace::from_workload(workload.as_ref());
        let mut recorder = SummaryRecorder::new();
        workload.emit(&mut recorder);
        let summary = recorder.finish();
        for model in &models {
            // Live stream into a fresh accumulator.
            let mut acc = model.accumulator();
            workload.emit(&mut *acc);
            let streamed = acc.finish();
            // The materialized path (op-by-op, no run-length batching).
            let materialized = model.price(&trace);
            // The engine's cached form: run-length summary replay.
            let mut acc = model.accumulator();
            summary.replay_into(&mut *acc);
            let replayed = acc.finish();
            let cell = format!("({}, {})", workload.name(), model.name());
            assert_eq!(streamed, materialized, "stream vs materialized {cell}");
            assert_eq!(streamed, replayed, "stream vs summary replay {cell}");
        }
    }
}

/// The fused fanout (one emission, all models at once) matches
/// per-model streaming, and the engine's serial and parallel matrices
/// agree with both.
#[test]
fn engine_cells_match_direct_streaming_serial_and_parallel() {
    let mut serial = Engine::new();
    let mut parallel = Engine::new();
    for engine in [&mut serial, &mut parallel] {
        for workload in workloads() {
            engine.register_workload(workload);
        }
        for model in all_models() {
            engine.register_model(model);
        }
    }
    serial.set_threading(Threading::Serial);
    parallel.set_threading(Threading::Workers(5));
    let serial_matrix = serial.run();
    assert_eq!(serial_matrix, parallel.run(), "serial vs parallel run");

    let models = all_models();
    let model_refs: Vec<&dyn ArchModel> = models.iter().map(AsRef::as_ref).collect();
    for workload in workloads() {
        let fused = price_on_all(workload.as_ref(), model_refs.iter().copied());
        assert_eq!(fused.len(), models.len());
        for (report, model) in fused.iter().zip(&models) {
            let cell = serial_matrix
                .cell(&workload.name(), &model.name())
                .expect("cell priced");
            assert_eq!(report, cell, "fanout vs engine ({})", workload.name());
        }
        // Engine::price_streamed is the same fused pass.
        assert_eq!(serial.price_streamed(workload.as_ref()), fused);
    }
}

/// The large registry streams and prices without materializing; its
/// scenarios are the documented ones and their recorded summaries stay
/// compact even at million-op scale.
#[test]
fn large_registry_prices_by_replay_without_materializing() {
    let workloads = large_workloads();
    let names: Vec<String> = workloads.iter().map(|w| w.name()).collect();
    assert_eq!(
        names,
        [
            "aes-128-bulk1048576",
            "llm-large-seq4096",
            "llm-gpt2-xl",
            "resnet-110",
        ]
    );
    let models = all_models();
    for workload in &workloads {
        let mut recorder = SummaryRecorder::new();
        workload.emit(&mut recorder);
        let summary = recorder.finish();
        // Compact: far fewer stored runs than streamed events.
        let stored_runs: usize = summary.kernels.iter().map(|k| k.runs.len()).sum();
        assert!(
            stored_runs as u64 <= summary.op_count(),
            "{}: {} runs for {} ops",
            workload.name(),
            stored_runs,
            summary.op_count()
        );
        assert!(
            stored_runs < 1000,
            "{}: summary not compact",
            workload.name()
        );
        for model in &models {
            let mut acc = model.accumulator();
            summary.replay_into(&mut *acc);
            let report = acc.finish();
            assert!(
                report.latency_s > 0.0 && report.latency_s.is_finite(),
                "({}, {}) latency {}",
                workload.name(),
                model.name(),
                report.latency_s
            );
            assert!(report.energy_per_item_j > 0.0);
            assert!(report.throughput_items_per_s > 0.0);
        }
    }
    // The headline scenario really is ≥ 1M blocks / ≥ 70M op events.
    let mut recorder = SummaryRecorder::new();
    workloads[0].emit(&mut recorder);
    let bulk = recorder.finish();
    assert!(bulk.op_count() > 70_000_000);
    assert!(bulk.materialized_bytes_estimate() > 2_000_000_000);
}
