//! The Monte-Carlo smoke campaign (`make mc-smoke`, part of
//! `make verify`): a tiny trial grid over the standard functional
//! workloads, asserting
//!
//! 1. zero-sigma noise-injected trials reproduce the golden (ideal)
//!    outputs bit-exactly — noise-off and ideal are the same machine;
//! 2. a noisy campaign is bit-identical across worker counts and
//!    reruns — the fork-tree seeds depend only on trial indices;
//! 3. accuracy results attach to the priced sweep matrix and surface
//!    in the `darth-dse-sweep/v2` JSON report.

use darth_eval::dse::{price_sweep, smoke_sweep};
use darth_eval::mc::{attach_accuracy, measure_accuracy, standard_workloads, McConfig};
use darth_eval::registry::paper_workloads;
use darth_eval::Threading;

#[test]
fn zero_sigma_trials_reproduce_the_golden_registry_bit_exactly() {
    let points = smoke_sweep().generate().expect("smoke grid is valid");
    let workloads = standard_workloads();
    let mc = McConfig::zero_sigma().with_trials(1);
    let accuracies = measure_accuracy(&points, &workloads, &mc).expect("campaign runs");

    assert_eq!(accuracies.len(), points.len());
    for (point, accuracy) in points.iter().zip(&accuracies) {
        assert_eq!(
            accuracy.mean_error, 0.0,
            "{}: zero-sigma must be exact",
            point.name
        );
        for w in &accuracy.workloads {
            assert_eq!(
                w.exact_trials, w.trials,
                "{}/{}: zero-sigma trial diverged from the golden output",
                point.name, w.workload
            );
            assert_eq!(w.worst_error, 0.0, "{}/{}", point.name, w.workload);
        }
    }
}

#[test]
fn noisy_campaign_is_bit_identical_across_worker_counts_and_reruns() {
    let points = smoke_sweep().generate().expect("smoke grid is valid");
    let point = &points[..1];
    // AES + reduce keep the noisy smoke fast; full coverage runs in
    // `make mc`.
    let workloads: Vec<_> = standard_workloads()
        .into_iter()
        .filter(|w| {
            let name = w.exec_name();
            name.starts_with("aes") || name.starts_with("reduce")
        })
        .collect();
    assert_eq!(
        workloads.len(),
        2,
        "expected aes + reduce in the standard set"
    );

    let mc = McConfig::evaluation().with_trials(2);
    let reference =
        measure_accuracy(point, &workloads, &mc.clone().with_workers(1)).expect("campaign runs");
    for workers in [1, 2, 64] {
        let got = measure_accuracy(point, &workloads, &mc.clone().with_workers(workers))
            .expect("campaign runs");
        assert_eq!(got, reference, "workers = {workers}");
    }
    // Rerun with the executor's default worker count.
    assert_eq!(
        measure_accuracy(point, &workloads, &mc).expect("campaign runs"),
        reference
    );
}

#[test]
fn accuracy_attaches_to_matching_sweep_rows_and_the_v2_json() {
    let points = smoke_sweep().generate().expect("smoke grid is valid");
    let mut matrix =
        price_sweep(&points, paper_workloads(), Threading::Serial).expect("smoke grid builds");
    attach_accuracy(&mut matrix, &points, &McConfig::zero_sigma().with_trials(1))
        .expect("campaign runs");

    for row in &matrix.points {
        let accuracy = row.accuracy.as_ref().unwrap_or_else(|| {
            panic!(
                "{}: sweep row is missing its Monte-Carlo accuracy",
                row.name
            )
        });
        assert_eq!(accuracy.workloads.len(), 4);
    }
    let json = matrix.to_json().pretty();
    assert!(json.contains("darth-dse-sweep/v2"));
    assert!(json.contains("\"accuracy\""));
    assert!(json.contains("\"exact_trials\""));
}
