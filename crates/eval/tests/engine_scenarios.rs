//! Integration tests for the evaluation engine over the real registries:
//! determinism across scheduling modes, and matrix openness (registering
//! new workloads/models without touching any harness internals).

use darth_eval::registry::{all_models, paper_models, paper_workloads};
use darth_eval::{Engine, Threading};
use darth_pum::eval::{ArchModel, CostAccumulator, Workload};
use darth_pum::trace::{CostReport, KernelOp, TraceMeta, TraceSink};

fn paper_engine() -> Engine {
    let mut engine = Engine::new();
    for workload in paper_workloads() {
        engine.register_workload(workload);
    }
    for model in all_models() {
        engine.register_model(model);
    }
    engine
}

/// Same registries ⇒ identical `EvalMatrix`, whether the cells are priced
/// serially, with the host's core count, or with a forced worker count
/// larger than the cell chunks.
#[test]
fn matrix_is_deterministic_across_scheduling_modes() {
    let serial = {
        let mut e = paper_engine();
        e.set_threading(Threading::Serial);
        e.run()
    };
    for threading in [
        Threading::Parallel,
        Threading::Workers(2),
        Threading::Workers(7),
    ] {
        let mut e = paper_engine();
        e.set_threading(threading);
        assert_eq!(serial, e.run(), "{threading:?} diverged from serial");
    }
}

struct DoubledAes;

impl Workload for DoubledAes {
    fn name(&self) -> String {
        "aes-128-x2".into()
    }
    fn emit(&self, sink: &mut dyn TraceSink) {
        // Two back-to-back block encryptions as one work item, composed
        // from the app's kernel-level emitter.
        sink.begin_trace(&TraceMeta::new(self.name()).with_pipelines_per_item(3));
        for _ in 0..2 {
            darth_apps::aes::workload::emit_block_kernels(
                darth_apps::aes::workload::AesVariant::Aes128,
                sink,
            );
        }
    }
}

struct FlatRate;

#[derive(Default)]
struct FlatRateAccumulator {
    workload: String,
    cycles: u64,
    breakdown: Vec<(String, f64)>,
    current: Option<(String, u64)>,
}

impl FlatRateAccumulator {
    fn flush_kernel(&mut self) {
        if let Some((name, ops)) = self.current.take() {
            self.breakdown.push((name, ops as f64 * 1e-9));
        }
    }
}

impl TraceSink for FlatRateAccumulator {
    fn begin_trace(&mut self, meta: &TraceMeta) {
        self.workload = meta.name.clone();
    }
    fn begin_kernel(&mut self, name: &str) {
        self.flush_kernel();
        self.current = Some((name.to_owned(), 0));
    }
    fn op_run(&mut self, op: &KernelOp, repeat: u64) {
        let cycles = match *op {
            KernelOp::HostMove { bytes } | KernelOp::OnChipMove { bytes } => bytes,
            _ => op.macs() + op.element_ops(),
        };
        self.cycles += cycles * repeat;
        let kernel = self.current.as_mut().expect("begin_kernel precedes ops");
        kernel.1 += (op.macs() + op.element_ops()) * repeat;
    }
}

impl CostAccumulator for FlatRateAccumulator {
    fn finish(&mut self) -> CostReport {
        self.flush_kernel();
        let cycles = self.cycles.max(1);
        let latency_s = cycles as f64 * 1e-9;
        CostReport {
            architecture: "flat rate (1 op/ns)".into(),
            workload: std::mem::take(&mut self.workload),
            latency_s,
            throughput_items_per_s: 1.0 / latency_s,
            energy_per_item_j: cycles as f64 * 1e-12,
            kernel_latency_s: std::mem::take(&mut self.breakdown),
        }
    }
}

impl ArchModel for FlatRate {
    fn name(&self) -> String {
        "flat-rate".into()
    }
    fn accumulator(&self) -> Box<dyn CostAccumulator + '_> {
        Box::new(FlatRateAccumulator::default())
    }
}

/// The matrix is open: a user-defined workload and a user-defined model
/// registered next to the paper registries show up as a full row and a
/// full column, priced against everything else — no harness changes.
#[test]
fn custom_workload_and_model_extend_the_matrix() {
    let mut engine = Engine::new();
    for workload in paper_workloads() {
        engine.register_workload(workload);
    }
    engine.register_workload(Box::new(DoubledAes));
    for model in paper_models(darth_analog::adc::AdcKind::Sar) {
        engine.register_model(model);
    }
    engine.register_model(Box::new(FlatRate));
    let matrix = engine.run();

    assert_eq!(matrix.workloads.len(), 4);
    assert_eq!(matrix.models.len(), 6);
    assert_eq!(matrix.cells.len(), 24);
    // The custom row is priced on a paper model…
    let custom_row = matrix.cell("aes-128-x2", "darth-sar").expect("priced");
    let paper_row = matrix.cell("aes-128", "darth-sar").expect("priced");
    assert!(custom_row.latency_s > paper_row.latency_s);
    // …and the custom column prices a paper workload.
    let custom_cell = matrix.cell("resnet-20", "flat-rate").expect("priced");
    assert!(custom_cell.throughput_items_per_s > 0.0);
    // Kernel structure flows through untouched.
    let kernel_sum: f64 = custom_row.kernel_latency_s.iter().map(|(_, t)| t).sum();
    assert!(kernel_sum > 0.0);
}
