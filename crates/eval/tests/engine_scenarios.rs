//! Integration tests for the evaluation engine over the real registries:
//! determinism across scheduling modes, and matrix openness (registering
//! new workloads/models without touching any harness internals).

use darth_eval::registry::{all_models, paper_models, paper_workloads};
use darth_eval::{Engine, Threading};
use darth_pum::eval::{ArchModel, Workload};
use darth_pum::trace::{CostReport, KernelOp, Trace};

fn paper_engine() -> Engine {
    let mut engine = Engine::new();
    for workload in paper_workloads() {
        engine.register_workload(workload);
    }
    for model in all_models() {
        engine.register_model(model);
    }
    engine
}

/// Same registries ⇒ identical `EvalMatrix`, whether the cells are priced
/// serially, with the host's core count, or with a forced worker count
/// larger than the cell chunks.
#[test]
fn matrix_is_deterministic_across_scheduling_modes() {
    let serial = {
        let mut e = paper_engine();
        e.set_threading(Threading::Serial);
        e.run()
    };
    for threading in [
        Threading::Parallel,
        Threading::Workers(2),
        Threading::Workers(7),
    ] {
        let mut e = paper_engine();
        e.set_threading(threading);
        assert_eq!(serial, e.run(), "{threading:?} diverged from serial");
    }
}

struct DoubledAes;

impl Workload for DoubledAes {
    fn name(&self) -> String {
        "aes-128-x2".into()
    }
    fn build_trace(&self) -> Trace {
        // Two back-to-back block encryptions as one work item.
        let one =
            darth_apps::aes::workload::block_trace(darth_apps::aes::workload::AesVariant::Aes128);
        let mut kernels = one.kernels.clone();
        kernels.extend(one.kernels.clone());
        Trace::new(self.name(), kernels).with_pipelines_per_item(3)
    }
}

struct FlatRate;

impl ArchModel for FlatRate {
    fn name(&self) -> String {
        "flat-rate".into()
    }
    fn price(&self, trace: &Trace) -> CostReport {
        let cycles: u64 = trace
            .kernels
            .iter()
            .flat_map(|k| &k.ops)
            .map(|op| match *op {
                KernelOp::HostMove { bytes } | KernelOp::OnChipMove { bytes } => bytes,
                _ => op.macs() + op.element_ops(),
            })
            .sum::<u64>()
            .max(1);
        let latency_s = cycles as f64 * 1e-9;
        CostReport {
            architecture: "flat rate (1 op/ns)".into(),
            workload: trace.name.clone(),
            latency_s,
            throughput_items_per_s: 1.0 / latency_s,
            energy_per_item_j: cycles as f64 * 1e-12,
            kernel_latency_s: trace
                .kernels
                .iter()
                .map(|k| (k.name.clone(), (k.macs() + k.element_ops()) as f64 * 1e-9))
                .collect(),
        }
    }
}

/// The matrix is open: a user-defined workload and a user-defined model
/// registered next to the paper registries show up as a full row and a
/// full column, priced against everything else — no harness changes.
#[test]
fn custom_workload_and_model_extend_the_matrix() {
    let mut engine = Engine::new();
    for workload in paper_workloads() {
        engine.register_workload(workload);
    }
    engine.register_workload(Box::new(DoubledAes));
    for model in paper_models(darth_analog::adc::AdcKind::Sar) {
        engine.register_model(model);
    }
    engine.register_model(Box::new(FlatRate));
    let matrix = engine.run();

    assert_eq!(matrix.workloads.len(), 4);
    assert_eq!(matrix.models.len(), 6);
    assert_eq!(matrix.cells.len(), 24);
    // The custom row is priced on a paper model…
    let custom_row = matrix.cell("aes-128-x2", "darth-sar").expect("priced");
    let paper_row = matrix.cell("aes-128", "darth-sar").expect("priced");
    assert!(custom_row.latency_s > paper_row.latency_s);
    // …and the custom column prices a paper workload.
    let custom_cell = matrix.cell("resnet-20", "flat-rate").expect("priced");
    assert!(custom_cell.throughput_items_per_s > 0.0);
    // Kernel structure flows through untouched.
    let kernel_sum: f64 = custom_row.kernel_latency_s.iter().map(|(_, t)| t).sum();
    assert!(kernel_sum > 0.0);
}
